"""Command-line interface: run DABench-LLM from a shell.

The paper's artifact drives its analysis with shell scripts plus an
``ana.py``; this CLI is the equivalent for the simulation-backed
reproduction::

    python -m repro platforms
    python -m repro tier1 --platform cerebras --model gpt2-small --batch 64
    python -m repro sweep-layers --platform cerebras --model gpt2-small \
        --layers 1 6 12 24 48 78
    python -m repro batch-sweep --platform sambanova --model gpt2-small \
        --batches 4 8 16 32 --option mode=O1
    python -m repro scaling --platform sambanova --model llama2-7b \
        --configs tp=2 tp=4 tp=8 --option mode=O1
    python -m repro grid --platform cerebras --model gpt2-small \
        --layers 2 6 12 --batches 16 64 --resume sweep.jsonl \
        --max-retries 2 --cell-timeout 120
    python -m repro campaign --platforms cerebras sambanova gpu \
        --model gpt2-small --layers 2 12 --batches 16 64 \
        --max-workers 8 --journal-dir journal/ --resume

Platform-specific compile options are passed as repeated
``--option key=value`` flags (and per-config in ``scaling``). Add
``--json FILE`` to dump machine-readable results.

The sweep commands (``grid``, ``batch-sweep``, ``scaling``,
``campaign``) share one resilience flag group (a single argparse parent
parser, so the flags cannot drift between subcommands):
``--max-retries`` / ``--cell-timeout`` for retry and deadline control,
``--max-workers`` to fan cells across worker threads,
``--resume [JOURNAL]`` to checkpoint cells and skip already-finished
ones on a re-run (``--journal`` to checkpoint without skipping),
``--journal-dir`` for a sharded journal directory (one shard per
worker — the right store for parallel campaigns; combine with a bare
``--resume``), ``--schedule`` / ``--predictor`` to dispatch cells by
predicted cost (``longest-first`` cuts makespan on unbalanced grids;
see ``docs/campaign.md``), ``--trace [DIR]`` / ``--ledger PATH`` for
structured tracing and the persisted cross-run duration ledger (see
``docs/observability.md``), and ``--inject-faults RATE`` /
``--fault-seed`` to chaos-test a campaign with seeded, per-platform
calibrated transient faults. ``repro trace DIR`` summarizes a recorded
trace and exports it to Chrome-tracing JSON; ``repro cache stats DIR``
prints a compile-cache directory's entry counts and bytes, split by
tier (whole-cell entries vs per-stage artifacts — see
``docs/performance.md``).

All execution behaviour flows through one
:class:`~repro.resilience.ExecutionPolicy` built by
:func:`_policy_from_args` — the CLI has no side-channel into the sweep
entry points (the pre-policy ``executor=``/``journal=`` keywords were
removed in 0.3; see ``docs/extending.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from repro.campaign import Campaign, CampaignLane
from repro.common.errors import ConfigurationError
from repro.core.backend import AcceleratorBackend
from repro.core.report import (
    GRID_HEADERS,
    TIER1_HEADERS,
    describe_tier1,
    render_table,
    sweep_cell_row,
    tier1_summary_row,
)
from repro.core.serialize import (
    batch_sweep_to_dict,
    campaign_to_dict,
    scaling_point_to_dict,
    sweep_cell_to_dict,
    sweep_entry_to_dict,
    tier1_to_dict,
)
from repro.core.tier1 import Tier1Profiler
from repro.core.tier2 import DeploymentOptimizer, ScalabilityAnalyzer
from repro.resilience import (
    DISPATCH_MODES,
    DISPATCH_THREAD,
    PREDICTORS,
    SCHEDULE_POLICIES,
    ExecutionPolicy,
    FaultInjectingBackend,
    FaultPlan,
    RetryPolicy,
    ShardedJournal,
)
from repro.models.config import (
    GPT2_PRESETS,
    LLAMA2_PRESETS,
    ModelConfig,
    TrainConfig,
    gpt2_model,
    llama2_model,
)
from repro.models.precision import Precision, PrecisionPolicy
from repro.workloads import decoder_block_probe
from repro.workloads.sweeps import SweepSpec, run_grid

PLATFORMS = ("cerebras", "sambanova", "graphcore", "graphcore-pod", "gpu")


def make_backend(name: str) -> AcceleratorBackend:
    """Instantiate a backend by CLI platform name."""
    if name == "cerebras":
        from repro.cerebras import CerebrasBackend
        return CerebrasBackend()
    if name == "sambanova":
        from repro.sambanova import SambaNovaBackend
        return SambaNovaBackend()
    if name == "graphcore":
        from repro.graphcore import GraphcoreBackend
        return GraphcoreBackend()
    if name == "graphcore-pod":
        from repro.graphcore import GraphcoreBackend
        from repro.hardware.specs import BOW_POD
        return GraphcoreBackend(BOW_POD)
    if name == "gpu":
        from repro.gpu import GPUBackend
        return GPUBackend()
    raise ConfigurationError(
        f"unknown platform {name!r}; choose from {PLATFORMS}")


def parse_model(spec: str) -> ModelConfig:
    """Parse a model spec.

    Accepted forms: ``gpt2-small``, ``llama2-7b``, ``gpt2-small:24``
    (layer-count override), and ``probe:<hidden>x<layers>`` for
    decoder-block probes.
    """
    if spec.startswith("probe:"):
        dims = spec.split(":", 1)[1]
        try:
            hidden_str, layer_str = dims.split("x")
            return decoder_block_probe(int(hidden_str), int(layer_str))
        except ValueError:
            raise ConfigurationError(
                f"bad probe spec {spec!r}; expected probe:<hidden>x<layers>"
            ) from None
    layers = None
    if ":" in spec:
        spec, layer_str = spec.rsplit(":", 1)
        layers = int(layer_str)
    family, _sep, size = spec.partition("-")
    if family == "gpt2" and size in GPT2_PRESETS:
        model = gpt2_model(size)
    elif family == "llama2" and size in LLAMA2_PRESETS:
        model = llama2_model(size)
    else:
        raise ConfigurationError(
            f"unknown model {spec!r}; use gpt2-<{'/'.join(GPT2_PRESETS)}>, "
            f"llama2-<{'/'.join(LLAMA2_PRESETS)}>, or probe:<h>x<l>")
    return model.with_layers(layers) if layers is not None else model


def parse_precision(label: str) -> PrecisionPolicy:
    """Parse a precision label: fp32/fp16/bf16/cb16, mixed-<fmt>,
    matmul-<fmt>."""
    if label == "full" or label == "fp32":
        return PrecisionPolicy.full()
    if label.startswith("mixed-"):
        return PrecisionPolicy.mixed(Precision(label.split("-", 1)[1]))
    if label.startswith("matmul-"):
        return PrecisionPolicy.matmul_only(Precision(label.split("-", 1)[1]))
    return PrecisionPolicy.pure(Precision(label))


def parse_options(pairs: Sequence[str]) -> dict[str, Any]:
    """Parse repeated ``key=value`` options with int coercion."""
    options: dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ConfigurationError(f"bad option {pair!r}; expected k=v")
        key, value = pair.split("=", 1)
        try:
            options[key] = int(value)
        except ValueError:
            options[key] = value
    return options


def _train_from_args(args: argparse.Namespace) -> TrainConfig:
    return TrainConfig(batch_size=args.batch, seq_len=args.seq_len,
                       precision=parse_precision(args.precision),
                       training=not getattr(args, "inference", False))


def _emit(args: argparse.Namespace, payload: Any, text: str) -> None:
    print(text)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"\n[json written to {args.json}]")


def _fault_backend(args: argparse.Namespace, backend: AcceleratorBackend,
                   platform: str) -> AcceleratorBackend:
    """Wrap the backend in chaos-mode fault injection when requested."""
    if not args.inject_faults:
        return backend
    if not 0.0 < args.inject_faults <= 1.0:
        raise ConfigurationError(
            "--inject-faults rate must be in (0, 1]: "
            f"{args.inject_faults}")
    plan = FaultPlan.chaos(args.inject_faults, seed=args.fault_seed,
                           platform=platform)
    return FaultInjectingBackend(backend, plan)


def _policy_from_args(args: argparse.Namespace) -> ExecutionPolicy:
    """Build the ExecutionPolicy the shared resilience flags describe."""
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        raise ConfigurationError(
            f"--cell-timeout must be positive: {args.cell_timeout}")
    if args.max_retries < 0:
        raise ConfigurationError(
            f"--max-retries must be >= 0: {args.max_retries}")
    if args.heartbeat_interval <= 0:
        raise ConfigurationError(
            "--heartbeat-interval must be positive: "
            f"{args.heartbeat_interval}")
    if args.quarantine_after <= 0:
        raise ConfigurationError(
            f"--quarantine-after must be >= 1: {args.quarantine_after}")
    if args.max_pool_rebuilds < 0:
        raise ConfigurationError(
            f"--max-pool-rebuilds must be >= 0: {args.max_pool_rebuilds}")
    resume = bool(args.resume)
    journal = args.resume if isinstance(args.resume, str) else args.journal
    if args.journal_dir:
        if journal is not None:
            raise ConfigurationError(
                "--journal-dir conflicts with a journal file; pass a "
                "bare --resume to resume from the directory")
        journal = ShardedJournal(args.journal_dir)
    if resume and journal is None:
        raise ConfigurationError(
            "--resume needs a journal: give it a path, or combine a "
            "bare --resume with --journal-dir")
    return ExecutionPolicy(
        retry=RetryPolicy(max_retries=args.max_retries),
        deadline=args.cell_timeout,
        journal=journal,
        resume=resume,
        retry_failed=args.retry_failed,
        max_workers=args.max_workers,
        dispatch=args.dispatch,
        schedule=args.schedule,
        predictor=args.predictor,
        heartbeat_interval=args.heartbeat_interval,
        quarantine_after=args.quarantine_after,
        max_pool_rebuilds=args.max_pool_rebuilds,
        trace=args.trace,
        ledger=args.ledger,
        cache=args.cache,
    )


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_platforms(_args: argparse.Namespace) -> int:
    rows = []
    for name in PLATFORMS:
        backend = make_backend(name)
        chip = backend.system.chip
        rows.append([name, backend.system.name,
                     f"{chip.compute_units} {chip.compute_unit_name}s",
                     f"{chip.peak_flops / 1e12:.0f} TFLOP/s",
                     backend.system.total_chips])
    print(render_table(
        ["platform", "system", "units/chip", "peak", "max chips"], rows,
        title="Available platforms"))
    return 0


def cmd_tier1(args: argparse.Namespace) -> int:
    backend = make_backend(args.platform)
    profiler = Tier1Profiler(backend)
    result = profiler.profile(parse_model(args.model),
                              _train_from_args(args),
                              **parse_options(args.option))
    text = "\n".join([
        render_table(TIER1_HEADERS, [tier1_summary_row(result)],
                     title="Tier-1 profile"),
        "",
        describe_tier1(result),
    ])
    _emit(args, tier1_to_dict(result), text)
    return 0


def cmd_sweep_layers(args: argparse.Namespace) -> int:
    backend = make_backend(args.platform)
    profiler = Tier1Profiler(backend)
    entries = profiler.sweep_layers(parse_model(args.model),
                                    _train_from_args(args), args.layers,
                                    **parse_options(args.option))
    rows = []
    for entry in entries:
        if entry.failed:
            rows.append([entry.value, "Fail", "-", "-", "-"])
        else:
            result = entry.result
            rows.append([entry.value,
                         f"{result.compute_allocation:.1%}",
                         f"{result.load_imbalance:.3f}",
                         f"{result.achieved_flops / 1e12:.1f}",
                         f"{result.tokens_per_second:,.0f}"])
    text = render_table(
        ["layers", "allocation", "LI", "TFLOP/s", "tokens/s"], rows,
        title=f"Layer sweep on {backend.name}")
    _emit(args, [sweep_entry_to_dict(e) for e in entries], text)
    return 0


def cmd_batch_sweep(args: argparse.Namespace) -> int:
    backend = _fault_backend(args, make_backend(args.platform),
                             args.platform)
    optimizer = DeploymentOptimizer(backend)
    sweep = optimizer.batch_sweep(parse_model(args.model),
                                  _train_from_args(args), args.batches,
                                  policy=_policy_from_args(args),
                                  **parse_options(args.option))
    rows = [[b, f"{t:,.0f}" if t else sweep.errors.get(b, "Fail")]
            for b, t in zip(sweep.batch_sizes, sweep.tokens_per_second)]
    text = "\n".join([
        render_table(["batch", "tokens/s"], rows,
                     title=f"Batch sweep on {backend.name}"),
        "",
        f"scaling exponent: {sweep.scaling_exponent:.2f} "
        f"({'near-linear' if sweep.near_linear else 'saturating'}); "
        f"saturation batch: {sweep.saturation_batch}",
    ])
    _emit(args, batch_sweep_to_dict(sweep), text)
    return 0


def cmd_scaling(args: argparse.Namespace) -> int:
    backend = _fault_backend(args, make_backend(args.platform),
                             args.platform)
    analyzer = ScalabilityAnalyzer(backend)
    base = parse_options(args.option)
    configs = []
    for spec in args.configs:
        options = dict(base)
        options.update(parse_options(spec.split(",")))
        configs.append((spec, options))
    points = analyzer.sweep(parse_model(args.model),
                            _train_from_args(args), configs,
                            policy=_policy_from_args(args))
    rows = [[p.label,
             "Fail" if p.failed else f"{p.tokens_per_second:,.0f}",
             f"{p.compute_allocation:.1%}",
             f"{p.communication_fraction:.1%}"] for p in points]
    text = render_table(
        ["config", "tokens/s", "alloc", "comm share"], rows,
        title=f"Scaling sweep on {backend.name}")
    _emit(args, [scaling_point_to_dict(p) for p in points], text)
    return 0


def _grid_specs(args: argparse.Namespace) -> list[SweepSpec]:
    model = parse_model(args.model)
    train = _train_from_args(args)
    options = parse_options(args.option)
    return [
        SweepSpec(label=f"L{layers}/b{batch}",
                  model=model.with_layers(layers),
                  train=train.with_batch_size(batch),
                  options=options)
        for layers in args.layers
        for batch in args.batches
    ]


def cmd_grid(args: argparse.Namespace) -> int:
    backend = _fault_backend(args, make_backend(args.platform),
                             args.platform)
    cells = run_grid(backend, _grid_specs(args),
                     measure=not args.compile_only,
                     policy=_policy_from_args(args))
    text = render_table(GRID_HEADERS, [sweep_cell_row(c) for c in cells],
                        title=f"Grid sweep on {backend.name}")
    _emit(args, [sweep_cell_to_dict(c) for c in cells], text)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Summarize a recorded trace directory (and export it)."""
    from repro.observe import (
        events_for_key,
        load_events,
        merged_trace_text,
        summarize_events,
        write_chrome_trace,
    )

    events = load_events(args.dir, run=args.run)
    if args.key:
        events = events_for_key(events, args.key)
    if not events:
        print("no trace events found", file=sys.stderr)
        return 1
    if args.merged:
        print(merged_trace_text(events), end="")
    else:
        writers = {event.writer for event in events}
        keys = {event.key for event in events if event.key}
        rows = [[name, count]
                for name, count in summarize_events(events).items()]
        print(render_table(["event", "count"], rows,
                           title=f"Trace: {len(events)} events, "
                                 f"{len(keys)} cells, "
                                 f"{len(writers)} writers"))
    if args.chrome:
        path = write_chrome_trace(events, args.chrome)
        print(f"\n[chrome trace written to {path}]")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect a content-addressed compile-cache directory."""
    from pathlib import Path

    from repro.cache import CompileCache

    root = Path(args.dir)
    if not root.is_dir():
        raise ConfigurationError(f"not a cache directory: {root}")
    hexdigits = set("0123456789abcdef")
    for child in sorted(root.iterdir()):
        if child.name == "ledger.json":
            continue
        if child.is_dir() and (child.name == CompileCache.STAGE_DIR
                               or (len(child.name) == 2
                                   and set(child.name) <= hexdigits)):
            continue
        raise ConfigurationError(
            f"not a cache directory: {root} "
            f"(unexpected entry {child.name!r})")
    cache = CompileCache(root)
    entries = cache.entries()
    rows: list[list[object]] = [
        ["cell", len(entries),
         sum(path.stat().st_size for path in entries)],
    ]
    for stage_name, paths in sorted(cache.stage_entries().items()):
        rows.append([f"stage:{stage_name}", len(paths),
                     sum(path.stat().st_size for path in paths)])
    total_entries = sum(int(row[1]) for row in rows)
    total_bytes = sum(int(row[2]) for row in rows)
    rows.append(["total", total_entries, total_bytes])
    print(render_table(["tier", "entries", "bytes"], rows,
                       title=f"Cache {root}"))
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    specs = _grid_specs(args)
    lanes = [
        CampaignLane(backend=_fault_backend(args, make_backend(name), name),
                     specs=specs, label=name)
        for name in args.platforms
    ]
    campaign = Campaign(lanes, _policy_from_args(args),
                        measure=not args.compile_only)
    result = campaign.run()
    _emit(args, campaign_to_dict(result),
          result.report(title="Campaign").render())
    return 0


# ----------------------------------------------------------------------
def _workload_parent(platform: bool = True) -> argparse.ArgumentParser:
    """Shared workload flags as an argparse parent parser."""
    p = argparse.ArgumentParser(add_help=False)
    if platform:
        p.add_argument("--platform", required=True, choices=PLATFORMS)
    p.add_argument("--model", required=True,
                   help="gpt2-<size>[:layers], llama2-<size>[:layers], "
                        "or probe:<hidden>x<layers>")
    p.add_argument("--batch", type=int, default=16)
    p.add_argument("--seq-len", type=int, default=1024)
    p.add_argument("--precision", default="fp16",
                   help="fp32/fp16/bf16/cb16, mixed-<fmt>, "
                        "matmul-<fmt>")
    p.add_argument("--option", action="append", default=[],
                   metavar="K=V", help="backend compile option")
    p.add_argument("--inference", action="store_true",
                   help="benchmark forward-only inference instead of "
                        "training steps")
    p.add_argument("--json", help="also write results to this file")
    return p


def _resilience_parent() -> argparse.ArgumentParser:
    """The one definition of the resilience flag group.

    Every sweep subcommand inherits this parent parser, so the flags
    (and their semantics, read by :func:`_policy_from_args`) cannot
    drift between ``grid``, ``batch-sweep``, ``scaling``, and
    ``campaign``.
    """
    p = argparse.ArgumentParser(add_help=False)
    group = p.add_argument_group("resilience")
    group.add_argument("--max-retries", type=int, default=0,
                       help="retries per cell for transient faults")
    group.add_argument("--cell-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-cell deadline; hung cells are cut "
                            "off and recorded")
    group.add_argument("--max-workers", type=int, default=1,
                       help="workers fanning sweep cells out "
                            "(1 = sequential)")
    group.add_argument("--dispatch", choices=DISPATCH_MODES,
                       default=DISPATCH_THREAD,
                       help="how --max-workers are realized: thread "
                            "(shared address space, right for "
                            "IO-bound cells) or process (one worker "
                            "process per slot — real multi-core for "
                            "CPU-bound cells; needs --journal-dir "
                            "or no journal)")
    group.add_argument("--resume", metavar="JOURNAL", default=None,
                       nargs="?", const=True,
                       help="checkpoint cells to this JSONL journal "
                            "and skip already-finished ones; bare "
                            "--resume uses --journal-dir")
    group.add_argument("--journal", metavar="JOURNAL", default=None,
                       help="checkpoint cells without skipping "
                            "(fresh run)")
    group.add_argument("--journal-dir", metavar="DIR", default=None,
                       help="sharded journal directory (one shard per "
                            "worker thread; the right store for "
                            "parallel runs)")
    group.add_argument("--retry-failed", action="store_true",
                       help="with --resume, re-execute journaled "
                            "failures too")
    group.add_argument("--schedule", choices=SCHEDULE_POLICIES,
                       default=SCHEDULE_POLICIES[0],
                       help="cell dispatch order: lane-major (arrival "
                            "order), longest-first (predicted-cost LPT "
                            "— cuts makespan on unbalanced grids), or "
                            "shortest-first (quick feedback)")
    group.add_argument("--predictor", choices=PREDICTORS,
                       default="ewma",
                       help="cost model ranking cells for --schedule: "
                            "analytic (static cost-model estimate) or "
                            "ewma (online, learns per-backend cell "
                            "durations as the run progresses)")
    group.add_argument("--heartbeat-interval", type=float, default=5.0,
                       metavar="SECONDS",
                       help="process dispatch: how often worker "
                            "processes stamp their heartbeat files "
                            "(supervisor kills a worker whose beat "
                            "goes stale past interval x grace)")
    group.add_argument("--quarantine-after", type=int, default=2,
                       metavar="N",
                       help="process dispatch: a cell that kills its "
                            "worker this many times is quarantined "
                            "as a final failure instead of retried")
    group.add_argument("--max-pool-rebuilds", type=int, default=5,
                       metavar="N",
                       help="process dispatch: how many times a "
                            "broken worker pool is rebuilt before "
                            "the campaign gives up")
    group.add_argument("--trace", metavar="DIR", default=False,
                       nargs="?", const=True,
                       help="record structured trace events; bare "
                            "--trace writes beside the --journal-dir "
                            "shards, or give an explicit directory "
                            "(inspect with 'repro trace DIR')")
    group.add_argument("--ledger", metavar="PATH", default=None,
                       help="persisted cross-run duration ledger: "
                            "warm-starts the ewma predictor and "
                            "adapts the supervisor heartbeat on "
                            "re-runs")
    group.add_argument("--cache", metavar="DIR", default=None,
                       help="content-addressed compile cache: "
                            "deterministic cells already stored under "
                            "this directory replay without touching "
                            "the backend; fresh clean results are "
                            "published for the next run")
    group.add_argument("--inject-faults", type=float, default=0.0,
                       metavar="RATE",
                       help="chaos-test: inject seeded transient "
                            "faults at this rate per backend call")
    group.add_argument("--fault-seed", type=int, default=0,
                       help="seed for --inject-faults")
    return p


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DABench-LLM benchmarking CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("platforms", help="list simulated platforms")

    workload = _workload_parent()
    resilience = _resilience_parent()

    sub.add_parser("tier1", help="intra-chip Tier-1 profile",
                   parents=[workload])

    sweep = sub.add_parser("sweep-layers", help="Tier-1 layer sweep",
                           parents=[workload])
    sweep.add_argument("--layers", type=int, nargs="+", required=True)

    batch = sub.add_parser("batch-sweep",
                           help="Tier-2 batch deployment sweep",
                           parents=[workload, resilience])
    batch.add_argument("--batches", type=int, nargs="+", required=True)

    scaling = sub.add_parser("scaling", help="Tier-2 scalability sweep",
                             parents=[workload, resilience])
    scaling.add_argument("--configs", nargs="+", required=True,
                         metavar="K=V[,K=V...]",
                         help="one option bundle per configuration")

    grid = sub.add_parser(
        "grid", help="layer x batch grid with checkpoint/resume",
        parents=[workload, resilience])
    grid.add_argument("--layers", type=int, nargs="+", required=True)
    grid.add_argument("--batches", type=int, nargs="+", required=True)
    grid.add_argument("--compile-only", action="store_true",
                      help="skip the run phase (compile-time metrics)")

    campaign = sub.add_parser(
        "campaign",
        help="parallel multi-backend layer x batch campaign",
        parents=[_workload_parent(platform=False), resilience])
    campaign.add_argument("--platforms", nargs="+", required=True,
                          choices=PLATFORMS, metavar="PLATFORM",
                          help="one campaign lane per platform "
                               f"({', '.join(PLATFORMS)})")
    campaign.add_argument("--layers", type=int, nargs="+", required=True)
    campaign.add_argument("--batches", type=int, nargs="+",
                          required=True)
    campaign.add_argument("--compile-only", action="store_true",
                          help="skip the run phase "
                               "(compile-time metrics)")

    trace = sub.add_parser(
        "trace", help="summarize / export a recorded campaign trace")
    trace.add_argument("dir", help="trace directory (the --journal-dir "
                                   "or explicit --trace directory)")
    trace.add_argument("--run", default=None,
                       help="only this campaign run's shards")
    trace.add_argument("--key", default=None,
                       help="only this cell's events, in causal order")
    trace.add_argument("--merged", action="store_true",
                       help="print the canonical merged trace "
                            "(deterministic JSON lines) instead of "
                            "the summary")
    trace.add_argument("--chrome", metavar="FILE", default=None,
                       help="also export Chrome-tracing JSON "
                            "(chrome://tracing, Perfetto)")

    cache = sub.add_parser(
        "cache", help="inspect a compile-cache directory")
    cache.add_argument("action", choices=["stats"],
                       help="stats: entry counts and bytes per tier "
                            "(whole-cell entries and per-stage "
                            "artifacts)")
    cache.add_argument("dir", help="the cache directory (a policy's "
                                   "--cache DIR)")
    return parser


COMMANDS = {
    "platforms": cmd_platforms,
    "tier1": cmd_tier1,
    "sweep-layers": cmd_sweep_layers,
    "batch-sweep": cmd_batch_sweep,
    "scaling": cmd_scaling,
    "grid": cmd_grid,
    "campaign": cmd_campaign,
    "trace": cmd_trace,
    "cache": cmd_cache,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
