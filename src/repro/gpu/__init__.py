"""GPU cluster reference model.

Table III includes NVIDIA GPU results "as reference baselines for
comparison with specialized dataflow accelerators". This package provides
a Megatron-LM-style analytic performance model for an A100 cluster under
combined tensor / pipeline / data parallelism — a BSP, instruction-driven
counterpoint to the three dataflow simulators.
"""

from repro.gpu.backend import EccRetryError, GPUBackend, NcclTimeoutError
from repro.gpu.simulator import GPUClusterModel, GPUStepBreakdown

__all__ = ["GPUClusterModel", "GPUStepBreakdown", "GPUBackend",
           "NcclTimeoutError", "EccRetryError"]
