"""The GPU backend: DABench's view of the A100 reference cluster."""

from __future__ import annotations

from typing import Any

from repro.common.errors import TransientError
from repro.core.backend import (
    AcceleratorBackend,
    CompileReport,
    MemoryBreakdown,
    PhaseProfile,
    RunReport,
    TaskProfile,
)
from repro.core.stages import (
    STAGE_PARTITION,
    STAGE_REPORT,
    CompileStage,
    hardware_digest,
    run_stages,
    unfingerprinted,
)
from repro.gpu.simulator import GPUClusterModel
from repro.hardware.specs import GPU_CLUSTER, SystemSpec
from repro.models.config import ModelConfig, TrainConfig
from repro.models.costmodel import TransformerCostModel


class NcclTimeoutError(TransientError):
    """A collective timed out (straggler or flaky NIC); re-runs recover."""


class EccRetryError(TransientError):
    """A corrected ECC memory event forced a step replay."""


class GPUBackend(AcceleratorBackend):
    """A100-cluster adapter for the DABench framework.

    ``compile`` options: ``tp``, ``pp``, ``dp`` (parallel degrees) and
    ``micro_batches``. GPUs are BSP devices, so "compile" here is just
    configuration validation plus the analytic plan — there is no
    dataflow mapping step.
    """

    transient_errors = (TransientError, NcclTimeoutError, EccRetryError)
    # Audited for campaign concurrency: GPUClusterModel holds only
    # constructor-time spec state, so concurrent compile/run is safe.
    thread_safe = True

    def __init__(self, system: SystemSpec = GPU_CLUSTER) -> None:
        super().__init__(system)
        self.model_ = GPUClusterModel(system)

    def compile(self, model: ModelConfig, train: TrainConfig,
                **options: Any) -> CompileReport:
        return run_stages(self.compile_stages(
            model, train, unfingerprinted, **options))

    def compile_pipeline(self, model: ModelConfig, train: TrainConfig,
                         **options: Any) -> list[CompileStage]:
        if not self._staged_compile_intact(GPUBackend):
            return super().compile_pipeline(model, train, **options)
        return self.compile_stages(
            model, train, self.stage_fingerprint, **options)

    def compile_stages(self, model: ModelConfig, train: TrainConfig,
                       fp_of: Any, tp: int = 1, pp: int = 1, dp: int = 1,
                       micro_batches: int | None = None) -> list[CompileStage]:
        """Two-stage pipeline: analytic plan, then report assembly.

        GPUs are BSP devices with no dataflow mapping, so the whole
        "compile" is the cost-model breakdown; there is no model-only
        graph stage worth memoizing separately.
        """
        n_gpus = self.model_.validate(tp, pp, dp)

        def partition(_prev: Any) -> Any:
            return self.model_.step_breakdown(model, train, tp, pp, dp,
                                              micro_batches)

        def report(breakdown: Any) -> CompileReport:
            cost = TransformerCostModel(model)
            per_gpu_state = (cost.weight_bytes(train)
                             + cost.gradient_bytes(train)
                             + cost.optimizer_state_bytes(train)) / (tp * pp)
            chip = self.system.chip
            tasks = tuple(
                TaskProfile(
                    name=f"gpu{i}",
                    compute_units=float(chip.compute_units),
                    memory_units=float(chip.compute_units),
                    role="compute",
                    throughput=1.0 / breakdown.total_seconds,
                    flops=cost.step_flops(train) / n_gpus,
                )
                for i in range(min(n_gpus, 8))  # representative node
            )
            memory = MemoryBreakdown(
                capacity_bytes=chip.global_memory.capacity_bytes,
                weight_bytes=per_gpu_state,
                activation_bytes=cost.activation_bytes(train) / n_gpus,
            )
            phase = PhaseProfile(name="step",
                                 runtime=breakdown.total_seconds,
                                 tasks=tasks)
            return CompileReport(
                platform=self.system.name,
                model=model,
                train=train,
                phases=(phase,),
                total_compute_units=float(chip.compute_units * n_gpus),
                total_memory_units=float(chip.compute_units * n_gpus),
                shared_memory=memory,
                global_memory=memory,
                n_chips=n_gpus,
                meta={
                    "tp": tp, "pp": pp, "dp": dp,
                    "breakdown": breakdown,
                    "step_flops": cost.step_flops(train),
                },
            )

        partition_fp = fp_of(
            STAGE_PARTITION, "",
            model=model.content_digest(), train=train.content_digest(),
            system=hardware_digest(self),
            tp=tp, pp=pp, dp=dp, micro_batches=micro_batches)
        report_fp = fp_of(STAGE_REPORT, partition_fp)
        return [
            CompileStage(STAGE_PARTITION, partition_fp, partition),
            CompileStage(STAGE_REPORT, report_fp, report),
        ]

    def run(self, compiled: CompileReport) -> RunReport:
        breakdown = compiled.meta["breakdown"]
        train = compiled.train
        step_flops = compiled.meta["step_flops"]
        step_time = breakdown.total_seconds
        return RunReport(
            platform=compiled.platform,
            tokens_per_second=train.tokens_per_step / step_time,
            samples_per_second=train.batch_size / step_time,
            step_time=step_time,
            achieved_flops=step_flops / step_time,
            phases=compiled.phases,
            meta={
                "compute_fraction": breakdown.compute_fraction,
                "per_gpu_flops": step_flops / step_time / compiled.n_chips,
                "tp": compiled.meta["tp"],
                "pp": compiled.meta["pp"],
                "dp": compiled.meta["dp"],
            },
        )
