"""Analytic Megatron-style performance model for GPU clusters.

One training step under ``T``-way tensor, ``P``-way pipeline, and
``D``-way data parallelism decomposes into:

* per-GPU matmul time at a base model-FLOPs-utilization,
* tensor-parallel all-reduces (4 per layer per micro-batch: forward and
  backward of the attention and MLP blocks) over NVLink,
* the pipeline bubble ``(P - 1) / (G + P - 1)`` for ``G`` in-flight
  micro-batches,
* a gradient all-reduce over InfiniBand, partially overlapped.

This reproduces the Table III reference ordering: within one node,
tensor parallelism beats pipeline parallelism (T8P1D1 > ... > T1P8D1),
and large mixed configurations with deep gradient accumulation edge
higher per-GPU throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError, OutOfMemoryError
from repro.hardware.specs import GPU_CLUSTER, SystemSpec
from repro.models.config import ModelConfig, TrainConfig
from repro.models.costmodel import TransformerCostModel

# Base model-FLOPs utilization of the matmul phases themselves.
BASE_MFU = 0.62
# Fraction of the DP gradient all-reduce hidden under backward compute.
DP_OVERLAP = 0.6
# Effective fraction of peak link bandwidth a collective achieves.
COLLECTIVE_EFFICIENCY = 0.7
# NVSwitch runs all-reduce full-duplex: effective busbw is ~2x the
# per-direction link figure.
NVSWITCH_DUPLEX = 2.0
# Default gradient-accumulation depth when the caller does not pin one.
DEFAULT_MICRO_BATCHES = 8


@dataclass(frozen=True)
class GPUStepBreakdown:
    """Per-step time decomposition for one parallel configuration."""

    compute_seconds: float
    tp_comm_seconds: float
    pp_bubble_seconds: float
    dp_comm_seconds: float

    @property
    def total_seconds(self) -> float:
        return (self.compute_seconds + self.tp_comm_seconds
                + self.pp_bubble_seconds + self.dp_comm_seconds)

    @property
    def compute_fraction(self) -> float:
        total = self.total_seconds
        return self.compute_seconds / total if total > 0 else 0.0


class GPUClusterModel:
    """Performance model for (tp, pp, dp) configurations."""

    def __init__(self, system: SystemSpec = GPU_CLUSTER) -> None:
        self.system = system
        self.chip = system.chip

    def validate(self, tp: int, pp: int, dp: int) -> int:
        """Check the configuration against the cluster; returns GPU count."""
        if tp < 1 or pp < 1 or dp < 1:
            raise ConfigurationError("tp, pp, dp must all be >= 1")
        if tp > self.system.chips_per_node:
            raise ConfigurationError(
                f"tp={tp} exceeds the {self.system.chips_per_node} GPUs "
                "of one node (TP needs NVLink)")
        n_gpus = tp * pp * dp
        if n_gpus > self.system.total_chips:
            raise ConfigurationError(
                f"{n_gpus} GPUs requested; cluster has "
                f"{self.system.total_chips}")
        return n_gpus

    # ------------------------------------------------------------------
    def step_breakdown(self, model: ModelConfig, train: TrainConfig,
                       tp: int, pp: int, dp: int,
                       micro_batches: int | None = None) -> GPUStepBreakdown:
        """Time decomposition of one optimizer step."""
        self.validate(tp, pp, dp)
        cost = TransformerCostModel(model)
        if micro_batches is None:
            micro_batches = max(train.grad_accumulation,
                                DEFAULT_MICRO_BATCHES)
        self._check_memory(cost, model, train, tp, pp, dp, micro_batches)
        act_bytes = train.precision.activation_bytes_per_value
        scale = train.precision.compute.compute_scale / 2.0

        # Compute: model FLOPs spread over all GPUs at base MFU.
        flops = cost.step_flops(train) / dp  # per replica
        peak = self.chip.peak_flops * scale * BASE_MFU
        compute = flops / (tp * pp * peak)

        # Tensor-parallel all-reduces: 4 per layer per micro-batch
        # (attention + MLP, forward + backward), ring over NVLink. Each
        # TP group only owns its pipeline stage's share of the layers.
        tp_comm = 0.0
        if tp > 1:
            hidden = (train.batch_size / dp * train.seq_len
                      * model.hidden_size * act_bytes)
            layers_per_stage = model.n_layers / pp
            volume = 4.0 * layers_per_stage * 2.0 * (tp - 1) / tp * hidden
            bw = (self.system.intra_node_bandwidth
                  * COLLECTIVE_EFFICIENCY * NVSWITCH_DUPLEX)
            tp_comm = volume / bw

        # Pipeline bubble: idle fraction of the schedule.
        bubble = 0.0
        if pp > 1:
            bubble_fraction = (pp - 1) / (micro_batches + pp - 1)
            busy = compute + tp_comm
            bubble = busy * bubble_fraction / (1.0 - bubble_fraction)

        # Data-parallel gradient all-reduce over the cluster fabric
        # (inference replicas are independent: no gradient exchange).
        dp_comm = 0.0
        if dp > 1 and train.training:
            grad_bytes = (cost.weight_bytes(train) / (tp * pp))
            volume = 2.0 * (dp - 1) / dp * grad_bytes
            bw = (self.system.inter_node_bandwidth
                  * COLLECTIVE_EFFICIENCY)
            dp_comm = (volume / bw) * (1.0 - DP_OVERLAP)

        return GPUStepBreakdown(
            compute_seconds=compute,
            tp_comm_seconds=tp_comm,
            pp_bubble_seconds=bubble,
            dp_comm_seconds=dp_comm,
        )

    def tokens_per_second(self, model: ModelConfig, train: TrainConfig,
                          tp: int, pp: int, dp: int,
                          micro_batches: int | None = None) -> float:
        """Cluster-wide training throughput."""
        breakdown = self.step_breakdown(model, train, tp, pp, dp,
                                        micro_batches)
        return train.tokens_per_step / breakdown.total_seconds

    def per_gpu_flops(self, model: ModelConfig, train: TrainConfig,
                      tp: int, pp: int, dp: int,
                      micro_batches: int | None = None) -> float:
        """Achieved model FLOP/s per GPU — the Table III reference metric."""
        breakdown = self.step_breakdown(model, train, tp, pp, dp,
                                        micro_batches)
        cost = TransformerCostModel(model)
        total_flops = cost.step_flops(train)
        return total_flops / breakdown.total_seconds / (tp * pp * dp)

    # ------------------------------------------------------------------
    def _check_memory(self, cost: TransformerCostModel, model: ModelConfig,
                      train: TrainConfig, tp: int, pp: int, dp: int,
                      micro_batches: int) -> None:
        """Weights + optimizer state + working activations per GPU."""
        state = (cost.weight_bytes(train) + cost.gradient_bytes(train)
                 + cost.optimizer_state_bytes(train)) / (tp * pp)
        micro_size = max(1, train.batch_size // (dp * micro_batches))
        hidden = (micro_size * train.seq_len
                  * model.hidden_size
                  * train.precision.activation_bytes_per_value)
        working = 8.0 * hidden * max(1, model.n_layers // pp)
        capacity = self.chip.global_memory.capacity_bytes
        if state + working > capacity:
            raise OutOfMemoryError(
                f"{model.name}: {(state + working) / 1e9:.0f} GB per GPU "
                f"exceeds HBM ({capacity / 1e9:.0f} GB) at tp={tp}, pp={pp}",
                required_bytes=state + working,
                available_bytes=capacity,
            )
