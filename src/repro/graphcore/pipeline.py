"""Pipeline execution on IPUs: GPipe-style schedule via discrete events.

Micro-batches flow forward through the stage chain, then backward in
reverse order (backward work costs twice the forward). Stages are
capacity-1 resources, so the steady-state rate is set by the slowest
stage — "overall system throughput is primarily limited by the most
heavily loaded IPU" (paper Sec. VI-A3c) — while the fill/drain ramp and
the optimizer step add the per-step overheads that make batch-size
scaling near-linear (Fig. 12).
"""

from __future__ import annotations

from repro.core.backend import CompileReport, PhaseProfile, RunReport, TaskProfile
from repro.graphcore.compiler import StagePlan
from repro.hardware.specs import BOW2000_SYSTEM, SystemSpec
from repro.sim.engine import Resource, Simulator
from repro.sim.trace import Trace

# Relative cost of a backward pass through a stage.
BACKWARD_FACTOR = 2.0


class PipelineExecutor:
    """Executes a compiled IPU pipeline and measures throughput."""

    def __init__(self, system: SystemSpec = BOW2000_SYSTEM) -> None:
        self.system = system
        self.chip = system.chip

    def run(self, compiled: CompileReport) -> RunReport:
        """Simulate one optimizer step (all micro-batches, fwd+bwd)."""
        stages: list[StagePlan] = compiled.meta["stages"]
        micro_batches: int = compiled.meta["micro_batches"]
        micro_size: int = compiled.meta["micro_size"]

        trace = Trace()
        sim = Simulator()
        resources = [Resource(sim, capacity=1, name=s.name) for s in stages]
        n_stages = len(stages)
        training = compiled.train.training
        done = {"count": 0}

        def enter(micro: int, index: int, backward: bool) -> None:
            resources[index].request(start, micro, index, backward)

        def start(micro: int, index: int, backward: bool) -> None:
            service = stages[index].compute_seconds
            if backward:
                service *= BACKWARD_FACTOR
            sim.schedule(service, finish, micro, index, backward, sim.now)

        def finish(micro: int, index: int, backward: bool,
                   began: float) -> None:
            trace.record(began, sim.now, stages[index].name,
                         category="backward" if backward else "compute",
                         item=micro)
            resources[index].release()
            if not backward:
                if index + 1 < n_stages:
                    enter(micro, index + 1, False)
                elif training:
                    enter(micro, index, True)
                else:
                    done["count"] += 1
            else:
                if index > 0:
                    enter(micro, index - 1, True)
                else:
                    done["count"] += 1

        for micro in range(micro_batches):
            enter(micro, 0, False)
        sim.run()

        update_time = (self._weight_update_time(stages, compiled)
                       if training else 0.0)
        step_time = sim.now + update_time
        train = compiled.train
        samples = micro_batches * micro_size
        samples_per_s = samples / step_time
        flops_per_micro = sum(s.flops_per_micro for s in stages)
        achieved = flops_per_micro * micro_batches / step_time

        tasks = tuple(
            TaskProfile(
                name=stage.name,
                compute_units=stage.tiles_used,
                memory_units=stage.tiles_used,
                role="compute",
                throughput=trace.task_throughput(stage.name) / 2.0,
                flops=stage.flops_per_micro,
                meta={"ipu": stage.ipu_index, "layers": stage.n_layers},
            )
            for stage in stages
        )
        bottleneck = max(s.compute_seconds for s in stages)
        busy = sum(r.busy_time for r in resources) / max(len(resources), 1)
        return RunReport(
            platform=compiled.platform,
            tokens_per_second=samples_per_s * train.seq_len,
            samples_per_second=samples_per_s,
            step_time=step_time,
            achieved_flops=achieved,
            phases=(PhaseProfile(name="pipeline", runtime=step_time,
                                 tasks=tasks),),
            global_traffic_bytes_per_step=self._stream_bytes(compiled),
            trace=trace,
            meta={
                "micro_batches": micro_batches,
                "bottleneck_stage": max(
                    stages, key=lambda s: s.compute_seconds).name,
                "bottleneck_seconds": bottleneck,
                "pipeline_fill_fraction": 1.0 - busy / step_time,
                "compute_fraction": busy / step_time,
                "update_time": update_time,
            },
        )

    # ------------------------------------------------------------------
    def _weight_update_time(self, stages: list[StagePlan],
                            compiled: CompileReport) -> float:
        """Optimizer step: streaming state through the Gateway DDR.

        Runs once per step on every IPU in parallel; the slowest stage
        (largest resident state) bounds it.
        """
        ddr_bw = self.chip.global_memory.bandwidth
        worst = max(stage.weight_bytes for stage in stages)
        return 2.0 * worst / ddr_bw

    def _stream_bytes(self, compiled: CompileReport) -> float:
        """DDR traffic per step: optimizer state in and out."""
        stages: list[StagePlan] = compiled.meta["stages"]
        return 2.0 * sum(stage.weight_bytes for stage in stages)
