"""IPU pipeline compiler: layer grouping, tile allocation, memory checks.

Pipeline layout (paper Sec. III-C):

* IPU 0 hosts the embedding; with eight or more IPUs the LM head moves to
  dedicated IPUs (sharded across several at 16), otherwise it shares the
  embedding IPU.
* Decoder layers are grouped contiguously over the remaining IPUs —
  either balanced (default) or via an explicit ``layers_per_ipu``
  distribution (the nine configurations of Fig. 11c).

Tile allocation follows the same area law as the other dataflow chips:
useful parallelism grows as work^(2/3), so a single hidden-768 decoder
layer engages only ~a quarter of an IPU's 1,472 tiles — which is why
TFLOPs climb until about four layers per IPU before plateauing
(Fig. 9d).

Memory per IPU = code reserve + weights/grads/optimizer state of its
layers + stashed boundary activations for in-flight micro-batches.
Exceeding the ~900 MB In-Processor Memory raises
:class:`~repro.common.errors.OutOfMemoryError` — the paper's execution
failure at 10 layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.common.errors import ConfigurationError, OutOfMemoryError
from repro.common.units import KB
from repro.core.backend import (
    CompileReport,
    MemoryBreakdown,
    PhaseProfile,
    TaskProfile,
)
from repro.core.stages import (
    STAGE_PARTITION,
    STAGE_PLACEMENT,
    STAGE_REPORT,
    CompileStage,
    hardware_digest,
    run_stages,
    unfingerprinted,
)
from repro.graph.partition import balanced_groups
from repro.hardware.specs import BOW2000_SYSTEM, SystemSpec
from repro.models.config import ModelConfig, TrainConfig
from repro.models.costmodel import TransformerCostModel

# --- calibration constants -------------------------------------------------
# tiles = TILE_SCALE * (per-sample fwd+bwd FLOPs)^(2/3); ~720 tiles for one
# hidden-768 decoder layer, saturating an IPU's 1,472 tiles at three to
# four layers (Fig. 9d's TFLOPs plateau).
TILE_SCALE = 5.4e-5
# Skinny micro-batches underfill the AMP pipelines; utilization follows
# micro/(micro + half) normalized to 1.0 at the reference micro size.
# This is what makes IPU batch scaling near-linear at small batches
# (Fig. 12).
MICRO_UTIL_HALF = 6.0
MICRO_UTIL_REFERENCE = 4.0
# Sustained fraction of per-tile peak for the AMP (matmul) phase.
TILE_EFFICIENCY = 1.0
# Vector/scalar work, exchange phases, and BSP syncs take this multiple of
# the FP16 matmul time and are precision-insensitive — which is why mixed
# precision buys the IPU only ~20-30% (Table IV) and why sustained
# efficiency tops out near 30-40% of peak (Fig. 10c).
AUX_TIME_RATIO = 2.5
# Poplar code + vertex state reserved per tile.
CODE_BYTES_PER_TILE = 130 * KB
# Vocabulary matmuls (embedding gather, LM-head projection) are
# serialized: weight slices stream from Gateway DDR, so only a fraction
# of the table is tile-resident at once (PopART "serialized matmul").
VOCAB_SERIALIZATION = 4.0
# BSP superstep overhead per stage per micro-batch (sync + exchange setup).
STAGE_SYNC_SECONDS = 2.0e-4
# Default gradient-accumulation depth per pipeline stage (PopART's usual
# guidance: several micro-batches per stage to amortize fill/drain).
MICRO_BATCHES_PER_STAGE = 4
# 1F1B scheduling bounds the stashed micro-batches per stage to roughly
# the pipeline depth, not the full accumulation count.
STASH_EXTRA_MICROS = 2
# LM-head sharding by total pipeline size.
HEAD_IPUS_BY_SIZE = {1: 0, 2: 0, 4: 0, 8: 2, 16: 4}


@dataclass(frozen=True)
class StagePlan:
    """One pipeline stage (one IPU, or one shard of the LM head).

    Attributes:
        name: stage label.
        ipu_index: device index.
        n_layers: decoder layers assigned (0 for embedding/head stages).
        compute_seconds: service time per micro-batch.
        tiles_used: tiles engaged by the stage's kernels.
        weight_bytes: resident weights + grads + optimizer state.
        stash_bytes: activation stash at the configured micro count.
        flops_per_micro: FLOPs the stage performs per micro-batch.
    """

    name: str
    ipu_index: int
    n_layers: int
    compute_seconds: float
    tiles_used: float
    weight_bytes: float
    stash_bytes: float
    flops_per_micro: float


class IPUCompiler:
    """Maps an LLM training workload onto a Bow IPU pipeline."""

    def __init__(self, system: SystemSpec = BOW2000_SYSTEM) -> None:
        self.system = system
        self.chip = system.chip

    # ------------------------------------------------------------------
    def compile(self, model: ModelConfig, train: TrainConfig,
                n_ipus: int = 2,
                layers_per_ipu: list[int] | None = None,
                micro_batches: int | None = None) -> CompileReport:
        """Compile a pipeline-parallel mapping.

        Args:
            n_ipus: total IPUs (>= 2: one for the embedding, the rest for
                decoders and, at >= 8, the LM head).
            layers_per_ipu: explicit decoder distribution over the
                decoder IPUs; balanced when omitted.
            micro_batches: in-flight micro-batches (gradient accumulation
                depth); defaults to ``train.grad_accumulation`` when > 1,
                else :data:`DEFAULT_MICRO_BATCHES`.
        """
        return run_stages(self.compile_stages(
            model, train, unfingerprinted, n_ipus=n_ipus,
            layers_per_ipu=layers_per_ipu, micro_batches=micro_batches))

    def compile_stages(self, model: ModelConfig, train: TrainConfig,
                       fp_of: Callable[..., str | None],
                       n_ipus: int = 2,
                       layers_per_ipu: list[int] | None = None,
                       micro_batches: int | None = None
                       ) -> list[CompileStage]:
        """:meth:`compile` as a staged pipeline (partition → placement
        → report).

        The IPU has no model-only graph stage: the pipeline layout
        (layer grouping over decoder IPUs, micro-batch schedule) is
        where its compile work starts, and it already depends on the
        IPU count — so the first stage is the partition. Defaults
        (balanced grouping, the micro-batch heuristic) are resolved
        *before* fingerprinting: two option spellings that resolve to
        the same layout share one artifact.
        """
        if n_ipus < 2:
            raise ConfigurationError(
                "training needs at least two IPUs (embedding + decoders)")
        if n_ipus > self.system.total_chips:
            raise ConfigurationError(
                f"{n_ipus} IPUs requested but {self.system.name} has "
                f"{self.system.total_chips}")
        head_ipus = HEAD_IPUS_BY_SIZE.get(n_ipus, max(0, n_ipus // 4))
        decoder_ipus = n_ipus - 1 - head_ipus
        if decoder_ipus < 1:
            raise ConfigurationError(
                f"{n_ipus} IPUs leave no decoder IPUs after embedding/head "
                "assignment")
        n_stages = (1 + sum(1 for _ in range(decoder_ipus)) + head_ipus
                    if layers_per_ipu is None
                    else 1 + sum(1 for c in layers_per_ipu if c > 0)
                    + head_ipus)
        if micro_batches is None:
            micro_batches = (train.grad_accumulation
                             if train.grad_accumulation > 1
                             else MICRO_BATCHES_PER_STAGE * n_stages)
        # Never schedule more micro-batches than there are samples.
        micro_batches = min(micro_batches, train.batch_size)
        micro_size = max(1, train.batch_size // micro_batches)
        # Training stashes boundary activations for every in-flight
        # micro-batch; inference only double-buffers.
        in_flight = (min(micro_batches, n_stages + STASH_EXTRA_MICROS)
                     if train.training else 2)

        if layers_per_ipu is None:
            groups = balanced_groups(
                list(range(model.n_layers)), decoder_ipus, lambda _i: 1.0)
            layers_per_ipu = [len(group) for group in groups]
        if len(layers_per_ipu) != decoder_ipus:
            raise ConfigurationError(
                f"layers_per_ipu has {len(layers_per_ipu)} entries for "
                f"{decoder_ipus} decoder IPUs")
        if sum(layers_per_ipu) != model.n_layers:
            raise ConfigurationError(
                f"layers_per_ipu sums to {sum(layers_per_ipu)}, model has "
                f"{model.n_layers} layers")
        resolved_layers = list(layers_per_ipu)

        def partition(_prev: None) -> tuple[StagePlan, ...]:
            return tuple(self._plan_stages(
                model, train, resolved_layers, head_ipus, micro_size,
                in_flight))

        def place(stages: tuple[StagePlan, ...]) -> dict[str, Any]:
            memories = tuple(
                self._check_memory(model, train, stage, micro_batches)
                for stage in stages)
            worst = max(memories, key=lambda m: m.utilization)
            return {"stages": stages, "memories": memories,
                    "worst": worst}

        def report(placed: dict[str, Any]) -> CompileReport:
            stages = placed["stages"]
            tasks = tuple(
                TaskProfile(
                    name=stage.name,
                    compute_units=stage.tiles_used,
                    memory_units=stage.tiles_used,
                    role="compute",
                    throughput=1.0 / stage.compute_seconds
                    if stage.compute_seconds > 0 else 0.0,
                    flops=stage.flops_per_micro,
                    meta={"ipu": stage.ipu_index,
                          "layers": stage.n_layers},
                )
                for stage in stages
            )
            bottleneck = max(stage.compute_seconds for stage in stages)
            step_estimate = (micro_batches + len(stages) - 1) * (
                bottleneck + STAGE_SYNC_SECONDS) * 3.0
            phase = PhaseProfile(name="pipeline", runtime=step_estimate,
                                 tasks=tasks)
            return CompileReport(
                platform=self.system.name,
                model=model,
                train=train,
                phases=(phase,),
                total_compute_units=float(
                    self.chip.compute_units * n_ipus),
                total_memory_units=float(
                    self.chip.memory_units * n_ipus),
                shared_memory=placed["worst"],
                global_memory=self._global_memory(model, train),
                n_chips=n_ipus,
                meta={
                    "n_ipus": n_ipus,
                    "layers_per_ipu": list(resolved_layers),
                    "micro_batches": micro_batches,
                    "micro_size": micro_size,
                    "stages": list(stages),
                    "stage_memories": list(placed["memories"]),
                    "step_flops": TransformerCostModel(model).step_flops(
                        train),
                },
            )

        partition_fp = fp_of(STAGE_PARTITION, "",
                             model=model.content_digest(),
                             train=train.content_digest(),
                             system=hardware_digest(self),
                             n_ipus=n_ipus,
                             layers_per_ipu=resolved_layers,
                             micro_batches=micro_batches)
        placement_fp = fp_of(STAGE_PLACEMENT, partition_fp)
        report_fp = fp_of(STAGE_REPORT, placement_fp)
        return [
            CompileStage(STAGE_PARTITION, partition_fp, partition),
            CompileStage(STAGE_PLACEMENT, placement_fp, place),
            CompileStage(STAGE_REPORT, report_fp, report),
        ]

    # ------------------------------------------------------------------
    def _tile_rate(self, train: TrainConfig) -> float:
        return (self.chip.flops_per_compute_unit
                * train.precision.compute.compute_scale / 2.0
                * TILE_EFFICIENCY)

    def _plan_stages(self, model: ModelConfig, train: TrainConfig,
                     layers_per_ipu: list[int], head_ipus: int,
                     micro_size: int,
                     in_flight: int) -> list[StagePlan]:
        cost = TransformerCostModel(model)
        micro = TrainConfig(batch_size=micro_size, seq_len=train.seq_len,
                            precision=train.precision)
        rate = self._tile_rate(train)
        fp16_rate = (self.chip.flops_per_compute_unit * TILE_EFFICIENCY)
        tiles_total = float(self.chip.compute_units)
        hidden_boundary = (micro_size * train.seq_len * model.hidden_size
                           * train.precision.activation_bytes_per_value)
        if train.training:
            state_per_param = (
                train.precision.weight_bytes_per_param * 2.0  # w + grads
                + train.precision.state_bytes_per_param)
        else:
            state_per_param = train.precision.weight_bytes_per_param

        def stage(name: str, ipu: int, n_layers: int, flops_fwd: float,
                  params: float, stash_tensors: float,
                  serialization: float = 1.0) -> StagePlan:
            flops = train.backward_multiplier * flops_fwd
            # Spatial parallelism follows per-sample work (tokens of a
            # micro-batch stream through the same vertices over time).
            per_sample = flops / micro_size
            tiles = min(tiles_total,
                        TILE_SCALE * per_sample ** (2.0 / 3.0))
            util = min(1.0, (micro_size / (micro_size + MICRO_UTIL_HALF))
                       * (MICRO_UTIL_REFERENCE + MICRO_UTIL_HALF)
                       / MICRO_UTIL_REFERENCE)
            matmul = flops / (tiles * rate * util)
            aux = AUX_TIME_RATIO * flops / (tiles * fp16_rate * util)
            compute = (matmul + aux) / train.backward_multiplier
            return StagePlan(
                name=name,
                ipu_index=ipu,
                n_layers=n_layers,
                compute_seconds=compute + STAGE_SYNC_SECONDS,
                tiles_used=tiles,
                weight_bytes=params * state_per_param / serialization,
                stash_bytes=stash_tensors * hidden_boundary * in_flight,
                flops_per_micro=flops,
            )

        stages: list[StagePlan] = []
        embed_fwd = cost.embedding_forward_flops(micro)
        head_fwd = cost.lm_head_forward_flops(micro)
        embed_params = cost.embedding_params()
        head_params = cost.lm_head_params() + cost.final_norm_params()
        if head_ipus == 0:
            stages.append(stage("embed+head", 0, 0, embed_fwd + head_fwd,
                                embed_params + head_params, 2.0,
                                serialization=VOCAB_SERIALIZATION))
        else:
            stages.append(stage("embed", 0, 0, embed_fwd, embed_params, 1.0,
                                serialization=VOCAB_SERIALIZATION))

        layer_fwd = cost.layer_forward_flops(micro)
        layer_params = cost.layer_params().total
        ipu = 1
        for count in layers_per_ipu:
            if count > 0:
                stages.append(stage(
                    f"decoders[{ipu}]", ipu, count, count * layer_fwd,
                    count * layer_params, float(count)))
            ipu += 1
        if head_ipus > 0:
            for shard in range(head_ipus):
                stages.append(stage(
                    f"head.shard{shard}", ipu + shard, 0,
                    head_fwd / head_ipus, head_params / head_ipus, 1.0,
                    serialization=VOCAB_SERIALIZATION))
        return stages

    def _check_memory(self, model: ModelConfig, train: TrainConfig,
                      stage: StagePlan,
                      micro_batches: int) -> MemoryBreakdown:
        capacity = self.chip.shared_memory.capacity_bytes
        code = CODE_BYTES_PER_TILE * self.chip.compute_units
        breakdown = MemoryBreakdown(
            capacity_bytes=capacity,
            configuration_bytes=code,
            weight_bytes=stage.weight_bytes,
            activation_bytes=stage.stash_bytes,
        )
        if breakdown.total_bytes > capacity:
            raise OutOfMemoryError(
                f"{model.name}: stage {stage.name!r} needs "
                f"{breakdown.total_bytes / 1e6:.0f} MB of In-Processor "
                f"Memory, IPU has {capacity / 1e6:.0f} MB "
                f"({stage.n_layers} layers, {micro_batches} micro-batches)",
                required_bytes=breakdown.total_bytes,
                available_bytes=capacity,
            )
        return breakdown

    def _global_memory(self, model: ModelConfig,
                       train: TrainConfig) -> MemoryBreakdown:
        cost = TransformerCostModel(model)
        return MemoryBreakdown(
            capacity_bytes=self.chip.global_memory.capacity_bytes,
            weight_bytes=cost.weight_bytes(train),
            optimizer_bytes=cost.optimizer_state_bytes(train),
        )

    # ------------------------------------------------------------------
    def max_layers(self, model: ModelConfig, train: TrainConfig,
                   n_ipus: int = 2, upper: int = 64) -> int:
        """Largest layer count that fits (binary search) — Fig. 9d's limit."""
        lo, hi = 0, upper
        while lo < hi:
            mid = (lo + hi + 1) // 2
            try:
                self.compile(model.with_layers(mid), train, n_ipus=n_ipus)
            except OutOfMemoryError:
                hi = mid - 1
            else:
                lo = mid
        return lo


def meta_of(report: CompileReport, key: str) -> Any:
    """Typed-ish accessor for IPU compile metadata."""
    return report.meta[key]
