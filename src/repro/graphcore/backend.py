"""The Graphcore backend: DABench's view of Bow-2000 / Bow-Pod systems."""

from __future__ import annotations

from typing import Any

from repro.common.errors import OutOfMemoryError, TransientError
from repro.core.backend import AcceleratorBackend, CompileReport, RunReport
from repro.core.stages import CompileStage, run_stages
from repro.graphcore.compiler import IPUCompiler
from repro.graphcore.pipeline import PipelineExecutor
from repro.hardware.specs import BOW2000_SYSTEM, SystemSpec
from repro.models.config import ModelConfig, TrainConfig


class TileOutOfMemoryError(OutOfMemoryError):
    """A pipeline stage outgrew its IPU's tile SRAM (Fig. 9d's wall).

    Permanent for the configuration: retrying cannot shrink the stage.
    The structured ``required_bytes`` / ``available_bytes`` show how far
    over budget the mapping was.
    """


class HostLinkError(TransientError):
    """The host/IPU link dropped mid-transfer; re-attaching recovers."""


class GraphcoreBackend(AcceleratorBackend):
    """Bow-2000 adapter for the DABench framework.

    ``compile`` options:

    * ``n_ipus`` — pipeline size (>= 2; embedding gets its own IPU).
    * ``layers_per_ipu`` — explicit decoder distribution (Fig. 11c).
    * ``micro_batches`` — in-flight micro-batches.
    """

    transient_errors = (TransientError, HostLinkError)
    # Audited for campaign concurrency: IPUCompiler/PipelineExecutor hold
    # only constructor-time spec state, so concurrent compile/run is safe.
    thread_safe = True

    def __init__(self, system: SystemSpec = BOW2000_SYSTEM) -> None:
        super().__init__(system)
        self.compiler = IPUCompiler(system)
        self.executor = PipelineExecutor(system)

    def compile(self, model: ModelConfig, train: TrainConfig,
                **options: Any) -> CompileReport:
        return run_stages(self.compile_pipeline(model, train, **options))

    def compile_pipeline(self, model: ModelConfig, train: TrainConfig,
                         **options: Any) -> list[CompileStage]:
        if not self._staged_compile_intact(GraphcoreBackend):
            return super().compile_pipeline(model, train, **options)
        return self.compiler.compile_stages(
            model, train, self.stage_fingerprint, **options)

    def run(self, compiled: CompileReport) -> RunReport:
        return self.executor.run(compiled)
