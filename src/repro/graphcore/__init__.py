"""Graphcore Bow-2000 IPU simulator.

Models the execution strategy of paper Sec. III-C: the computation graph
is partitioned by layers and mapped onto different IPUs as a pipeline.
The embedding layer takes a dedicated IPU; decoder layers are grouped
over the remaining IPUs (at large IPU counts the LM head is sharded over
its own IPUs, Graphcore-style). Training therefore needs at least two
IPUs.

The simulator reproduces the platform behaviours the paper reports:
tile-memory capacity failures at ~10 decoder layers for hidden size 768
(Fig. 9d), TFLOPs that plateau once a stage's layers saturate its tiles,
bottleneck-stage-limited pipeline throughput (Fig. 11c, Table III), and
near-linear batch-size scaling (Fig. 12).
"""

from repro.graphcore.backend import (
    GraphcoreBackend,
    HostLinkError,
    TileOutOfMemoryError,
)
from repro.graphcore.compiler import IPUCompiler, StagePlan
from repro.graphcore.pipeline import PipelineExecutor

__all__ = [
    "IPUCompiler",
    "StagePlan",
    "PipelineExecutor",
    "GraphcoreBackend",
    "HostLinkError",
    "TileOutOfMemoryError",
]
