"""DABench-LLM — the paper's primary contribution.

A standardized two-tier benchmarking framework for dataflow AI
accelerators running LLM training workloads (paper Sec. IV):

* **Tier 1** (:mod:`repro.core.tier1`) — intra-chip profiling: resource
  allocation ratio (Eq. 1/2), load imbalance (Eq. 3/4), resource
  utilization efficiency, and roofline placement (Eq. 5).
* **Tier 2** (:mod:`repro.core.tier2`) — inter-chip scalability (DP/TP/PP)
  and deployment optimization (batch size, precision).

Every accelerator is driven through the uniform
:class:`~repro.core.backend.AcceleratorBackend` interface, so the
framework code is platform-agnostic — the paper's "minimal vendor-specific
adaptations" claim.
"""

from repro.core.backend import (
    AcceleratorBackend,
    CompileReport,
    MemoryBreakdown,
    PhaseProfile,
    RunReport,
    TaskProfile,
)
from repro.core.intensity import arithmetic_intensity
from repro.core.metrics import (
    allocation_ratio,
    load_imbalance,
    phase_allocation_ratio,
    weighted_load_imbalance,
)
from repro.core.roofline import RooflineModel, RooflinePoint
from repro.core.tier1 import Tier1Profiler, Tier1Result
from repro.core.tier2 import (
    BatchSweepResult,
    DeploymentOptimizer,
    PrecisionComparison,
    ScalabilityAnalyzer,
    ScalingPoint,
)
from repro.core.conformance import ConformanceReport, check_backend
from repro.core.decode import (
    DecodeEstimate,
    batch_to_saturate,
    estimate_decode,
    kv_cache_bytes,
)
from repro.core.measurement import WeightedMeasurement, measure_weighted
from repro.core.energy import EnergyEstimate, PowerSpec, estimate_energy
from repro.core.insights import (
    Bottleneck,
    Insight,
    diagnose,
    diagnose_batch,
    diagnose_scaling,
    diagnose_sweep,
)
from repro.core.plots import ascii_bar_chart, ascii_line_chart
from repro.core.report import BenchmarkReport, render_table

__all__ = [
    "check_backend",
    "ConformanceReport",
    "DecodeEstimate",
    "estimate_decode",
    "batch_to_saturate",
    "kv_cache_bytes",
    "WeightedMeasurement",
    "measure_weighted",
    "PowerSpec",
    "EnergyEstimate",
    "estimate_energy",
    "Bottleneck",
    "Insight",
    "diagnose",
    "diagnose_sweep",
    "diagnose_scaling",
    "diagnose_batch",
    "ascii_line_chart",
    "ascii_bar_chart",
    "AcceleratorBackend",
    "TaskProfile",
    "PhaseProfile",
    "MemoryBreakdown",
    "CompileReport",
    "RunReport",
    "allocation_ratio",
    "phase_allocation_ratio",
    "load_imbalance",
    "weighted_load_imbalance",
    "arithmetic_intensity",
    "RooflineModel",
    "RooflinePoint",
    "Tier1Profiler",
    "Tier1Result",
    "ScalabilityAnalyzer",
    "ScalingPoint",
    "DeploymentOptimizer",
    "BatchSweepResult",
    "PrecisionComparison",
    "BenchmarkReport",
    "render_table",
]
