"""JSON-friendly serialization of framework reports.

The CLI and downstream analysis scripts consume benchmark output as
JSON. These converters flatten the report dataclasses into plain dicts
(no numpy types, no object graphs) and can round-trip the quantities the
framework's metrics need.
"""

from __future__ import annotations

import json
from typing import Any

from repro.common.errors import ErrorRecord
from repro.core.backend import (
    CompileReport,
    MemoryBreakdown,
    PhaseProfile,
    RunReport,
    TaskProfile,
)
from repro.core.report import REPORT_TABLES
from repro.core.tier1 import SweepEntry, Tier1Result
from repro.core.tier2 import (
    BatchSweepResult,
    PrecisionComparison,
    ScalingPoint,
)


def error_record_to_dict(record: ErrorRecord | None
                         ) -> dict[str, Any] | None:
    """Flatten one structured failure (``None`` passes through)."""
    return record.to_dict() if record is not None else None


def task_to_dict(task: TaskProfile) -> dict[str, Any]:
    """Flatten one task."""
    return {
        "name": task.name,
        "compute_units": task.compute_units,
        "memory_units": task.memory_units,
        "role": task.role,
        "throughput": task.throughput,
        "flops": task.flops,
        "meta": {k: v for k, v in task.meta.items()
                 if isinstance(v, (str, int, float, bool, type(None)))},
    }


def phase_to_dict(phase: PhaseProfile) -> dict[str, Any]:
    """Flatten one phase with its tasks."""
    return {
        "name": phase.name,
        "runtime": phase.runtime,
        "invocations": phase.invocations,
        "compute_units": phase.compute_units,
        "memory_units": phase.memory_units,
        "tasks": [task_to_dict(t) for t in phase.tasks],
    }


def memory_to_dict(memory: MemoryBreakdown | None) -> dict[str, Any] | None:
    """Flatten one memory breakdown."""
    if memory is None:
        return None
    return {
        "capacity_bytes": memory.capacity_bytes,
        "configuration_bytes": memory.configuration_bytes,
        "weight_bytes": memory.weight_bytes,
        "activation_bytes": memory.activation_bytes,
        "optimizer_bytes": memory.optimizer_bytes,
        "total_bytes": memory.total_bytes,
        "utilization": memory.utilization,
    }


def compile_report_to_dict(report: CompileReport) -> dict[str, Any]:
    """Flatten a compiler report (meta is reduced to scalars)."""
    return {
        "platform": report.platform,
        "model": report.model.name,
        "hidden_size": report.model.hidden_size,
        "n_layers": report.model.n_layers,
        "batch_size": report.train.batch_size,
        "seq_len": report.train.seq_len,
        "precision": report.train.precision.label,
        "n_chips": report.n_chips,
        "total_compute_units": report.total_compute_units,
        "total_memory_units": report.total_memory_units,
        "phases": [phase_to_dict(p) for p in report.phases],
        "shared_memory": memory_to_dict(report.shared_memory),
        "global_memory": memory_to_dict(report.global_memory),
        "meta": {k: v for k, v in report.meta.items()
                 if isinstance(v, (str, int, float, bool, type(None)))},
    }


def run_report_to_dict(report: RunReport) -> dict[str, Any]:
    """Flatten a run report (trace omitted; use trace export for that)."""
    return {
        "platform": report.platform,
        "tokens_per_second": report.tokens_per_second,
        "samples_per_second": report.samples_per_second,
        "step_time": report.step_time,
        "achieved_flops": report.achieved_flops,
        "global_traffic_bytes_per_step":
            report.global_traffic_bytes_per_step,
        "meta": {k: v for k, v in report.meta.items()
                 if isinstance(v, (str, int, float, bool, type(None)))},
    }


def tier1_to_dict(result: Tier1Result) -> dict[str, Any]:
    """Flatten a Tier-1 result (reports nested)."""
    return {
        "platform": result.platform,
        "model": result.model.name,
        "compute_allocation": result.compute_allocation,
        "memory_allocation": result.memory_allocation,
        "load_imbalance": result.load_imbalance,
        "achieved_flops": result.achieved_flops,
        "compute_efficiency": result.compute_efficiency,
        "arithmetic_intensity": result.intensity,
        "bound": result.roofline.bound,
        "tokens_per_second": result.tokens_per_second,
        "compile": compile_report_to_dict(result.compiled),
        "run": run_report_to_dict(result.run),
    }


def sweep_entry_to_dict(entry: SweepEntry) -> dict[str, Any]:
    """Flatten one sweep cell (failures carry the structured record)."""
    return {
        "value": entry.value,
        "failed": entry.failed,
        "error": entry.error,
        "failure": error_record_to_dict(entry.failure),
        "result": tier1_to_dict(entry.result) if entry.result else None,
    }


def sweep_cell_to_dict(cell: Any) -> dict[str, Any]:
    """Flatten one :class:`~repro.workloads.sweeps.SweepCell`."""
    return {
        "label": cell.spec.label,
        "failed": cell.failed,
        "error": cell.error,
        "failure": error_record_to_dict(cell.failure),
        "attempts": cell.attempts,
        "resumed": cell.resumed,
        "summary": cell.summary,
        "compile": (compile_report_to_dict(cell.compiled)
                    if cell.compiled else None),
        "run": run_report_to_dict(cell.run) if cell.run else None,
    }


def scaling_point_to_dict(point: ScalingPoint) -> dict[str, Any]:
    """Flatten one Tier-2 scaling point."""
    return {
        "label": point.label,
        "options": point.options,
        "failed": point.failed,
        "error": point.error,
        "failure": error_record_to_dict(point.failure),
        "attempts": point.attempts,
        "resumed": point.resumed,
        "tokens_per_second": point.tokens_per_second,
        "achieved_flops": point.achieved_flops,
        "compute_allocation": point.compute_allocation,
        "memory_allocation": point.memory_allocation,
        "communication_fraction": point.communication_fraction,
    }


def batch_sweep_to_dict(sweep: BatchSweepResult) -> dict[str, Any]:
    """Flatten one batch sweep."""
    return {
        "platform": sweep.platform,
        "batch_sizes": list(sweep.batch_sizes),
        "tokens_per_second": list(sweep.tokens_per_second),
        "saturation_batch": sweep.saturation_batch,
        "scaling_exponent": sweep.scaling_exponent,
        "near_linear": sweep.near_linear,
        "errors": {str(k): v for k, v in sweep.errors.items()},
        "failures": {str(k): error_record_to_dict(v)
                     for k, v in sweep.failures.items()},
    }


def precision_to_dict(cmp: PrecisionComparison) -> dict[str, Any]:
    """Flatten one precision comparison."""
    return {
        "platform": cmp.platform,
        "baseline": cmp.baseline_label,
        "optimized": cmp.optimized_label,
        "baseline_tokens_per_second": cmp.baseline_tokens_per_second,
        "optimized_tokens_per_second": cmp.optimized_tokens_per_second,
        "gain": cmp.gain,
    }


def execution_policy_to_dict(policy: Any) -> dict[str, Any]:
    """Flatten an :class:`~repro.resilience.ExecutionPolicy` (the
    journal/clock/executor objects are reduced to descriptive strings)."""
    journal = policy.journal
    if journal is not None and not isinstance(journal, (str,)):
        journal = getattr(journal, "path", None) or getattr(
            journal, "directory", None) or journal
    trace = policy.trace
    if not isinstance(trace, bool):
        trace = str(trace)
    ledger = policy.ledger
    if ledger is not None:
        ledger = str(getattr(ledger, "path", ledger))
    cache = policy.cache
    if cache is not None:
        cache = str(getattr(cache, "directory", cache))
    return {
        "max_retries": policy.retry.max_retries,
        "deadline": policy.deadline,
        "journal": str(journal) if journal is not None else None,
        "resume": policy.resume,
        "retry_failed": policy.retry_failed,
        "max_workers": policy.max_workers,
        "dispatch": policy.dispatch,
        "schedule": policy.schedule,
        "predictor": (policy.predictor if isinstance(policy.predictor, str)
                      else getattr(policy.predictor, "name",
                                   type(policy.predictor).__name__)),
        "breaker": (policy.breaker if isinstance(policy.breaker, bool)
                    else policy.breaker.name),
        "breaker_threshold": policy.breaker_threshold,
        "breaker_reset": policy.breaker_reset,
        "heartbeat_interval": policy.heartbeat_interval,
        "grace_factor": policy.grace_factor,
        "quarantine_after": policy.quarantine_after,
        "max_pool_rebuilds": policy.max_pool_rebuilds,
        "trace": trace,
        "ledger": ledger,
        "cache": cache,
    }


def backend_stats_to_dict(stats: Any) -> dict[str, Any]:
    """Flatten one campaign lane's :class:`~repro.campaign.BackendStats`
    under the ``"infrastructure"`` report table's stable keys."""
    return REPORT_TABLES["infrastructure"].to_dict(stats)


def scheduler_stats_to_dict(stats: Any) -> dict[str, Any] | None:
    """Flatten a :class:`~repro.campaign.SchedulerStats` under the
    ``"scheduling"`` report table's stable keys (``None`` passes
    through, for campaigns run without scheduling telemetry)."""
    if stats is None:
        return None
    return REPORT_TABLES["scheduling"].to_dict(stats)


def supervision_stats_to_dict(stats: Any) -> dict[str, Any] | None:
    """Flatten a :class:`~repro.campaign.SupervisionStats` under the
    ``"supervision"`` report table's stable keys (``None`` passes
    through, for thread-dispatched campaigns)."""
    if stats is None:
        return None
    return REPORT_TABLES["supervision"].to_dict(stats)


def observability_stats_to_dict(stats: Any) -> dict[str, Any]:
    """Flatten an :class:`~repro.observe.ObservabilityStats` under the
    ``"observability"`` report table's stable keys."""
    return REPORT_TABLES["observability"].to_dict(stats)


def campaign_to_dict(result: Any) -> dict[str, Any]:
    """Flatten a :class:`~repro.campaign.CampaignResult`: per-lane cells
    and statistics plus the policy that produced them."""
    return {
        "policy": execution_policy_to_dict(result.policy),
        "total_cells": result.total_cells,
        "executed_cells": result.executed_cells,
        "resumed_cells": result.resumed_cells,
        "scheduling": scheduler_stats_to_dict(
            getattr(result, "scheduling", None)),
        "supervision": supervision_stats_to_dict(
            getattr(result, "supervision", None)),
        "observability": (
            [observability_stats_to_dict(s) for s in observability]
            if (observability := getattr(result, "observability", None))
            is not None else None),
        "lanes": [
            {
                "label": label,
                "stats": backend_stats_to_dict(result.stats[label]),
                "cells": [sweep_cell_to_dict(cell)
                          for cell in result.cells[label]],
            }
            for label in result.labels
        ],
    }


def to_json(payload: Any, indent: int = 2) -> str:
    """Serialize any of the flattened dicts (validates JSON-ability)."""
    return json.dumps(payload, indent=indent, sort_keys=True)
