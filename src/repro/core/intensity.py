"""Arithmetic-intensity estimation for LLM training — paper Eq. 5.

::

    AI = 6 * P * B * S / (4 * P + activation memory)

The numerator is total training FLOPs per step (6 FLOPs per parameter per
token: 2x forward + 4x backward); the denominator is total memory traffic
estimated as one 4-byte pass over the weights plus the activation
footprint. This is a *footprint* estimate — the quantity the paper plots
on its rooflines — not measured DDR traffic (backends report that
separately via ``RunReport.global_traffic_bytes_per_step``).
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.models.config import ModelConfig, TrainConfig
from repro.models.costmodel import TransformerCostModel


def arithmetic_intensity(model: ModelConfig, train: TrainConfig,
                         activation_bytes: float | None = None) -> float:
    """Eq. 5 arithmetic intensity in FLOPs/byte.

    Args:
        model: the model configuration (supplies P).
        train: the training configuration (supplies B and S).
        activation_bytes: override for the activation-memory term; when
            omitted the cost model's estimate is used.
    """
    cost = TransformerCostModel(model)
    params = float(cost.total_params())
    if activation_bytes is None:
        activation_bytes = cost.activation_bytes(train)
    if activation_bytes < 0:
        raise ConfigurationError("activation_bytes must be >= 0")
    # 6 FLOPs/param/token for training; forward-only inference does 2.
    flops_per_param = 2.0 * train.backward_multiplier
    numerator = flops_per_param * params * train.batch_size * train.seq_len
    denominator = 4.0 * params + activation_bytes
    return numerator / denominator


def intensity_sweep(model: ModelConfig, train: TrainConfig,
                    layer_counts: list[int]) -> dict[int, float]:
    """Eq. 5 across a layer-count sweep (the paper's probe axis)."""
    return {
        n: arithmetic_intensity(model.with_layers(n), train)
        for n in layer_counts
    }
