"""Variance-weighted measurement aggregation (paper Sec. IV-D(c)).

"We prioritize runtime data and apply weighting to reduce batch variance
on sensitive systems like CS-2, ensuring fair cross-platform
comparisons." On batch-sensitive platforms a single-configuration
measurement over- or under-states steady behaviour; this module measures
a workload at several batch sizes and combines the metrics with
inverse-variance weights, so configurations in the stable region of the
batch curve dominate the aggregate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.common.errors import CompilationError, ConfigurationError
from repro.core.backend import AcceleratorBackend
from repro.core.metrics import allocation_ratio, weighted_load_imbalance
from repro.models.config import ModelConfig, TrainConfig


@dataclass(frozen=True)
class MeasurementPoint:
    """Metrics measured at one batch size."""

    batch_size: int
    tokens_per_second: float
    per_token_time: float
    allocation: float
    load_imbalance: float
    achieved_flops: float


@dataclass(frozen=True)
class WeightedMeasurement:
    """Aggregate over the batch axis with inverse-variance weights.

    ``weights[b]`` reflects how locally stable the per-token time is at
    batch ``b``: points on the flat part of the batch curve get large
    weights, points on the steep ramp small ones.
    """

    platform: str
    points: tuple[MeasurementPoint, ...]
    weights: dict[int, float] = field(default_factory=dict)
    tokens_per_second: float = 0.0
    allocation: float = 0.0
    load_imbalance: float = 0.0
    achieved_flops: float = 0.0

    @property
    def batch_sensitivity(self) -> float:
        """Coefficient of variation of per-token time across batches —
        high on WSE-style saturating platforms, low on near-linear ones.
        """
        times = [p.per_token_time for p in self.points]
        if len(times) < 2:
            return 0.0
        mean = sum(times) / len(times)
        if mean <= 0:
            return 0.0
        var = sum((t - mean) ** 2 for t in times) / (len(times) - 1)
        return math.sqrt(var) / mean


def measure_weighted(backend: AcceleratorBackend, model: ModelConfig,
                     train: TrainConfig, batch_sizes: Sequence[int],
                     **options: Any) -> WeightedMeasurement:
    """Measure at each batch size and aggregate with variance weights.

    Weights are the inverse squared deviation of each point's per-token
    time from the batch-axis median — the robust version of
    inverse-variance weighting for a deterministic simulator (where
    repeated runs are identical and the variance of interest is *across
    configurations*).
    """
    if not batch_sizes:
        raise ConfigurationError("at least one batch size is required")
    points: list[MeasurementPoint] = []
    for batch in batch_sizes:
        try:
            compiled = backend.compile(model, train.with_batch_size(batch),
                                       **options)
            run = backend.run(compiled)
        except CompilationError:
            continue
        points.append(MeasurementPoint(
            batch_size=batch,
            tokens_per_second=run.tokens_per_second,
            per_token_time=1.0 / run.tokens_per_second,
            allocation=allocation_ratio(compiled),
            load_imbalance=weighted_load_imbalance(compiled),
            achieved_flops=run.achieved_flops,
        ))
    if not points:
        raise ConfigurationError(
            "every batch size failed to compile; nothing to aggregate")

    times = sorted(p.per_token_time for p in points)
    median = times[len(times) // 2]
    scale = median if median > 0 else 1.0
    weights: dict[int, float] = {}
    for point in points:
        deviation = abs(point.per_token_time - median) / scale
        weights[point.batch_size] = 1.0 / (1.0 + deviation) ** 2
    total = sum(weights.values())

    def avg(attr: str) -> float:
        return sum(getattr(p, attr) * weights[p.batch_size]
                   for p in points) / total

    return WeightedMeasurement(
        platform=backend.name,
        points=tuple(points),
        weights=weights,
        tokens_per_second=avg("tokens_per_second"),
        allocation=avg("allocation"),
        load_imbalance=avg("load_imbalance"),
        achieved_flops=avg("achieved_flops"),
    )
