"""Tier 2 — inter-chip scalability and deployment optimization (Sec. IV-C, VI).

Two analyzers:

* :class:`ScalabilityAnalyzer` sweeps parallelism configurations
  (DP replicas on WSE, TP degree on RDU, PP layouts on IPU — each passed
  through backend-specific compile options) and reports throughput plus
  the communication/utilization detail behind Fig. 11.
* :class:`DeploymentOptimizer` sweeps batch size and precision, the two
  deployment factors the paper singles out (Fig. 12, Table IV), and
  produces recommendations in the spirit of the paper's Insight boxes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from repro.common.errors import ConfigurationError, ErrorRecord
from repro.core.backend import AcceleratorBackend
from repro.core.metrics import allocation_ratio
from repro.models.config import ModelConfig, TrainConfig
from repro.models.precision import PrecisionPolicy
from repro.resilience.executor import CellOutcome, ResilientExecutor
from repro.resilience.journal import JournalEntry
from repro.resilience.policy import ExecutionPolicy, reject_removed_kwargs

if TYPE_CHECKING:  # the engine is imported lazily inside the sweeps
    from repro.campaign.engine import CellResult


def _serializer_for(backend: AcceleratorBackend) -> threading.Lock | None:
    return None if backend.thread_safe else threading.Lock()


@dataclass(frozen=True)
class ScalingPoint:
    """One parallel configuration's measured behaviour.

    ``failure`` keeps the structured error record behind the flattened
    ``error`` string; ``resumed`` points were restored from a journal.
    """

    label: str
    options: dict[str, Any]
    tokens_per_second: float
    achieved_flops: float
    compute_allocation: float
    memory_allocation: float
    compute_time_fraction: float
    error: str | None = None
    failure: ErrorRecord | None = None
    attempts: int = 1
    resumed: bool = False

    @property
    def failed(self) -> bool:
        return self.error is not None

    @property
    def communication_fraction(self) -> float:
        """Share of step time not spent computing."""
        return max(0.0, 1.0 - self.compute_time_fraction)


class ScalabilityAnalyzer:
    """Runs a parallelism sweep against one backend.

    The constructor ``executor`` (when given) overrides the executor an
    :class:`~repro.resilience.ExecutionPolicy` would build — unless the
    policy itself carries one, which wins.
    """

    def __init__(self, backend: AcceleratorBackend,
                 executor: ResilientExecutor | None = None) -> None:
        self.backend = backend
        self.executor = executor

    def _executor_for(self, policy: ExecutionPolicy) -> ResilientExecutor:
        if policy.executor is None and self.executor is not None:
            return self.executor
        return policy.make_executor(self.backend.name)

    def sweep(self, model: ModelConfig, train: TrainConfig,
              configurations: Iterable[tuple[str, dict[str, Any]]],
              *,
              policy: ExecutionPolicy | None = None,
              **removed: Any) -> list[ScalingPoint]:
        """Measure each labelled option-dict configuration.

        Failures (any :class:`~repro.common.errors.ReproError`, from
        either phase) are recorded as failed points, not raised:
        exceeding a platform's scalability envelope is a result. The
        ``policy`` controls journaling/resume, retry, deadlines, and
        worker fan-out; points always return in configuration order.
        The pre-policy ``journal``/``resume`` keywords were removed in
        0.3 and raise :class:`TypeError`.
        """
        # Lazy: the engine lives under repro.campaign, which resilience
        # (imported above) reaches back into via repro.core at import
        # time — a module-level import here would close that cycle.
        from repro.campaign.engine import CellTask, run_cell_tasks

        reject_removed_kwargs("ScalabilityAnalyzer.sweep", removed)
        if policy is None:
            policy = ExecutionPolicy()
        executor = self._executor_for(policy)
        serializer = _serializer_for(self.backend)
        configs = [(label, dict(options))
                   for label, options in configurations]
        tasks = [
            CellTask(
                key=label,
                compile_fn=lambda options=options: self.backend.compile(
                    model, train, **options),
                run_fn=lambda compiled: self.backend.run(compiled),
                is_transient=self.backend.is_transient,
                executor=executor,
                summary_extra=self._summary_extra,
                serializer=serializer,
            )
            for label, options in configs
        ]
        results = run_cell_tasks(
            tasks,
            max_workers=policy.max_workers,
            journal=policy.normalized_journal(),
            resume=policy.resume,
            retry_failed=policy.retry_failed,
        )
        return [self._point_from_result(label, options, result)
                for (label, options), result in zip(configs, results)]

    @staticmethod
    def _summary_extra(outcome: CellOutcome) -> dict[str, Any] | None:
        if not outcome.ok:
            return None
        return {
            "compute_allocation": allocation_ratio(outcome.compiled,
                                                   kind="compute"),
            "memory_allocation": allocation_ratio(outcome.compiled,
                                                  kind="memory"),
            "compute_time_fraction": float(
                outcome.run.meta.get("compute_fraction", 1.0)),
        }

    @classmethod
    def _point_from_result(cls, label: str, options: dict[str, Any],
                           result: CellResult) -> ScalingPoint:
        if result.resumed:
            assert result.entry is not None
            return cls._point_from_journal(label, options, result.entry)
        return cls._point_from_outcome(label, options, result.outcome)

    @staticmethod
    def _point_from_outcome(label: str, options: dict[str, Any],
                            outcome: CellOutcome) -> ScalingPoint:
        if not outcome.ok:
            return ScalingPoint(
                label=label, options=dict(options),
                tokens_per_second=0.0, achieved_flops=0.0,
                compute_allocation=0.0, memory_allocation=0.0,
                compute_time_fraction=0.0, error=str(outcome.error),
                failure=outcome.error, attempts=max(1, outcome.attempts))
        compiled, run = outcome.compiled, outcome.run
        return ScalingPoint(
            label=label,
            options=dict(options),
            tokens_per_second=run.tokens_per_second,
            achieved_flops=run.achieved_flops,
            compute_allocation=allocation_ratio(compiled, kind="compute"),
            memory_allocation=allocation_ratio(compiled, kind="memory"),
            compute_time_fraction=float(
                run.meta.get("compute_fraction", 1.0)),
            attempts=outcome.attempts,
        )

    @staticmethod
    def _point_from_journal(label: str, options: dict[str, Any],
                            entry: JournalEntry) -> ScalingPoint:
        summary = entry.summary or {}
        return ScalingPoint(
            label=label, options=dict(options),
            tokens_per_second=float(summary.get("tokens_per_second", 0.0)),
            achieved_flops=float(summary.get("achieved_flops", 0.0)),
            compute_allocation=float(
                summary.get("compute_allocation", 0.0)),
            memory_allocation=float(
                summary.get("memory_allocation", 0.0)),
            compute_time_fraction=float(
                summary.get("compute_time_fraction", 0.0)),
            error=str(entry.error) if entry.error else None,
            failure=entry.error, attempts=entry.attempts, resumed=True)

    @staticmethod
    def scaling_efficiency(points: list[ScalingPoint],
                           parallelism_of: dict[str, int]) -> dict[str, float]:
        """Throughput per unit of parallelism, normalized to the smallest.

        ``parallelism_of`` maps point labels to their degree (replicas,
        chips, pipeline stages). 1.0 means perfect linear scaling.
        """
        ok = [p for p in points if not p.failed and p.label in parallelism_of]
        if not ok:
            raise ConfigurationError("no successful points to normalize")
        base = min(ok, key=lambda p: parallelism_of[p.label])
        base_degree = parallelism_of[base.label]
        base_rate = base.tokens_per_second / base_degree
        return {
            p.label: (p.tokens_per_second / parallelism_of[p.label])
            / base_rate
            for p in ok
        }


@dataclass(frozen=True)
class BatchSweepResult:
    """Throughput as a function of batch size (Fig. 12)."""

    platform: str
    batch_sizes: tuple[int, ...]
    tokens_per_second: tuple[float, ...]
    errors: dict[int, str] = field(default_factory=dict)
    failures: dict[int, ErrorRecord] = field(default_factory=dict)

    @property
    def saturation_batch(self) -> int | None:
        """First batch size whose marginal gain per doubling drops
        below 15% — the "recommend > 200 on WSE" knee. ``None`` when the
        curve keeps scaling through the sweep (IPU/RDU behaviour)."""
        series = [(b, t) for b, t in zip(self.batch_sizes,
                                         self.tokens_per_second) if t > 0]
        for (b0, t0), (_b1, t1) in zip(series, series[1:]):
            if t0 <= 0:
                continue
            if (t1 - t0) / t0 < 0.15:
                return b0
        return None

    @property
    def scaling_exponent(self) -> float:
        """Log-log slope of throughput vs batch over the sweep.

        1.0 is perfectly linear scaling; 0.0 is fully saturated.
        """
        series = [(b, t) for b, t in zip(self.batch_sizes,
                                         self.tokens_per_second) if t > 0]
        if len(series) < 2:
            return 0.0
        import math
        b0, t0 = series[0]
        bn, tn = series[-1]
        if bn == b0:
            return 0.0
        return math.log(tn / t0) / math.log(bn / b0)

    @property
    def near_linear(self) -> bool:
        """Whether the scaling exponent stays above 0.6 (IPU/RDU in
        Fig. 12), versus the saturating WSE curve (~0.2)."""
        return self.scaling_exponent >= 0.6


@dataclass(frozen=True)
class PrecisionComparison:
    """Throughput under two precision policies (Table IV)."""

    platform: str
    baseline_label: str
    optimized_label: str
    baseline_tokens_per_second: float
    optimized_tokens_per_second: float

    @property
    def gain(self) -> float:
        """Fractional throughput improvement of the optimized policy."""
        if self.baseline_tokens_per_second <= 0:
            return 0.0
        return (self.optimized_tokens_per_second
                / self.baseline_tokens_per_second - 1.0)


class DeploymentOptimizer:
    """Batch-size and precision deployment studies for one backend.

    As with :class:`ScalabilityAnalyzer`, a constructor ``executor``
    overrides the policy-derived one unless the policy carries its own.
    """

    def __init__(self, backend: AcceleratorBackend,
                 executor: ResilientExecutor | None = None) -> None:
        self.backend = backend
        self.executor = executor

    def _executor_for(self, policy: ExecutionPolicy) -> ResilientExecutor:
        if policy.executor is None and self.executor is not None:
            return self.executor
        return policy.make_executor(self.backend.name)

    def batch_sweep(self, model: ModelConfig, train: TrainConfig,
                    batch_sizes: Iterable[int],
                    policy: ExecutionPolicy | None = None,
                    **options: Any) -> BatchSweepResult:
        """Measure throughput across batch sizes (other knobs fixed).

        Any :class:`~repro.common.errors.ReproError` becomes a failed
        point with a structured record in ``failures``. The ``policy``
        controls journaling (keyed ``batch=<n>``), resume, retry,
        deadlines, and worker fan-out. The pre-policy
        ``journal``/``resume`` keywords were removed in 0.3 and raise
        :class:`TypeError`; remaining keywords are forwarded to
        ``backend.compile``.
        """
        from repro.campaign.engine import CellTask, run_cell_tasks

        reject_removed_kwargs("DeploymentOptimizer.batch_sweep", options,
                              allow_extra=True)
        if policy is None:
            policy = ExecutionPolicy()
        executor = self._executor_for(policy)
        serializer = _serializer_for(self.backend)
        sizes = list(batch_sizes)
        tasks = [
            CellTask(
                key=f"batch={batch}",
                compile_fn=lambda batch=batch: self.backend.compile(
                    model, train.with_batch_size(batch), **options),
                run_fn=lambda compiled: self.backend.run(compiled),
                is_transient=self.backend.is_transient,
                executor=executor,
                serializer=serializer,
            )
            for batch in sizes
        ]
        results = run_cell_tasks(
            tasks,
            max_workers=policy.max_workers,
            journal=policy.normalized_journal(),
            resume=policy.resume,
            retry_failed=policy.retry_failed,
        )
        rates: list[float] = []
        errors: dict[int, str] = {}
        failures: dict[int, ErrorRecord] = {}
        for batch, result in zip(sizes, results):
            if result.resumed:
                entry = result.entry
                assert entry is not None
                summary = entry.summary or {}
                rates.append(float(summary.get("tokens_per_second", 0.0)))
                if entry.error is not None:
                    errors[batch] = str(entry.error)
                    failures[batch] = entry.error
                continue
            outcome = result.outcome
            assert outcome is not None
            if outcome.ok:
                rates.append(outcome.run.tokens_per_second)
            else:
                rates.append(0.0)
                errors[batch] = str(outcome.error)
                failures[batch] = outcome.error
        return BatchSweepResult(
            platform=self.backend.name,
            batch_sizes=tuple(sizes),
            tokens_per_second=tuple(rates),
            errors=errors,
            failures=failures,
        )

    def compare_precision(self, model: ModelConfig, train: TrainConfig,
                          baseline: PrecisionPolicy,
                          optimized: PrecisionPolicy,
                          **options: Any) -> PrecisionComparison:
        """Run the same workload under two precision policies."""
        rates = []
        for policy in (baseline, optimized):
            compiled = self.backend.compile(
                model, train.with_precision(policy), **options)
            rates.append(self.backend.run(compiled).tokens_per_second)
        return PrecisionComparison(
            platform=self.backend.name,
            baseline_label=baseline.label,
            optimized_label=optimized.label,
            baseline_tokens_per_second=rates[0],
            optimized_tokens_per_second=rates[1],
        )
