"""Tier 2 — inter-chip scalability and deployment optimization (Sec. IV-C, VI).

Two analyzers:

* :class:`ScalabilityAnalyzer` sweeps parallelism configurations
  (DP replicas on WSE, TP degree on RDU, PP layouts on IPU — each passed
  through backend-specific compile options) and reports throughput plus
  the communication/utilization detail behind Fig. 11.
* :class:`DeploymentOptimizer` sweeps batch size and precision, the two
  deployment factors the paper singles out (Fig. 12, Table IV), and
  produces recommendations in the spirit of the paper's Insight boxes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.common.errors import ConfigurationError, ErrorRecord
from repro.core.backend import AcceleratorBackend
from repro.core.metrics import allocation_ratio
from repro.models.config import ModelConfig, TrainConfig
from repro.models.precision import PrecisionPolicy
from repro.resilience.executor import CellOutcome, ResilientExecutor
from repro.resilience.journal import JournalEntry, SweepJournal
from repro.resilience.retry import RetryPolicy


def _no_retry_executor() -> ResilientExecutor:
    return ResilientExecutor(retry=RetryPolicy(max_retries=0, jitter=0.0))


def _normalize_journal(journal: SweepJournal | str | os.PathLike[str] | None
                       ) -> SweepJournal | None:
    if journal is None or isinstance(journal, SweepJournal):
        return journal
    return SweepJournal(journal)


@dataclass(frozen=True)
class ScalingPoint:
    """One parallel configuration's measured behaviour.

    ``failure`` keeps the structured error record behind the flattened
    ``error`` string; ``resumed`` points were restored from a journal.
    """

    label: str
    options: dict[str, Any]
    tokens_per_second: float
    achieved_flops: float
    compute_allocation: float
    memory_allocation: float
    compute_time_fraction: float
    error: str | None = None
    failure: ErrorRecord | None = None
    attempts: int = 1
    resumed: bool = False

    @property
    def failed(self) -> bool:
        return self.error is not None

    @property
    def communication_fraction(self) -> float:
        """Share of step time not spent computing."""
        return max(0.0, 1.0 - self.compute_time_fraction)


class ScalabilityAnalyzer:
    """Runs a parallelism sweep against one backend."""

    def __init__(self, backend: AcceleratorBackend,
                 executor: ResilientExecutor | None = None) -> None:
        self.backend = backend
        self.executor = executor if executor is not None \
            else _no_retry_executor()

    def sweep(self, model: ModelConfig, train: TrainConfig,
              configurations: Iterable[tuple[str, dict[str, Any]]],
              *,
              journal: SweepJournal | str | os.PathLike[str] | None = None,
              resume: bool = False) -> list[ScalingPoint]:
        """Measure each labelled option-dict configuration.

        Failures (any :class:`~repro.common.errors.ReproError`, from
        either phase) are recorded as failed points, not raised:
        exceeding a platform's scalability envelope is a result. With a
        ``journal``, finished points checkpoint as they complete and
        ``resume=True`` skips them on a re-run.
        """
        journal = _normalize_journal(journal)
        journaled: dict[str, JournalEntry] = {}
        if resume and journal is not None:
            journaled = journal.load()
        points: list[ScalingPoint] = []
        for label, options in configurations:
            entry = journaled.get(label)
            if entry is not None and entry.finished:
                points.append(self._point_from_journal(label, options, entry))
                continue
            outcome = self.executor.execute(
                label,
                lambda options=options: self.backend.compile(
                    model, train, **options),
                lambda compiled: self.backend.run(compiled),
                is_transient=self.backend.is_transient,
            )
            point = self._point_from_outcome(label, options, outcome)
            if journal is not None:
                extra = None
                if outcome.ok:
                    extra = {
                        "compute_allocation": point.compute_allocation,
                        "memory_allocation": point.memory_allocation,
                        "compute_time_fraction":
                            point.compute_time_fraction,
                    }
                journal.record(outcome.journal_entry(extra))
            points.append(point)
        return points

    @staticmethod
    def _point_from_outcome(label: str, options: dict[str, Any],
                            outcome: CellOutcome) -> ScalingPoint:
        if not outcome.ok:
            return ScalingPoint(
                label=label, options=dict(options),
                tokens_per_second=0.0, achieved_flops=0.0,
                compute_allocation=0.0, memory_allocation=0.0,
                compute_time_fraction=0.0, error=str(outcome.error),
                failure=outcome.error, attempts=max(1, outcome.attempts))
        compiled, run = outcome.compiled, outcome.run
        return ScalingPoint(
            label=label,
            options=dict(options),
            tokens_per_second=run.tokens_per_second,
            achieved_flops=run.achieved_flops,
            compute_allocation=allocation_ratio(compiled, kind="compute"),
            memory_allocation=allocation_ratio(compiled, kind="memory"),
            compute_time_fraction=float(
                run.meta.get("compute_fraction", 1.0)),
            attempts=outcome.attempts,
        )

    @staticmethod
    def _point_from_journal(label: str, options: dict[str, Any],
                            entry: JournalEntry) -> ScalingPoint:
        summary = entry.summary or {}
        return ScalingPoint(
            label=label, options=dict(options),
            tokens_per_second=float(summary.get("tokens_per_second", 0.0)),
            achieved_flops=float(summary.get("achieved_flops", 0.0)),
            compute_allocation=float(
                summary.get("compute_allocation", 0.0)),
            memory_allocation=float(
                summary.get("memory_allocation", 0.0)),
            compute_time_fraction=float(
                summary.get("compute_time_fraction", 0.0)),
            error=str(entry.error) if entry.error else None,
            failure=entry.error, attempts=entry.attempts, resumed=True)

    @staticmethod
    def scaling_efficiency(points: list[ScalingPoint],
                           parallelism_of: dict[str, int]) -> dict[str, float]:
        """Throughput per unit of parallelism, normalized to the smallest.

        ``parallelism_of`` maps point labels to their degree (replicas,
        chips, pipeline stages). 1.0 means perfect linear scaling.
        """
        ok = [p for p in points if not p.failed and p.label in parallelism_of]
        if not ok:
            raise ConfigurationError("no successful points to normalize")
        base = min(ok, key=lambda p: parallelism_of[p.label])
        base_degree = parallelism_of[base.label]
        base_rate = base.tokens_per_second / base_degree
        return {
            p.label: (p.tokens_per_second / parallelism_of[p.label])
            / base_rate
            for p in ok
        }


@dataclass(frozen=True)
class BatchSweepResult:
    """Throughput as a function of batch size (Fig. 12)."""

    platform: str
    batch_sizes: tuple[int, ...]
    tokens_per_second: tuple[float, ...]
    errors: dict[int, str] = field(default_factory=dict)
    failures: dict[int, ErrorRecord] = field(default_factory=dict)

    @property
    def saturation_batch(self) -> int | None:
        """First batch size whose marginal gain per doubling drops
        below 15% — the "recommend > 200 on WSE" knee. ``None`` when the
        curve keeps scaling through the sweep (IPU/RDU behaviour)."""
        series = [(b, t) for b, t in zip(self.batch_sizes,
                                         self.tokens_per_second) if t > 0]
        for (b0, t0), (_b1, t1) in zip(series, series[1:]):
            if t0 <= 0:
                continue
            if (t1 - t0) / t0 < 0.15:
                return b0
        return None

    @property
    def scaling_exponent(self) -> float:
        """Log-log slope of throughput vs batch over the sweep.

        1.0 is perfectly linear scaling; 0.0 is fully saturated.
        """
        series = [(b, t) for b, t in zip(self.batch_sizes,
                                         self.tokens_per_second) if t > 0]
        if len(series) < 2:
            return 0.0
        import math
        b0, t0 = series[0]
        bn, tn = series[-1]
        if bn == b0:
            return 0.0
        return math.log(tn / t0) / math.log(bn / b0)

    @property
    def near_linear(self) -> bool:
        """Whether the scaling exponent stays above 0.6 (IPU/RDU in
        Fig. 12), versus the saturating WSE curve (~0.2)."""
        return self.scaling_exponent >= 0.6


@dataclass(frozen=True)
class PrecisionComparison:
    """Throughput under two precision policies (Table IV)."""

    platform: str
    baseline_label: str
    optimized_label: str
    baseline_tokens_per_second: float
    optimized_tokens_per_second: float

    @property
    def gain(self) -> float:
        """Fractional throughput improvement of the optimized policy."""
        if self.baseline_tokens_per_second <= 0:
            return 0.0
        return (self.optimized_tokens_per_second
                / self.baseline_tokens_per_second - 1.0)


class DeploymentOptimizer:
    """Batch-size and precision deployment studies for one backend."""

    def __init__(self, backend: AcceleratorBackend,
                 executor: ResilientExecutor | None = None) -> None:
        self.backend = backend
        self.executor = executor if executor is not None \
            else _no_retry_executor()

    def batch_sweep(self, model: ModelConfig, train: TrainConfig,
                    batch_sizes: Iterable[int],
                    journal: SweepJournal | str | os.PathLike[str] | None
                    = None,
                    resume: bool = False,
                    **options: Any) -> BatchSweepResult:
        """Measure throughput across batch sizes (other knobs fixed).

        Any :class:`~repro.common.errors.ReproError` becomes a failed
        point with a structured record in ``failures``. With a
        ``journal``, points checkpoint as they finish (keyed
        ``batch=<n>``) and ``resume=True`` skips finished ones.
        """
        journal = _normalize_journal(journal)
        journaled: dict[str, JournalEntry] = {}
        if resume and journal is not None:
            journaled = journal.load()
        sizes: list[int] = []
        rates: list[float] = []
        errors: dict[int, str] = {}
        failures: dict[int, ErrorRecord] = {}
        for batch in batch_sizes:
            sizes.append(batch)
            key = f"batch={batch}"
            entry = journaled.get(key)
            if entry is not None and entry.finished:
                summary = entry.summary or {}
                rates.append(float(summary.get("tokens_per_second", 0.0)))
                if entry.error is not None:
                    errors[batch] = str(entry.error)
                    failures[batch] = entry.error
                continue
            outcome = self.executor.execute(
                key,
                lambda batch=batch: self.backend.compile(
                    model, train.with_batch_size(batch), **options),
                lambda compiled: self.backend.run(compiled),
                is_transient=self.backend.is_transient,
            )
            if journal is not None:
                journal.record(outcome.journal_entry())
            if outcome.ok:
                rates.append(outcome.run.tokens_per_second)
            else:
                rates.append(0.0)
                errors[batch] = str(outcome.error)
                failures[batch] = outcome.error
        return BatchSweepResult(
            platform=self.backend.name,
            batch_sizes=tuple(sizes),
            tokens_per_second=tuple(rates),
            errors=errors,
            failures=failures,
        )

    def compare_precision(self, model: ModelConfig, train: TrainConfig,
                          baseline: PrecisionPolicy,
                          optimized: PrecisionPolicy,
                          **options: Any) -> PrecisionComparison:
        """Run the same workload under two precision policies."""
        rates = []
        for policy in (baseline, optimized):
            compiled = self.backend.compile(
                model, train.with_precision(policy), **options)
            rates.append(self.backend.run(compiled).tokens_per_second)
        return PrecisionComparison(
            platform=self.backend.name,
            baseline_label=baseline.label,
            optimized_label=optimized.label,
            baseline_tokens_per_second=rates[0],
            optimized_tokens_per_second=rates[1],
        )
