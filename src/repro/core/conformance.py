"""Backend conformance suite.

The paper positions DABench-LLM as a framework for "existing and future
dataflow AI accelerators": a new platform only needs an
:class:`~repro.core.backend.AcceleratorBackend` adapter. This module
verifies that an adapter honours the interface contract the framework's
metrics rely on — run it when bringing up a new backend.

Usage::

    report = check_backend(MyBackend(), model, train, options={...})
    assert report.passed, report.summary()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.backend import AcceleratorBackend, CompileReport, RunReport
from repro.core.metrics import allocation_ratio, weighted_load_imbalance
from repro.models.config import ModelConfig, TrainConfig


@dataclass(frozen=True)
class ConformanceIssue:
    """One contract violation found during the check."""

    check: str
    message: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.message}"


@dataclass
class ConformanceReport:
    """Outcome of a conformance run."""

    backend: str
    checks_run: list[str] = field(default_factory=list)
    issues: list[ConformanceIssue] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.issues

    def summary(self) -> str:
        lines = [f"conformance of {self.backend}: "
                 f"{len(self.checks_run)} checks, "
                 f"{len(self.issues)} issue(s)"]
        lines.extend(str(issue) for issue in self.issues)
        return "\n".join(lines)


class _Checker:
    def __init__(self, backend: AcceleratorBackend) -> None:
        self.backend = backend
        self.report = ConformanceReport(backend=backend.name)

    def check(self, name: str, condition: bool, message: str) -> None:
        if name not in self.report.checks_run:
            self.report.checks_run.append(name)
        if not condition:
            self.report.issues.append(
                ConformanceIssue(check=name, message=message))


def check_backend(backend: AcceleratorBackend, model: ModelConfig,
                  train: TrainConfig,
                  options: dict[str, Any] | None = None
                  ) -> ConformanceReport:
    """Run the full contract check against one workload."""
    options = options or {}
    checker = _Checker(backend)
    compiled = backend.compile(model, train, **options)
    _check_compile_report(checker, compiled, train)
    run = backend.run(compiled)
    _check_run_report(checker, compiled, run, train)
    _check_determinism(checker, model, train, options, run)
    return checker.report


def _check_compile_report(checker: _Checker, compiled: CompileReport,
                          train: TrainConfig) -> None:
    c = checker.check
    c("compile.platform", compiled.platform == checker.backend.name,
      f"platform {compiled.platform!r} != backend {checker.backend.name!r}")
    c("compile.phases", len(compiled.phases) > 0, "no phases reported")
    c("compile.totals", compiled.total_compute_units > 0
      and compiled.total_memory_units > 0,
      "unit totals must be positive")
    c("compile.chips", compiled.n_chips >= 1, "n_chips must be >= 1")
    c("compile.train", compiled.train is train
      or compiled.train == train, "train config not propagated")

    for phase in compiled.phases:
        c("compile.phase.runtime", phase.runtime >= 0,
          f"phase {phase.name!r} has negative runtime")
        c("compile.phase.units",
          phase.compute_units <= compiled.total_compute_units + 1e-6,
          f"phase {phase.name!r} allocates more compute units than exist")
        c("compile.phase.memory_units",
          phase.memory_units <= compiled.total_memory_units + 1e-6,
          f"phase {phase.name!r} allocates more memory units than exist")
        for task in phase.tasks:
            c("compile.task.throughput", task.throughput >= 0,
              f"task {task.name!r} has negative throughput")

    memory = compiled.shared_memory
    c("compile.memory.capacity", memory.capacity_bytes > 0,
      "shared memory capacity must be positive")
    c("compile.memory.fits", memory.total_bytes <= memory.capacity_bytes,
      "compiled mapping oversubscribes shared memory "
      f"({memory.total_bytes:.3g} > {memory.capacity_bytes:.3g} bytes)")

    try:
        ratio = allocation_ratio(compiled)
    except Exception as exc:  # noqa: BLE001 - report, don't crash
        c("metrics.allocation", False, f"allocation_ratio raised: {exc}")
    else:
        c("metrics.allocation", 0.0 < ratio <= 1.0,
          f"allocation ratio {ratio} outside (0, 1]")
    try:
        li = weighted_load_imbalance(compiled)
    except Exception as exc:  # noqa: BLE001
        c("metrics.li", False, f"weighted_load_imbalance raised: {exc}")
    else:
        c("metrics.li", 0.0 < li <= 1.0 + 1e-9,
          f"load imbalance {li} outside (0, 1]")


def _check_run_report(checker: _Checker, compiled: CompileReport,
                      run: RunReport, train: TrainConfig) -> None:
    c = checker.check
    c("run.platform", run.platform == compiled.platform,
      "run platform differs from compile platform")
    c("run.step_time", run.step_time > 0, "step time must be positive")
    c("run.throughput", run.tokens_per_second > 0,
      "throughput must be positive")
    c("run.identity.tokens",
      abs(run.tokens_per_second
          - run.samples_per_second * train.seq_len)
      <= 1e-6 * max(run.tokens_per_second, 1.0),
      "tokens/s != samples/s * seq_len")
    c("run.identity.samples",
      abs(run.samples_per_second - train.batch_size / run.step_time)
      <= 1e-6 * max(run.samples_per_second, 1.0),
      "samples/s != batch / step_time")
    peak = checker.backend.system.chip.peak_flops * max(compiled.n_chips, 1)
    c("run.flops.bounded", 0 < run.achieved_flops <= peak,
      f"achieved FLOPs {run.achieved_flops:.3g} outside (0, peak="
      f"{peak:.3g}]")
    c("run.phases", len(run.phases) > 0, "run reports no phases")


def _check_determinism(checker: _Checker, model: ModelConfig,
                       train: TrainConfig, options: dict[str, Any],
                       first: RunReport) -> None:
    second = checker.backend.run(
        checker.backend.compile(model, train, **options))
    checker.check(
        "determinism",
        first.tokens_per_second == second.tokens_per_second
        and first.step_time == second.step_time,
        "repeated compile+run produced different results")
