"""Textual benchmark reports: tables and insight summaries.

The benchmark harness and examples use these helpers to print results in
the same layout as the paper's tables, plus generated "Insight" lines
mirroring the paper's per-platform guidance boxes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.common.units import fmt_flops, fmt_rate
from repro.core.tier1 import Tier1Result


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an ASCII table with right-padded columns."""
    cells = [[str(h) for h in headers]]
    cells.extend([str(value) for value in row] for row in rows)
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]

    def line(row: Sequence[str]) -> str:
        return " | ".join(value.ljust(width)
                          for value, width in zip(row, widths))

    out: list[str] = []
    if title:
        out.append(title)
    out.append(line(cells[0]))
    out.append("-+-".join("-" * width for width in widths))
    out.extend(line(row) for row in cells[1:])
    return "\n".join(out)


@dataclass
class BenchmarkReport:
    """Accumulates titled tables and insight lines, renders as text."""

    title: str
    sections: list[str] = field(default_factory=list)

    def add_table(self, title: str, headers: Sequence[str],
                  rows: Sequence[Sequence[object]]) -> None:
        self.sections.append(render_table(headers, rows, title=title))

    def add_insight(self, text: str) -> None:
        self.sections.append(f"Insight: {text}")

    def add_text(self, text: str) -> None:
        self.sections.append(text)

    def add_infrastructure_health(self, stats: Sequence[object],
                                  title: str = "Infrastructure health",
                                  ) -> None:
        """One row per backend lane: outcome counts plus the lane's
        circuit-breaker trip count and accumulated open time (each
        ``stats`` item is duck-typed like
        :class:`~repro.campaign.BackendStats`)."""
        self.add_table(title, INFRA_HEADERS,
                       [infrastructure_row(s) for s in stats])

    def add_scheduling(self, stats: Sequence[object],
                       title: str = "Scheduling") -> None:
        """One row per schedule run: dispatch policy, predictor, and
        predicted-vs-actual cost accuracy plus simulated makespan (each
        ``stats`` item is duck-typed like
        :class:`~repro.campaign.SchedulerStats`)."""
        self.add_table(title, SCHEDULING_HEADERS,
                       [scheduling_row(s) for s in stats])

    def add_supervision(self, stats: object,
                        title: str = "Supervision") -> None:
        """Worker-supervision telemetry for a process-dispatched run:
        kills, pool rebuilds, and quarantined cells (``stats`` is
        duck-typed like :class:`~repro.campaign.SupervisionStats`)."""
        self.add_table(title, SUPERVISION_HEADERS,
                       [supervision_row(stats)])

    def render(self) -> str:
        banner = "=" * max(len(self.title), 8)
        return "\n\n".join([f"{banner}\n{self.title}\n{banner}",
                            *self.sections])

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def tier1_summary_row(result: Tier1Result) -> list[str]:
    """A standard summary row for one Tier-1 result."""
    return [
        result.platform,
        result.model.name,
        f"{result.compute_allocation * 100:.1f}%",
        f"{result.load_imbalance:.3f}",
        fmt_flops(result.achieved_flops),
        f"{result.compute_efficiency * 100:.1f}%",
        f"{result.intensity:.1f}",
        result.roofline.bound,
        fmt_rate(result.tokens_per_second),
    ]


TIER1_HEADERS = [
    "platform", "model", "alloc", "LI", "achieved", "efficiency",
    "AI (F/B)", "bound", "throughput",
]

GRID_HEADERS = ["cell", "status", "attempts", "resumed", "tokens/s"]


def sweep_cell_row(cell: object) -> list[object]:
    """A standard grid-table row for one sweep cell.

    Duck-typed over :class:`~repro.workloads.sweeps.SweepCell` so the
    campaign package can render rows without importing the sweeps
    module (which imports the campaign engine).
    """
    if cell.failed:
        status = (f"Fail ({cell.failure.type})"
                  if cell.failure is not None else "Fail")
        rate = "-"
    else:
        status = "ok"
        if cell.run is not None:
            rate = f"{cell.run.tokens_per_second:,.0f}"
        elif cell.summary:
            rate = f"{cell.summary.get('tokens_per_second', 0):,.0f}"
        else:
            rate = "-"
    return [cell.spec.label, status, cell.attempts,
            "yes" if cell.resumed else "no", rate]


INFRA_HEADERS = [
    "backend", "cells", "ok", "failed", "gated", "resumed", "attempts",
    "retries", "breaker", "trips", "open (s)", "abandoned wd",
]


def infrastructure_row(stats: object) -> list[object]:
    """An infrastructure-health row from per-lane campaign statistics
    (duck-typed over :class:`~repro.campaign.BackendStats`)."""
    breaker = stats.breaker or {}
    return [stats.backend, stats.cells, stats.ok, stats.failed,
            stats.gated, stats.resumed, stats.attempts, stats.retries,
            breaker.get("state", "-"), breaker.get("trip_count", 0),
            f"{breaker.get('open_seconds', 0.0):.1f}",
            getattr(stats, "abandoned_watchdogs", 0)]


SUPERVISION_HEADERS = [
    "deadline kills", "stale kills", "worker crashes", "pool rebuilds",
    "quarantined", "corrupt lines", "heartbeat (s)", "grace",
]


def supervision_row(stats: object) -> list[object]:
    """A supervision-telemetry row (duck-typed over
    :class:`~repro.campaign.SupervisionStats`)."""
    quarantined = ", ".join(stats.quarantined) or "-"
    return [stats.deadline_kills, stats.stale_kills,
            stats.worker_crashes, stats.pool_rebuilds, quarantined,
            stats.corrupt_lines, f"{stats.heartbeat_interval:g}",
            f"{stats.grace_factor:g}"]


SCHEDULING_HEADERS = [
    "schedule", "predictor", "cells", "predicted (s)", "actual (s)",
    "MAE (s)", "MAPE", "makespan (s)", "workers", "dispatch",
]


def scheduling_row(stats: object) -> list[object]:
    """A scheduling-telemetry row (duck-typed over
    :class:`~repro.campaign.SchedulerStats`)."""
    mape = stats.mape
    return [stats.schedule, stats.predictor, stats.cells,
            f"{stats.predicted_seconds:.1f}",
            f"{stats.actual_seconds:.1f}",
            f"{stats.mean_abs_error:.2f}",
            f"{mape * 100:.1f}%" if mape is not None else "-",
            f"{stats.makespan_seconds:.1f}", stats.max_workers,
            getattr(stats, "dispatch", "thread")]


def describe_tier1(result: Tier1Result) -> str:
    """An English summary mirroring the paper's Insight style."""
    lines = [
        f"{result.platform} on {result.model.name}: "
        f"{result.compute_allocation * 100:.1f}% of compute units "
        f"allocated, load imbalance {result.load_imbalance:.2f}.",
        f"Achieved {fmt_flops(result.achieved_flops)} "
        f"({result.compute_efficiency * 100:.1f}% of peak); the workload "
        f"is {result.roofline.bound}-bound at "
        f"{result.intensity:.1f} FLOPs/byte.",
    ]
    shared = result.shared_memory
    lines.append(
        f"Shared-memory tier: {shared.utilization * 100:.1f}% used "
        f"({shared.configuration_bytes / 1e9:.2f} GB configuration, "
        f"{shared.training_bytes / 1e9:.2f} GB training)."
    )
    return "\n".join(lines)
