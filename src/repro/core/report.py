"""Textual benchmark reports: tables and insight summaries.

The benchmark harness and examples use these helpers to print results in
the same layout as the paper's tables, plus generated "Insight" lines
mirroring the paper's per-platform guidance boxes.

The campaign telemetry tables (infrastructure health, scheduling,
supervision, observability) are all defined once as :class:`Table`
entries in :data:`REPORT_TABLES`: each :class:`Column` carries both the
rendered heading and the stable serialized key, so the ASCII report and
``campaign_to_dict`` can never drift apart. The legacy
``*_HEADERS``/``*_row`` names are thin views over the registry.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.common.units import fmt_flops, fmt_rate
from repro.core.tier1 import Tier1Result


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an ASCII table with right-padded columns."""
    cells = [[str(h) for h in headers]]
    cells.extend([str(value) for value in row] for row in rows)
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]

    def line(row: Sequence[str]) -> str:
        return " | ".join(value.ljust(width)
                          for value, width in zip(row, widths))

    out: list[str] = []
    if title:
        out.append(title)
    out.append(line(cells[0]))
    out.append("-+-".join("-" * width for width in widths))
    out.extend(line(row) for row in cells[1:])
    return "\n".join(out)


@dataclass(frozen=True)
class Column:
    """One stats-table column.

    ``key`` is the stable serialized name (``None`` for display-only
    columns derived from another serialized field, such as the breaker
    state pulled out of the breaker metrics dict); ``header`` is the
    rendered heading (``None`` for serialize-only fields that never
    appear in the ASCII table). ``value`` extracts the raw
    JSON-friendly value from a duck-typed stats object; ``display``
    formats it for rendering and defaults to ``value``.
    """

    key: str | None
    header: str | None
    value: Callable[[Any], Any]
    display: Callable[[Any], object] | None = None


@dataclass(frozen=True)
class Table:
    """A registered stats table: one definition for render + serialize."""

    name: str
    title: str
    columns: tuple[Column, ...]

    @property
    def headers(self) -> list[str]:
        """Rendered headings, in column order."""
        return [c.header for c in self.columns if c.header is not None]

    def row(self, stats: Any) -> list[object]:
        """One display row from a duck-typed stats object."""
        return [(c.display or c.value)(stats)
                for c in self.columns if c.header is not None]

    def to_dict(self, stats: Any) -> dict[str, Any]:
        """The stats object flattened under the stable serialized keys."""
        return {c.key: c.value(stats)
                for c in self.columns if c.key is not None}


def _col(key: str | None, header: str | None,
         value: Callable[[Any], Any] | None = None,
         display: Callable[[Any], object] | None = None) -> Column:
    if value is None:
        if key is None:
            raise ValueError("display-only columns need an explicit value")
        value = operator.attrgetter(key)
    return Column(key=key, header=header, value=value, display=display)


def _breaker(stats: Any) -> dict[str, Any]:
    return stats.breaker or {}


REPORT_TABLES: dict[str, Table] = {
    table.name: table
    for table in (
        Table("infrastructure", "Infrastructure health", (
            _col("backend", "backend"),
            _col("cells", "cells"),
            _col("ok", "ok"),
            _col("failed", "failed"),
            _col("gated", "gated"),
            _col("resumed", "resumed"),
            _col("executed", None),
            _col("attempts", "attempts"),
            _col("retries", "retries"),
            _col("elapsed_seconds", None),
            _col("breaker", None, value=lambda s: dict(s.breaker)),
            _col(None, "breaker",
                 value=lambda s: _breaker(s).get("state", "-")),
            _col(None, "trips",
                 value=lambda s: _breaker(s).get("trip_count", 0)),
            _col(None, "open (s)", value=lambda s:
                 f"{_breaker(s).get('open_seconds', 0.0):.1f}"),
            _col("abandoned_watchdogs", "abandoned wd",
                 value=lambda s: getattr(s, "abandoned_watchdogs", 0)),
        )),
        Table("scheduling", "Scheduling", (
            _col("schedule", "schedule"),
            _col("predictor", "predictor"),
            _col("cells", "cells"),
            _col("predicted_seconds", "predicted (s)",
                 display=lambda s: f"{s.predicted_seconds:.1f}"),
            _col("actual_seconds", "actual (s)",
                 display=lambda s: f"{s.actual_seconds:.1f}"),
            _col("mean_abs_error", "MAE (s)",
                 display=lambda s: f"{s.mean_abs_error:.2f}"),
            _col("mape", "MAPE", display=lambda s:
                 f"{s.mape * 100:.1f}%" if s.mape is not None else "-"),
            _col("makespan_seconds", "makespan (s)",
                 display=lambda s: f"{s.makespan_seconds:.1f}"),
            _col("max_workers", "workers"),
            _col("dispatch", "dispatch",
                 value=lambda s: getattr(s, "dispatch", "thread")),
        )),
        Table("supervision", "Supervision", (
            _col("deadline_kills", "deadline kills"),
            _col("stale_kills", "stale kills"),
            _col("worker_crashes", "worker crashes"),
            _col("pool_rebuilds", "pool rebuilds"),
            _col("quarantined", "quarantined",
                 value=lambda s: list(s.quarantined),
                 display=lambda s: ", ".join(s.quarantined) or "-"),
            _col("corrupt_lines", "corrupt lines"),
            _col("heartbeat_interval", "heartbeat (s)",
                 display=lambda s: f"{s.heartbeat_interval:g}"),
            _col("grace_factor", "grace",
                 display=lambda s: f"{s.grace_factor:g}"),
            _col("quarantine_after", None),
            _col("max_pool_rebuilds", None),
        )),
        Table("observability", "Observability", (
            _col("lane", "lane"),
            _col("events", "events"),
            _col("cells", "cells"),
            _col("compile_seconds", "compile (s)",
                 display=lambda s: f"{s.compile_seconds:.2f}"),
            _col("run_seconds", "run (s)",
                 display=lambda s: f"{s.run_seconds:.2f}"),
            _col("retries", "retries"),
            _col("gated", "gated"),
            _col("sigkills", "sigkills"),
            _col("worker_crashes", "crashes"),
            _col("isolations", "isolated"),
            _col("quarantines", "quarantined"),
            _col("cache_hits", "cache hits",
                 value=lambda s: getattr(s, "cache_hits", 0)),
            _col("cache_misses", "cache misses",
                 value=lambda s: getattr(s, "cache_misses", 0)),
            _col("cache_bypasses", "cache bypassed",
                 value=lambda s: getattr(s, "cache_bypasses", 0)),
            _col("stage_hits", "stage hits",
                 value=lambda s: getattr(s, "stage_hits", 0)),
            _col("stage_misses", "stage misses",
                 value=lambda s: getattr(s, "stage_misses", 0)),
        )),
    )
}


@dataclass
class BenchmarkReport:
    """Accumulates titled tables and insight lines, renders as text."""

    title: str
    sections: list[str] = field(default_factory=list)

    def add_table(self, title: str, headers: Sequence[str],
                  rows: Sequence[Sequence[object]]) -> None:
        self.sections.append(render_table(headers, rows, title=title))

    def add_insight(self, text: str) -> None:
        self.sections.append(f"Insight: {text}")

    def add_text(self, text: str) -> None:
        self.sections.append(text)

    def add_stats_table(self, name: str, stats: Sequence[object],
                        title: str | None = None) -> None:
        """One row per stats object, from the :data:`REPORT_TABLES`
        definition registered under ``name``."""
        table = REPORT_TABLES[name]
        self.add_table(title or table.title, table.headers,
                       [table.row(s) for s in stats])

    def add_infrastructure_health(self, stats: Sequence[object],
                                  title: str = "Infrastructure health",
                                  ) -> None:
        """One row per backend lane: outcome counts plus the lane's
        circuit-breaker trip count and accumulated open time (each
        ``stats`` item is duck-typed like
        :class:`~repro.campaign.BackendStats`)."""
        self.add_stats_table("infrastructure", stats, title=title)

    def add_scheduling(self, stats: Sequence[object],
                       title: str = "Scheduling") -> None:
        """One row per schedule run: dispatch policy, predictor, and
        predicted-vs-actual cost accuracy plus simulated makespan (each
        ``stats`` item is duck-typed like
        :class:`~repro.campaign.SchedulerStats`)."""
        self.add_stats_table("scheduling", stats, title=title)

    def add_supervision(self, stats: object,
                        title: str = "Supervision") -> None:
        """Worker-supervision telemetry for a process-dispatched run:
        kills, pool rebuilds, and quarantined cells (``stats`` is
        duck-typed like :class:`~repro.campaign.SupervisionStats`)."""
        self.add_stats_table("supervision", [stats], title=title)

    def add_observability(self, stats: Sequence[object],
                          title: str = "Observability") -> None:
        """One row per lane rolled up from the campaign's trace (each
        ``stats`` item is duck-typed like
        :class:`~repro.observe.ObservabilityStats`)."""
        self.add_stats_table("observability", stats, title=title)

    def render(self) -> str:
        banner = "=" * max(len(self.title), 8)
        return "\n\n".join([f"{banner}\n{self.title}\n{banner}",
                            *self.sections])

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def tier1_summary_row(result: Tier1Result) -> list[str]:
    """A standard summary row for one Tier-1 result."""
    return [
        result.platform,
        result.model.name,
        f"{result.compute_allocation * 100:.1f}%",
        f"{result.load_imbalance:.3f}",
        fmt_flops(result.achieved_flops),
        f"{result.compute_efficiency * 100:.1f}%",
        f"{result.intensity:.1f}",
        result.roofline.bound,
        fmt_rate(result.tokens_per_second),
    ]


TIER1_HEADERS = [
    "platform", "model", "alloc", "LI", "achieved", "efficiency",
    "AI (F/B)", "bound", "throughput",
]

GRID_HEADERS = ["cell", "status", "attempts", "resumed", "tokens/s"]


def sweep_cell_row(cell: object) -> list[object]:
    """A standard grid-table row for one sweep cell.

    Duck-typed over :class:`~repro.workloads.sweeps.SweepCell` so the
    campaign package can render rows without importing the sweeps
    module (which imports the campaign engine).
    """
    if cell.failed:
        status = (f"Fail ({cell.failure.type})"
                  if cell.failure is not None else "Fail")
        rate = "-"
    else:
        status = "ok"
        if cell.run is not None:
            rate = f"{cell.run.tokens_per_second:,.0f}"
        elif cell.summary:
            rate = f"{cell.summary.get('tokens_per_second', 0):,.0f}"
        else:
            rate = "-"
    return [cell.spec.label, status, cell.attempts,
            "yes" if cell.resumed else "no", rate]


INFRA_HEADERS = REPORT_TABLES["infrastructure"].headers
SCHEDULING_HEADERS = REPORT_TABLES["scheduling"].headers
SUPERVISION_HEADERS = REPORT_TABLES["supervision"].headers
OBSERVABILITY_HEADERS = REPORT_TABLES["observability"].headers


def infrastructure_row(stats: object) -> list[object]:
    """An infrastructure-health row from per-lane campaign statistics
    (duck-typed over :class:`~repro.campaign.BackendStats`)."""
    return REPORT_TABLES["infrastructure"].row(stats)


def supervision_row(stats: object) -> list[object]:
    """A supervision-telemetry row (duck-typed over
    :class:`~repro.campaign.SupervisionStats`)."""
    return REPORT_TABLES["supervision"].row(stats)


def scheduling_row(stats: object) -> list[object]:
    """A scheduling-telemetry row (duck-typed over
    :class:`~repro.campaign.SchedulerStats`)."""
    return REPORT_TABLES["scheduling"].row(stats)


def observability_row(stats: object) -> list[object]:
    """An observability row (duck-typed over
    :class:`~repro.observe.ObservabilityStats`)."""
    return REPORT_TABLES["observability"].row(stats)


def describe_tier1(result: Tier1Result) -> str:
    """An English summary mirroring the paper's Insight style."""
    lines = [
        f"{result.platform} on {result.model.name}: "
        f"{result.compute_allocation * 100:.1f}% of compute units "
        f"allocated, load imbalance {result.load_imbalance:.2f}.",
        f"Achieved {fmt_flops(result.achieved_flops)} "
        f"({result.compute_efficiency * 100:.1f}% of peak); the workload "
        f"is {result.roofline.bound}-bound at "
        f"{result.intensity:.1f} FLOPs/byte.",
    ]
    shared = result.shared_memory
    lines.append(
        f"Shared-memory tier: {shared.utilization * 100:.1f}% used "
        f"({shared.configuration_bytes / 1e9:.2f} GB configuration, "
        f"{shared.training_bytes / 1e9:.2f} GB training)."
    )
    return "\n".join(lines)
