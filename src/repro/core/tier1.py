"""Tier 1 — intra-chip performance profiling (paper Sec. IV-B, V).

For one (backend, model, train) triple the profiler produces every Tier-1
metric the paper defines: resource allocation ratio (compute and memory
pools), load imbalance, achieved TFLOPs and compute efficiency, memory
breakdowns at both tiers, and the workload's roofline placement. Sweeps
over layer count / hidden size reproduce the paper's probe methodology,
recording compile failures instead of raising so that capability limits
(Table I's "Fail") become data points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.common.errors import CompilationError, ErrorRecord, ReproError
from repro.core.backend import (
    AcceleratorBackend,
    CompileReport,
    MemoryBreakdown,
    RunReport,
)
from repro.core.intensity import arithmetic_intensity
from repro.core.metrics import (
    allocation_ratio,
    compute_efficiency,
    weighted_load_imbalance,
)
from repro.core.roofline import RooflineModel, RooflinePoint
from repro.models.config import ModelConfig, TrainConfig


@dataclass(frozen=True)
class Tier1Result:
    """All Tier-1 metrics for one workload on one platform."""

    platform: str
    model: ModelConfig
    train: TrainConfig
    compiled: CompileReport
    run: RunReport
    compute_allocation: float
    memory_allocation: float
    load_imbalance: float
    achieved_flops: float
    compute_efficiency: float
    intensity: float
    roofline: RooflinePoint
    shared_memory: MemoryBreakdown
    global_memory: MemoryBreakdown | None
    meta: dict[str, Any] = field(default_factory=dict, compare=False)

    @property
    def tokens_per_second(self) -> float:
        return self.run.tokens_per_second

    @property
    def memory_bound(self) -> bool:
        """Whether the Eq.5 intensity falls left of the chip's ridge."""
        return self.roofline.bound == "memory"


@dataclass(frozen=True)
class SweepEntry:
    """One point of a Tier-1 sweep: a result or a recorded failure.

    ``failure`` preserves the structured error (type, phase, attributes
    like ``required_bytes``) that the plain ``error`` string flattens.
    """

    value: int
    result: Tier1Result | None
    error: str | None = None
    failure: ErrorRecord | None = None

    @property
    def failed(self) -> bool:
        return self.result is None


class Tier1Profiler:
    """Runs the Tier-1 methodology against any backend."""

    def __init__(self, backend: AcceleratorBackend) -> None:
        self.backend = backend
        self.chip = backend.system.chip

    def profile(self, model: ModelConfig, train: TrainConfig,
                **options: Any) -> Tier1Result:
        """Compile + run one workload and compute all Tier-1 metrics."""
        compiled = self.backend.compile(model, train, **options)
        return self.profile_compiled(model, train, compiled, options)

    def profile_compiled(self, model: ModelConfig, train: TrainConfig,
                         compiled: CompileReport,
                         options: dict[str, Any] | None = None
                         ) -> Tier1Result:
        """Run an already-compiled workload and compute the metrics."""
        run = self.backend.run(compiled)
        li = weighted_load_imbalance(compiled)
        intensity = arithmetic_intensity(model, train)
        roofline = RooflineModel(self.chip).place(
            model.name, intensity, run.achieved_flops)
        n_chips = max(1, compiled.n_chips)
        return Tier1Result(
            platform=self.backend.name,
            model=model,
            train=train,
            compiled=compiled,
            run=run,
            compute_allocation=allocation_ratio(compiled, kind="compute"),
            memory_allocation=allocation_ratio(compiled, kind="memory"),
            load_imbalance=li,
            achieved_flops=run.achieved_flops,
            compute_efficiency=compute_efficiency(
                run.achieved_flops, self.chip.peak_flops * n_chips),
            intensity=intensity,
            roofline=roofline,
            shared_memory=compiled.shared_memory,
            global_memory=compiled.global_memory,
            meta={"options": options or {}},
        )

    # ------------------------------------------------------------------
    # Sweeps — the paper's decoder-block probe methodology (Sec. IV-D(a))
    # ------------------------------------------------------------------
    def sweep_layers(self, model: ModelConfig, train: TrainConfig,
                     layer_counts: Iterable[int],
                     **options: Any) -> list[SweepEntry]:
        """Vary decoder-layer count at fixed hidden size."""
        return self._sweep(layer_counts, model.with_layers, train, options)

    def sweep_hidden(self, model: ModelConfig, train: TrainConfig,
                     hidden_sizes: Iterable[int],
                     **options: Any) -> list[SweepEntry]:
        """Vary hidden size at fixed layer count."""
        return self._sweep(hidden_sizes, model.with_hidden, train, options)

    def _sweep(self, values: Iterable[int],
               make_model: Callable[[int], ModelConfig],
               train: TrainConfig,
               options: dict[str, Any]) -> list[SweepEntry]:
        entries: list[SweepEntry] = []
        for value in values:
            model = make_model(value)
            phase = "compile"
            try:
                compiled = self.backend.compile(model, train, **options)
                phase = "run"
                result = self.profile_compiled(model, train, compiled,
                                               options)
            except ReproError as exc:
                record = ErrorRecord.from_exception(exc, phase=phase)
                entries.append(SweepEntry(value=value, result=None,
                                          error=str(exc), failure=record))
            else:
                entries.append(SweepEntry(value=value, result=result))
        return entries

    def max_feasible(self, model: ModelConfig, train: TrainConfig,
                     upper: int = 256, **options: Any) -> int:
        """Largest layer count that compiles (binary search).

        0 means even a single layer fails.
        """
        lo, hi = 0, upper
        while lo < hi:
            mid = (lo + hi + 1) // 2
            try:
                self.backend.compile(model.with_layers(mid), train, **options)
            except CompilationError:
                hi = mid - 1
            else:
                lo = mid
        return lo
