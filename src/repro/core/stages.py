"""Staged compile pipelines: memoizable sub-steps of ``compile()``.

DABench-LLM's cost observation (Sec. IV) is that a sweep varies one
axis — batch size, PE allocation, TP degree — and leaves the expensive
upstream compile work identical across most cells. A monolithic
``compile()`` cannot exploit that: the whole call is cached or nothing
is. This module gives every backend an explicit staged pipeline —
**graph build → partition/mapping → placement/allocation → report** —
where each stage declares its *own* input fingerprint (a sub-slice of
the cell fingerprint: the graph stage keys only on the model and
training configurations, not on hardware options), so a
:class:`~repro.cache.StageMemo` can replay exactly the prefix of the
pipeline whose inputs did not change.

A stage is three things: a name, a fingerprint (``None`` disables
memoization for that stage — nondeterministic backends produce
all-``None`` pipelines), and a compute function taking the previous
stage's artifact (``None`` for the first stage) and returning its own.
Artifacts must be treated as immutable: a memo hands the *same* object
to every cell that hits, across campaign lanes and worker threads.

:func:`run_stages` is the one interpreter both the memoized and the
plain path go through — a backend's ``compile()`` simply runs its own
pipeline without a memo, so the staged and monolithic results cannot
drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:
    from repro.cache import StageMemo
    from repro.observe import TraceRecorder

__all__ = [
    "STAGE_GRAPH",
    "STAGE_PARTITION",
    "STAGE_PLACEMENT",
    "STAGE_REPORT",
    "CompileStage",
    "hardware_digest",
    "run_stages",
    "unfingerprinted",
]

#: Canonical stage names, in pipeline order. Platforms whose compile
#: has no distinct placement step (or no model-only graph build) simply
#: omit that stage — the names are shared vocabulary for fingerprints,
#: trace events, and the cache directory layout, not a rigid contract.
STAGE_GRAPH = "graph"
STAGE_PARTITION = "partition"
STAGE_PLACEMENT = "placement"
STAGE_REPORT = "report"


@dataclass(frozen=True)
class CompileStage:
    """One memoizable step of a backend's compile pipeline.

    Attributes:
        name: stage label (usually one of the canonical names above);
            names the spill subdirectory and the ``stage_cache`` trace
            events.
        fingerprint: content-addressed key of everything this stage's
            artifact depends on — by construction it chains the parent
            stage's fingerprint, so a hit implies the whole upstream
            prefix matches. ``None`` disables memoization (the stage
            always recomputes and is never counted).
        compute: produces the stage artifact from the previous stage's
            (``None`` for the first stage). Must be deterministic when
            ``fingerprint`` is set, and must not mutate its input.
    """

    name: str
    fingerprint: str | None
    compute: Callable[[Any], Any] = field(compare=False)


def unfingerprinted(name: str, parent: str | None,
                    **params: Any) -> None:
    """A fingerprint function that disables memoization everywhere.

    Compilers' plain ``compile()`` entry points build their stage
    pipelines with this, so the staged and monolithic paths execute
    the same code with zero caching machinery in between.
    """
    return None


def hardware_digest(owner: Any) -> str:
    """Memoized canonical digest of ``owner.system`` (a
    :class:`~repro.hardware.specs.SystemSpec`), for stage fingerprint
    params — serialized once per compiler/backend instance, not once
    per cell."""
    digest = owner.__dict__.get("_hardware_digest")
    if digest is None:
        from dataclasses import asdict

        from repro.cache import canonical_fingerprint
        digest = canonical_fingerprint(asdict(owner.system))
        owner._hardware_digest = digest
    return digest


def run_stages(stages: Iterable[CompileStage],
               memo: "StageMemo | None" = None, *, key: str = "",
               tracer: "TraceRecorder | None" = None) -> Any:
    """Run a compile pipeline, replaying memoized stages; returns the
    final stage's artifact.

    Without a memo this is a plain left fold — the un-memoized
    ``compile()`` path. With one, the deepest already-memoized stage is
    found first (a quiet backward probe: the chained fingerprints make
    "stage N is cached" imply "stages 1..N-1 would hit too"), the
    satisfied prefix is counted as hits, and only the remaining suffix
    computes — each suffix stage through
    :meth:`~repro.cache.StageMemo.resolve`, which publishes the
    artifact for the next cell. Exactly one ``stage_cache`` trace
    event (``hit`` / ``miss``) is emitted per fingerprinted stage.
    """
    pipeline = list(stages)
    if not pipeline:
        raise ValueError("a compile pipeline needs at least one stage")
    artifact: Any = None
    if memo is None:
        for stage in pipeline:
            artifact = stage.compute(artifact)
        return artifact
    start = 0
    for i in range(len(pipeline) - 1, -1, -1):
        stage = pipeline[i]
        if stage.fingerprint is None:
            continue
        found, cached = memo.peek(stage)
        if found:
            artifact = cached
            start = i + 1
            break
    for i, stage in enumerate(pipeline):
        if i < start:
            # Satisfied by the probe hit downstream: the chained
            # fingerprint proves this stage's artifact fed it.
            if stage.fingerprint is not None:
                memo.note_hit(stage, key=key, tracer=tracer)
            continue
        if stage.fingerprint is None:
            artifact = stage.compute(artifact)
        else:
            artifact = memo.resolve(stage, artifact, key=key,
                                    tracer=tracer)
    return artifact
