"""Autoregressive decode analysis (extension).

Training and prefill stream thousands of tokens per pass; generation
emits one token per sequence per step, so every step re-reads the full
weight set plus the KV cache. That makes decode the sharpest
memory-bandwidth stress a platform can see — and it inverts the paper's
Fig. 10 story in an instructive way: the WSE-2 keeps weights in its
20 PB/s on-chip SRAM and stays compute-bound even at batch 1, while the
DDR-fed RDU and IPU are bandwidth-bound until very large batches.

This is an analytic roofline treatment (no per-platform scheduling):
the per-step time is bounded below by both the compute time and the
weight+KV traffic time, and the bound that binds names the regime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.hardware.specs import ChipSpec
from repro.models.config import ModelConfig, TrainConfig
from repro.models.costmodel import TransformerCostModel

# Sustained fraction of peak for the skinny (GEMV-like) decode matmuls.
DECODE_COMPUTE_EFFICIENCY = 0.30
# Sustained fraction of peak memory bandwidth for streaming reads.
DECODE_BANDWIDTH_EFFICIENCY = 0.80


@dataclass(frozen=True)
class DecodeEstimate:
    """Roofline bounds for one decode step."""

    platform: str
    batch_size: int
    context_len: int
    tokens_per_second: float
    bound: str  # "compute" or "memory"
    compute_seconds: float
    traffic_seconds: float
    step_traffic_bytes: float
    kv_cache_bytes: float
    arithmetic_intensity: float
    weights_on_chip: bool = False

    @property
    def per_sequence_latency(self) -> float:
        """Seconds per generated token for one sequence."""
        return self.batch_size / self.tokens_per_second


def kv_cache_bytes(model: ModelConfig, train: TrainConfig,
                   batch_size: int, context_len: int) -> float:
    """Resident KV-cache bytes for a batch of contexts."""
    per_token = (2.0 * model.n_layers * model.kv_hidden
                 * train.precision.activation_bytes_per_value)
    return per_token * batch_size * context_len


def decode_step_flops(model: ModelConfig, train: TrainConfig,
                      batch_size: int, context_len: int) -> float:
    """FLOPs to emit one token for each of ``batch_size`` sequences."""
    cost = TransformerCostModel(model)
    weights_term = 2.0 * cost.total_params()
    attention_term = (2.0 * 2.0 * model.n_layers * model.kv_hidden
                      * context_len)
    return batch_size * (weights_term + attention_term)


def estimate_decode(chip: ChipSpec, model: ModelConfig, train: TrainConfig,
                    batch_size: int, context_len: int,
                    weights_resident_on_chip: bool | None = None
                    ) -> DecodeEstimate:
    """Roofline decode estimate for one chip.

    ``weights_resident_on_chip`` controls whether weight reads hit the
    shared (on-chip) tier or the global tier; by default it is inferred
    from whether the weights fit the shared tier — true on the WSE-2,
    false for DDR-backed platforms.
    """
    if batch_size <= 0 or context_len <= 0:
        raise ConfigurationError(
            "batch_size and context_len must be positive")
    cost = TransformerCostModel(model)
    weight_bytes = cost.weight_bytes(train)
    if weights_resident_on_chip is None:
        weights_resident_on_chip = (
            weight_bytes <= 0.5 * chip.shared_memory.capacity_bytes)
    bandwidth = (chip.shared_memory.bandwidth if weights_resident_on_chip
                 else chip.global_memory.bandwidth)
    bandwidth *= DECODE_BANDWIDTH_EFFICIENCY

    kv_bytes = kv_cache_bytes(model, train, batch_size, context_len)
    capacity = (chip.shared_memory.capacity_bytes
                if weights_resident_on_chip
                else chip.global_memory.capacity_bytes)
    if weight_bytes + kv_bytes > capacity:
        raise ConfigurationError(
            f"weights + KV cache ({(weight_bytes + kv_bytes) / 1e9:.1f} "
            f"GB) exceed {chip.name}'s "
            f"{'on-chip' if weights_resident_on_chip else 'global'} "
            f"capacity ({capacity / 1e9:.1f} GB)")

    flops = decode_step_flops(model, train, batch_size, context_len)
    # One step reads every weight once (batch-amortized) plus each
    # sequence's KV cache, and appends one KV entry per layer.
    traffic = weight_bytes + kv_bytes
    peak = (chip.peak_flops * train.precision.compute.compute_scale / 2.0
            * DECODE_COMPUTE_EFFICIENCY)
    compute_seconds = flops / peak
    traffic_seconds = traffic / bandwidth
    step_seconds = max(compute_seconds, traffic_seconds)
    return DecodeEstimate(
        platform=chip.name,
        batch_size=batch_size,
        context_len=context_len,
        tokens_per_second=batch_size / step_seconds,
        bound="compute" if compute_seconds >= traffic_seconds else "memory",
        compute_seconds=compute_seconds,
        traffic_seconds=traffic_seconds,
        step_traffic_bytes=traffic,
        kv_cache_bytes=kv_bytes,
        arithmetic_intensity=flops / traffic,
        weights_on_chip=weights_resident_on_chip,
    )


def batch_to_saturate(chip: ChipSpec, model: ModelConfig,
                      train: TrainConfig, context_len: int,
                      upper: int = 4096) -> int | None:
    """Smallest batch at which decode turns compute-bound.

    ``None`` if no feasible batch up to ``upper`` flips the regime
    (bandwidth-starved platforms at long contexts).
    """
    batch = 1
    while batch <= upper:
        try:
            estimate = estimate_decode(chip, model, train, batch,
                                       context_len)
        except ConfigurationError:
            return None
        if estimate.bound == "compute":
            return batch
        batch *= 2
    return None
