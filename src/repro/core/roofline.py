"""Roofline model against the global-memory tier (paper Sec. IV-B-3).

The paper applies the roofline only at the global-memory level (shared-
memory bandwidths are not public) and uses it to classify each platform:
WSE-2's 20 PB/s on-chip tier keeps every LLM workload compute-bound,
while the RDU's and IPU's DDR tiers leave them memory-bound (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.hardware.specs import ChipSpec


@dataclass(frozen=True)
class RooflinePoint:
    """One workload placed on a roofline.

    Attributes:
        label: workload identifier (e.g. ``L=24``).
        intensity: arithmetic intensity, FLOPs/byte (Eq. 5).
        achieved_flops: measured FLOP/s.
        attainable_flops: the roof value at this intensity.
        bound: ``"compute"`` or ``"memory"`` depending on which side of
            the ridge the intensity falls.
    """

    label: str
    intensity: float
    achieved_flops: float
    attainable_flops: float
    bound: str

    @property
    def efficiency_vs_roof(self) -> float:
        """Achieved as a fraction of the attainable roof."""
        if self.attainable_flops <= 0:
            return 0.0
        return self.achieved_flops / self.attainable_flops


class RooflineModel:
    """A peak-FLOPs / memory-bandwidth roofline for one chip."""

    def __init__(self, chip: ChipSpec,
                 peak_flops: float | None = None,
                 bandwidth: float | None = None) -> None:
        self.chip = chip
        self.peak_flops = peak_flops if peak_flops is not None else chip.peak_flops
        self.bandwidth = (bandwidth if bandwidth is not None
                          else chip.global_memory.bandwidth)
        if self.peak_flops <= 0 or self.bandwidth <= 0:
            raise ConfigurationError(
                "roofline needs positive peak FLOPs and bandwidth")

    @property
    def ridge_intensity(self) -> float:
        """Intensity where the memory roof meets the compute roof."""
        return self.peak_flops / self.bandwidth

    def attainable(self, intensity: float) -> float:
        """Roof value at ``intensity``: min(peak, AI * BW)."""
        if intensity < 0:
            raise ConfigurationError("intensity must be >= 0")
        return min(self.peak_flops, intensity * self.bandwidth)

    def bound_of(self, intensity: float) -> str:
        """``"memory"`` left of the ridge, ``"compute"`` at or right of it."""
        return "memory" if intensity < self.ridge_intensity else "compute"

    def place(self, label: str, intensity: float,
              achieved_flops: float) -> RooflinePoint:
        """Locate one measured workload on the roofline."""
        return RooflinePoint(
            label=label,
            intensity=intensity,
            achieved_flops=achieved_flops,
            attainable_flops=self.attainable(intensity),
            bound=self.bound_of(intensity),
        )

    def series(self, points: list[tuple[str, float, float]]
               ) -> list[RooflinePoint]:
        """Place a list of ``(label, intensity, achieved_flops)`` triples."""
        return [self.place(*point) for point in points]

    def roof_curve(self, intensities: list[float]) -> list[float]:
        """Roof values at the given intensities (for plotting/tables)."""
        return [self.attainable(ai) for ai in intensities]
