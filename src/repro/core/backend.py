"""The uniform accelerator interface DABench-LLM benchmarks against.

The framework needs three categories of information (paper Sec. IV-D(b)):
hardware specifications, runtime information, and training configuration.
Backends deliver the first via :class:`~repro.hardware.specs.SystemSpec`,
the second via :class:`CompileReport` / :class:`RunReport`, and consume the
third as (:class:`~repro.models.config.ModelConfig`,
:class:`~repro.models.config.TrainConfig`) pairs.

The report structure mirrors how the platforms expose work:

* a *phase* is a unit the device runs to completion before the next
  (an RDU *section*; the single whole-graph phase on WSE-2; a pipeline
  round on the IPU),
* a *task* is a concurrently resident unit inside a phase (a WSE-2
  kernel, an RDU operator within a section, an IPU stage) with its
  resource grant and achievable throughput — exactly the R_i and T_i of
  the paper's Eq. 1-4.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.common.errors import ConfigurationError, TransientError
from repro.hardware.specs import SystemSpec
from repro.models.config import ModelConfig, TrainConfig
from repro.sim.trace import Trace

if TYPE_CHECKING:
    from repro.core.stages import CompileStage


@dataclass(frozen=True)
class TaskProfile:
    """One schedulable task and its resource grant.

    Attributes:
        name: task identifier (kernel/operator/stage name).
        compute_units: compute units granted (PEs, PCUs, tiles).
        memory_units: memory units granted (PMUs; equals compute units on
            fused-unit architectures).
        role: ``"compute"`` or ``"transmission"`` — WSE-2 distinguishes
            PEs doing math from PEs routing data (Fig. 6).
        throughput: achievable items/second for this task in isolation
            (the T_i of Eq. 3); ``0`` when unknown.
        flops: FLOPs per item this task performs.
        meta: free-form annotations.
    """

    name: str
    compute_units: float
    memory_units: float = 0.0
    role: str = "compute"
    throughput: float = 0.0
    flops: float = 0.0
    meta: dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.compute_units < 0 or self.memory_units < 0:
            raise ConfigurationError(
                f"task {self.name!r}: unit grants must be >= 0")
        if self.role not in ("compute", "transmission"):
            raise ConfigurationError(
                f"task {self.name!r}: unknown role {self.role!r}")


@dataclass(frozen=True)
class PhaseProfile:
    """One sequential execution phase and the tasks resident during it.

    Attributes:
        name: phase identifier (e.g. ``section-3`` or ``graph``).
        runtime: seconds this phase contributes to one training step
            (the L_i weight of Eq. 2 and Eq. 4).
        tasks: concurrently resident tasks.
        invocations: how many times the phase runs per step (RDU sections
            are re-invoked once per decoder layer under O0/O1).
    """

    name: str
    runtime: float
    tasks: tuple[TaskProfile, ...]
    invocations: int = 1

    def __post_init__(self) -> None:
        if self.runtime < 0:
            raise ConfigurationError(
                f"phase {self.name!r}: runtime must be >= 0")
        if self.invocations <= 0:
            raise ConfigurationError(
                f"phase {self.name!r}: invocations must be > 0")

    @property
    def compute_units(self) -> float:
        """Total compute units resident during the phase."""
        return sum(t.compute_units for t in self.tasks)

    @property
    def memory_units(self) -> float:
        """Total memory units resident during the phase."""
        return sum(t.memory_units for t in self.tasks)

    def units(self, kind: str) -> float:
        """Resident units of ``kind`` (``"compute"`` or ``"memory"``)."""
        if kind == "compute":
            return self.compute_units
        if kind == "memory":
            return self.memory_units
        raise ConfigurationError(f"unknown unit kind {kind!r}")


@dataclass(frozen=True)
class MemoryBreakdown:
    """Bytes by purpose at one memory tier (Fig. 9a's categories).

    ``configuration`` is compiler/program/routing state — the component
    whose sharp growth kills large WSE-2 models; ``training`` covers
    weights, gradients, optimizer state, and stashed activations.
    """

    capacity_bytes: float
    configuration_bytes: float = 0.0
    weight_bytes: float = 0.0
    activation_bytes: float = 0.0
    optimizer_bytes: float = 0.0

    @property
    def training_bytes(self) -> float:
        """Weights + activations + optimizer state."""
        return self.weight_bytes + self.activation_bytes + self.optimizer_bytes

    @property
    def total_bytes(self) -> float:
        """Everything resident at this tier."""
        return self.configuration_bytes + self.training_bytes

    @property
    def utilization(self) -> float:
        """Fraction of capacity in use."""
        return self.total_bytes / self.capacity_bytes

    @property
    def headroom_bytes(self) -> float:
        """Unused capacity (negative means over-subscribed)."""
        return self.capacity_bytes - self.total_bytes


@dataclass(frozen=True)
class CompileReport:
    """Everything the (simulated) compiler reports about a mapping.

    Most DABench metrics are compile-time quantities on WSE-2/IPU/RDU-O1
    (paper Sec. IV-D(c)); this report carries them.
    """

    platform: str
    model: ModelConfig
    train: TrainConfig
    phases: tuple[PhaseProfile, ...]
    total_compute_units: float
    total_memory_units: float
    shared_memory: MemoryBreakdown
    global_memory: MemoryBreakdown | None = None
    n_chips: int = 1
    meta: dict[str, Any] = field(default_factory=dict, compare=False)

    def phase(self, name: str) -> PhaseProfile:
        """Look up a phase by name."""
        for phase in self.phases:
            if phase.name == name:
                return phase
        raise KeyError(name)

    @property
    def tasks(self) -> list[TaskProfile]:
        """All tasks across all phases."""
        return [t for phase in self.phases for t in phase.tasks]


@dataclass(frozen=True)
class RunReport:
    """Measured execution results for one training configuration."""

    platform: str
    tokens_per_second: float
    samples_per_second: float
    step_time: float
    achieved_flops: float
    phases: tuple[PhaseProfile, ...]
    global_traffic_bytes_per_step: float = 0.0
    trace: Trace | None = None
    meta: dict[str, Any] = field(default_factory=dict, compare=False)

    @property
    def effective_intensity(self) -> float:
        """Achieved FLOPs per byte of *actual* global-memory traffic.

        Differs from the paper's Eq. 5 footprint-based estimate when
        on-chip reuse (PMU scratchpads, tile memory) filters traffic.
        """
        if self.global_traffic_bytes_per_step <= 0:
            return float("inf")
        return (self.achieved_flops * self.step_time
                / self.global_traffic_bytes_per_step)


class AcceleratorBackend(abc.ABC):
    """Platform adapter: compile a workload, then run it.

    Subclasses wrap one simulated platform. ``compile`` raises
    :class:`~repro.common.errors.CompilationError` (or its
    ``OutOfMemoryError`` subclass) when the workload cannot be mapped —
    real failures the paper records (Table I "Fail", Fig. 9d).

    ``transient_errors`` is each platform's declaration of which of its
    failures are worth retrying (fabric glitches, section stalls, queue
    flakes); the resilience layer consults it through
    :meth:`is_transient`. Capability failures must never appear here.

    ``thread_safe`` declares whether concurrent ``compile``/``run``
    calls from campaign worker threads are safe. The contract is that a
    backend holds no per-call mutable state — every bundled simulator
    computes its reports purely from its constructor-time specs — so
    the default is ``True``; a stateful adapter (e.g. one caching
    compile artifacts) must set it ``False``, and the campaign engine
    then serializes its calls behind a per-backend lock.

    ``deterministic`` declares whether reports are a pure function of
    ``(system, model, train, options)`` plus whatever
    :meth:`fingerprint_extra` exposes. The bundled simulators are; a
    fault-injecting wrapper or a live-hardware adapter is not and must
    set it ``False`` — the :mod:`repro.cache` compile cache bypasses
    such backends entirely rather than replaying a result that could
    have differed.
    """

    #: Exception types this platform considers retryable.
    transient_errors: tuple[type[BaseException], ...] = (TransientError,)

    #: Whether concurrent compile/run calls are safe (no per-call state).
    thread_safe: bool = True

    #: Whether compile/run results are replayable from a content cache.
    deterministic: bool = True

    def __init__(self, system: SystemSpec) -> None:
        self.system = system

    @property
    def name(self) -> str:
        """Backend display name."""
        return self.system.name

    def is_transient(self, exc: BaseException) -> bool:
        """Whether ``exc`` is a retryable fault on this platform."""
        return isinstance(exc, self.transient_errors)

    def fingerprint_extra(self) -> dict[str, Any]:
        """Backend state beyond the system spec that results depend on.

        The :mod:`repro.cache` fingerprint covers the platform class,
        the hardware spec, and the workload; a backend whose results
        also depend on constructor knobs (a burn factor, a tuning
        profile) must surface them here or stale cache hits become
        possible. The default — no extra state — is correct for every
        bundled simulator.
        """
        return {}

    @abc.abstractmethod
    def compile(self, model: ModelConfig, train: TrainConfig,
                **options: Any) -> CompileReport:
        """Map the workload onto the device; returns the compiler report."""

    # -- staged compilation (repro.core.stages) ------------------------
    def compile_pipeline(self, model: ModelConfig, train: TrainConfig,
                         **options: Any) -> "list[CompileStage]":
        """The compile as a staged pipeline (graph → partition →
        placement → report); the final stage's artifact is exactly what
        :meth:`compile` returns.

        The default wraps :meth:`compile` in a single unfingerprinted
        report stage — correct for any backend (wrappers like the
        fault injector included) but memoizes nothing. The bundled
        platforms override it with real stage splits whose
        fingerprints let a :class:`~repro.cache.StageMemo` share
        upstream work across sweep cells; such overrides must also
        route :meth:`compile` through
        :func:`~repro.core.stages.run_stages` so the two paths cannot
        drift.
        """
        from repro.core.stages import STAGE_REPORT, CompileStage
        return [CompileStage(
            STAGE_REPORT, None,
            lambda _prev: self.compile(model, train, **options))]

    def _staged_compile_intact(self, owner: type) -> bool:
        """Whether ``self`` still compiles via ``owner``'s staged split.

        A subclass overriding :meth:`compile` (a fault-injecting test
        double, say) changes what compiling *means*; an inherited
        staged pipeline would silently bypass that override. The
        staged backends call this with their own class and fall back
        to the base single-stage :meth:`compile` wrapper — faithful,
        just unmemoized — when it returns ``False``.
        """
        return type(self).compile is owner.compile

    def stage_fingerprint(self, name: str, parent: str | None,
                          **params: Any) -> str | None:
        """Fingerprint one pipeline stage, or ``None`` to disable.

        Chains the parent stage's fingerprint (the first stage passes
        ``parent=""``): a ``None`` parent, or a backend declaring
        ``deterministic = False``, poisons the whole downstream chain
        — exactly the cells the whole-cell cache bypasses too. The
        platform class and :meth:`fingerprint_extra` are always keyed;
        ``params`` carries the *stage-specific* inputs (config
        digests for the graph stage, hardware/options slices for
        partition and placement), which is what lets sweep cells that
        differ only downstream share an upstream artifact.
        """
        if parent is None or not getattr(self, "deterministic", True):
            return None
        from repro.cache import CACHE_VERSION, canonical_fingerprint
        cls = type(self)
        return canonical_fingerprint({
            "v": CACHE_VERSION,
            "stage": name,
            "platform": f"{cls.__module__}.{cls.__qualname__}",
            "extra": self.fingerprint_extra(),
            "parent": parent,
            "params": params,
        })

    @abc.abstractmethod
    def run(self, compiled: CompileReport) -> RunReport:
        """Execute one (simulated) training step sequence."""

    def compile_and_run(self, model: ModelConfig, train: TrainConfig,
                        **options: Any) -> tuple[CompileReport, RunReport]:
        """Convenience: compile then run."""
        compiled = self.compile(model, train, **options)
        return compiled, self.run(compiled)
