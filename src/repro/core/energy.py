"""Energy and power modelling (extension).

The paper's related work (CARAML, Sec. VII) evaluates performance *and
power* on the same accelerators; the paper itself leaves power as future
work. This module adds a first-order power model so Tier-2 deployment
studies can also rank platforms by energy per token:

``P = idle + (peak - idle) * utilization`` per chip, where utilization
is the measured compute-time fraction scaled by the resource allocation
ratio. System powers are board-level figures from public vendor
materials; treat results as comparative, not metered.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.core.backend import CompileReport, RunReport
from repro.core.metrics import allocation_ratio


@dataclass(frozen=True)
class PowerSpec:
    """Board-level power envelope of one chip/system unit.

    Attributes:
        name: platform label.
        idle_watts: power at zero load (fans, fabric, SRAM retention).
        peak_watts: power at full utilization.
    """

    name: str
    idle_watts: float
    peak_watts: float

    def __post_init__(self) -> None:
        if self.idle_watts < 0 or self.peak_watts <= 0:
            raise ConfigurationError("power figures must be positive")
        if self.peak_watts < self.idle_watts:
            raise ConfigurationError("peak power below idle power")

    def power_at(self, utilization: float) -> float:
        """Linear idle-to-peak power at a utilization in [0, 1]."""
        utilization = min(max(utilization, 0.0), 1.0)
        return self.idle_watts + (self.peak_watts
                                  - self.idle_watts) * utilization


# Public board/system power figures (per chip).
POWER_SPECS: dict[str, PowerSpec] = {
    "CS-2": PowerSpec("CS-2", idle_watts=9_000.0, peak_watts=23_000.0),
    "SN30": PowerSpec("SN30", idle_watts=400.0, peak_watts=1_100.0),
    "Bow-2000": PowerSpec("Bow-2000", idle_watts=250.0, peak_watts=375.0),
    "Bow-Pod64": PowerSpec("Bow-Pod64", idle_watts=250.0,
                           peak_watts=375.0),
    "A100-cluster": PowerSpec("A100-cluster", idle_watts=90.0,
                              peak_watts=400.0),
}


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy accounting for one measured training step."""

    platform: str
    n_chips: int
    utilization: float
    power_watts: float
    step_energy_joules: float
    tokens_per_joule: float
    joules_per_token: float


def estimate_energy(compiled: CompileReport, run: RunReport,
                    power: PowerSpec | None = None) -> EnergyEstimate:
    """Estimate per-step energy from a compile+run pair.

    Utilization combines the run's compute-time fraction with the
    compile-time allocation ratio — idle PEs/PCUs/tiles still burn
    leakage but not dynamic power.
    """
    if power is None:
        try:
            power = POWER_SPECS[compiled.platform]
        except KeyError:
            raise ConfigurationError(
                f"no power spec for platform {compiled.platform!r}; "
                "pass one explicitly") from None
    compute_fraction = float(run.meta.get("compute_fraction", 1.0))
    utilization = compute_fraction * allocation_ratio(compiled)
    chips = max(compiled.n_chips, 1)
    watts = power.power_at(utilization) * chips
    energy = watts * run.step_time
    train = compiled.train
    tokens = train.batch_size * train.seq_len
    return EnergyEstimate(
        platform=compiled.platform,
        n_chips=chips,
        utilization=utilization,
        power_watts=watts,
        step_energy_joules=energy,
        tokens_per_joule=tokens / energy if energy > 0 else 0.0,
        joules_per_token=energy / tokens if tokens > 0 else 0.0,
    )
