"""DABench-LLM standardized metrics — paper Equations 1-4.

* :func:`allocation_ratio` — Eq. 1 (single phase) and Eq. 2 (runtime-
  weighted average over sections).
* :func:`load_imbalance` — Eq. 3, resource-weighted throughput disparity.
* :func:`weighted_load_imbalance` — Eq. 4, runtime-weighted LI over
  sections.

All functions accept either raw sequences or the
:class:`~repro.core.backend.CompileReport` structures backends emit.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.common.errors import ConfigurationError
from repro.core.backend import CompileReport, PhaseProfile, TaskProfile


def phase_allocation_ratio(phase: PhaseProfile, total_units: float,
                           kind: str = "compute") -> float:
    """Eq. 1 for one phase: U = R_used / R_all."""
    if total_units <= 0:
        raise ConfigurationError("total_units must be positive")
    return phase.units(kind) / total_units


def allocation_ratio(phases: Sequence[PhaseProfile] | CompileReport,
                     total_units: float | None = None,
                     kind: str = "compute") -> float:
    """Resource allocation ratio, Eq. 1 / Eq. 2.

    With a single phase this is the plain ratio (Eq. 1). With several
    phases (RDU sections) each phase's ratio is weighted by its runtime
    L_i (Eq. 2)::

        U = sum_i L_i * (R_i / R_all) / sum_i L_i

    Args:
        phases: phase profiles, or a :class:`CompileReport` (in which
            case ``total_units`` defaults to the report's totals).
        total_units: R_all; required when passing raw phases.
        kind: ``"compute"`` (PEs/PCUs/tiles) or ``"memory"`` (PMUs).
    """
    if isinstance(phases, CompileReport):
        report = phases
        if total_units is None:
            total_units = (report.total_compute_units if kind == "compute"
                           else report.total_memory_units)
        phases = report.phases
    if total_units is None:
        raise ConfigurationError(
            "total_units is required when passing raw phases")
    if total_units <= 0:
        raise ConfigurationError("total_units must be positive")
    phases = list(phases)
    if not phases:
        raise ConfigurationError("at least one phase is required")
    if len(phases) == 1:
        return phase_allocation_ratio(phases[0], total_units, kind)
    total_runtime = sum(p.runtime * p.invocations for p in phases)
    if total_runtime <= 0:
        # Degenerate zero-runtime mapping: fall back to unweighted mean.
        return sum(phase_allocation_ratio(p, total_units, kind)
                   for p in phases) / len(phases)
    weighted = sum(
        p.runtime * p.invocations * phase_allocation_ratio(p, total_units, kind)
        for p in phases
    )
    return weighted / total_runtime


def load_imbalance(tasks: Iterable[TaskProfile]) -> float:
    """Load imbalance LI, Eq. 3.

    ::

        LI = (1 / sum_i R_i) * sum_i (T_min / T_i) * R_i

    where R_i is the resource grant of task i and T_i its achievable
    throughput. LI -> 1 means balanced (every task as slow as the
    bottleneck, so no resources idle); LI -> 0 means the bottleneck
    starves much faster tasks.

    Tasks with unknown (zero) throughput are skipped; only ``compute``
    role tasks participate (transmission PEs have no throughput of their
    own).
    """
    rated = [t for t in tasks
             if t.role == "compute" and t.throughput > 0 and t.compute_units > 0]
    if not rated:
        raise ConfigurationError(
            "load_imbalance requires at least one task with throughput "
            "and a resource grant")
    t_min = min(t.throughput for t in rated)
    total_resources = sum(t.compute_units for t in rated)
    weighted = sum((t_min / t.throughput) * t.compute_units for t in rated)
    return weighted / total_resources


def weighted_load_imbalance(
        phases: Sequence[PhaseProfile] | CompileReport) -> float:
    """Runtime-weighted LI over sections, Eq. 4.

    ::

        LI_total = sum_i L_i * LI_i / sum_i L_i

    Phases whose tasks carry no throughput data are excluded from the
    average (compile-time reports sometimes lack per-op estimates).
    """
    if isinstance(phases, CompileReport):
        phases = phases.phases
    phases = list(phases)
    if not phases:
        raise ConfigurationError("at least one phase is required")
    contributions: list[tuple[float, float]] = []
    for phase in phases:
        try:
            li = load_imbalance(phase.tasks)
        except ConfigurationError:
            continue
        contributions.append((phase.runtime * phase.invocations, li))
    if not contributions:
        raise ConfigurationError("no phase carries throughput data")
    total_weight = sum(weight for weight, _li in contributions)
    if total_weight <= 0:
        return sum(li for _w, li in contributions) / len(contributions)
    return sum(weight * li for weight, li in contributions) / total_weight


def compute_efficiency(achieved_flops: float, peak_flops: float) -> float:
    """Achieved / peak FLOP rate — the paper's compute-efficiency figure."""
    if peak_flops <= 0:
        raise ConfigurationError("peak_flops must be positive")
    if achieved_flops < 0:
        raise ConfigurationError("achieved_flops must be >= 0")
    return achieved_flops / peak_flops
