"""ASCII plotting for figure-style output in terminals and logs.

The benchmark harness prints tables; these helpers render the same
series as quick line/bar charts so the paper's figures can be eyeballed
without a plotting stack (the repo is offline-friendly by design).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.common.errors import ConfigurationError

_MARKERS = "*o+x#@%&"


def ascii_line_chart(x: Sequence[float],
                     series: Mapping[str, Sequence[float]],
                     width: int = 64, height: int = 16,
                     title: str | None = None,
                     y_label: str = "") -> str:
    """Render one or more y-series over a shared x-axis.

    Points are scattered onto a character grid; each series gets its own
    marker and a legend line. Failed/None points are skipped.
    """
    if width < 8 or height < 4:
        raise ConfigurationError("chart too small")
    if not series:
        raise ConfigurationError("no series to plot")
    points = {
        name: [(xi, yi) for xi, yi in zip(x, ys) if yi is not None]
        for name, ys in series.items()
    }
    all_points = [p for pts in points.values() for p in pts]
    if not all_points:
        raise ConfigurationError("no data points to plot")
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def place(xv: float, yv: float, marker: str) -> None:
        col = round((xv - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((yv - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = marker

    legend = []
    for index, (name, pts) in enumerate(points.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} {name}")
        for xv, yv in pts:
            place(xv, yv, marker)

    out: list[str] = []
    if title:
        out.append(title)
    top_label = f"{y_hi:.3g}"
    bottom_label = f"{y_lo:.3g}"
    pad = max(len(top_label), len(bottom_label), len(y_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(pad)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(pad)
        elif row_index == height // 2 and y_label:
            prefix = y_label.rjust(pad)
        else:
            prefix = " " * pad
        out.append(f"{prefix} |{''.join(row)}")
    axis = f"{' ' * pad} +{'-' * width}"
    out.append(axis)
    x_line = (f"{' ' * pad}  {x_lo:<.4g}"
              f"{' ' * max(1, width - 12)}{x_hi:>.4g}")
    out.append(x_line)
    out.append(f"{' ' * pad}  {'   '.join(legend)}")
    return "\n".join(out)


def ascii_bar_chart(labels: Sequence[str], values: Sequence[float],
                    width: int = 48, title: str | None = None,
                    unit: str = "") -> str:
    """Render horizontal bars, one per label."""
    if len(labels) != len(values):
        raise ConfigurationError("labels and values differ in length")
    if not labels:
        raise ConfigurationError("nothing to plot")
    peak = max(values)
    if peak <= 0:
        raise ConfigurationError("bar chart needs a positive maximum")
    label_pad = max(len(str(label)) for label in labels)
    out: list[str] = []
    if title:
        out.append(title)
    for label, value in zip(labels, values):
        bar = "#" * max(0, round(value / peak * width))
        out.append(f"{str(label).rjust(label_pad)} |{bar} "
                   f"{value:,.4g}{unit}")
    return "\n".join(out)
