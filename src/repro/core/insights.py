"""Automated insight generation — the paper's guidance boxes as rules.

DABench-LLM's stated purpose is to "help researchers rapidly gain
insights into underlying hardware and system behaviors, and provide
guidance for performance optimizations" (Abstract). This module encodes
the diagnostic logic behind the paper's per-platform Insight boxes as
explicit rules over Tier-1/Tier-2 results: given measurements, it names
the binding bottleneck and suggests the corresponding optimization.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.tier1 import SweepEntry, Tier1Result
from repro.core.tier2 import BatchSweepResult, ScalingPoint


class Bottleneck(enum.Enum):
    """The binding constraint a Tier-1 profile exposes."""

    ALLOCATION = "allocation"          # compiler leaves units idle
    LOAD_BALANCE = "load_balance"      # fast tasks starve on the slowest
    MEMORY_CAPACITY = "memory_capacity"  # on-chip memory nearly full
    MEMORY_BANDWIDTH = "memory_bandwidth"  # left of the roofline ridge
    COMMUNICATION = "communication"    # step time dominated by transfers
    BALANCED = "balanced"              # nothing obviously binding


@dataclass(frozen=True)
class Insight:
    """One diagnosed bottleneck and the matching recommendation."""

    bottleneck: Bottleneck
    severity: float  # 0-1, how strongly the evidence points here
    finding: str
    recommendation: str

    def __str__(self) -> str:
        return (f"[{self.bottleneck.value}, severity "
                f"{self.severity:.2f}] {self.finding} -> "
                f"{self.recommendation}")


# Rule thresholds (tuned to the paper's reported regimes).
LOW_ALLOCATION = 0.60
LOW_LI = 0.85
HIGH_MEMORY_UTILIZATION = 0.85
HIGH_COMM_FRACTION = 0.25


def diagnose(result: Tier1Result) -> list[Insight]:
    """Diagnose one Tier-1 profile; insights sorted by severity."""
    insights: list[Insight] = []

    if result.compute_allocation < LOW_ALLOCATION:
        severity = 1.0 - result.compute_allocation / LOW_ALLOCATION
        insights.append(Insight(
            bottleneck=Bottleneck.ALLOCATION,
            severity=severity,
            finding=(f"only {result.compute_allocation:.0%} of "
                     f"{result.platform}'s compute units are allocated"),
            recommendation=(
                "grow the workload per chip (more layers / larger hidden "
                "size), or improve the compiler's partitioning so "
                "sections/kernels use more units"),
        ))

    if result.load_imbalance < LOW_LI:
        severity = 1.0 - result.load_imbalance
        insights.append(Insight(
            bottleneck=Bottleneck.LOAD_BALANCE,
            severity=severity,
            finding=(f"load imbalance {result.load_imbalance:.2f}: fast "
                     "tasks idle waiting on the slowest"),
            recommendation=(
                "rebalance resource grants toward the bottleneck task "
                "(operator fusion or finer-grained partitioning helps)"),
        ))

    memory = result.shared_memory
    if memory.utilization > HIGH_MEMORY_UTILIZATION:
        severity = min(1.0, (memory.utilization - HIGH_MEMORY_UTILIZATION)
                       / (1.0 - HIGH_MEMORY_UTILIZATION))
        insights.append(Insight(
            bottleneck=Bottleneck.MEMORY_CAPACITY,
            severity=severity,
            finding=(f"on-chip memory {memory.utilization:.0%} full "
                     f"({memory.configuration_bytes / 1e9:.1f} GB of it "
                     "configuration state)"),
            recommendation=(
                "shrink per-chip state: weight streaming, tensor "
                "swapping, recomputation, or spread the model over more "
                "chips"),
        ))

    if result.memory_bound:
        roof_gap = result.roofline.efficiency_vs_roof
        headroom = (result.roofline.attainable_flops
                    / max(result.achieved_flops, 1.0))
        insights.append(Insight(
            bottleneck=Bottleneck.MEMORY_BANDWIDTH,
            severity=1.0 - min(roof_gap, 1.0),
            finding=("workload sits left of the ridge "
                     f"({result.intensity:.0f} FLOPs/B vs ridge "
                     f"{headroom:.1f}x "
                     "headroom to the roof)"),
            recommendation=(
                "raise arithmetic intensity (bigger batch/hidden size) or "
                "keep more traffic on-chip; external bandwidth is the "
                "architectural limit"),
        ))

    comm_fraction = 1.0 - float(
        result.run.meta.get("compute_fraction", 1.0))
    if comm_fraction > HIGH_COMM_FRACTION:
        insights.append(Insight(
            bottleneck=Bottleneck.COMMUNICATION,
            severity=min(1.0, comm_fraction),
            finding=(f"{comm_fraction:.0%} of the step is spent off the "
                     "compute path (transfers/reconfiguration/sync)"),
            recommendation=(
                "overlap communication with computation, reduce "
                "cross-machine parallelism, or batch more work per "
                "transfer"),
        ))

    if not insights:
        insights.append(Insight(
            bottleneck=Bottleneck.BALANCED,
            severity=0.0,
            finding=(f"{result.platform} runs this workload at "
                     f"{result.compute_efficiency:.0%} of peak with no "
                     "dominant bottleneck"),
            recommendation="tune kernels; system-level structure is sound",
        ))
    return sorted(insights, key=lambda i: i.severity, reverse=True)


def diagnose_sweep(entries: list[SweepEntry]) -> list[Insight]:
    """Diagnose a layer/hidden sweep: capability limits and trends."""
    insights: list[Insight] = []
    failures = [e for e in entries if e.failed]
    successes = [e for e in entries if not e.failed]
    if failures and successes:
        last_ok = max(e.value for e in successes)
        first_fail = min(e.value for e in failures)
        insights.append(Insight(
            bottleneck=Bottleneck.MEMORY_CAPACITY,
            severity=1.0,
            finding=(f"compilation fails between {last_ok} and "
                     f"{first_fail} on the sweep axis"),
            recommendation=(
                "this is the platform's capability envelope; beyond it, "
                "switch execution mode (streaming) or add chips"),
        ))
    if len(successes) >= 3:
        effs = [e.result.compute_efficiency for e in successes]
        peak_at = successes[effs.index(max(effs))].value
        if effs[-1] < 0.7 * max(effs):
            insights.append(Insight(
                bottleneck=Bottleneck.MEMORY_CAPACITY,
                severity=1.0 - effs[-1] / max(effs),
                finding=(f"efficiency peaks at sweep value {peak_at} and "
                         f"decays {1 - effs[-1] / max(effs):.0%} by the "
                         "end of the sweep"),
                recommendation=(
                    "operate near the efficiency peak; past it, fixed "
                    "state (configuration memory) squeezes the working "
                    "set"),
            ))
    return insights


def diagnose_scaling(points: list[ScalingPoint],
                     parallelism_of: dict[str, int]) -> list[Insight]:
    """Diagnose a Tier-2 scaling sweep: where scaling stops paying."""
    ok = sorted((p for p in points
                 if not p.failed and p.label in parallelism_of),
                key=lambda p: parallelism_of[p.label])
    insights: list[Insight] = []
    for previous, current in zip(ok, ok[1:]):
        degree_ratio = (parallelism_of[current.label]
                        / parallelism_of[previous.label])
        gain = (current.tokens_per_second
                / max(previous.tokens_per_second, 1e-12))
        if gain < 1.0:
            insights.append(Insight(
                bottleneck=Bottleneck.COMMUNICATION,
                severity=min(1.0, 1.0 - gain / degree_ratio),
                finding=(f"scaling {previous.label} -> {current.label} "
                         f"loses throughput ({gain:.2f}x) while comm "
                         "share rises to "
                         f"{current.communication_fraction:.0%}"),
                recommendation=(
                    f"stop scaling at {previous.label}; the added "
                    "parallelism pays more in communication than it "
                    "buys in compute"),
            ))
    return insights


def diagnose_batch(sweep: BatchSweepResult) -> Insight:
    """One-line deployment guidance from a batch sweep (Fig. 12 box)."""
    if sweep.near_linear:
        return Insight(
            bottleneck=Bottleneck.BALANCED,
            severity=0.0,
            finding=(f"{sweep.platform} scales near-linearly with batch "
                     f"(exponent {sweep.scaling_exponent:.2f})"),
            recommendation="use the largest batch that fits memory",
        )
    return Insight(
        bottleneck=Bottleneck.ALLOCATION,
        severity=1.0 - sweep.scaling_exponent,
        finding=(f"{sweep.platform} saturates around batch "
                 f"{sweep.saturation_batch} (exponent "
                 f"{sweep.scaling_exponent:.2f})"),
        recommendation=(f"batch beyond ~{sweep.saturation_batch} buys "
                        "little; spend memory on model size instead"),
    )
