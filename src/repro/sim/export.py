"""Trace export to the Chrome tracing format.

Executions produced by the platform runtimes can be inspected visually in
``chrome://tracing`` / Perfetto: each task becomes a timeline row, each
record a complete event. Useful for eyeballing pipeline fill/drain on
the IPU or section sequencing on the RDU.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.sim.trace import Trace

# Chrome traces use microseconds; simulation time is seconds.
_SECONDS_TO_US = 1e6


def to_chrome_trace(trace: Trace, process_name: str = "simulation"
                    ) -> dict[str, Any]:
    """Convert a trace to a Chrome-tracing JSON object.

    Tasks map to thread ids (one row per task); categories become the
    Chrome ``cat`` field so compute/transfer/comm can be filtered.
    """
    tids: dict[str, int] = {}
    events: list[dict[str, Any]] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "tid": 0,
        "args": {"name": process_name},
    }]
    for record in trace:
        if record.task not in tids:
            tid = len(tids)
            tids[record.task] = tid
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": record.task},
            })
        events.append({
            "name": f"{record.task}#{record.item}",
            "cat": record.category,
            "ph": "X",
            "pid": 0,
            "tid": tids[record.task],
            "ts": record.start * _SECONDS_TO_US,
            "dur": record.duration * _SECONDS_TO_US,
            "args": {"item": record.item, **{
                k: v for k, v in record.meta.items()
                if isinstance(v, (str, int, float, bool))}},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(trace: Trace, path: str | Path,
                       process_name: str = "simulation") -> Path:
    """Write the Chrome-tracing JSON to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(trace, process_name)))
    return path
