"""Minimal discrete-event simulation engine.

The platform runtimes (:mod:`repro.cerebras.runtime`,
:mod:`repro.sambanova.runtime`, :mod:`repro.graphcore.pipeline`) share this
engine to execute workloads event-by-event: operators/stages fire when
their inputs are available — the data-driven execution model that defines
dataflow architectures (paper Sec. I).
"""

from repro.sim.engine import Resource, Simulator
from repro.sim.trace import Trace, TraceRecord

__all__ = ["Simulator", "Resource", "Trace", "TraceRecord"]
