"""Event queue, simulator core, and capacity-limited resources.

Deterministic by construction: events at equal timestamps fire in
scheduling order (a monotone sequence number breaks ties), so repeated
runs of the same workload produce identical traces.

The event loop is the run phase's hot path — a campaign cell can push
hundreds of thousands of events through it — so :meth:`Simulator.run`
dispatches from locals (the heap, ``heappop``, the sequence counter)
instead of going through :meth:`Simulator.step` and per-event
attribute lookups, and :class:`Resource` wakeups re-use the stored
argument tuple rather than re-packing it through ``schedule``'s
``*args``.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable

from repro.common.errors import SimulationError

Callback = Callable[..., None]


class Simulator:
    """A heap-based discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(0.0, start_stage, 0)
        sim.run()
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callback, tuple[Any, ...]]] = []
        self._seq = itertools.count()
        self._events_processed = 0

    def schedule(self, delay: float, callback: Callback,
                 *args: Any) -> None:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        heapq.heappush(
            self._heap, (self.now + delay, next(self._seq), callback, args))

    def schedule_at(self, when: float, callback: Callback,
                    *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when} before current time {self.now}")
        heapq.heappush(
            self._heap, (when, next(self._seq), callback, args))

    def _wake(self, callback: Callback, args: tuple[Any, ...]) -> None:
        """Schedule a stored ``(callback, args)`` pair at the current time.

        Equivalent to ``schedule(0.0, callback, *args)`` but without
        unpacking and re-packing the argument tuple — the
        :class:`Resource` grant path calls this for every wakeup.
        """
        heapq.heappush(self._heap, (self.now, next(self._seq), callback,
                                    args))

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._heap)

    def step(self) -> bool:
        """Execute the next event; returns ``False`` when the queue is empty."""
        if not self._heap:
            return False
        when, _seq, callback, args = heapq.heappop(self._heap)
        self.now = when
        self._events_processed += 1
        callback(*args)
        return True

    def run(self, until: float | None = None,
            max_events: int = 10_000_000) -> float:
        """Run until the queue drains (or ``until``); returns final time.

        ``max_events`` guards against runaway event loops; exceeding it is
        a :class:`SimulationError` because a well-formed workload always
        terminates.
        """
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        try:
            while heap:
                if until is not None and heap[0][0] > until:
                    self.now = until
                    break
                when, _seq, callback, args = pop(heap)
                self.now = when
                executed += 1
                callback(*args)
                if executed > max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} events; "
                        "likely a scheduling loop"
                    )
        finally:
            # An event counts even when its callback (or the cap) raised.
            self._events_processed += executed
        return self.now


class Resource:
    """A capacity-limited resource with FIFO waiters.

    Models contention: a pipeline stage, a DMA engine, or a memory port.
    ``request`` either grants immediately or enqueues the continuation;
    ``release`` hands capacity to the next waiter.
    """

    def __init__(self, sim: Simulator, capacity: int = 1,
                 name: str = "resource") -> None:
        if capacity <= 0:
            raise SimulationError(f"resource capacity must be > 0: {capacity}")
        self._sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[tuple[Callback, tuple[Any, ...]]] = deque()
        self.busy_time = 0.0
        self._busy_since: float | None = None

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self, callback: Callback, *args: Any) -> None:
        """Acquire one capacity unit; fires ``callback`` when granted."""
        if self._in_use < self.capacity:
            self._grant()
            self._sim._wake(callback, args)
        else:
            self._waiters.append((callback, args))

    def release(self) -> None:
        """Return one capacity unit, waking the next waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(
                f"release of {self.name!r} without matching request")
        self._in_use -= 1
        if self._in_use == 0 and self._busy_since is not None:
            self.busy_time += self._sim.now - self._busy_since
            self._busy_since = None
        if self._waiters:
            callback, args = self._waiters.popleft()
            self._grant()
            self._sim._wake(callback, args)

    def _grant(self) -> None:
        if self._in_use == 0:
            self._busy_since = self._sim.now
        self._in_use += 1

    def utilization(self, horizon: float) -> float:
        """Fraction of ``horizon`` during which the resource was busy."""
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self._sim.now - self._busy_since
        return busy / horizon if horizon > 0 else 0.0
