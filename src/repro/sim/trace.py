"""Execution traces: what ran where, and for how long.

Platform runtimes append :class:`TraceRecord` rows as work completes; the
framework's Tier-1 profiler then derives busy time, per-task throughput,
and utilization from the trace — the "runtime information" category of
paper Sec. IV-D(b).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class TraceRecord:
    """One completed unit of work.

    Attributes:
        start / end: simulation timestamps (seconds).
        task: logical task name (kernel, section, or pipeline stage).
        category: coarse grouping (``compute``, ``transfer``, ``host``).
        item: which work item (micro-batch index, section invocation).
        meta: free-form annotations (flops, bytes, device).
    """

    start: float
    end: float
    task: str
    category: str = "compute"
    item: int = 0
    meta: dict[str, Any] = field(default_factory=dict, compare=False)

    @property
    def duration(self) -> float:
        return self.end - self.start


class Trace:
    """An append-only list of trace records with aggregate queries."""

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []

    def add(self, record: TraceRecord) -> None:
        if record.end < record.start:
            raise ValueError(
                f"trace record for {record.task!r} ends before it starts")
        self._records.append(record)

    def record(self, start: float, end: float, task: str,
               category: str = "compute", item: int = 0,
               **meta: Any) -> TraceRecord:
        """Convenience constructor + append."""
        rec = TraceRecord(start=start, end=end, task=task,
                          category=category, item=item, meta=meta)
        self.add(rec)
        return rec

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> list[TraceRecord]:
        return list(self._records)

    @property
    def makespan(self) -> float:
        """End of the last record minus start of the first."""
        if not self._records:
            return 0.0
        return (max(r.end for r in self._records)
                - min(r.start for r in self._records))

    def busy_time_by_task(self) -> dict[str, float]:
        """Summed record durations per task (overlap not collapsed)."""
        totals: dict[str, float] = defaultdict(float)
        for rec in self._records:
            totals[rec.task] += rec.duration
        return dict(totals)

    def busy_time_by_category(self) -> dict[str, float]:
        """Summed record durations per category."""
        totals: dict[str, float] = defaultdict(float)
        for rec in self._records:
            totals[rec.category] += rec.duration
        return dict(totals)

    def items_by_task(self) -> dict[str, int]:
        """Completed item count per task."""
        counts: dict[str, int] = defaultdict(int)
        for rec in self._records:
            counts[rec.task] += 1
        return dict(counts)

    def task_throughput(self, task: str) -> float:
        """Items per second completed by ``task`` over its active span."""
        recs = [r for r in self._records if r.task == task]
        if not recs:
            return 0.0
        span = max(r.end for r in recs) - min(r.start for r in recs)
        if span <= 0:
            return float("inf")
        return len(recs) / span

    def filter(self, category: str | None = None,
               task: str | None = None) -> "Trace":
        """A new trace containing only matching records."""
        out = Trace()
        for rec in self._records:
            if category is not None and rec.category != category:
                continue
            if task is not None and rec.task != task:
                continue
            out.add(rec)
        return out
