"""2-D placement of kernel regions onto the wafer PE grid.

Kernels occupy rectangular PE regions. The placer uses first-fit
decreasing-height shelf packing — a reasonable stand-in for the Cerebras
placement engine — and reports:

* whether the requested grants physically fit (near-full wafers lose a
  few percent to fragmentation, which is why measured allocation tops
  out below the usable fraction),
* centroid-to-centroid Manhattan distances along the dataflow chain
  ("kernels with data dependencies are placed physically close",
  Sec. III-A), used by the runtime's communication model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class PlacedRect:
    """One kernel's rectangle on the PE grid."""

    name: str
    x: int
    y: int
    width: int
    height: int

    @property
    def pes(self) -> int:
        return self.width * self.height

    @property
    def centroid(self) -> tuple[float, float]:
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)


@dataclass
class Placement:
    """Result of one placement attempt."""

    grid_width: int
    grid_height: int
    rects: list[PlacedRect] = field(default_factory=list)
    fits: bool = True
    requested_pes: float = 0.0

    @property
    def placed_pes(self) -> int:
        return sum(rect.pes for rect in self.rects)

    @property
    def grid_pes(self) -> int:
        return self.grid_width * self.grid_height

    def rect(self, name: str) -> PlacedRect:
        for rect in self.rects:
            if rect.name == name:
                return rect
        raise KeyError(name)

    def distance(self, a: str, b: str) -> float:
        """Manhattan centroid distance between two placed kernels, in PEs."""
        (ax, ay), (bx, by) = self.rect(a).centroid, self.rect(b).centroid
        return abs(ax - bx) + abs(ay - by)

    def chain_wire_length(self, order: list[str]) -> float:
        """Total hop distance along a dataflow chain of kernel names."""
        return sum(self.distance(a, b) for a, b in zip(order, order[1:]))


class WaferPlacer:
    """Places kernel rectangles on the PE grid.

    Two strategies:

    * ``"strips"`` (default) — column slicing: every kernel becomes a
      full-height vertical strip, widths rounded up. This mirrors the
      slice-based placement real wafer compilers use; waste is only the
      per-kernel rounding, so near-full wafers still reach the paper's
      92-93% allocation ceiling.
    * ``"shelves"`` — first-fit decreasing-height shelf packing, a
      deliberately cruder policy kept for the placement ablation bench.
    """

    def __init__(self, grid_width: int, grid_height: int,
                 strategy: str = "strips") -> None:
        if grid_width <= 0 or grid_height <= 0:
            raise ConfigurationError("grid dimensions must be positive")
        if strategy not in ("strips", "shelves"):
            raise ConfigurationError(f"unknown placement strategy {strategy!r}")
        self.grid_width = grid_width
        self.grid_height = grid_height
        self.strategy = strategy

    @staticmethod
    def rect_shape(pes: float, max_width: int) -> tuple[int, int]:
        """Near-square (width, height) for a PE count, clamped to the grid."""
        pes = max(1.0, pes)
        width = min(max_width, max(1, math.ceil(math.sqrt(pes))))
        height = max(1, math.ceil(pes / width))
        return width, height

    def place(self, demands: list[tuple[str, float]]) -> Placement:
        """Pack the (name, pes) demands; ``fits=False`` if the grid overflows."""
        if self.strategy == "strips":
            return self._place_strips(demands)
        return self._place_shelves(demands)

    def _place_strips(self, demands: list[tuple[str, float]]) -> Placement:
        """Column-slicing placement: one full-height strip per kernel."""
        placement = Placement(grid_width=self.grid_width,
                              grid_height=self.grid_height,
                              requested_pes=sum(p for _n, p in demands))
        cursor_x = 0
        for name, pes in demands:
            if pes < 0:
                raise ConfigurationError(
                    f"kernel {name!r}: negative PE demand")
            width = max(1, math.ceil(pes / self.grid_height))
            if cursor_x + width > self.grid_width:
                placement.fits = False
                width = max(1, self.grid_width - cursor_x)
                if cursor_x >= self.grid_width:
                    cursor_x = self.grid_width - 1
                    width = 1
            placement.rects.append(PlacedRect(
                name=name, x=cursor_x, y=0,
                width=width, height=self.grid_height))
            cursor_x += width
        return placement

    def _place_shelves(self, demands: list[tuple[str, float]]) -> Placement:
        """First-fit decreasing-height shelf packing.

        Shelves are filled in decreasing height order; each shelf's height
        is set by its first rectangle. Overflowing rectangles mark the
        placement as infeasible but are still recorded (clipped to the
        grid) so callers can inspect what nearly fit.
        """
        placement = Placement(grid_width=self.grid_width,
                              grid_height=self.grid_height,
                              requested_pes=sum(p for _n, p in demands))
        shapes = []
        for name, pes in demands:
            if pes < 0:
                raise ConfigurationError(
                    f"kernel {name!r}: negative PE demand")
            width, height = self.rect_shape(pes, self.grid_width)
            shapes.append((name, width, height))
        shapes.sort(key=lambda item: item[2], reverse=True)

        shelf_y = 0
        shelf_height = 0
        cursor_x = 0
        for name, width, height in shapes:
            if cursor_x + width > self.grid_width:
                # Start a new shelf.
                shelf_y += shelf_height
                shelf_height = 0
                cursor_x = 0
            if shelf_height == 0:
                shelf_height = height
            if shelf_y >= self.grid_height:
                # Already past the grid: clamp so distance queries still
                # work on the (infeasible) layout.
                placement.fits = False
                shelf_y = self.grid_height - 1
                shelf_height = 1
            if shelf_y + height > self.grid_height:
                placement.fits = False
                height = max(1, self.grid_height - shelf_y)
            placement.rects.append(PlacedRect(
                name=name, x=cursor_x, y=shelf_y,
                width=width, height=height))
            cursor_x += width
        return placement

    def packing_efficiency(self, demands: list[tuple[str, float]]) -> float:
        """Largest uniform shrink factor that makes the demands fit.

        Returns 1.0 when the demands fit as-is; otherwise binary-searches
        the scale factor in (0, 1]. This is the fragmentation penalty the
        compiler applies when the wafer is nearly full.
        """
        if self.place(demands).fits:
            return 1.0
        lo, hi = 0.0, 1.0
        for _ in range(24):
            mid = (lo + hi) / 2.0
            scaled = [(name, pes * mid) for name, pes in demands]
            if self.place(scaled).fits:
                lo = mid
            else:
                hi = mid
        return lo
