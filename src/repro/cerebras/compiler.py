"""WSE-2 compiler: elastic PE allocation, placement, and memory planning.

Allocation policy (reproducing paper Sec. V-A1):

1. Every kernel has a scalability cap (``Kernel.cap_pes``) and a weight
   floor (``Kernel.min_pes``).
2. If the summed caps fit in the usable wafer region, every kernel takes
   its cap — the under-subscribed regime where small models leave PEs
   idle (Table I: 33% at one layer, 60% at six).
3. Otherwise the compiler water-fills PEs proportionally to kernel FLOPs,
   clamped to [floor, cap] — the elastic regime where "PE usage per
   attention kernel decreases as model size increases".
4. The placement engine packs the grants as rectangles; fragmentation on
   a nearly-full wafer shrinks grants a few percent further.

Memory planning models the Fig. 9a breakdown: configuration memory grows
quadratically with kernel count (routing/program state), and what remains
after weights+optimizer state bounds the number of in-flight samples the
dataflow pipeline can hold — the mechanism behind the TFLOPs collapse
beyond 36 layers and the hard compile failure at 78.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.common.errors import CompilationError, ConfigurationError, OutOfMemoryError
from repro.common.units import MB
from repro.core.backend import (
    CompileReport,
    MemoryBreakdown,
    PhaseProfile,
    TaskProfile,
)
from repro.core.stages import (
    STAGE_GRAPH,
    STAGE_PARTITION,
    STAGE_PLACEMENT,
    STAGE_REPORT,
    CompileStage,
    hardware_digest,
    run_stages,
    unfingerprinted,
)
from repro.cerebras.kernels import Kernel, extract_kernels
from repro.cerebras.placement import Placement, WaferPlacer
from repro.hardware.specs import CS2_SYSTEM, SystemSpec
from repro.models.config import ModelConfig, TrainConfig
from repro.models.costmodel import TransformerCostModel

# --- calibration constants -------------------------------------------------
# Fraction of the wafer the compiler may allocate (fabric/IO margin).
USABLE_FRACTION = 0.93
# Share of each kernel's grant that routes data rather than computing
# (Fig. 6 shows computation and transmission PEs in close proportion).
TRANSMISSION_FRACTION = 0.40
# Sustained fraction of per-PE peak a dataflow kernel achieves before
# inter-PE communication losses (see ``_comm_efficiency``).
DATAFLOW_EFFICIENCY = 0.80
# Configuration memory: base bytes per kernel + quadratic routing term.
CONFIG_BASE_PER_KERNEL = 20.0 * MB
CONFIG_QUADRATIC_PER_KERNEL2 = 1.4 * MB
# Pipeline occupancy: in-flight samples wanted per kernel for full rate,
# and the minimum depth below which compilation fails.
PIPELINE_DEPTH_FACTOR = 3.0
MIN_PIPELINE_DEPTH = 2.0


class WSECompiler:
    """Maps an LLM training workload onto the WSE-2 wafer."""

    def __init__(self, system: SystemSpec = CS2_SYSTEM) -> None:
        self.system = system
        self.chip = system.chip
        side = int(math.sqrt(self.chip.compute_units))
        self.grid_width = side
        self.grid_height = self.chip.compute_units // side

    # ------------------------------------------------------------------
    def compile(self, model: ModelConfig, train: TrainConfig,
                n_replicas: int = 1,
                mode: str = "pipeline",
                respect_caps: bool = True) -> CompileReport:
        """Compile; raises :class:`CompilationError` when the model cannot map.

        Args:
            model / train: the workload.
            n_replicas: intra-chip data-parallel replicas (Sec. VI-A3a).
            mode: ``"pipeline"`` (whole model resident) or
                ``"weight_streaming"`` (weights streamed from MemoryX).
            respect_caps: ``False`` disables the per-kernel scalability
                thresholds (the DESIGN.md ablation): every kernel then
                water-fills the whole wafer, which inflates allocation to
                the usable ceiling but pays the communication-efficiency
                penalty of oversized kernels.
        """
        return run_stages(self.compile_stages(
            model, train, unfingerprinted, n_replicas=n_replicas,
            mode=mode, respect_caps=respect_caps))

    def compile_stages(self, model: ModelConfig, train: TrainConfig,
                       fp_of: Callable[..., str | None],
                       n_replicas: int = 1,
                       mode: str = "pipeline",
                       respect_caps: bool = True) -> list[CompileStage]:
        """:meth:`compile` as a staged pipeline (graph → partition →
        placement → report).

        ``fp_of(name, parent, **params)`` supplies each stage's
        fingerprint (the backend adapter passes
        :meth:`~repro.core.backend.AcceleratorBackend.stage_fingerprint`;
        plain ``compile`` passes
        :func:`~repro.core.stages.unfingerprinted`). The graph stage
        keys only on the model/train digests, so a replica or mode
        sweep re-extracts kernels exactly once; allocation adds the
        hardware and replica geometry, placement is pure downstream of
        it, and only the report stage sees ``mode``.
        """
        if n_replicas < 1:
            raise ConfigurationError("n_replicas must be >= 1")
        if mode not in ("pipeline", "weight_streaming"):
            raise ConfigurationError(f"unknown WSE mode: {mode!r}")
        if train.batch_size < n_replicas:
            raise ConfigurationError(
                "batch size must be at least the replica count")

        def build_graph(_prev: None) -> tuple[Kernel, ...]:
            return tuple(extract_kernels(model, train))

        def partition(kernels: tuple[Kernel, ...]) -> dict[str, Any]:
            usable_height = max(1,
                                int(self.grid_height * USABLE_FRACTION))
            region_width = max(1, self.grid_width // n_replicas)
            region_pes = float(region_width * usable_height)
            grants = self._allocate(kernels, region_pes,
                                    respect_caps=respect_caps)
            return {"kernels": kernels, "grants": grants,
                    "region_width": region_width,
                    "usable_height": usable_height}

        def place(part: dict[str, Any]) -> dict[str, Any]:
            placer = WaferPlacer(part["region_width"],
                                 part["usable_height"])
            grants, placement = self._fit_placement(
                placer, part["kernels"], part["grants"])
            return {**part, "grants": grants, "placement": placement}

        def report(part: dict[str, Any]) -> CompileReport:
            kernels = part["kernels"]
            grants = part["grants"]
            memory, pipeline_eff, depth = self._plan_memory(
                model, train, kernels, n_replicas, mode)

            rate = (self.chip.flops_per_compute_unit
                    * train.precision.compute.compute_scale / 2.0
                    * DATAFLOW_EFFICIENCY)
            tasks: list[TaskProfile] = []
            service_times: dict[str, float] = {}
            for replica in range(n_replicas):
                prefix = f"r{replica}/" if n_replicas > 1 else ""
                for kernel in kernels:
                    grant = grants[kernel.name]
                    compute = grant * (1.0 - TRANSMISSION_FRACTION)
                    trans = grant * TRANSMISSION_FRACTION
                    efficiency = self._comm_efficiency(grant,
                                                       kernel.cap_pes)
                    service = kernel.flops_per_sample / (
                        compute * rate * efficiency)
                    if replica == 0:
                        service_times[kernel.name] = service
                    tasks.append(TaskProfile(
                        name=prefix + kernel.name,
                        compute_units=compute,
                        memory_units=compute,
                        role="compute",
                        throughput=1.0 / service,
                        flops=kernel.flops_per_sample,
                        meta={"kind": kernel.kind,
                              "layer": kernel.layer_index},
                    ))
                    tasks.append(TaskProfile(
                        name=prefix + kernel.name + ".tx",
                        compute_units=trans,
                        memory_units=trans,
                        role="transmission",
                        meta={"kind": kernel.kind,
                              "layer": kernel.layer_index},
                    ))

            per_replica_batch = max(1, train.batch_size // n_replicas)
            t_max = max(service_times.values())
            fill = sum(service_times.values())
            step_estimate = fill + (per_replica_batch - 1) * t_max
            step_estimate /= pipeline_eff

            phase = PhaseProfile(name="graph", runtime=step_estimate,
                                 tasks=tuple(tasks))
            return CompileReport(
                platform=self.system.name,
                model=model,
                train=train,
                phases=(phase,),
                total_compute_units=float(self.chip.compute_units),
                total_memory_units=float(self.chip.memory_units),
                shared_memory=memory,
                global_memory=memory,  # on-chip tier plays both roles
                n_chips=1,
                meta={
                    "mode": mode,
                    "n_replicas": n_replicas,
                    "kernel_order": [k.name for k in kernels],
                    "service_times": service_times,
                    "pipeline_efficiency": pipeline_eff,
                    "pipeline_depth": depth,
                    "per_replica_batch": per_replica_batch,
                    "placement": part["placement"],
                    "flops_per_sample": sum(
                        k.flops_per_sample for k in kernels),
                    "kernel_weight_bytes": {
                        k.name: k.weight_bytes for k in kernels},
                    "boundary_bytes": {
                        k.name: k.boundary_bytes for k in kernels},
                },
            )

        graph_fp = fp_of(STAGE_GRAPH, "",
                         model=model.content_digest(),
                         train=train.content_digest())
        partition_fp = fp_of(STAGE_PARTITION, graph_fp,
                             system=hardware_digest(self),
                             n_replicas=n_replicas,
                             respect_caps=respect_caps)
        placement_fp = fp_of(STAGE_PLACEMENT, partition_fp)
        report_fp = fp_of(STAGE_REPORT, placement_fp, mode=mode)
        return [
            CompileStage(STAGE_GRAPH, graph_fp, build_graph),
            CompileStage(STAGE_PARTITION, partition_fp, partition),
            CompileStage(STAGE_PLACEMENT, placement_fp, place),
            CompileStage(STAGE_REPORT, report_fp, report),
        ]

    # ------------------------------------------------------------------
    @staticmethod
    def _comm_efficiency(grant: float, cap: float) -> float:
        """Per-PE efficiency at a given grant: ``1 / (1 + p / cap)``.

        Inter-PE communication overhead grows with kernel footprint, so
        PEs in a smaller kernel each do more useful work. At the
        scalability cap the efficiency is 0.5 — the diminishing-returns
        point where the compiler stops growing a kernel (Sec. V-A1). This
        is also why intra-chip data parallelism speeds up models that
        already fill the wafer (Fig. 11a): two half-size replicas run
        more efficiently than one full-size graph.
        """
        if cap <= 0:
            return 1.0
        return 1.0 / (1.0 + grant / cap)

    def _allocate(self, kernels: list[Kernel], budget: float,
                  respect_caps: bool = True) -> dict[str, float]:
        """Cap-then-water-fill PE allocation (see module docstring)."""
        floors = {k.name: min(k.min_pes, k.cap_pes) for k in kernels}
        caps = {k.name: k.cap_pes if respect_caps else budget
                for k in kernels}
        if sum(floors.values()) > budget:
            raise OutOfMemoryError(
                "kernel weight floors exceed the wafer region: "
                f"{sum(floors.values()):.0f} PEs needed, {budget:.0f} available",
                required_bytes=sum(floors.values()),
                available_bytes=budget,
            )
        if sum(caps.values()) <= budget:
            return dict(caps)
        # Water-fill: grant ~ lambda * flops, clamped to [floor, cap].
        lo, hi = 0.0, budget / max(min(k.flops_per_sample for k in kernels), 1.0)

        def total(lam: float) -> float:
            return sum(
                min(caps[k.name], max(floors[k.name],
                                      lam * k.flops_per_sample))
                for k in kernels
            )

        for _ in range(80):
            mid = (lo + hi) / 2.0
            if total(mid) < budget:
                lo = mid
            else:
                hi = mid
        lam = (lo + hi) / 2.0
        return {
            k.name: min(caps[k.name],
                        max(floors[k.name], lam * k.flops_per_sample))
            for k in kernels
        }

    def _fit_placement(self, placer: WaferPlacer, kernels: list[Kernel],
                       grants: dict[str, float]
                       ) -> tuple[dict[str, float], Placement]:
        """Shrink grants by the packing efficiency and return placed sizes."""
        demands = [(k.name, grants[k.name]) for k in kernels]
        efficiency = placer.packing_efficiency(demands)
        if efficiency <= 0:
            raise CompilationError(
                "placement failed: kernels cannot be packed onto the wafer")
        scaled = [(name, pes * efficiency) for name, pes in demands]
        placement = placer.place(scaled)
        placed = {rect.name: float(rect.pes) for rect in placement.rects}
        missing = [k.name for k in kernels if k.name not in placed]
        if missing:  # pragma: no cover - placement records all rects
            raise CompilationError(f"kernels not placed: {missing}")
        return placed, placement

    def _plan_memory(self, model: ModelConfig, train: TrainConfig,
                     kernels: list[Kernel], n_replicas: int,
                     mode: str) -> tuple[MemoryBreakdown, float, float]:
        """Memory breakdown, pipeline efficiency, and in-flight depth.

        Raises :class:`OutOfMemoryError` when configuration + training
        state leave no room for even :data:`MIN_PIPELINE_DEPTH` in-flight
        samples — the Table I "Fail" at 78 layers.
        """
        cost = TransformerCostModel(model)
        capacity = self.chip.shared_memory.capacity_bytes
        n_kernels = len(kernels)
        config = n_replicas * (
            CONFIG_BASE_PER_KERNEL * n_kernels
            + CONFIG_QUADRATIC_PER_KERNEL2 * n_kernels ** 2
        )
        weights = cost.weight_bytes(train) + cost.gradient_bytes(train)
        optimizer = cost.optimizer_state_bytes(train)
        if mode == "weight_streaming":
            # Weights and optimizer state live off-chip in MemoryX; only a
            # working copy of the active layer is resident.
            resident_state = (weights + optimizer) / max(model.n_layers, 1)
        else:
            resident_state = weights + optimizer
        resident_state *= n_replicas

        if train.training:
            # Each in-flight sample holds every kernel-boundary tensor
            # from its forward pass until its backward completes.
            per_sample = sum(k.boundary_bytes for k in kernels)
        else:
            # Inference consumes boundaries immediately: only a couple
            # of live tensors per in-flight sample.
            per_sample = 2.0 * max(k.boundary_bytes for k in kernels)
        fixed = config + resident_state
        available = capacity - fixed
        min_needed = MIN_PIPELINE_DEPTH * per_sample * n_replicas
        if available < min_needed:
            raise OutOfMemoryError(
                f"{model.name}: configuration ({config / 1e9:.1f} GB) and "
                f"training state ({resident_state / 1e9:.1f} GB) leave "
                f"{available / 1e9:.1f} GB, below the "
                f"{min_needed / 1e9:.2f} GB pipeline minimum",
                required_bytes=fixed + min_needed,
                available_bytes=capacity,
            )
        depth_max = available / (per_sample * n_replicas)
        depth_target = PIPELINE_DEPTH_FACTOR * n_kernels
        depth = min(depth_max, depth_target)
        pipeline_eff = min(1.0, depth_max / depth_target)
        activations = depth * per_sample * n_replicas
        breakdown = MemoryBreakdown(
            capacity_bytes=capacity,
            configuration_bytes=config,
            weight_bytes=(weights * n_replicas
                          if mode == "pipeline" else resident_state),
            activation_bytes=activations,
            optimizer_bytes=optimizer * n_replicas if mode == "pipeline" else 0.0,
        )
        return breakdown, pipeline_eff, depth

    # ------------------------------------------------------------------
    def max_layers(self, model: ModelConfig, train: TrainConfig,
                   upper: int = 256) -> int:
        """Largest layer count that still compiles (binary search).

        Reproduces the paper's scalability-limit finding ("supporting up
        to 72 decoder layers in our experiments").
        """
        lo, hi = 0, upper
        while lo < hi:
            mid = (lo + hi + 1) // 2
            try:
                self.compile(model.with_layers(mid), train)
            except CompilationError:
                hi = mid - 1
            else:
                lo = mid
        return lo


def meta_of(report: CompileReport, key: str) -> Any:
    """Typed-ish accessor for WSE compile metadata."""
    return report.meta[key]
