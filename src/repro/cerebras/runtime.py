"""WSE-2 runtime: discrete-event execution of the kernel pipeline.

Samples flow through the kernel chain in a data-driven fashion; the
number of in-flight samples is bounded by the pipeline depth the memory
planner granted. Steady-state throughput is therefore
``min(1/t_bottleneck, depth / sum(t_k))`` — which is what produces the
paper's batch-size saturation on WSE (Fig. 12: strong gains below ~200,
little beyond) and the TFLOPs collapse when configuration memory starves
the pipeline (Fig. 9a).
"""

from __future__ import annotations

import math

from repro.common.errors import SimulationError
from repro.core.backend import CompileReport, PhaseProfile, RunReport, TaskProfile
from repro.hardware.specs import CS2_SYSTEM, SystemSpec
from repro.sim.engine import Resource, Simulator
from repro.sim.trace import Trace

# Relative efficiency of weight-streaming execution (layer-sequential
# scheduling leaves bubbles between layer swaps) — calibrated to the
# paper's ~20% throughput reduction (Sec. VI-A3a).
WEIGHT_STREAMING_EFFICIENCY = 0.8
# Fraction of a PE's fabric links available at a replica boundary.
FABRIC_LINKS_PER_PE = 5


class WSERuntime:
    """Executes a compiled WSE-2 mapping and measures throughput."""

    def __init__(self, system: SystemSpec = CS2_SYSTEM) -> None:
        self.system = system
        self.chip = system.chip

    # ------------------------------------------------------------------
    def run(self, compiled: CompileReport) -> RunReport:
        """Simulate one optimizer step; returns measured results."""
        meta = compiled.meta
        order: list[str] = meta["kernel_order"]
        service: dict[str, float] = meta["service_times"]
        depth = max(1, int(meta["pipeline_depth"]))
        batch = int(meta["per_replica_batch"])
        n_replicas = int(meta["n_replicas"])
        mode = meta["mode"]

        trace = Trace()
        pipeline_time = self._simulate_pipeline(order, service, depth,
                                                batch, trace)
        sync_time = self._replica_sync_time(compiled, n_replicas)
        step_time = pipeline_time + sync_time
        if mode == "weight_streaming":
            step_time = max(step_time / WEIGHT_STREAMING_EFFICIENCY,
                            self._stream_time(compiled))

        samples = batch * n_replicas
        samples_per_s = samples / step_time
        train = compiled.train
        tokens_per_s = samples_per_s * train.seq_len
        flops_per_sample = meta["flops_per_sample"]
        achieved = samples_per_s * flops_per_sample

        tasks = self._measured_tasks(compiled, trace)
        phase = PhaseProfile(name="graph", runtime=step_time, tasks=tasks)
        weight_bytes = sum(meta["kernel_weight_bytes"].values())
        boundary = sum(meta["boundary_bytes"].values())
        traffic = samples * boundary * 2.0 + weight_bytes * 3.0
        return RunReport(
            platform=compiled.platform,
            tokens_per_second=tokens_per_s,
            samples_per_second=samples_per_s,
            step_time=step_time,
            achieved_flops=achieved,
            phases=(phase,),
            global_traffic_bytes_per_step=traffic,
            trace=trace,
            meta={
                "mode": mode,
                "n_replicas": n_replicas,
                "pipeline_time": pipeline_time,
                "sync_time": sync_time,
                "compute_fraction": pipeline_time / step_time,
            },
        )

    # ------------------------------------------------------------------
    def _simulate_pipeline(self, order: list[str],
                           service: dict[str, float], depth: int,
                           batch: int, trace: Trace) -> float:
        """Tandem-queue DES with bounded work-in-progress."""
        if not order:
            raise SimulationError("empty kernel pipeline")
        sim = Simulator()
        stages = [Resource(sim, capacity=1, name=name) for name in order]
        in_flight = {"count": 0, "next_sample": 0, "done": 0}

        def admit() -> None:
            while (in_flight["count"] < depth
                   and in_flight["next_sample"] < batch):
                sample = in_flight["next_sample"]
                in_flight["next_sample"] += 1
                in_flight["count"] += 1
                enter_stage(sample, 0)

        def enter_stage(sample: int, idx: int) -> None:
            stages[idx].request(start_service, sample, idx)

        def start_service(sample: int, idx: int) -> None:
            start = sim.now
            sim.schedule(service[order[idx]], finish_service,
                         sample, idx, start)

        def finish_service(sample: int, idx: int, start: float) -> None:
            trace.record(start, sim.now, order[idx], category="compute",
                         item=sample)
            stages[idx].release()
            if idx + 1 < len(stages):
                enter_stage(sample, idx + 1)
            else:
                in_flight["count"] -= 1
                in_flight["done"] += 1
                admit()

        sim.schedule(0.0, admit)
        sim.run()
        if in_flight["done"] != batch:
            raise SimulationError(
                f"pipeline completed {in_flight['done']} of {batch} samples")
        return sim.now

    # ------------------------------------------------------------------
    def _replica_sync_time(self, compiled: CompileReport,
                           n_replicas: int) -> float:
        """Ring all-reduce of gradients across replica boundaries.

        Each boundary is a column of PEs whose fabric links carry the
        reduction; with two replicas the paper notes placement makes the
        communication distance effectively zero, and the cost indeed
        stays negligible here, growing with replica count.
        """
        if n_replicas <= 1:
            return 0.0
        grad_bytes = sum(compiled.meta["kernel_weight_bytes"].values())
        per_link = self.chip.fabric_bandwidth / (
            self.chip.compute_units * FABRIC_LINKS_PER_PE)
        boundary_links = int(math.sqrt(self.chip.compute_units))
        boundary_bw = per_link * boundary_links
        volume = 2.0 * (n_replicas - 1) / n_replicas * grad_bytes
        # Beyond two replicas, optimal adjacency is no longer achievable
        # (Sec. VI-A3a): reductions relay through intermediate regions,
        # serializing across the replica chain.
        relay_hops = max(1, n_replicas - 1)
        return volume * relay_hops / boundary_bw

    def _stream_time(self, compiled: CompileReport) -> float:
        """Time to stream one full weight set from MemoryX per step."""
        weight_bytes = sum(compiled.meta["kernel_weight_bytes"].values())
        return weight_bytes / self.system.host_link_bandwidth

    def _measured_tasks(self, compiled: CompileReport,
                        trace: Trace) -> tuple[TaskProfile, ...]:
        """Compile-time tasks with throughput replaced by measured rates."""
        measured: list[TaskProfile] = []
        for task in compiled.phases[0].tasks:
            bare_name = task.name.split("/", 1)[-1]
            throughput = trace.task_throughput(bare_name)
            measured.append(TaskProfile(
                name=task.name,
                compute_units=task.compute_units,
                memory_units=task.memory_units,
                role=task.role,
                throughput=throughput if task.role == "compute" else 0.0,
                flops=task.flops,
                meta=dict(task.meta),
            ))
        return tuple(measured)
