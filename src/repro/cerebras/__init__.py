"""Cerebras CS-2 / WSE-2 simulator.

Models the execution strategy of paper Sec. III-A: the entire LLM is
compiled as one computation graph at layer granularity, each layer
becoming a kernel that receives a grant of processing elements (PEs);
data then propagates through the kernels in a pipelined, data-driven
fashion. The simulator reproduces the platform's observable behaviours:

* elastic PE allocation with per-kernel scalability limits (Table I,
  Fig. 6),
* configuration-memory growth that eventually kills large models
  (Fig. 9a, the 78-layer compile failure),
* intra-chip data parallelism via wafer partitioning (Fig. 11a),
* weight-streaming mode for models that exceed on-chip memory
  (Table III's PP column).
"""

from repro.cerebras.backend import (
    CerebrasBackend,
    FabricFaultError,
    PlacementFlakeError,
)
from repro.cerebras.compiler import WSECompiler
from repro.cerebras.kernels import Kernel, extract_kernels
from repro.cerebras.placement import Placement, WaferPlacer
from repro.cerebras.runtime import WSERuntime

__all__ = [
    "Kernel",
    "extract_kernels",
    "WSECompiler",
    "WaferPlacer",
    "Placement",
    "WSERuntime",
    "CerebrasBackend",
    "FabricFaultError",
    "PlacementFlakeError",
]
