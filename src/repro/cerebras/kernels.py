"""Kernel extraction: lowering a model into WSE-2 kernels.

The Cerebras compiler maps each layer to a kernel (paper Sec. III-A).
Training kernels fuse forward and backward work for the same weights —
the weights never move, so gradient computation runs on the same PE
region. We therefore extract, per decoder layer, an *attention* kernel
and an *FFN* kernel (fwd+bwd FLOPs combined), plus model-level
*embedding* and *head* kernels.

Each kernel carries a **scalability cap**: the PE count beyond which
extra PEs stop helping because inter-PE communication dominates
("each kernel function has an optimal PE allocation threshold",
Sec. V-A1). The cap follows an area/perimeter law — useful parallelism
grows as work^(2/3) — with a per-kind constant calibrated against
Table I's measured allocation ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import KB
from repro.models.config import ModelConfig, TrainConfig
from repro.models.costmodel import TransformerCostModel

# Calibration constants (see module docstring). The two scales reproduce
# Table I: with HS=768, one decoder layer caps at ~46k PEs and the LM-head
# kernel at ~234k PEs, giving the paper's 33% (L=1) and 60% (L=6) points.
CAP_SCALE_LAYER = 2.75e-3
CAP_SCALE_HEAD = 6.1e-3
CAP_EXPONENT = 2.0 / 3.0
# Fraction of a PE's 48 KB SRAM usable for kernel weights (the rest holds
# code, routing state, and buffers).
WEIGHT_SRAM_FRACTION = 0.5
PE_SRAM_BYTES = 48 * KB
MIN_KERNEL_PES = 4


@dataclass(frozen=True)
class Kernel:
    """One WSE-2 kernel: a layer-granularity unit of mapped work.

    Attributes:
        name: kernel identifier, e.g. ``attn[3]``.
        kind: ``attention`` / ``ffn`` / ``embedding`` / ``head``.
        layer_index: owning decoder layer, ``-1`` for model-level kernels.
        flops_per_sample: fwd+bwd FLOPs per training sample.
        weight_bytes: parameters resident in the kernel's PE region.
        boundary_bytes: activation bytes the kernel passes downstream per
            sample (drives transmission-PE needs and replica comms).
    """

    name: str
    kind: str
    layer_index: int
    flops_per_sample: float
    weight_bytes: float
    boundary_bytes: float

    @property
    def cap_pes(self) -> float:
        """Scalability limit: max useful PEs for this kernel."""
        scale = CAP_SCALE_HEAD if self.kind == "head" else CAP_SCALE_LAYER
        cap = scale * self.flops_per_sample ** CAP_EXPONENT
        return max(cap, self.min_pes)

    @property
    def min_pes(self) -> float:
        """Floor: PEs needed just to hold the kernel's weights in SRAM."""
        weight_floor = self.weight_bytes / (WEIGHT_SRAM_FRACTION * PE_SRAM_BYTES)
        return max(float(MIN_KERNEL_PES), weight_floor)


def extract_kernels(model: ModelConfig, train: TrainConfig) -> list[Kernel]:
    """Lower ``model`` into the kernel list the WSE compiler will place.

    Returned in dataflow order: embedding, per-layer attention/FFN pairs,
    head (final norm + LM head + loss). FLOPs are per-sample at the
    configured sequence length — forward plus backward (3x forward) for
    training configurations, forward only for inference.
    """
    cost = TransformerCostModel(model)
    h = model.hidden_size
    s = train.seq_len
    wbytes = train.precision.weight_bytes_per_param
    act = train.precision.activation_bytes_per_value
    hidden_boundary = s * h * act  # one (S, H) tensor per sample
    layer = cost.layer_params()

    # Per-sample forward FLOPs of the layer sub-kernels.
    attn_fwd = (
        2.0 * (h * h + 2.0 * h * model.kv_hidden) * s   # QKV projection
        + 2.0 * 2.0 * s * h * s * 0.5                    # causal attention
        + 2.0 * h * h * s                                # output projection
        + 5.0 * s * h                                    # layernorm
    )
    gate = 1.0 if model.uses_gated_ffn else 0.0
    ffn_fwd = (
        (2.0 + gate) * 2.0 * h * model.ffn_hidden * s    # up/gate/down
        + 4.0 * s * model.ffn_hidden                     # activation
        + 5.0 * s * h                                    # layernorm
    )
    embed_fwd = cost.embedding_forward_flops(train) / train.batch_size
    head_fwd = (cost.lm_head_forward_flops(train) / train.batch_size
                + 5.0 * s * h + 10.0 * s)

    mult = train.backward_multiplier
    norm_bytes = (2 * h if model.family == "gpt2" else h) * wbytes
    kernels = [
        Kernel(
            name="embedding",
            kind="embedding",
            layer_index=-1,
            flops_per_sample=mult * embed_fwd,
            weight_bytes=cost.embedding_params() * wbytes,
            boundary_bytes=hidden_boundary,
        )
    ]
    for i in range(model.n_layers):
        kernels.append(Kernel(
            name=f"attn[{i}]",
            kind="attention",
            layer_index=i,
            flops_per_sample=mult * attn_fwd,
            weight_bytes=layer.attention * wbytes + norm_bytes,
            boundary_bytes=hidden_boundary,
        ))
        kernels.append(Kernel(
            name=f"ffn[{i}]",
            kind="ffn",
            layer_index=i,
            flops_per_sample=mult * ffn_fwd,
            weight_bytes=layer.ffn * wbytes + norm_bytes,
            boundary_bytes=hidden_boundary,
        ))
    kernels.append(Kernel(
        name="head",
        kind="head",
        layer_index=-1,
        flops_per_sample=mult * head_fwd,
        weight_bytes=(cost.lm_head_params() + cost.final_norm_params())
        * wbytes,
        boundary_bytes=hidden_boundary,
    ))
    return kernels
