"""The Cerebras backend: DABench's view of the CS-2 system."""

from __future__ import annotations

from typing import Any

from repro.common.errors import TransientError
from repro.core.backend import AcceleratorBackend, CompileReport, RunReport
from repro.core.stages import CompileStage, run_stages
from repro.cerebras.compiler import WSECompiler
from repro.cerebras.runtime import WSERuntime
from repro.hardware.specs import CS2_SYSTEM, SystemSpec
from repro.models.config import ModelConfig, TrainConfig


class FabricFaultError(TransientError):
    """A wafer fabric/PE fault: a link or PE misbehaved mid-execution.

    The WSE carries spare PE rows precisely because single-PE faults are
    expected and recoverable; a re-run after remapping succeeds.
    """


class PlacementFlakeError(TransientError):
    """The placement service failed non-deterministically during compile."""


class CerebrasBackend(AcceleratorBackend):
    """CS-2 adapter for the DABench framework.

    ``compile`` options:

    * ``n_replicas`` — intra-chip data-parallel replica count (DP mode).
    * ``mode`` — ``"pipeline"`` (default) or ``"weight_streaming"``.
    """

    transient_errors = (TransientError, FabricFaultError,
                        PlacementFlakeError)
    # Audited for campaign concurrency: WSECompiler/WSERuntime hold only
    # constructor-time spec state, so concurrent compile/run is safe.
    thread_safe = True

    def __init__(self, system: SystemSpec = CS2_SYSTEM) -> None:
        super().__init__(system)
        self.compiler = WSECompiler(system)
        self.runtime = WSERuntime(system)

    def compile(self, model: ModelConfig, train: TrainConfig,
                **options: Any) -> CompileReport:
        return run_stages(self.compile_pipeline(model, train, **options))

    def compile_pipeline(self, model: ModelConfig, train: TrainConfig,
                         **options: Any) -> list[CompileStage]:
        if not self._staged_compile_intact(CerebrasBackend):
            return super().compile_pipeline(model, train, **options)
        return self.compiler.compile_stages(
            model, train, self.stage_fingerprint, **options)

    def run(self, compiled: CompileReport) -> RunReport:
        return self.runtime.run(compiled)
