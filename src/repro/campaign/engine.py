"""The pooled cell dispatcher behind every sweep and campaign.

A sweep is a list of independent cells; this module executes such a
list — sequentially or across a thread pool — with journaling, resume,
and deterministic result ordering. The higher layers
(:func:`~repro.workloads.sweeps.run_grid`, the Tier-2 analyzers, and
:class:`~repro.campaign.Campaign`) all reduce their work to
:class:`CellTask` lists and call :func:`run_cell_tasks`, so the
retry/journal/resume semantics cannot drift between entry points.

Guarantees:

* **Deterministic ordering** — results come back in task-list order,
  whatever order cells completed in.
* **Sequential fidelity** — with ``max_workers=1`` cells run inline in
  order, exactly like the pre-campaign harness (including progress
  callback ordering on a resumed run).
* **Crash tolerance** — each finished cell is journaled (fsynced)
  before its result is surfaced; a non-:class:`ReproError` escaping a
  cell (a harness bug, or an injected "kill") cancels undispatched
  cells, drains the running ones, and re-raises — journaled outcomes
  survive for the resume.
* **Backend serialization** — tasks carrying a ``serializer`` lock
  (backends audited ``thread_safe = False``) never overlap their
  backend calls, while their retries/backoffs still interleave freely.
"""

from __future__ import annotations

import threading
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.core.stages import run_stages
from repro.resilience.executor import CellOutcome, ResilientExecutor
from repro.resilience.journal import JournalEntry, ShardedJournal, SweepJournal

if TYPE_CHECKING:  # the scheduler module imports nothing from here
    from repro.cache import CompileCache, StageMemo
    from repro.campaign.scheduler import Scheduler
    from repro.observe import TraceRecorder


@dataclass(frozen=True)
class CellTask:
    """One independent unit of sweep work.

    Attributes:
        key: the cell's journal key (unique within the task list).
        compile_fn: zero-arg callable producing the compile artifact.
        run_fn: optional callable taking the compile artifact.
        is_transient: the owning backend's fault taxonomy.
        executor: the retry/deadline/breaker engine for this cell
            (lanes of a campaign share one executor per backend).
        summary_extra: optional hook computing extra journal-summary
            fields from a successful outcome (e.g. allocation ratios)
            so a resume can restore them without re-executing.
        serializer: optional lock serializing the backend calls of a
            non-thread-safe backend.
        cost_hint: analytic prediction of the cell's harness seconds
            (see :func:`~repro.campaign.scheduler.estimate_cell_seconds`);
            ``None`` means unpriced.
        family: workload-family key cost observations generalize over
            (the campaign stamps ``"<lane>::<model family>"``).
        fingerprint: the cell's content-addressed cache key (see
            :func:`repro.cache.cell_fingerprint`); ``None`` means the
            cell bypasses any configured compile cache.
        stages_fn: zero-arg callable building the cell's staged compile
            pipeline (a :class:`~repro.core.stages.CompileStage` list).
            When the engine runs with a :class:`~repro.cache.StageMemo`
            this replaces ``compile_fn`` so stage artifacts are shared
            across cells; without a memo ``compile_fn`` runs as before.
    """

    key: str
    compile_fn: Callable[[], Any]
    run_fn: Callable[[Any], Any] | None = None
    is_transient: Callable[[BaseException], bool] | None = None
    executor: ResilientExecutor | None = None
    summary_extra: Callable[[CellOutcome],
                            dict[str, Any] | None] | None = None
    serializer: threading.Lock | None = None
    cost_hint: float | None = None
    family: str = ""
    fingerprint: str | None = None
    stages_fn: Callable[[], list[Any]] | None = None


@dataclass(frozen=True)
class CellResult:
    """What the engine produced for one task, at its input index.

    Executed cells carry the live :class:`CellOutcome` (and the
    :class:`JournalEntry` that was recorded, when journaling); resumed
    cells carry only the journaled entry.
    """

    index: int
    key: str
    outcome: CellOutcome | None
    entry: JournalEntry | None
    resumed: bool

    @property
    def status(self) -> str:
        if self.outcome is not None:
            return self.outcome.status
        assert self.entry is not None
        return self.entry.status

    @property
    def attempts(self) -> int:
        if self.outcome is not None:
            return max(1, self.outcome.attempts)
        assert self.entry is not None
        return self.entry.attempts

    @property
    def elapsed(self) -> float:
        """Injected-clock seconds this run spent on the cell (0 if
        resumed)."""
        return self.outcome.elapsed if self.outcome is not None else 0.0


def _locked(fn: Callable[..., Any],
            lock: threading.Lock | None) -> Callable[..., Any]:
    if lock is None:
        return fn

    def guarded(*args: Any) -> Any:
        with lock:
            return fn(*args)

    return guarded


def _execute(task: CellTask, index: int,
             journal: SweepJournal | ShardedJournal | None,
             fallback: ResilientExecutor,
             tracer: "TraceRecorder | None" = None,
             cache: "CompileCache | None" = None,
             memo: "StageMemo | None" = None) -> CellResult:
    outcome = None
    if cache is not None:
        from repro.cache import cached_outcome
        outcome = cached_outcome(cache, task.key, task.fingerprint,
                                 tracer)
    replayed = outcome is not None
    if outcome is None:
        executor = task.executor if task.executor is not None else fallback
        compile_fn = task.compile_fn
        if memo is not None and task.stages_fn is not None:
            stages_fn = task.stages_fn

            def compile_fn() -> Any:
                return run_stages(stages_fn(), memo, key=task.key,
                                  tracer=tracer)
        run_fn = task.run_fn
        outcome = executor.execute(
            task.key,
            _locked(compile_fn, task.serializer),
            _locked(run_fn, task.serializer) if run_fn is not None else None,
            is_transient=task.is_transient,
        )
    entry = None
    if journal is not None:
        extra = None
        if task.summary_extra is not None:
            extra = task.summary_extra(outcome)
        entry = outcome.journal_entry(extra)
        journal.record(entry)
    if tracer is not None:
        tracer.emit("cell", key=task.key, status=outcome.status,
                    attempt=outcome.attempts, duration=outcome.elapsed)
    if cache is not None and not replayed:
        from repro.cache import store_outcome
        store_outcome(cache, task.fingerprint, outcome)
    return CellResult(index=index, key=task.key, outcome=outcome,
                      entry=entry, resumed=False)


def run_cell_tasks(
    tasks: list[CellTask], *,
    max_workers: int = 1,
    journal: SweepJournal | ShardedJournal | None = None,
    resume: bool = False,
    retry_failed: bool = False,
    on_result: Callable[[CellResult], None] | None = None,
    scheduler: "Scheduler | None" = None,
    tracer: "TraceRecorder | None" = None,
    cache: "CompileCache | None" = None,
    memo: "StageMemo | None" = None,
) -> list[CellResult]:
    """Execute every task; return results in task order.

    ``on_result`` fires once per cell as it resolves (resumed cells
    resolve immediately). Under ``max_workers=1`` that is strict task
    order; under a pool it is completion order — still exactly once
    per cell.

    ``scheduler`` (a :class:`~repro.campaign.scheduler.Scheduler`)
    reorders *dispatch* only: it picks which pending cell each free
    worker takes next and is told what every cell actually cost.
    Results, journal keys, and resume behaviour are identical under
    every schedule; a non-lane-major schedule with ``max_workers=1``
    executes cells in predicted-cost order, so ``on_result`` fires in
    dispatch order rather than task order (resumed cells still resolve
    first, in task order).

    ``tracer`` (a :class:`~repro.observe.TraceRecorder`) records the
    dispatch/resume/cell lifecycle as JSONL trace events — pure
    telemetry, never touching results or the journal.

    ``cache`` (a :class:`~repro.cache.CompileCache`) replays
    fingerprinted cells read-through and publishes clean first-attempt
    successes; replayed cells journal exactly what a cold execution
    would have. Whatever path the drain takes, a scheduler's run
    ledger is flushed once on the way out (batched persistence — see
    :meth:`~repro.observe.RunLedger.flush`).

    ``memo`` (a :class:`~repro.cache.StageMemo`) memoizes *stage*
    artifacts across cells that carry a ``stages_fn`` — the
    compile-side complement of ``cache``, sharing upstream work (graph
    build, partitioning) between cells that differ only downstream.
    """
    journaled: dict[str, JournalEntry] = {}
    if resume and journal is not None:
        journaled = journal.load()

    results: list[CellResult | None] = [None] * len(tasks)
    pending: list[tuple[int, CellTask]] = []
    for index, task in enumerate(tasks):
        entry = journaled.get(task.key)
        if (entry is not None and entry.finished
                and not (retry_failed and entry.failed)):
            results[index] = CellResult(index=index, key=task.key,
                                        outcome=None, entry=entry,
                                        resumed=True)
            if tracer is not None:
                tracer.emit("resume", key=task.key, status=entry.status)
        else:
            pending.append((index, task))

    fallback = ResilientExecutor()

    try:
        if max_workers <= 1 or len(pending) <= 1:
            if scheduler is None or scheduler.is_lane_major:
                # The pre-scheduler sequential path: strict task order,
                # resumed callbacks interleaved at their positions. A
                # lane-major scheduler observes each cell but never
                # reorders (its pick is always the queue head).
                queue = list(pending)
                for index, task in enumerate(tasks):
                    result = results[index]
                    if result is None:
                        if scheduler is not None:
                            queue.pop(scheduler.pick(queue))
                        if tracer is not None:
                            tracer.emit("dispatch", key=task.key)
                        result = _execute(task, index, journal, fallback,
                                          tracer, cache, memo)
                        results[index] = result
                        if scheduler is not None:
                            scheduler.observe(task, result.elapsed)
                    if on_result is not None:
                        on_result(result)
                return [r for r in results if r is not None]
            # Cost-ordered sequential run: resumed cells resolve first
            # (in task order), then cells execute in scheduler order.
            if on_result is not None:
                for result in results:
                    if result is not None:
                        on_result(result)
            queue = list(pending)
            while queue:
                index, task = queue.pop(scheduler.pick(queue))
                if tracer is not None:
                    tracer.emit("dispatch", key=task.key)
                result = _execute(task, index, journal, fallback, tracer,
                                  cache, memo)
                results[index] = result
                scheduler.observe(task, result.elapsed)
                if on_result is not None:
                    on_result(result)
            return [r for r in results if r is not None]

        # Resumed cells resolve first, in order; executed cells as
        # completed.
        if on_result is not None:
            for result in results:
                if result is not None:
                    on_result(result)

        if scheduler is None:
            return _run_pooled(pending, results, max_workers, journal,
                               fallback, on_result, tracer=tracer,
                               cache=cache, memo=memo)
        return _run_pooled_scheduled(pending, results, max_workers,
                                     journal, fallback, on_result,
                                     scheduler, tracer=tracer, cache=cache,
                                     memo=memo)
    finally:
        if scheduler is not None:
            scheduler.flush()


def _thread_pool(workers: int) -> ThreadPoolExecutor:
    return ThreadPoolExecutor(max_workers=workers,
                              thread_name_prefix="campaign")


def _run_pooled(
    pending: list[tuple[int, CellTask]],
    results: list[CellResult | None],
    max_workers: int,
    journal: SweepJournal | ShardedJournal | None,
    fallback: ResilientExecutor | None,
    on_result: Callable[[CellResult], None] | None,
    pool_factory: Callable[[int], Any] = _thread_pool,
    submit_fn: Callable[..., Any] | None = None,
    tracer: "TraceRecorder | None" = None,
    cache: "CompileCache | None" = None,
    memo: "StageMemo | None" = None,
) -> list[CellResult]:
    """The unscheduled pool: submit everything, collect as completed.

    ``pool_factory`` / ``submit_fn`` let
    :mod:`repro.campaign.process` reuse this drain (identical
    error/cancel/callback semantics) over a process pool executing
    picklable cell specs instead of in-process tasks.
    """
    if submit_fn is None:
        def submit_fn(pool: Any, index: int, task: CellTask) -> Any:
            return pool.submit(_execute, task, index, journal, fallback,
                               tracer, cache, memo)

    def dispatch(pool: Any, index: int, task: CellTask) -> Any:
        if tracer is not None:
            tracer.emit("dispatch", key=task.key)
        return submit_fn(pool, index, task)
    first_error: BaseException | None = None
    with pool_factory(min(max_workers, len(pending))) as pool:
        futures = {dispatch(pool, index, task)
                   for index, task in pending}
        while futures:
            done, futures = wait(futures, return_when=FIRST_COMPLETED)
            for future in done:
                if future.cancelled():
                    continue
                try:
                    result = future.result()
                except BaseException as exc:  # noqa: BLE001 — re-raised
                    if first_error is None:
                        first_error = exc
                        for other in futures:
                            other.cancel()
                    continue
                results[result.index] = result
                if on_result is not None and first_error is None:
                    on_result(result)
    if first_error is not None:
        raise first_error
    return [r for r in results if r is not None]


def _run_pooled_scheduled(
    pending: list[tuple[int, CellTask]],
    results: list[CellResult | None],
    max_workers: int,
    journal: SweepJournal | ShardedJournal | None,
    fallback: ResilientExecutor | None,
    on_result: Callable[[CellResult], None] | None,
    scheduler: "Scheduler",
    pool_factory: Callable[[int], Any] = _thread_pool,
    submit_fn: Callable[..., Any] | None = None,
    tracer: "TraceRecorder | None" = None,
    cache: "CompileCache | None" = None,
    memo: "StageMemo | None" = None,
) -> list[CellResult]:
    """The scheduled pool: incremental dispatch, one pick per free slot.

    Cells are submitted one at a time as workers free up, so an online
    predictor's observations from finished cells inform which pending
    cell is picked next. Lane-major picks are always the queue head —
    FIFO, exactly the dispatch order of the submit-everything pool. A
    harness error (non-:class:`~repro.common.errors.ReproError`) stops
    further dispatch, drains the in-flight cells, and re-raises, same
    as the unscheduled pool. ``pool_factory`` / ``submit_fn`` swap the
    pool exactly as in :func:`_run_pooled`.
    """
    if submit_fn is None:
        def submit_fn(pool: Any, index: int, task: CellTask) -> Any:
            return pool.submit(_execute, task, index, journal, fallback,
                               tracer, cache, memo)
    first_error: BaseException | None = None
    queue = list(pending)
    workers = min(max_workers, len(pending))
    with pool_factory(workers) as pool:
        inflight: dict[Any, CellTask] = {}

        def submit_next() -> None:
            index, task = queue.pop(scheduler.pick(queue))
            if tracer is not None:
                tracer.emit("dispatch", key=task.key)
            inflight[submit_fn(pool, index, task)] = task
        while queue and len(inflight) < workers:
            submit_next()
        while inflight:
            done, _ = wait(inflight, return_when=FIRST_COMPLETED)
            for future in done:
                task = inflight.pop(future)
                try:
                    result = future.result()
                except BaseException as exc:  # noqa: BLE001 — re-raised
                    if first_error is None:
                        first_error = exc
                        queue.clear()
                    continue
                results[result.index] = result
                if first_error is None:
                    scheduler.observe(task, result.elapsed)
                    if on_result is not None:
                        on_result(result)
                    while queue and len(inflight) < workers:
                        submit_next()
    if first_error is not None:
        raise first_error
    return [r for r in results if r is not None]
