"""Process-based campaign dispatch: picklable cells, per-process state.

Thread dispatch (:func:`~repro.campaign.engine.run_cell_tasks`) shares
one address space, so tasks can carry closures and every worker writes
the same journal instance. The simulator backends, though, are pure
Python — CPU-bound cells serialize on the GIL and a thread pool buys
no wall-clock at all. This module supplies the process path:

* :class:`CellSpec` — a *picklable* description of one cell (no
  closures): key, lane, (model, train, options), and the cost
  hint/family the scheduler prices it by;
* :class:`WorkerSpec` — everything a worker process needs to rebuild
  the harness once: the lane backends plus the retry / deadline /
  breaker settings of the :class:`~repro.resilience.ExecutionPolicy`;
* :func:`run_cell_specs` — the parent-side engine. It resume-skips
  from the journal exactly like the thread engine, then drives a
  :class:`~concurrent.futures.ProcessPoolExecutor` through the same
  drain loops (spec-ordered results, exactly-once callbacks, identical
  error/cancel semantics).

Each worker process builds its own
:class:`~repro.resilience.ResilientExecutor` + circuit breaker per
lane and journals finished cells into its own
:class:`~repro.resilience.ShardedJournal` shard — the journal's
atomic generation claim guarantees the processes never share a file,
and the canonical ``merged_text()`` is byte-identical to a sequential
run's. Full :class:`~repro.resilience.CellOutcome` objects (compile
and run reports included) travel back over the results pipe, so the
parent's results — and the scheduler's elapsed-seconds feedback — are
exactly what thread dispatch would have produced.

Known limits (enforced with :class:`ConfigurationError` up front):
backends and fault plans must pickle; the journal must be sharded (a
single :class:`~repro.resilience.SweepJournal` file cannot take
appends from several processes); injected clocks and pre-built
executors/breakers cannot cross a process boundary. Breaker state
lives in the workers, so the parent-side health table reports no trips
for process-dispatched lanes.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.campaign.engine import (
    CellResult,
    _run_pooled,
    _run_pooled_scheduled,
)
from repro.campaign.supervisor import write_heartbeat
from repro.common.errors import ConfigurationError
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.executor import ResilientExecutor
from repro.resilience.journal import JournalEntry, ShardedJournal
from repro.resilience.retry import RetryPolicy

if TYPE_CHECKING:
    from repro.campaign.scheduler import Scheduler
    from repro.campaign.supervisor import Supervisor
    from repro.core.backend import AcceleratorBackend
    from repro.models.config import ModelConfig, TrainConfig
    from repro.resilience.policy import ExecutionPolicy

__all__ = [
    "CellSpec",
    "WorkerSpec",
    "CampaignWorker",
    "run_cell_specs",
    "check_process_policy",
]


@dataclass(frozen=True)
class CellSpec:
    """One cell as pure data — the process-dispatch unit of work.

    Duck-types with :class:`~repro.campaign.engine.CellTask` where the
    scheduler is concerned (``key`` / ``cost_hint`` / ``family``), but
    carries the (model, train, options) triple instead of closures so
    it can cross a process boundary.
    """

    key: str
    lane: str
    model: "ModelConfig"
    train: "TrainConfig"
    options: dict[str, Any] = field(default_factory=dict)
    measure: bool = True
    cost_hint: float | None = None
    family: str = ""
    #: Content-addressed cache key (see
    #: :func:`repro.cache.cell_fingerprint`); ``None`` bypasses any
    #: configured compile cache.
    fingerprint: str | None = None


@dataclass(frozen=True)
class WorkerSpec:
    """The seed a worker process rebuilds its harness from.

    One :class:`WorkerSpec` describes every lane, so a single pool
    serves a whole multi-backend campaign; ``breakers`` mirrors
    whether the policy asked for circuit breaking (campaigns always
    do). ``journal_dir`` being ``None`` means unjournaled.
    """

    backends: "dict[str, AcceleratorBackend]"
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    deadline: float | None = None
    breakers: bool = True
    breaker_threshold: int = 5
    breaker_reset: float = 300.0
    journal_dir: str | None = None
    journal_prefix: str = "shard"
    #: Trace-shard directory (``None`` = tracing off) and the parent's
    #: run token, so every worker's shards group under one campaign.
    trace_dir: str | None = None
    trace_run: str = ""
    #: Compile-cache directory (``None`` = caching off). Workers open
    #: the cache read-through and publish clean first-attempt results
    #: with O_EXCL-style atomic writes, so concurrent workers never
    #: corrupt an entry; eviction stays parent-side.
    cache_dir: str | None = None
    #: Memoize compile-stage artifacts in each worker (spilling to
    #: ``cache_dir``'s stage tier when caching is on, so workers share
    #: upstream work through the filesystem).
    stage_memo: bool = True


class CampaignWorker:
    """Per-process harness: executors, breakers, and a journal shard.

    Built once per worker process by the pool initializer; every cell
    the process executes reuses the same per-lane executor (so retries
    and breaker state accumulate exactly as they would on a thread)
    and appends to the same journal generation. Worker processes are
    single-threaded, so non-thread-safe backends need no serializer
    here.
    """

    def __init__(self, spec: WorkerSpec) -> None:
        self.spec = spec
        self.journal = (ShardedJournal(spec.journal_dir,
                                       spec.journal_prefix)
                        if spec.journal_dir is not None else None)
        self.tracer = None
        if spec.trace_dir is not None:
            from repro.observe import TraceRecorder
            self.tracer = TraceRecorder(spec.trace_dir,
                                        run=spec.trace_run or None)
        self.cache = None
        if spec.cache_dir is not None:
            from repro.cache import CompileCache
            self.cache = CompileCache(spec.cache_dir)
        self.memo = None
        if spec.stage_memo:
            from repro.cache import StageMemo
            self.memo = StageMemo(spill=self.cache)
        self.executors: dict[str, ResilientExecutor] = {}
        for label in spec.backends:
            breaker = None
            if spec.breakers:
                breaker = CircuitBreaker(
                    label, failure_threshold=spec.breaker_threshold,
                    reset_timeout=spec.breaker_reset)
            self.executors[label] = ResilientExecutor(
                retry=spec.retry, cell_timeout=spec.deadline,
                breaker=breaker, tracer=self.tracer)

    def execute(self, index: int, cell: CellSpec) -> CellResult:
        """Run one cell to a journaled :class:`CellResult`."""
        outcome = None
        fingerprint = getattr(cell, "fingerprint", None)
        if self.cache is not None:
            from repro.cache import cached_outcome
            outcome = cached_outcome(self.cache, cell.key, fingerprint,
                                     self.tracer)
        replayed = outcome is not None
        if outcome is None:
            backend = self.spec.backends[cell.lane]
            run_fn = ((lambda compiled: backend.run(compiled))
                      if cell.measure else None)
            if self.memo is not None:
                from repro.core.stages import run_stages

                def compile_fn() -> Any:
                    return run_stages(
                        backend.compile_pipeline(cell.model, cell.train,
                                                 **cell.options),
                        self.memo, key=cell.key, tracer=self.tracer)
            else:
                def compile_fn() -> Any:
                    return backend.compile(cell.model, cell.train,
                                           **cell.options)
            outcome = self.executors[cell.lane].execute(
                cell.key,
                compile_fn,
                run_fn,
                is_transient=backend.is_transient,
            )
        entry: JournalEntry | None = None
        if self.journal is not None:
            entry = outcome.journal_entry()
            self.journal.record(entry)
        if self.tracer is not None:
            self.tracer.emit("cell", key=cell.key,
                             status=outcome.status,
                             attempt=outcome.attempts,
                             duration=outcome.elapsed)
        if self.cache is not None and not replayed:
            from repro.cache import store_outcome
            store_outcome(self.cache, fingerprint, outcome)
        return CellResult(index=index, key=cell.key, outcome=outcome,
                          entry=entry, resumed=False)


class _WorkerHeartbeat:
    """Worker-side heartbeat stamper: a daemon thread plus sync marks.

    The daemon thread re-stamps every ``interval`` seconds so the
    supervisor can tell a *wedged* worker (stale beat — even its
    stamper froze, e.g. SIGSTOP) from a busy one. :meth:`mark` stamps
    synchronously at cell start/end so the in-flight cell key and its
    wall-clock start are on disk *before* the cell runs — a SIGKILL'd
    worker leaves behind exactly which cell it died holding.
    """

    def __init__(self, directory: str, interval: float,
                 token: str) -> None:
        self.directory = directory
        self.interval = interval
        self.token = token
        self._cell: str | None = None
        self._cell_started: float | None = None
        self._seq = 0
        self._lock = threading.Lock()

    def start(self) -> None:
        self._stamp()
        thread = threading.Thread(target=self._beat_forever,
                                  daemon=True, name="heartbeat")
        thread.start()

    def mark(self, cell: str | None) -> None:
        with self._lock:
            self._cell = cell
            self._cell_started = (time.monotonic()
                                  if cell is not None else None)
        self._stamp()

    def _stamp(self) -> None:
        with self._lock:
            self._seq += 1
            try:
                write_heartbeat(self.directory, pid=os.getpid(),
                                token=self.token,
                                beat=time.monotonic(),
                                cell=self._cell,
                                cell_started=self._cell_started,
                                seq=self._seq)
            except OSError:
                # Never let heartbeat IO take down real work; a
                # missing stamp only risks one spurious stale-kill.
                pass

    def _beat_forever(self) -> None:
        while True:
            time.sleep(self.interval)
            self._stamp()


#: The process-local worker, set once by :func:`_init_worker`.
_WORKER: CampaignWorker | None = None

#: The process-local heartbeat stamper (None when unsupervised).
_HEARTBEAT: _WorkerHeartbeat | None = None


def _init_worker(payload: bytes, heartbeat_dir: str | None = None,
                 heartbeat_interval: float = 5.0,
                 pool_token: str = "") -> None:
    """Pool initializer: rebuild the harness from the pickled seed.

    The seed is shipped as explicit pickle bytes (not raw ``initargs``)
    so fork- and spawn-started pools behave identically and every
    worker gets its own deep copy of backend state — fault-plan RNGs
    included, which keeps injection deterministic *per worker*. Under
    a :class:`~repro.campaign.supervisor.Supervisor` the initializer
    also starts the heartbeat stamper.
    """
    global _WORKER, _HEARTBEAT
    _WORKER = CampaignWorker(pickle.loads(payload))
    _HEARTBEAT = None
    if heartbeat_dir is not None:
        _HEARTBEAT = _WorkerHeartbeat(heartbeat_dir,
                                      heartbeat_interval, pool_token)
        _HEARTBEAT.start()


def _execute_cell(index: int, cell: CellSpec) -> CellResult:
    assert _WORKER is not None, "pool initializer did not run"
    if _HEARTBEAT is None:
        return _WORKER.execute(index, cell)
    _HEARTBEAT.mark(cell.key)
    try:
        return _WORKER.execute(index, cell)
    finally:
        _HEARTBEAT.mark(None)


def check_process_policy(policy: "ExecutionPolicy", journal: Any, *,
                         api: str, injected_clock: bool = False) -> None:
    """Reject policy features that cannot cross a process boundary."""
    if journal is not None and not isinstance(journal, ShardedJournal):
        raise ConfigurationError(
            f"{api}: process dispatch needs a ShardedJournal directory "
            "(or no journal) — a single journal file cannot take "
            "appends from multiple processes")
    if injected_clock or policy.clock is not None:
        raise ConfigurationError(
            f"{api}: an injected clock cannot be shared across "
            "processes; use thread dispatch for fake-clock runs")
    if policy.executor is not None:
        raise ConfigurationError(
            f"{api}: a pre-built executor cannot cross a process "
            "boundary; describe retry/deadline on the policy instead")
    if isinstance(policy.breaker, CircuitBreaker):
        raise ConfigurationError(
            f"{api}: a pre-built CircuitBreaker cannot cross a process "
            "boundary; use breaker_threshold/breaker_reset instead")


def _seed_bytes(worker: WorkerSpec, cells: list[CellSpec]) -> bytes:
    """Pickle the seed (and prove the cells pickle) with a clear error."""
    try:
        payload = pickle.dumps(worker)
        pickle.dumps(cells)
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        raise ConfigurationError(
            "process dispatch requires picklable backends and specs "
            f"(closures and locks cannot cross processes): {exc}"
        ) from exc
    return payload


def run_cell_specs(
    cells: list[CellSpec], *,
    worker: WorkerSpec,
    max_workers: int = 1,
    journal: ShardedJournal | None = None,
    resume: bool = False,
    retry_failed: bool = False,
    on_result: Callable[[CellResult], None] | None = None,
    scheduler: "Scheduler | None" = None,
    supervisor: "Supervisor | None" = None,
    tracer: Any = None,
) -> list[CellResult]:
    """Execute every cell spec across a process pool; results in order.

    The process-dispatch twin of
    :func:`~repro.campaign.engine.run_cell_tasks`, with the same
    guarantees: results come back in spec order, ``on_result`` fires
    exactly once per cell (resumed cells first, in spec order), the
    ``scheduler`` reorders dispatch only and is fed each cell's
    measured seconds, and a harness error cancels undispatched cells
    and re-raises after the drain. Journaling happens *in the
    workers* — each process appends finished cells to its own shard,
    fsynced before the result travels home, so a killed campaign
    resumes exactly-once from whatever reached disk.

    With a ``supervisor`` the drain additionally survives worker
    death: crashed/wedged workers are detected (heartbeats), killed
    (hard deadlines), and the pool is rebuilt with exactly-once resume
    from the journal — see :class:`~repro.campaign.supervisor.Supervisor`.
    """
    journaled: dict[str, JournalEntry] = {}
    if resume and journal is not None:
        journaled = journal.load()

    results: list[CellResult | None] = [None] * len(cells)
    pending: list[tuple[int, CellSpec]] = []
    for index, cell in enumerate(cells):
        entry = journaled.get(cell.key)
        if (entry is not None and entry.finished
                and not (retry_failed and entry.failed)):
            results[index] = CellResult(index=index, key=cell.key,
                                        outcome=None, entry=entry,
                                        resumed=True)
            if tracer is not None:
                tracer.emit("resume", key=cell.key, status=entry.status)
        else:
            pending.append((index, cell))

    try:
        if on_result is not None:
            for result in results:
                if result is not None:
                    on_result(result)
        if not pending:
            return [r for r in results if r is not None]

        payload = _seed_bytes(worker, [cell for _, cell in pending])

        if supervisor is not None:
            return supervisor.run(pending, results, worker=worker,
                                  payload=payload,
                                  max_workers=max_workers,
                                  journal=journal, on_result=on_result,
                                  scheduler=scheduler)

        def pool_factory(workers: int) -> ProcessPoolExecutor:
            return ProcessPoolExecutor(max_workers=workers,
                                       initializer=_init_worker,
                                       initargs=(payload,))

        def submit_fn(pool: ProcessPoolExecutor, index: int,
                      cell: CellSpec) -> Any:
            return pool.submit(_execute_cell, index, cell)

        if scheduler is None:
            return _run_pooled(pending, results, max_workers, None,
                               None, on_result,
                               pool_factory=pool_factory,
                               submit_fn=submit_fn, tracer=tracer)
        return _run_pooled_scheduled(pending, results, max_workers,
                                     None, None, on_result, scheduler,
                                     pool_factory=pool_factory,
                                     submit_fn=submit_fn, tracer=tracer)
    finally:
        # The parent-side ledger batches observations in memory; one
        # save per drain, whatever path (or error) the drain took.
        if scheduler is not None:
            scheduler.flush()
