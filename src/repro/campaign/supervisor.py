"""Supervised process dispatch: heartbeats, hard kills, quarantine.

Process dispatch (PR 4) made campaigns parallel; this module makes
them *self-healing*. A worker that is SIGKILL'd, OOM-killed, or truly
wedged used to surface as ``BrokenProcessPool`` and abort the whole
campaign, and per-cell deadlines were only cooperative — a hung
backend call could stall a lane forever. The :class:`Supervisor` wraps
the process-pool drain with four mechanisms:

* **Heartbeats** — each worker process stamps a monotonic beat (plus
  its in-flight cell key) into an ``hb-<pid>.json`` file in the
  journal directory on every ``heartbeat_interval``; the dispatcher
  polls them between future waits. Heartbeat files carry a per-pool
  token, so stale files from a previous pool era are ignored.
* **Hard deadline enforcement** — a worker whose in-flight cell has
  been running longer than ``deadline * grace_factor`` wall-clock
  seconds, or whose heartbeat is older than
  ``heartbeat_interval * grace_factor``, is SIGKILL'd. The worker's
  own watchdog normally cuts a hang at ``deadline`` — the supervisor
  is the backstop for workers too wedged to self-report (a stopped
  process freezes its watchdog and heartbeat threads too).
* **Poison-cell quarantine** — crash attribution is conservative:
  when the pool breaks, every in-flight cell that did not reach the
  journal becomes a *suspect* and is re-run one at a time in
  isolation; completing clears suspicion, crashing alone is
  unambiguous. A cell that kills its worker ``quarantine_after``
  times is journaled as a final ``QuarantinedError`` failure instead
  of being retried forever.
* **Pool rebuild with exactly-once resume** — after a break the pool
  is rebuilt (up to ``max_pool_rebuilds`` times) and work resumes
  from the :class:`~repro.resilience.ShardedJournal`: cells whose
  results were lost in the broken pipe but whose journal entries
  reached disk are restored (as resumed cells), never re-executed.

The PR 2/3/4 invariants survive: results stay spec-ordered,
``on_result`` fires exactly once per cell, the scheduler keeps its
cost feedback, a harness error (non-pool-related) still cancels and
re-raises, and the canonical ``merged_text()`` of a crash-recovered
run is byte-identical to an unfaulted one's for the surviving cells.
"""

from __future__ import annotations

import json
import os
import signal
import tempfile
import time
import uuid
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from repro.campaign.engine import CellResult
from repro.common.errors import (
    DeadlineExceededError,
    ErrorRecord,
    QuarantinedError,
)
from repro.resilience.executor import CellOutcome
from repro.resilience.journal import (
    STATUS_FAILED,
    JournalEntry,
    ShardedJournal,
)

if TYPE_CHECKING:
    from repro.campaign.process import CellSpec, WorkerSpec
    from repro.campaign.scheduler import Scheduler
    from repro.observe import TraceRecorder

__all__ = [
    "HEARTBEAT_PREFIX",
    "Heartbeat",
    "write_heartbeat",
    "read_heartbeats",
    "SupervisionStats",
    "Supervisor",
]

#: Heartbeat files live next to the journal shards; the prefix keeps
#: them out of the shard filter (shards start with the journal prefix).
HEARTBEAT_PREFIX = "hb-"


@dataclass(frozen=True)
class Heartbeat:
    """One worker's most recent heartbeat stamp.

    ``beat`` and ``cell_started`` are ``time.monotonic()`` values; on
    Linux that clock is system-wide, so the supervising process can
    compare them against its own monotonic reads directly.
    """

    pid: int
    token: str
    beat: float
    cell: str | None
    cell_started: float | None
    seq: int
    path: Path


def write_heartbeat(directory: str | os.PathLike[str], *, pid: int,
                    token: str, beat: float, cell: str | None,
                    cell_started: float | None, seq: int) -> Path:
    """Atomically write one worker's heartbeat file.

    Written to a temp file and ``os.replace``'d into place, so a
    reader never sees a torn stamp.
    """
    path = Path(directory) / f"{HEARTBEAT_PREFIX}{pid}.json"
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps({
        "pid": pid, "token": token, "beat": beat, "cell": cell,
        "cell_started": cell_started, "seq": seq,
    }), encoding="utf-8")
    os.replace(tmp, path)
    return path


def read_heartbeats(directory: str | os.PathLike[str],
                    token: str | None = None) -> list[Heartbeat]:
    """All parseable heartbeats in ``directory``.

    Torn or malformed files are skipped (a worker may be mid-replace
    or freshly killed). With ``token``, stamps from other pool eras
    are filtered out — the defense against heartbeat files surviving
    a pool rebuild or an earlier campaign on the same journal dir.
    """
    root = Path(directory)
    if not root.exists():
        return []
    beats: list[Heartbeat] = []
    for path in sorted(root.iterdir()):
        name = path.name
        if not (name.startswith(HEARTBEAT_PREFIX)
                and name.endswith(".json")):
            continue
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            beat = Heartbeat(
                pid=int(payload["pid"]),
                token=str(payload["token"]),
                beat=float(payload["beat"]),
                cell=payload.get("cell"),
                cell_started=(float(payload["cell_started"])
                              if payload.get("cell_started") is not None
                              else None),
                seq=int(payload.get("seq", 0)),
                path=path,
            )
        except (OSError, ValueError, TypeError, KeyError):
            continue
        if token is not None and beat.token != token:
            continue
        beats.append(beat)
    return beats


@dataclass(frozen=True)
class SupervisionStats:
    """What the supervisor did during one campaign run.

    ``quarantined`` lists the journal keys finalized as
    ``QuarantinedError``; ``corrupt_lines`` is the highest
    malformed-line count any journal load observed (crash-truncated
    shards made visible — see
    :attr:`~repro.resilience.ShardedJournal.corrupt_lines`).
    """

    deadline_kills: int = 0
    stale_kills: int = 0
    worker_crashes: int = 0
    pool_rebuilds: int = 0
    quarantined: tuple[str, ...] = ()
    corrupt_lines: int = 0
    heartbeat_interval: float = 5.0
    grace_factor: float = 2.0
    quarantine_after: int = 2
    max_pool_rebuilds: int = 5

    @property
    def kills(self) -> int:
        return self.deadline_kills + self.stale_kills


class Supervisor:
    """Drives a process pool with heartbeats, kills, and recovery.

    One instance supervises one campaign run; :meth:`stats` reports
    the accumulated telemetry afterwards. Built from an
    :class:`~repro.resilience.ExecutionPolicy` by
    :meth:`~repro.resilience.ExecutionPolicy.make_supervisor`.
    """

    def __init__(self, *, deadline: float | None = None,
                 heartbeat_interval: float = 5.0,
                 grace_factor: float = 2.0,
                 quarantine_after: int = 2,
                 max_pool_rebuilds: int = 5,
                 tracer: "TraceRecorder | None" = None) -> None:
        self.deadline = deadline
        self.heartbeat_interval = heartbeat_interval
        self.grace_factor = grace_factor
        self.quarantine_after = quarantine_after
        self.max_pool_rebuilds = max_pool_rebuilds
        self.tracer = tracer
        self._deadline_kills = 0
        self._stale_kills = 0
        self._worker_crashes = 0
        self._pool_rebuilds = 0
        self._quarantined: list[str] = []
        self._corrupt_lines = 0

    def stats(self) -> SupervisionStats:
        return SupervisionStats(
            deadline_kills=self._deadline_kills,
            stale_kills=self._stale_kills,
            worker_crashes=self._worker_crashes,
            pool_rebuilds=self._pool_rebuilds,
            quarantined=tuple(self._quarantined),
            corrupt_lines=self._corrupt_lines,
            heartbeat_interval=self.heartbeat_interval,
            grace_factor=self.grace_factor,
            quarantine_after=self.quarantine_after,
            max_pool_rebuilds=self.max_pool_rebuilds,
        )

    # ------------------------------------------------------------------
    def run(self, pending: "list[tuple[int, CellSpec]]",
            results: list[CellResult | None], *,
            worker: "WorkerSpec",
            payload: bytes,
            max_workers: int,
            journal: ShardedJournal | None,
            on_result: Callable[[CellResult], None] | None,
            scheduler: "Scheduler | None") -> list[CellResult]:
        """The supervised drain: same contract as the engine pools.

        ``results`` already holds resume-skipped cells (their
        callbacks have fired); ``pending`` is what is left to execute.
        """
        from repro.campaign.process import _execute_cell, _init_worker

        own_dir: str | None = None
        if journal is not None:
            hb_dir = Path(journal.directory)
            hb_dir.mkdir(parents=True, exist_ok=True)
        else:
            own_dir = tempfile.mkdtemp(prefix="repro-hb-")
            hb_dir = Path(own_dir)

        baseline: dict[str, JournalEntry] = {}
        if journal is not None:
            baseline = journal.load()
            self._note_corrupt(journal)

        queue = list(pending)
        crash_counts: dict[str, int] = {}
        workers = min(max_workers, len(pending))
        first_error: BaseException | None = None
        broke: BrokenProcessPool | None = None
        tick = min(0.25, max(0.02, self.heartbeat_interval / 2.0))

        try:
            while queue and first_error is None:
                if broke is not None:  # a previous era broke the pool
                    self._pool_rebuilds += 1
                    if self.tracer is not None:
                        self.tracer.emit("pool-rebuild",
                                         attempt=self._pool_rebuilds)
                    if self._pool_rebuilds > self.max_pool_rebuilds:
                        raise broke
                    broke = None
                token = uuid.uuid4().hex
                self._clear_heartbeats(hb_dir)
                # (index, cell, wall-clock submit time) per live future.
                inflight: dict[Any, tuple[int, "CellSpec", float]] = {}
                # cell key -> (reason, elapsed) for supervisor kills.
                killed: dict[str, tuple[str, float]] = {}
                suspect_inflight = False
                lost: list[tuple[int, "CellSpec"]] = []

                pool = ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_init_worker,
                    initargs=(payload, str(hb_dir),
                              self.heartbeat_interval, token))
                try:
                    def submit_at(positions: list[int]) -> None:
                        nonlocal broke, suspect_inflight
                        cand = [queue[p] for p in positions]
                        choice = (scheduler.pick(cand)
                                  if scheduler is not None else 0)
                        index, cell = queue.pop(positions[choice])
                        if crash_counts.get(cell.key, 0) > 0:
                            suspect_inflight = True
                            if self.tracer is not None:
                                self.tracer.emit(
                                    "isolate", key=cell.key,
                                    attempt=crash_counts[cell.key])
                        if self.tracer is not None:
                            self.tracer.emit("dispatch", key=cell.key)
                        try:
                            future = pool.submit(_execute_cell, index,
                                                 cell)
                        except BrokenProcessPool as exc:
                            broke = exc
                            queue.append((index, cell))
                            queue.sort(key=lambda item: item[0])
                            return
                        inflight[future] = (index, cell,
                                            time.monotonic())

                    def fill() -> None:
                        # Innocent cells fan out freely; a suspect
                        # (survived a pool break unjournaled) flies
                        # alone so a second crash attributes to it
                        # unambiguously.
                        while (queue and broke is None
                               and not suspect_inflight
                               and len(inflight) < workers):
                            innocents = [
                                p for p, (_, cell) in enumerate(queue)
                                if not crash_counts.get(cell.key, 0)]
                            if innocents:
                                submit_at(innocents)
                                continue
                            if not inflight:
                                submit_at(list(range(len(queue))))
                            break

                    fill()
                    while inflight and broke is None:
                        done, _ = wait(set(inflight), timeout=tick,
                                       return_when=FIRST_COMPLETED)
                        for future in done:
                            index, cell, _started = inflight.pop(future)
                            try:
                                result = future.result()
                            except BrokenProcessPool as exc:
                                if broke is None:
                                    broke = exc
                                lost.append((index, cell))
                                continue
                            except BaseException as exc:  # noqa: BLE001
                                # A harness error: cancel + re-raise,
                                # exactly like the engine pools.
                                if first_error is None:
                                    first_error = exc
                                    queue.clear()
                                continue
                            crash_counts.pop(cell.key, None)
                            suspect_inflight = False
                            results[index] = result
                            if (scheduler is not None
                                    and first_error is None):
                                scheduler.observe(cell, result.elapsed)
                            if (on_result is not None
                                    and first_error is None):
                                on_result(result)
                        if broke is None and first_error is None:
                            self._patrol(hb_dir, token, inflight,
                                         killed)
                            fill()
                    if broke is not None:
                        lost.extend(
                            (index, cell)
                            for index, cell, _started in
                            inflight.values())
                        inflight.clear()
                finally:
                    pool.shutdown(wait=False, cancel_futures=True)

                if broke is not None and first_error is None:
                    self._worker_crashes += 1
                    requeued = self._recover(
                        lost, killed, baseline, crash_counts,
                        journal=journal, results=results,
                        on_result=on_result, scheduler=scheduler)
                    queue.extend(requeued)
                    queue.sort(key=lambda item: item[0])
        finally:
            self._clear_heartbeats(hb_dir)
            if own_dir is not None:
                try:
                    os.rmdir(own_dir)
                except OSError:
                    pass

        if first_error is not None:
            raise first_error
        return [r for r in results if r is not None]

    # ------------------------------------------------------------------
    def _patrol(self, hb_dir: Path, token: str,
                inflight: dict[Any, tuple[int, "CellSpec", float]],
                killed: dict[str, tuple[str, float]]) -> None:
        """One monitoring pass: kill workers past their budgets."""
        running = {cell.key for _, cell, _ in inflight.values()}
        now = time.monotonic()
        stale_after = self.heartbeat_interval * self.grace_factor
        hard_deadline = (self.deadline * self.grace_factor
                         if self.deadline is not None else None)
        for beat in read_heartbeats(hb_dir, token):
            reason = None
            elapsed = 0.0
            if (hard_deadline is not None and beat.cell in running
                    and beat.cell_started is not None
                    and now - beat.cell_started > hard_deadline):
                reason = "deadline"
                elapsed = now - beat.cell_started
            elif now - beat.beat > stale_after:
                reason = "stale"
                if beat.cell_started is not None:
                    elapsed = now - beat.cell_started
            if reason is None:
                continue
            self._kill(beat.pid)
            if self.tracer is not None:
                self.tracer.emit("sigkill", key=beat.cell or "",
                                 status=reason, pid=beat.pid,
                                 elapsed=elapsed)
            if reason == "deadline":
                self._deadline_kills += 1
            else:
                self._stale_kills += 1
            if beat.cell is not None:
                killed[beat.cell] = (reason, elapsed)
            try:
                beat.path.unlink()
            except OSError:
                pass

    @staticmethod
    def _kill(pid: int) -> None:
        try:
            os.kill(pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass

    @staticmethod
    def _clear_heartbeats(hb_dir: Path) -> None:
        """Best-effort removal of heartbeat files from previous eras."""
        if not hb_dir.exists():
            return
        for path in hb_dir.iterdir():
            name = path.name
            if name.startswith(HEARTBEAT_PREFIX) and (
                    name.endswith(".json") or name.endswith(".tmp")):
                try:
                    path.unlink()
                except OSError:
                    pass

    def _note_corrupt(self, journal: ShardedJournal | None) -> None:
        if journal is not None:
            self._corrupt_lines = max(self._corrupt_lines,
                                      journal.corrupt_lines)

    # ------------------------------------------------------------------
    def _recover(self, lost: list[tuple[int, "CellSpec"]],
                 killed: dict[str, tuple[str, float]],
                 baseline: dict[str, JournalEntry],
                 crash_counts: dict[str, int], *,
                 journal: ShardedJournal | None,
                 results: list[CellResult | None],
                 on_result: Callable[[CellResult], None] | None,
                 scheduler: "Scheduler | None",
                 ) -> list[tuple[int, "CellSpec"]]:
        """Resolve every cell lost to a pool break.

        Journal-finished cells are restored (exactly-once: only
        entries *newer than the pre-run baseline* count as this run's
        work); deadline-killed cells finalize as
        ``DeadlineExceededError``; the rest accumulate crash counts
        and are requeued — or quarantined at ``quarantine_after``.
        """
        fresh: dict[str, JournalEntry] = {}
        if journal is not None:
            fresh = journal.load()
            self._note_corrupt(journal)

        requeued: list[tuple[int, "CellSpec"]] = []
        for index, cell in sorted(lost, key=lambda item: item[0]):
            key = cell.key
            entry = fresh.get(key)
            if (entry is not None and entry.finished
                    and entry != baseline.get(key)):
                # Finished in the worker; only the result pipe died.
                baseline[key] = entry
                crash_counts.pop(key, None)
                if self.tracer is not None:
                    self.tracer.emit("recovered", key=key,
                                     status=entry.status)
                result = CellResult(index=index, key=key, outcome=None,
                                    entry=entry, resumed=True)
                results[index] = result
                if on_result is not None:
                    on_result(result)
                continue
            reason, elapsed = killed.get(key, (None, 0.0))
            if reason == "deadline":
                assert self.deadline is not None
                record = ErrorRecord.from_exception(
                    DeadlineExceededError(
                        f"worker SIGKILL'd: cell exceeded the hard "
                        f"{self.deadline * self.grace_factor:g}s "
                        f"wall-clock deadline "
                        f"(deadline={self.deadline:g}s x "
                        f"grace_factor={self.grace_factor:g})",
                        elapsed=elapsed,
                        deadline=self.deadline * self.grace_factor),
                    phase="supervise", transient=False)
                results[index] = self._finalize(
                    index, cell, record, attempts=1, elapsed=elapsed,
                    journal=journal, baseline=baseline,
                    on_result=on_result, scheduler=scheduler)
                crash_counts.pop(key, None)
                continue
            crashes = crash_counts.get(key, 0) + 1
            crash_counts[key] = crashes
            if self.tracer is not None:
                self.tracer.emit("worker-crash", key=key,
                                 attempt=crashes,
                                 reason=reason or "crash")
            if crashes >= self.quarantine_after:
                record = ErrorRecord.from_exception(
                    QuarantinedError(
                        f"cell killed its worker process {crashes} "
                        f"time(s); quarantined to protect the grid",
                        crashes=crashes),
                    phase="supervise", transient=False)
                if self.tracer is not None:
                    self.tracer.emit("quarantine", key=key,
                                     attempt=crashes)
                results[index] = self._finalize(
                    index, cell, record, attempts=crashes,
                    elapsed=elapsed, journal=journal,
                    baseline=baseline, on_result=on_result,
                    scheduler=scheduler)
                self._quarantined.append(key)
                crash_counts.pop(key, None)
            else:
                requeued.append((index, cell))
        return requeued

    def _finalize(self, index: int, cell: "CellSpec",
                  record: ErrorRecord, *, attempts: int,
                  elapsed: float, journal: ShardedJournal | None,
                  baseline: dict[str, JournalEntry],
                  on_result: Callable[[CellResult], None] | None,
                  scheduler: "Scheduler | None") -> CellResult:
        """Journal and surface a supervisor-issued final failure."""
        entry = JournalEntry(key=cell.key, status=STATUS_FAILED,
                             attempts=attempts, error=record)
        if journal is not None:
            journal.record(entry)
            baseline[cell.key] = entry
        outcome = CellOutcome(key=cell.key, status=STATUS_FAILED,
                              error=record, attempts=attempts,
                              elapsed=elapsed)
        if self.tracer is not None:
            self.tracer.emit("cell", key=cell.key, status=STATUS_FAILED,
                             attempt=attempts, duration=elapsed,
                             error=record.type)
        result = CellResult(index=index, key=cell.key, outcome=outcome,
                            entry=entry, resumed=False)
        if scheduler is not None:
            scheduler.observe(cell, elapsed)
        if on_result is not None:
            on_result(result)
        return result
