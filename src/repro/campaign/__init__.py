"""Parallel multi-backend sweep campaigns.

DABench-LLM's Tier-1/Tier-2 tables come from large grids of independent
(model, train, options) cells. The paper's harness — and PR 1's
resilient re-implementation — executed them strictly sequentially, one
backend at a time, making the harness the throughput bottleneck (the
same observation LLM-Inference-Bench makes for multi-accelerator
campaigns). This package puts a thread-pooled campaign engine on top of
the PR 1 primitives:

* a :class:`Campaign` takes a list of ``(backend, specs)`` lanes plus
  one :class:`~repro.resilience.ExecutionPolicy` and fans the cells out
  across worker threads **and** across backends concurrently;
* each lane gets its own :class:`~repro.resilience.CircuitBreaker` and
  a :class:`~repro.resilience.ResilientExecutor` sharing the policy's
  retry/deadline settings, so a broken platform fail-fasts without
  slowing the healthy ones;
* journaling uses whatever store the policy names — a
  :class:`~repro.resilience.ShardedJournal` directory gives each worker
  thread its own append-only shard, keeping resume crash-tolerant with
  concurrent writers;
* results come back in deterministic spec order regardless of
  completion order, with per-backend progress callbacks and
  breaker/retry statistics ready for
  :class:`~repro.core.report.BenchmarkReport`.

Example::

    from repro import Campaign, CerebrasBackend, SambaNovaBackend
    from repro.resilience import ExecutionPolicy, RetryPolicy

    policy = ExecutionPolicy(retry=RetryPolicy(max_retries=2),
                             journal=ShardedJournal("journal/"),
                             resume=True, max_workers=8)
    result = Campaign([(CerebrasBackend(), specs),
                       (SambaNovaBackend(), specs)], policy).run()
    print(result.report().render())
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from repro.campaign.engine import CellResult, CellTask, run_cell_tasks
# engine must import before scheduler: scheduler type-hints engine tasks.
from repro.campaign.scheduler import (
    AnalyticCostPredictor,
    CostPredictor,
    EWMACostPredictor,
    Scheduler,
    SchedulerStats,
    estimate_cell_seconds,
    make_predictor,
    simulate_makespan,
)
from repro.campaign.process import (
    CellSpec,
    WorkerSpec,
    check_process_policy,
    run_cell_specs,
)
from repro.campaign.supervisor import SupervisionStats, Supervisor
from repro.cache import cell_fingerprint
from repro.common.errors import ConfigurationError
from repro.core.backend import AcceleratorBackend
from repro.core.report import BenchmarkReport, GRID_HEADERS, sweep_cell_row
from repro.observe import (
    ObservabilityStats,
    TraceRecorder,
    aggregate_observability,
    load_events,
)
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.clock import Clock
from repro.resilience.executor import ResilientExecutor
from repro.resilience.journal import STATUS_GATED, STATUS_OK
from repro.resilience.policy import DISPATCH_PROCESS, ExecutionPolicy

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from repro.workloads.sweeps import SweepCell, SweepSpec

__all__ = [
    "Campaign",
    "CampaignLane",
    "CampaignResult",
    "BackendStats",
    "CellTask",
    "CellResult",
    "run_cell_tasks",
    "CellSpec",
    "WorkerSpec",
    "run_cell_specs",
    "Supervisor",
    "SupervisionStats",
    "ObservabilityStats",
    "Scheduler",
    "SchedulerStats",
    "CostPredictor",
    "AnalyticCostPredictor",
    "EWMACostPredictor",
    "estimate_cell_seconds",
    "make_predictor",
    "simulate_makespan",
]


@dataclass
class CampaignLane:
    """One backend and the specs it should sweep.

    ``label`` defaults to the backend's display name (deduplicated by
    the campaign when two lanes share it); ``clock`` optionally gives
    the lane its own time source — with per-lane fake clocks a test can
    read each lane's simulated busy time independently, which is how
    the parallel-speedup acceptance test stays deterministic.
    """

    backend: AcceleratorBackend
    specs: "Sequence[SweepSpec]"
    label: str | None = None
    clock: Clock | None = None


@dataclass(frozen=True)
class BackendStats:
    """Aggregated health/throughput statistics for one campaign lane."""

    backend: str
    cells: int
    ok: int
    failed: int
    gated: int
    resumed: int
    attempts: int
    retries: int
    elapsed_seconds: float
    breaker: dict[str, Any] = field(default_factory=dict)
    #: Watchdog threads this lane's executor abandoned on hung cells
    #: (thread dispatch only; worker processes take theirs with them).
    abandoned_watchdogs: int = 0

    @property
    def executed(self) -> int:
        return self.cells - self.resumed


@dataclass
class CampaignResult:
    """Everything one campaign run produced.

    ``cells`` maps lane label → :class:`SweepCell` list in the lane's
    spec order (the deterministic-ordering guarantee); ``stats`` maps
    lane label → :class:`BackendStats` including the lane breaker's
    trip count and open time.
    """

    labels: list[str]
    cells: "dict[str, list[SweepCell]]"
    stats: dict[str, BackendStats]
    policy: ExecutionPolicy
    scheduling: SchedulerStats | None = None
    #: Supervisor telemetry (process dispatch only; ``None`` on the
    #: thread path, where workers share the parent's address space).
    supervision: SupervisionStats | None = None
    #: Per-lane trace rollup (``None`` when the policy's tracing is
    #: off) — see :func:`repro.observe.aggregate_observability`.
    observability: list[ObservabilityStats] | None = None

    @property
    def total_cells(self) -> int:
        return sum(len(cells) for cells in self.cells.values())

    @property
    def resumed_cells(self) -> int:
        return sum(stats.resumed for stats in self.stats.values())

    @property
    def executed_cells(self) -> int:
        return self.total_cells - self.resumed_cells

    @property
    def sequential_seconds(self) -> float:
        """Injected-clock seconds a one-worker campaign would have
        spent executing (the sum of per-cell elapsed time)."""
        return sum(stats.elapsed_seconds for stats in self.stats.values())

    def report(self, title: str = "Campaign") -> BenchmarkReport:
        """Per-lane result tables plus the infrastructure health table."""
        report = BenchmarkReport(title)
        for label in self.labels:
            report.add_table(f"Grid on {label}", GRID_HEADERS,
                             [sweep_cell_row(cell)
                              for cell in self.cells[label]])
        report.add_infrastructure_health(
            [self.stats[label] for label in self.labels])
        if self.scheduling is not None:
            report.add_scheduling([self.scheduling])
        if self.supervision is not None:
            report.add_supervision(self.supervision)
        if self.observability is not None:
            report.add_observability(self.observability)
        report.add_insight(
            f"{self.executed_cells} of {self.total_cells} cells executed "
            f"({self.resumed_cells} resumed from the journal) across "
            f"{len(self.labels)} backend(s) with "
            f"max_workers={self.policy.max_workers}.")
        return report


class Campaign:
    """A thread-pooled, multi-backend sweep campaign.

    Args:
        lanes: ``(backend, specs)`` pairs or :class:`CampaignLane`
            objects; lane order fixes result order.
        policy: the :class:`ExecutionPolicy` governing every cell.
            The campaign always builds one circuit breaker per lane
            from the policy's threshold fields (pass a policy with
            ``breaker=``:class:`CircuitBreaker` only for single-lane
            campaigns).
        measure: when ``False`` cells only compile.
    """

    def __init__(self,
                 lanes: Iterable["CampaignLane |"
                                 " tuple[AcceleratorBackend,"
                                 " Sequence[SweepSpec]]"],
                 policy: ExecutionPolicy | None = None, *,
                 measure: bool = True) -> None:
        self.policy = policy if policy is not None else ExecutionPolicy()
        self.measure = measure
        self.lanes: list[CampaignLane] = []
        seen: dict[str, int] = {}
        for lane in lanes:
            if not isinstance(lane, CampaignLane):
                backend, specs = lane
                lane = CampaignLane(backend=backend, specs=specs)
            label = lane.label or lane.backend.name
            count = seen.get(label, 0)
            seen[label] = count + 1
            if count:
                label = f"{label}#{count + 1}"
            self.lanes.append(CampaignLane(backend=lane.backend,
                                           specs=list(lane.specs),
                                           label=label, clock=lane.clock))
        if not self.lanes:
            raise ConfigurationError("a campaign needs at least one lane")
        if (isinstance(self.policy.breaker, CircuitBreaker)
                and len(self.lanes) > 1):
            raise ConfigurationError(
                "a shared CircuitBreaker instance cannot serve multiple "
                "campaign lanes; use the policy's breaker_threshold/"
                "breaker_reset fields instead")

    def run(self, on_cell: "Callable[[str, SweepCell], None] | None" = None,
            ) -> CampaignResult:
        """Execute the campaign; see :class:`CampaignResult`.

        ``on_cell(label, cell)`` fires once per cell as it resolves
        (completion order under a pool; spec order when sequential).
        """
        # Imported here, not at module level: sweeps builds on the
        # engine in this package, so the cell converters must load late.
        from repro.workloads.sweeps import cell_from_result

        policy = self.policy
        if policy.dispatch == DISPATCH_PROCESS:
            return self._run_process(on_cell)
        journal = policy.normalized_journal()
        cache = policy.normalized_cache()
        memo = None
        if policy.stage_memo:
            from repro.cache import StageMemo
            memo = StageMemo(spill=cache)

        tasks: list[CellTask] = []
        owners: list[tuple[CampaignLane, "SweepSpec"]] = []
        breakers: dict[str, CircuitBreaker] = {}
        executors: dict[str, ResilientExecutor] = {}
        tracer = policy.make_tracer()
        for lane in self.lanes:
            assert lane.label is not None
            clock = lane.clock or policy.clock
            if isinstance(policy.breaker, CircuitBreaker):
                breaker = policy.breaker
            else:
                breaker = policy.new_breaker(lane.label, clock)
            breakers[lane.label] = breaker
            executor = policy.make_executor(lane.label, breaker=breaker,
                                            clock=clock, tracer=tracer)
            executors[lane.label] = executor
            serializer = (None if lane.backend.thread_safe
                          else threading.Lock())
            for spec in lane.specs:
                tasks.append(self._task(lane, spec, executor, serializer,
                                        cached=cache is not None))
                owners.append((lane, spec))

        def relay(result: CellResult) -> None:
            lane, spec = owners[result.index]
            assert lane.label is not None
            if on_cell is not None:
                on_cell(lane.label, cell_from_result(spec, result))

        scheduler = policy.make_scheduler(tracer)
        results = run_cell_tasks(
            tasks,
            max_workers=policy.max_workers,
            journal=journal,
            resume=policy.resume,
            retry_failed=policy.retry_failed,
            on_result=relay if on_cell is not None else None,
            scheduler=scheduler,
            tracer=tracer,
            cache=cache,
            memo=memo,
        )

        return self._assemble(results, breakers, scheduler,
                              executors=executors, tracer=tracer,
                              cache=cache)

    def _run_process(self, on_cell: "Callable[[str, SweepCell], None]"
                     " | None" = None) -> CampaignResult:
        """The process-dispatch path: picklable specs, per-worker state.

        Cells cross to worker processes as :class:`CellSpec` data; each
        worker rebuilds the per-lane executors/breakers once and
        journals into its own shard (see
        :mod:`repro.campaign.process`). Results, ordering, resume, and
        scheduler feedback match thread dispatch; the parent-side
        health table shows no breaker state, which lives and dies with
        the workers.
        """
        from repro.workloads.sweeps import cell_from_result

        policy = self.policy
        journal = policy.normalized_journal()
        check_process_policy(
            policy, journal, api="Campaign",
            injected_clock=any(lane.clock is not None
                               for lane in self.lanes))

        cache = policy.normalized_cache()
        specs: list[CellSpec] = []
        owners: list[tuple[CampaignLane, "SweepSpec"]] = []
        for lane in self.lanes:
            assert lane.label is not None
            for spec in lane.specs:
                specs.append(CellSpec(
                    key=f"{lane.label}::{spec.label}",
                    lane=lane.label,
                    model=spec.model,
                    train=spec.train,
                    options=dict(spec.options),
                    measure=self.measure,
                    cost_hint=estimate_cell_seconds(
                        lane.backend, spec.model, spec.train,
                        measure=self.measure),
                    family=f"{lane.label}::{spec.model.family}",
                    fingerprint=(cell_fingerprint(
                        lane.backend, spec.model, spec.train,
                        spec.options, measure=self.measure)
                        if cache is not None else None),
                ))
                owners.append((lane, spec))
        tracer = policy.make_tracer()
        trace_dir = policy.trace_directory()
        worker = WorkerSpec(
            backends={lane.label: lane.backend for lane in self.lanes},
            retry=policy.retry,
            deadline=policy.deadline,
            breakers=True,
            breaker_threshold=policy.breaker_threshold,
            breaker_reset=policy.breaker_reset,
            journal_dir=(str(journal.directory)
                         if journal is not None else None),
            journal_prefix=(journal.prefix if journal is not None
                            else "shard"),
            trace_dir=(str(trace_dir) if trace_dir is not None
                       else None),
            trace_run=(tracer.run if tracer is not None else ""),
            cache_dir=(str(cache.directory) if cache is not None
                       else None),
            stage_memo=policy.stage_memo,
        )

        def relay(result: CellResult) -> None:
            lane, spec = owners[result.index]
            assert lane.label is not None
            if on_cell is not None:
                on_cell(lane.label, cell_from_result(spec, result))

        scheduler = policy.make_scheduler(tracer)
        supervisor = policy.make_supervisor(
            tracer, families={spec.family for spec in specs})
        results = run_cell_specs(
            specs,
            worker=worker,
            max_workers=policy.max_workers,
            journal=journal,
            resume=policy.resume,
            retry_failed=policy.retry_failed,
            on_result=relay if on_cell is not None else None,
            scheduler=scheduler,
            supervisor=supervisor,
            tracer=tracer,
        )
        return self._assemble(results, {}, scheduler,
                              supervision=supervisor.stats(),
                              tracer=tracer, cache=cache)

    # ------------------------------------------------------------------
    def _assemble(self, results: list[CellResult],
                  breakers: dict[str, CircuitBreaker],
                  scheduler: Scheduler, *,
                  executors: dict[str, ResilientExecutor] | None = None,
                  supervision: SupervisionStats | None = None,
                  tracer: TraceRecorder | None = None,
                  cache: Any = None,
                  ) -> CampaignResult:
        from repro.workloads.sweeps import cell_from_result

        policy = self.policy
        labels: list[str] = []
        cells: dict[str, list[SweepCell]] = {}
        stats: dict[str, BackendStats] = {}
        cursor = 0
        for lane in self.lanes:
            assert lane.label is not None
            lane_results = results[cursor:cursor + len(lane.specs)]
            cursor += len(lane.specs)
            labels.append(lane.label)
            cells[lane.label] = [
                cell_from_result(spec, result)
                for spec, result in zip(lane.specs, lane_results)]
            executor = (executors or {}).get(lane.label)
            stats[lane.label] = self._stats(lane.label, lane_results,
                                            breakers.get(lane.label),
                                            executor)
        observability: list[ObservabilityStats] | None = None
        if tracer is not None:
            observability = aggregate_observability(
                load_events(tracer.directory, run=tracer.run), labels)
        if cache is not None:
            # Eviction is parent-owned: workers only read and publish.
            cache.prune()
        return CampaignResult(labels=labels, cells=cells, stats=stats,
                              policy=policy,
                              scheduling=scheduler.stats(
                                  policy.max_workers, policy.dispatch),
                              supervision=supervision,
                              observability=observability)

    # ------------------------------------------------------------------
    def _task(self, lane: CampaignLane, spec: "SweepSpec",
              executor: ResilientExecutor,
              serializer: threading.Lock | None,
              cached: bool = False) -> CellTask:
        backend = lane.backend
        run_fn = ((lambda compiled: backend.run(compiled))
                  if self.measure else None)
        return CellTask(
            key=f"{lane.label}::{spec.label}",
            compile_fn=lambda: backend.compile(spec.model, spec.train,
                                               **spec.options),
            stages_fn=lambda: backend.compile_pipeline(
                spec.model, spec.train, **spec.options),
            run_fn=run_fn,
            is_transient=backend.is_transient,
            executor=executor,
            serializer=serializer,
            cost_hint=estimate_cell_seconds(backend, spec.model,
                                            spec.train,
                                            measure=self.measure),
            family=f"{lane.label}::{spec.model.family}",
            fingerprint=(cell_fingerprint(backend, spec.model,
                                          spec.train, spec.options,
                                          measure=self.measure)
                         if cached else None),
        )

    @staticmethod
    def _stats(label: str, results: list[CellResult],
               breaker: CircuitBreaker | None,
               executor: ResilientExecutor | None = None) -> BackendStats:
        ok = failed = gated = resumed = attempts = retries = 0
        elapsed = 0.0
        for result in results:
            if result.resumed:
                resumed += 1
            status = result.status
            if status == STATUS_OK:
                ok += 1
            elif status == STATUS_GATED:
                gated += 1
            else:
                failed += 1
            attempts += result.attempts
            elapsed += result.elapsed
            if result.outcome is not None:
                retries += len(result.outcome.retried)
        abandoned = (executor.metrics()["abandoned_watchdogs"]
                     if executor is not None else 0)
        return BackendStats(backend=label, cells=len(results), ok=ok,
                            failed=failed, gated=gated, resumed=resumed,
                            attempts=attempts, retries=retries,
                            elapsed_seconds=elapsed,
                            breaker=(breaker.metrics()
                                     if breaker is not None else {}),
                            abandoned_watchdogs=abandoned)
