"""Cost-aware cell scheduling for campaigns and pooled sweeps.

A campaign's wall-clock is dominated by its longest cells (large-model,
low-optimization compiles — the paper's Section IV harness observation),
and lane-major dispatch can strand one of them at the tail of the queue:
every worker but one goes idle while the straggler finishes. Classic
LPT (longest-processing-time-first) dispatch fixes that *when cell
costs are known* — which a benchmark harness is unusually well placed
to do, since :mod:`repro.models.costmodel` already prices every
(model, train) cell analytically.

This module supplies the pieces:

* :class:`CostPredictor` — the protocol a cost source implements:
  ``predict(task)`` prices a pending cell, ``observe(task, seconds)``
  feeds back what it actually took.
* :class:`AnalyticCostPredictor` — static: trusts the
  :func:`estimate_cell_seconds` hint stamped on each task.
* :class:`EWMACostPredictor` — online: starts from the analytic hint
  and learns per-(backend, workload-family) durations as cells finish,
  so systematic mispricing (a slow compiler service, say) is corrected
  mid-campaign.
* :class:`Scheduler` — picks the next cell to dispatch under a policy
  (``lane-major`` | ``longest-first`` | ``shortest-first``) and keeps
  the predicted-vs-actual telemetry that
  :class:`~repro.core.report.BenchmarkReport` renders as the
  "Scheduling" table.

Scheduling changes *dispatch order only*. Results still come back in
spec order, journal keys are unchanged (so resume skips exactly the
same cells), and per-lane breaker/executor wiring is untouched — the
PR 2 invariants hold under every policy.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

from repro.common.errors import ConfigurationError
from repro.models.costmodel import TransformerCostModel
from repro.resilience.policy import (
    DISPATCH_THREAD,
    PREDICTOR_ANALYTIC,
    PREDICTOR_EWMA,
    PREDICTORS,
    SCHEDULE_LANE_MAJOR,
    SCHEDULE_LONGEST_FIRST,
    SCHEDULE_POLICIES,
    SCHEDULE_SHORTEST_FIRST,
)

if TYPE_CHECKING:
    from repro.campaign.engine import CellTask
    from repro.core.backend import AcceleratorBackend
    from repro.models.config import ModelConfig, TrainConfig
    from repro.observe import RunLedger, TraceRecorder

__all__ = [
    "SCHEDULE_LANE_MAJOR",
    "SCHEDULE_LONGEST_FIRST",
    "SCHEDULE_SHORTEST_FIRST",
    "SCHEDULE_POLICIES",
    "PREDICTOR_ANALYTIC",
    "PREDICTOR_EWMA",
    "PREDICTORS",
    "CostPredictor",
    "AnalyticCostPredictor",
    "EWMACostPredictor",
    "Scheduler",
    "SchedulerStats",
    "estimate_cell_seconds",
    "make_predictor",
    "simulate_makespan",
]

#: Prediction for a task with no analytic hint and no learned family
#: history. Any constant works: constant predictions make every policy
#: collapse to lane-major order (earliest task wins all ties).
DEFAULT_COST_SECONDS = 1.0


def estimate_cell_seconds(backend: "AcceleratorBackend",
                          model: "ModelConfig", train: "TrainConfig", *,
                          measure: bool = True) -> float:
    """Analytic prediction of one cell's harness seconds on a backend.

    Compile time from the cost model's compile proxy, plus — when the
    cell also measures — one step at the chip's peak with the paper's
    ~20% achieved efficiency. Relative accuracy is all the scheduler
    needs: it ranks cells, it never bills them.
    """
    cost = TransformerCostModel(model)
    seconds = cost.estimated_compile_seconds()
    if measure:
        seconds += cost.estimated_step_seconds(
            train, backend.system.chip.peak_flops)
    return seconds


@runtime_checkable
class CostPredictor(Protocol):
    """Prices pending cells; learns (optionally) from finished ones."""

    name: str

    def predict(self, task: "CellTask") -> float:
        """Predicted harness seconds for a pending task."""
        ...

    def observe(self, task: "CellTask", seconds: float) -> None:
        """Feed back a finished task's measured seconds."""
        ...


class AnalyticCostPredictor:
    """Static predictor: the task's stamped analytic cost hint.

    Task producers (:class:`~repro.campaign.Campaign` and
    :func:`~repro.workloads.sweeps.cell_tasks`) stamp every task with
    :func:`estimate_cell_seconds`; this predictor simply trusts it and
    ignores observations.
    """

    name = PREDICTOR_ANALYTIC

    def predict(self, task: "CellTask") -> float:
        hint = task.cost_hint
        return hint if hint is not None else DEFAULT_COST_SECONDS

    def observe(self, task: "CellTask", seconds: float) -> None:
        pass


class EWMACostPredictor:
    """Online predictor: per-family EWMA seeded by the analytic hint.

    ``family`` is the task's workload-family key — the campaign stamps
    ``"<lane>::<model family>"`` so the estimator is per-(backend,
    family), matching how real cell costs cluster (a slow compiler
    service slows *every* cell on that backend by a similar factor).
    A family with no observations yet falls back to the analytic hint,
    so the very first pick is as good as :class:`AnalyticCostPredictor`
    and later picks are better.

    ``prior`` warm-starts the per-family table — a
    :class:`~repro.observe.RunLedger`'s persisted EWMAs carry one run's
    observations into the next, so a warm-started campaign prices cells
    realistically from its very first pick.
    """

    name = PREDICTOR_EWMA

    def __init__(self, alpha: float = 0.3,
                 prior: dict[str, float] | None = None) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(
                f"EWMA alpha must be in (0, 1]: {alpha}")
        self.alpha = alpha
        self._ewma: dict[str, float] = dict(prior) if prior else {}
        self._lock = threading.Lock()

    def predict(self, task: "CellTask") -> float:
        with self._lock:
            learned = self._ewma.get(task.family)
        if learned is not None:
            return learned
        hint = task.cost_hint
        return hint if hint is not None else DEFAULT_COST_SECONDS

    def observe(self, task: "CellTask", seconds: float) -> None:
        with self._lock:
            previous = self._ewma.get(task.family)
            if previous is None:
                self._ewma[task.family] = seconds
            else:
                self._ewma[task.family] = (self.alpha * seconds
                                           + (1.0 - self.alpha) * previous)


def make_predictor(spec: Any,
                   prior: dict[str, float] | None = None) -> CostPredictor:
    """Resolve a policy's ``predictor`` field to an instance.

    Accepts the built-in names (``"analytic"`` / ``"ewma"``) or any
    object already implementing the :class:`CostPredictor` protocol.
    ``prior`` (a ledger's persisted family EWMAs) only applies to the
    built-in ``"ewma"`` predictor — the analytic model is static and a
    caller-supplied instance owns its own state.
    """
    if isinstance(spec, str):
        if spec == PREDICTOR_ANALYTIC:
            return AnalyticCostPredictor()
        if spec == PREDICTOR_EWMA:
            return EWMACostPredictor(prior=prior)
        raise ConfigurationError(
            f"predictor must be one of {PREDICTORS}: {spec!r}")
    if not (callable(getattr(spec, "predict", None))
            and callable(getattr(spec, "observe", None))):
        raise ConfigurationError(
            f"predictor object must implement the CostPredictor "
            f"protocol (predict/observe): {spec!r}")
    return spec


def simulate_makespan(costs: list[float], max_workers: int) -> float:
    """Makespan of dispatching ``costs`` in order across a worker pool.

    The standard greedy list-scheduling model: each cost goes to the
    earliest-free worker. Deterministic — which is exactly why the
    scheduler reports *simulated* makespan instead of trying to time a
    real pool, where concurrent sleeps on a shared fake clock would
    make per-cell elapsed time racy.
    """
    if not costs:
        return 0.0
    free = [0.0] * max(1, min(max_workers, len(costs)))
    for cost in costs:
        heapq.heapreplace(free, free[0] + cost)
    return max(free)


@dataclass(frozen=True)
class SchedulerStats:
    """One scheduler's telemetry for a finished run.

    ``makespan_seconds`` is the simulated makespan of the observed
    per-cell costs dispatched in this schedule's order across
    ``max_workers`` workers (see :func:`simulate_makespan`);
    ``mean_abs_error`` / ``mape`` compare the dispatch-time predictions
    against what cells actually took (MAPE skips zero-cost cells).
    ``dispatch`` records how the workers were realized (``"thread"`` or
    ``"process"``) so a report line is self-describing.
    """

    schedule: str
    predictor: str
    cells: int
    predicted_seconds: float
    actual_seconds: float
    mean_abs_error: float
    mape: float | None
    makespan_seconds: float
    max_workers: int
    dispatch: str = DISPATCH_THREAD


class Scheduler:
    """Orders pending cells by predicted cost under one policy.

    The engine calls :meth:`pick` to choose which pending task to
    dispatch next and :meth:`observe` as each finishes; both run on the
    dispatch thread, so the scheduler itself needs no locking (the
    shared :class:`EWMACostPredictor` guards its own state). One
    instance serves one run — :meth:`stats` summarizes it afterwards.
    """

    def __init__(self, schedule: str = SCHEDULE_LANE_MAJOR,
                 predictor: CostPredictor | None = None,
                 ledger: "RunLedger | None" = None,
                 tracer: "TraceRecorder | None" = None) -> None:
        if schedule not in SCHEDULE_POLICIES:
            raise ConfigurationError(
                f"schedule must be one of {SCHEDULE_POLICIES}: "
                f"{schedule!r}")
        self.schedule = schedule
        self.predictor: CostPredictor = (predictor if predictor is not None
                                         else EWMACostPredictor())
        self.ledger = ledger
        self.tracer = tracer
        self._order: list[str] = []
        self._forecast: dict[str, float] = {}
        self._actual: dict[str, float] = {}

    @property
    def is_lane_major(self) -> bool:
        """True when dispatch order equals task-list order."""
        return self.schedule == SCHEDULE_LANE_MAJOR

    def pick(self, pending: "list[tuple[int, CellTask]]") -> int:
        """Position in ``pending`` of the next task to dispatch.

        ``lane-major`` always takes the head; the cost policies price
        every pending task and take the extreme, earliest task winning
        ties (so constant predictions degrade gracefully to lane-major
        order). The price the comparison used is what the telemetry
        records — re-predicting after the loop could diverge from the
        decision under a predictor whose state moves between calls
        (and would double the predict() traffic).
        """
        position = 0
        price = self.predictor.predict(pending[0][1])
        if not self.is_lane_major and len(pending) > 1:
            longest = self.schedule == SCHEDULE_LONGEST_FIRST
            best = price
            for i in range(1, len(pending)):
                cost = self.predictor.predict(pending[i][1])
                if (cost > best) if longest else (cost < best):
                    best, position = cost, i
            price = best
        chosen = pending[position][1]
        self._order.append(chosen.key)
        self._forecast[chosen.key] = price
        if self.tracer is not None:
            self.tracer.emit("schedule", key=chosen.key,
                             status=self.schedule, predicted=price)
        return position

    def observe(self, task: "CellTask", seconds: float) -> None:
        """Record a finished task's measured (injected-clock) seconds.

        A configured :class:`~repro.observe.RunLedger` gets the same
        observation, persisting it for the next run's warm start.
        Zero-cost cells — cache replays and gated skips — still land in
        the telemetry (the Scheduling table should show them) but carry
        no cost signal, so neither the online predictor nor the ledger
        learns from them: a warm run must not teach the EWMA that every
        cell is free.
        """
        self._actual[task.key] = seconds
        if seconds > 0.0:
            self.predictor.observe(task, seconds)
            if self.ledger is not None:
                self.ledger.record(task.family, seconds)

    def flush(self) -> None:
        """Persist the run ledger's batched observations, if any.

        The engine calls this once per drain (in a ``finally``), so a
        campaign writes its ledger file once per run instead of once
        per cell — see :meth:`~repro.observe.RunLedger.flush`.
        """
        if self.ledger is not None:
            self.ledger.flush()

    def stats(self, max_workers: int = 1,
              dispatch: str = DISPATCH_THREAD) -> SchedulerStats:
        """Summarize the run's predictions against its observations."""
        pairs = [(self._forecast[key], self._actual[key])
                 for key in self._order if key in self._actual]
        predicted = sum(p for p, _ in pairs)
        actual = sum(a for _, a in pairs)
        errors = [abs(p - a) for p, a in pairs]
        ratios = [abs(p - a) / a for p, a in pairs if a > 0]
        return SchedulerStats(
            schedule=self.schedule,
            predictor=getattr(self.predictor, "name",
                              type(self.predictor).__name__),
            cells=len(pairs),
            predicted_seconds=predicted,
            actual_seconds=actual,
            mean_abs_error=(sum(errors) / len(errors)) if errors else 0.0,
            mape=(sum(ratios) / len(ratios)) if ratios else None,
            makespan_seconds=simulate_makespan(
                [a for _, a in pairs], max_workers),
            max_workers=max_workers,
            dispatch=dispatch,
        )
