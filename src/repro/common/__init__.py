"""Shared utilities: error types, unit helpers, and small generic tools.

Every other ``repro`` subpackage may depend on :mod:`repro.common`; it
depends on nothing but the standard library.
"""

from repro.common.errors import (
    CompilationError,
    ConfigurationError,
    OutOfMemoryError,
    ReproError,
    SimulationError,
)
from repro.common.units import (
    GB,
    KB,
    MB,
    PB,
    TB,
    fmt_bytes,
    fmt_count,
    fmt_flops,
    fmt_rate,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CompilationError",
    "OutOfMemoryError",
    "SimulationError",
    "KB",
    "MB",
    "GB",
    "TB",
    "PB",
    "fmt_bytes",
    "fmt_count",
    "fmt_flops",
    "fmt_rate",
]
