"""Shared utilities: error types, unit helpers, and small generic tools.

Every other ``repro`` subpackage may depend on :mod:`repro.common`; it
depends on nothing but the standard library.
"""

from repro.common.errors import (
    CircuitOpenError,
    CompilationError,
    ConfigurationError,
    DeadlineExceededError,
    DeviceFaultError,
    ErrorRecord,
    OutOfMemoryError,
    ReproError,
    SimulationError,
    TransientError,
    is_infrastructure_fault,
)
from repro.common.units import (
    GB,
    KB,
    MB,
    PB,
    TB,
    fmt_bytes,
    fmt_count,
    fmt_flops,
    fmt_rate,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CompilationError",
    "OutOfMemoryError",
    "SimulationError",
    "TransientError",
    "DeviceFaultError",
    "DeadlineExceededError",
    "CircuitOpenError",
    "ErrorRecord",
    "is_infrastructure_fault",
    "KB",
    "MB",
    "GB",
    "TB",
    "PB",
    "fmt_bytes",
    "fmt_count",
    "fmt_flops",
    "fmt_rate",
]
