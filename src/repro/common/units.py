"""Byte/FLOP unit constants and human-readable formatting helpers.

The library stores every quantity in base SI units (bytes, FLOPs, seconds,
bytes/second). These helpers exist so reports and examples never hand-roll
unit math.
"""

from __future__ import annotations

KB: int = 1024
MB: int = 1024 ** 2
GB: int = 1024 ** 3
TB: int = 1024 ** 4
PB: int = 1024 ** 5

_BYTE_STEPS = [
    (PB, "PB"),
    (TB, "TB"),
    (GB, "GB"),
    (MB, "MB"),
    (KB, "KB"),
]

_SI_STEPS = [
    (1e15, "P"),
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "K"),
]


def fmt_bytes(n: float) -> str:
    """Format a byte count with a binary suffix, e.g. ``40.0 GB``."""
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for step, suffix in _BYTE_STEPS:
        if n >= step:
            return f"{sign}{n / step:.2f} {suffix}"
    return f"{sign}{n:.0f} B"


def fmt_count(n: float) -> str:
    """Format a plain count with an SI suffix, e.g. ``850.0K`` PEs."""
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for step, suffix in _SI_STEPS:
        if n >= step:
            return f"{sign}{n / step:.1f}{suffix}"
    return f"{sign}{n:.0f}"


def fmt_flops(n: float) -> str:
    """Format a FLOP/s figure, e.g. ``338.0 TFLOP/s``."""
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for step, suffix in _SI_STEPS:
        if n >= step:
            return f"{sign}{n / step:.1f} {suffix}FLOP/s"
    return f"{sign}{n:.0f} FLOP/s"


def fmt_rate(n: float, unit: str = "tokens/s") -> str:
    """Format a generic rate with an SI suffix, e.g. ``0.66M tokens/s``."""
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for step, suffix in _SI_STEPS:
        if n >= step:
            return f"{sign}{n / step:.2f}{suffix} {unit}"
    return f"{sign}{n:.1f} {unit}"
