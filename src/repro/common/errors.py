"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library may raise with a single ``except`` clause while
still distinguishing compile-time, run-time, and configuration failures.

Two orthogonal axes matter to the sweep harness:

* *capability* failures (:class:`CompilationError`, its
  :class:`OutOfMemoryError` subclass) are results — the paper records
  them as "Fail" cells (Table I, Fig. 9d) and retrying cannot help;
* *infrastructure* failures (:class:`TransientError`,
  :class:`DeviceFaultError`, :class:`DeadlineExceededError`) come from
  the platform itself, and the resilience layer
  (:mod:`repro.resilience`) retries, deadlines, or circuit-breaks them.

:class:`ErrorRecord` is the structured form both kinds take inside sweep
cells and the resume journal, preserving attributes such as
``OutOfMemoryError.required_bytes`` that ``str(exc)`` would flatten away.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid model, training, or hardware configuration was supplied."""


class CompilationError(ReproError):
    """The (simulated) compiler could not map the workload onto the chip.

    Mirrors real-world compile failures the paper reports, e.g. WSE-2
    failing to place a 78-layer GPT-2 model (Table I) or the IPU running
    out of tile memory at 10 decoder layers (Fig. 9d).
    """


class OutOfMemoryError(CompilationError):
    """A memory capacity limit was exceeded during compilation or execution.

    Attributes:
        required_bytes: bytes the workload needed.
        available_bytes: bytes the device could provide.
    """

    def __init__(self, message: str, *, required_bytes: float = 0.0,
                 available_bytes: float = 0.0) -> None:
        super().__init__(message)
        self.required_bytes = float(required_bytes)
        self.available_bytes = float(available_bytes)


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class TransientError(ReproError):
    """A fault that may not recur: retrying the same cell can succeed.

    Platform adapters subclass this for their own flavours (WSE fabric
    glitches, RDU section stalls, compiler flakes) and declare them in
    :attr:`~repro.core.backend.AcceleratorBackend.transient_errors`.
    """


class DeviceFaultError(ReproError):
    """A permanent platform fault: the device (or a component) is broken.

    Unlike a :class:`CompilationError` this says nothing about the
    workload — the same cell would succeed on healthy hardware — but
    retrying on the same device is pointless.

    Attributes:
        component: the failed component (``"fabric"``, ``"pcie"``, ...).
    """

    def __init__(self, message: str, *, component: str = "device") -> None:
        super().__init__(message)
        self.component = component


class DeadlineExceededError(ReproError):
    """A cell ran past its per-cell deadline and was cut off.

    Attributes:
        elapsed: seconds the attempt actually took.
        deadline: the configured per-cell budget in seconds.
    """

    def __init__(self, message: str, *, elapsed: float = 0.0,
                 deadline: float = 0.0) -> None:
        super().__init__(message)
        self.elapsed = float(elapsed)
        self.deadline = float(deadline)


class QuarantinedError(ReproError):
    """A cell was quarantined after repeatedly killing its worker.

    Raised (as a record, not across processes) by the campaign
    :class:`~repro.campaign.supervisor.Supervisor` when a poison cell
    crashes its worker process ``quarantine_after`` times: the cell is
    finalized as a failure instead of being retried forever, so one
    pathological (model, backend) point cannot sink the grid.

    Attributes:
        crashes: worker crashes this cell caused before quarantine.
    """

    def __init__(self, message: str, *, crashes: int = 0) -> None:
        super().__init__(message)
        self.crashes = int(crashes)


class CircuitOpenError(ReproError):
    """The per-backend circuit breaker is open: calls fail fast.

    Attributes:
        backend: name of the backend whose breaker tripped.
        retry_after: seconds until the breaker half-opens.
    """

    def __init__(self, message: str, *, backend: str = "",
                 retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.backend = backend
        self.retry_after = float(retry_after)


def is_infrastructure_fault(exc: BaseException) -> bool:
    """Whether ``exc`` is a platform fault rather than a capability result.

    Capability failures (``CompilationError`` / ``OutOfMemoryError``) are
    legitimate benchmark outcomes; infrastructure faults are noise the
    resilience layer should absorb (and count toward circuit breakers).
    """
    return isinstance(exc, (TransientError, DeviceFaultError,
                            DeadlineExceededError, CircuitOpenError))


_SCALAR = (str, int, float, bool, type(None))


@dataclass(frozen=True)
class ErrorRecord:
    """A structured, JSON-able snapshot of one failure.

    Carries the exception type name, message, the harness phase that
    raised (``"compile"`` or ``"run"``), and every public scalar
    attribute of the exception — so an ``OutOfMemoryError`` keeps its
    ``required_bytes`` / ``available_bytes`` all the way into reports
    and the resume journal. ``traceback`` optionally carries the
    formatted original traceback for post-mortems; it is excluded from
    journal lines (tracebacks embed file/line details that would break
    the byte-identical ``merged_text()`` guarantee across dispatch
    modes) but survives into JSON reports.
    """

    type: str
    message: str
    phase: str = "compile"
    transient: bool = False
    attrs: dict[str, Any] = field(default_factory=dict)
    traceback: str | None = None

    @classmethod
    def from_exception(cls, exc: BaseException, *, phase: str = "compile",
                       transient: bool | None = None,
                       capture_traceback: bool = False) -> "ErrorRecord":
        """Capture ``exc`` (public scalar attributes included)."""
        attrs = {
            name: value
            for name, value in vars(exc).items()
            if not name.startswith("_") and isinstance(value, _SCALAR)
        }
        if transient is None:
            transient = isinstance(exc, TransientError)
        formatted = None
        if capture_traceback and exc.__traceback__ is not None:
            import traceback as _traceback
            formatted = "".join(_traceback.format_exception(
                type(exc), exc, exc.__traceback__))
        return cls(type=type(exc).__name__, message=str(exc), phase=phase,
                   transient=transient, attrs=attrs, traceback=formatted)

    def to_dict(self) -> dict[str, Any]:
        """Flatten for JSON serialization."""
        payload = {"type": self.type, "message": self.message,
                   "phase": self.phase, "transient": self.transient,
                   "attrs": dict(self.attrs)}
        if self.traceback is not None:
            payload["traceback"] = self.traceback
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ErrorRecord":
        """Rebuild from a journal/JSON dict."""
        traceback = payload.get("traceback")
        return cls(type=str(payload.get("type", "ReproError")),
                   message=str(payload.get("message", "")),
                   phase=str(payload.get("phase", "compile")),
                   transient=bool(payload.get("transient", False)),
                   attrs=dict(payload.get("attrs", {})),
                   traceback=str(traceback) if traceback else None)

    def __str__(self) -> str:
        return f"{self.type}: {self.message}"
