"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library may raise with a single ``except`` clause while
still distinguishing compile-time, run-time, and configuration failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid model, training, or hardware configuration was supplied."""


class CompilationError(ReproError):
    """The (simulated) compiler could not map the workload onto the chip.

    Mirrors real-world compile failures the paper reports, e.g. WSE-2
    failing to place a 78-layer GPT-2 model (Table I) or the IPU running
    out of tile memory at 10 decoder layers (Fig. 9d).
    """


class OutOfMemoryError(CompilationError):
    """A memory capacity limit was exceeded during compilation or execution.

    Attributes:
        required_bytes: bytes the workload needed.
        available_bytes: bytes the device could provide.
    """

    def __init__(self, message: str, *, required_bytes: float = 0.0,
                 available_bytes: float = 0.0) -> None:
        super().__init__(message)
        self.required_bytes = float(required_bytes)
        self.available_bytes = float(available_bytes)


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""
