"""Campaign observability: trace spans, metrics, and the run ledger.

Three pieces, all optional and all side-effect-free on the journal:

* :mod:`repro.observe.trace` — JSONL trace shards written beside the
  journal shards, a deterministic canonical merge, and Chrome
  trace-event export (``repro trace`` on the CLI).
* :mod:`repro.observe.metrics` — a seeded-deterministic metrics
  registry plus the per-lane :class:`ObservabilityStats` rollup shown
  in the report's "Observability" table.
* :mod:`repro.observe.ledger` — :class:`RunLedger`, a persisted
  per-(backend, model-family) duration table that warm-starts the
  EWMA cost predictor and scales supervisor heartbeats across runs.

Enable via ``ExecutionPolicy(trace=True, ledger="ledger.json")`` or the
``--trace`` / ``--ledger`` CLI flags; see ``docs/observability.md``.
"""

from .ledger import LEDGER_ALPHA, LEDGER_VERSION, RunLedger
from .metrics import (
    RESERVOIR_SIZE,
    HistogramSummary,
    MetricsRegistry,
    ObservabilityStats,
    aggregate_observability,
)
from .trace import (
    TRACE_PREFIX,
    TRACE_VERSION,
    TraceEvent,
    TraceRecorder,
    events_for_key,
    load_events,
    merge_events,
    merged_trace_text,
    new_run_token,
    summarize_events,
    to_chrome_events,
    trace_shard_paths,
    write_chrome_trace,
)

__all__ = [
    "LEDGER_ALPHA",
    "LEDGER_VERSION",
    "RESERVOIR_SIZE",
    "TRACE_PREFIX",
    "TRACE_VERSION",
    "HistogramSummary",
    "MetricsRegistry",
    "ObservabilityStats",
    "RunLedger",
    "TraceEvent",
    "TraceRecorder",
    "aggregate_observability",
    "events_for_key",
    "load_events",
    "merge_events",
    "merged_trace_text",
    "new_run_token",
    "summarize_events",
    "to_chrome_events",
    "trace_shard_paths",
    "write_chrome_trace",
]
