"""Structured trace spans for the campaign runtime.

Every layer of the campaign stack — the scheduler, the engine/process
dispatchers, the :class:`~repro.resilience.ResilientExecutor`, and the
:class:`~repro.campaign.supervisor.Supervisor` — can emit one-line
JSONL *trace events* through a :class:`TraceRecorder`. The records
reconstruct a cell's full lifecycle::

    schedule -> dispatch -> compile -> run -> cell
                         \\-> cache (hit / miss / bypass)
                         \\-> retry / gate (breaker open)
    worker-crash -> isolate -> worker-crash -> quarantine
    sigkill (supervisor patrol), pool-rebuild, resume, recovered

Shards are written one file per writer thread per process (the same
no-shared-writer discipline as :class:`~repro.resilience.ShardedJournal`)
into the journal directory, named ``trace-<run>-<pid>-<inst>-<n>.jsonl``
— the journal's shard filter only accepts its own prefix, so tracing is
**side-effect-free on the journal**: ``merged_text()`` stays
byte-identical with tracing on or off.

Determinism: every event has a *canonical* projection —
``(key, name, phase, status, attempt)`` — that excludes wall-clock
timestamps, durations, writer ids, and metadata. :func:`merged_trace_text`
sorts canonical events into a stable order, so a faultless grid produces
the **same merged trace under thread and process dispatch** and across
repeated runs. The full events (with monotonic timestamps) feed the
Chrome trace-event export (:func:`to_chrome_events`), which follows the
conventions of :mod:`repro.sim.export`.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Iterable, Sequence

TRACE_VERSION = 1

#: Trace shards live beside the journal shards; this prefix keeps them
#: out of the journal's shard filter (which matches its own prefix).
TRACE_PREFIX = "trace"

#: Event fields that survive into the canonical (deterministic) merge.
CANONICAL_FIELDS = ("key", "name", "phase", "status", "attempt")

#: Event names excluded from the canonical merge entirely. A
#: ``stage_cache`` event says whether a *memo* served a compile stage —
#: pure telemetry about work sharing, dependent on dispatch order (the
#: first cell to reach a stage misses, every later one hits), so
#: keeping it would break the "same merged trace under thread and
#: process dispatch, memoized or not" guarantee. The events still feed
#: the Observability rollup and the Chrome export.
NONCANONICAL_NAMES = frozenset({"stage_cache"})

#: Deterministic within-(key, attempt) ordering of event names. Names
#: not listed sort after the known lifecycle, alphabetically.
_NAME_RANK = {
    "resume": 0,
    "recovered": 1,
    "schedule": 2,
    "dispatch": 3,
    "cache": 4,
    "gate": 5,
    "compile": 6,
    "run": 7,
    "retry": 8,
    "sigkill": 9,
    "worker-crash": 10,
    "isolate": 11,
    "quarantine": 12,
    "cell": 13,
    "pool-rebuild": 14,
}

# Chrome traces use microseconds; trace timestamps are seconds.
_SECONDS_TO_US = 1e6

_EPOCH_OFFSET: float | None = None


def _epoch_offset() -> float:
    """This process's wall-minus-monotonic offset, computed once.

    ``time.monotonic()`` epochs are per-process on every platform CPython
    supports (POSIX allows ``CLOCK_MONOTONIC`` to start anywhere, and
    Windows' ``QueryPerformanceCounter`` counts from boot of the *QPC*
    unit) — raw stamps from two worker processes are NOT comparable.
    Each shard therefore records its writer's offset in a header line so
    :func:`load_events` can translate every stamp onto one timeline.
    Computed once per process rather than per shard: two threads sampling
    the pair microseconds apart would otherwise disagree by the sampling
    jitter and reorder same-process events.
    """
    global _EPOCH_OFFSET
    if _EPOCH_OFFSET is None:
        _EPOCH_OFFSET = time.time() - time.monotonic()
    return _EPOCH_OFFSET


@dataclass(frozen=True)
class TraceEvent:
    """One trace record.

    ``ts`` is a ``time.monotonic()`` stamp, meaningful only relative to
    other stamps from the same process — :func:`load_events` uses the
    per-shard epoch header to normalize stamps from different worker
    processes onto one timeline; ``duration`` is nonzero for span
    events (compile / run / cell). ``writer`` identifies the shard the
    event came from and
    ``seq`` its position within that shard — together they give a total
    causal order per writer. ``meta`` holds free-form details (error
    types, kill reasons, predicted costs) excluded from the canonical
    projection.
    """

    name: str
    key: str = ""
    phase: str = ""
    status: str = ""
    attempt: int = 0
    ts: float = 0.0
    duration: float = 0.0
    writer: str = ""
    seq: int = 0
    meta: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "v": TRACE_VERSION,
            "name": self.name,
            "key": self.key,
            "phase": self.phase,
            "status": self.status,
            "attempt": self.attempt,
            "ts": self.ts,
            "duration": self.duration,
            "seq": self.seq,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any],
                  writer: str = "") -> "TraceEvent":
        meta = payload.get("meta")
        return cls(
            name=str(payload["name"]),
            key=str(payload.get("key", "")),
            phase=str(payload.get("phase", "")),
            status=str(payload.get("status", "")),
            attempt=int(payload.get("attempt", 0)),
            ts=float(payload.get("ts", 0.0)),
            duration=float(payload.get("duration", 0.0)),
            writer=writer,
            seq=int(payload.get("seq", 0)),
            meta=dict(meta) if isinstance(meta, dict) else {},
        )

    def canonical(self) -> dict[str, Any]:
        """The deterministic projection of this event."""
        return {"key": self.key, "name": self.name, "phase": self.phase,
                "status": self.status, "attempt": self.attempt}


def _canonical_order(event: TraceEvent) -> tuple:
    rank = _NAME_RANK.get(event.name)
    return (event.key, event.attempt,
            0 if rank is not None else 1,
            rank if rank is not None else 0,
            event.name, event.phase, event.status)


class TraceRecorder:
    """Appends trace events to per-thread JSONL shards in a directory.

    One recorder serves one process of one campaign run; every writer
    thread lazily claims its own shard file (pid + a random instance
    token + a per-thread counter make the name unique without any
    cross-process claim protocol). ``run`` groups the shards of one
    campaign run — the parent generates it and ships it to worker
    processes, so :func:`load_events` can read exactly one run back out
    of a directory that accumulates shards across runs.

    Emitting never raises for IO problems: a trace is telemetry, and
    losing a shard must not take real work down with it.
    """

    def __init__(self, directory: str | os.PathLike[str],
                 run: str | None = None,
                 prefix: str = TRACE_PREFIX) -> None:
        self.directory = Path(directory)
        self.run = run if run is not None else new_run_token()
        self.prefix = prefix
        self._instance = uuid.uuid4().hex[:4]
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_writer = 0

    def emit(self, name: str, *, key: str = "", phase: str = "",
             status: str = "", attempt: int = 0, duration: float = 0.0,
             **meta: Any) -> None:
        """Append one event to this thread's shard (best-effort)."""
        event = TraceEvent(name=name, key=key, phase=phase, status=status,
                           attempt=attempt, ts=time.monotonic(),
                           duration=duration, seq=self._next_seq(),
                           meta=meta)
        try:
            handle = self._handle()
            handle.write(json.dumps(event.to_dict(), sort_keys=True)
                         + "\n")
            handle.flush()
        except OSError:
            pass

    def _next_seq(self) -> int:
        seq = getattr(self._local, "seq", 0) + 1
        self._local.seq = seq
        return seq

    def _handle(self) -> Any:
        handle = getattr(self._local, "handle", None)
        if handle is None:
            with self._lock:
                writer = self._next_writer
                self._next_writer += 1
            name = (f"{self.prefix}-{self.run}-{os.getpid()}"
                    f"-{self._instance}-{writer:03d}.jsonl")
            self.directory.mkdir(parents=True, exist_ok=True)
            handle = (self.directory / name).open("a", encoding="utf-8")
            # First line of every shard: the writer's wall-minus-
            # monotonic offset, so the loader can put shards from
            # different processes on one timeline (see _epoch_offset).
            handle.write(json.dumps(
                {"v": TRACE_VERSION, "header": True,
                 "epoch": _epoch_offset()}, sort_keys=True) + "\n")
            handle.flush()
            self._local.handle = handle
        return handle


def new_run_token() -> str:
    """A fresh run token grouping the trace shards of one campaign."""
    return uuid.uuid4().hex[:8]


def trace_shard_paths(directory: str | os.PathLike[str],
                      run: str | None = None,
                      prefix: str = TRACE_PREFIX) -> list[Path]:
    """Trace shard files in ``directory``, sorted by name.

    With ``run``, only the shards of that campaign run are returned.
    """
    root = Path(directory)
    if not root.exists():
        return []
    marker = (f"{prefix}-{run}-" if run is not None else f"{prefix}-")
    return sorted(path for path in root.iterdir()
                  if path.name.startswith(marker)
                  and path.name.endswith(".jsonl"))


def load_events(directory: str | os.PathLike[str],
                run: str | None = None,
                prefix: str = TRACE_PREFIX) -> list[TraceEvent]:
    """Read every trace event under ``directory``, in causal time order.

    Torn or malformed lines (a crash mid-write) are skipped, like the
    journal's loader. Each shard's epoch header (its writer's
    wall-minus-monotonic offset) translates that shard's monotonic
    stamps onto one shared timeline before sorting — raw
    ``time.monotonic()`` values from different processes are not
    comparable, their epochs are arbitrary per process. Stamps are
    shifted by ``offset - min(offsets)``, so a single-process trace
    (every shard sharing one offset) is returned bit-for-bit unshifted,
    and a shard with no header (an old or truncated file) is left
    unshifted too. Events are then ordered by ``(ts, writer, seq)``.
    """
    events: list[TraceEvent] = []
    shard_events: dict[str, list[int]] = {}
    offsets: dict[str, float] = {}
    for path in trace_shard_paths(directory, run, prefix):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            continue
        indices = shard_events.setdefault(path.stem, [])
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                if payload.get("header"):
                    epoch = payload.get("epoch")
                    if isinstance(epoch, (int, float)):
                        offsets[path.stem] = float(epoch)
                    continue
                indices.append(len(events))
                events.append(TraceEvent.from_dict(payload,
                                                   writer=path.stem))
            except (json.JSONDecodeError, KeyError, TypeError,
                    ValueError):
                continue
    if offsets:
        base = min(offsets.values())
        for stem, indices in shard_events.items():
            delta = offsets.get(stem, base) - base
            if delta == 0.0:
                continue
            for i in indices:
                events[i] = replace(events[i], ts=events[i].ts + delta)
    events.sort(key=lambda e: (e.ts, e.writer, e.seq))
    return events


def merge_events(events: Iterable[TraceEvent]) -> list[TraceEvent]:
    """Deterministic merge order: sorted by canonical fields only.

    The result is identical for the same set of canonical events,
    whatever shards, threads, or processes produced them. Events named
    in :data:`NONCANONICAL_NAMES` (dispatch-order-dependent telemetry
    like ``stage_cache``) are dropped here, so the merged trace is
    also identical with stage memoization on or off.
    """
    return sorted((e for e in events if e.name not in NONCANONICAL_NAMES),
                  key=_canonical_order)


def merged_trace_text(events: Iterable[TraceEvent]) -> str:
    """The canonical merged trace: one JSON line per event.

    Only the deterministic fields survive (no timestamps, durations,
    writer ids, or meta), so two faultless runs of the same grid —
    thread- or process-dispatched — produce byte-identical text.
    """
    lines = [json.dumps(event.canonical(), sort_keys=True)
             for event in merge_events(events)]
    return "".join(line + "\n" for line in lines)


def events_for_key(events: Iterable[TraceEvent],
                   key: str) -> list[TraceEvent]:
    """The events of one cell, in causal ``(ts, writer, seq)`` order."""
    return sorted((e for e in events if e.key == key),
                  key=lambda e: (e.ts, e.writer, e.seq))


def summarize_events(events: Iterable[TraceEvent]) -> dict[str, int]:
    """Event-name histogram of a trace (for the CLI summary)."""
    counts: dict[str, int] = {}
    for event in events:
        counts[event.name] = counts.get(event.name, 0) + 1
    return dict(sorted(counts.items()))


def to_chrome_events(events: Sequence[TraceEvent],
                     process_name: str = "campaign") -> dict[str, Any]:
    """Convert trace events to a Chrome-tracing JSON object.

    Follows the :mod:`repro.sim.export` conventions: ``M`` metadata
    events name the process and one thread row per trace writer, span
    events become ``X`` complete events (microsecond ``ts``/``dur``,
    normalized to the earliest stamp), and point events become ``i``
    instants. Open the result in ``chrome://tracing`` / Perfetto.
    """
    tids: dict[str, int] = {}
    out: list[dict[str, Any]] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "tid": 0,
        "args": {"name": process_name},
    }]
    origin = min((e.ts for e in events), default=0.0)
    for event in events:
        writer = event.writer or "main"
        if writer not in tids:
            tid = len(tids)
            tids[writer] = tid
            out.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": writer},
            })
        args = {
            "key": event.key,
            "status": event.status,
            "attempt": event.attempt,
            **{k: v for k, v in event.meta.items()
               if isinstance(v, (str, int, float, bool))},
        }
        name = (f"{event.key}:{event.name}" if event.key
                else event.name)
        record: dict[str, Any] = {
            "name": name,
            "cat": event.phase or event.name,
            "pid": 0,
            "tid": tids[writer],
            "ts": max(0.0, event.ts - origin) * _SECONDS_TO_US,
            "args": args,
        }
        if event.duration > 0.0:
            record["ph"] = "X"
            # X events span [ts - dur, ts]: the stamp is taken when the
            # span *ends*, so shift the start back by the duration.
            record["ts"] = max(
                0.0, event.ts - origin - event.duration) * _SECONDS_TO_US
            record["dur"] = event.duration * _SECONDS_TO_US
        else:
            record["ph"] = "i"
            record["s"] = "t"
        out.append(record)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Sequence[TraceEvent],
                       path: str | os.PathLike[str],
                       process_name: str = "campaign") -> Path:
    """Write the Chrome-tracing JSON to ``path``; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(to_chrome_events(events, process_name)),
                      encoding="utf-8")
    return target
