"""Persisted per-(backend, model-family) duration ledger.

A :class:`RunLedger` is a small JSON file that survives across campaign
runs. During a run the scheduler feeds every observed cell duration
into it (keyed by the same ``"<lane>::<model family>"`` strings the
:class:`~repro.campaign.scheduler.EWMACostPredictor` uses); the next
run loads the file and uses the stored EWMAs to

* warm-start the EWMA cost predictor — the second campaign starts with
  realistic per-family estimates instead of analytic defaults, which
  shows up directly as a lower MAE in the Scheduling table; and
* scale the supervisor's heartbeat interval to the *typical* observed
  cell duration (bounded by the configured value), so fast grids get
  tight patrols without reconfiguring anything.

Corruption never takes a campaign down: a truncated, garbage, or
wrong-shape ledger file degrades to a cold start with a
``RuntimeWarning`` (the same contract as the journal's corrupt-line
handling). Saves are atomic (``tmp`` + ``os.replace``) so a crash
mid-save leaves the previous ledger intact.
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from pathlib import Path
from typing import Any

LEDGER_VERSION = 1

#: Smoothing factor for the persisted EWMAs; matches the in-run
#: :class:`~repro.campaign.scheduler.EWMACostPredictor` default.
LEDGER_ALPHA = 0.3


def _warn_corrupt(path: Path, why: str) -> None:
    warnings.warn(
        f"run ledger {path}: {why} — starting cold (the file will be "
        "rewritten on the next save)",
        RuntimeWarning,
        stacklevel=3,
    )


class RunLedger:
    """Cross-run EWMA duration table, persisted as one JSON file.

    The file shape is ``{"v": 1, "families": {family: {"count": int,
    "ewma_seconds": float, "total_seconds": float}}}``. The ledger
    lives in the parent process only — it is never pickled into
    workers; the supervisor/scheduler report observations back to it
    from the parent side.
    """

    def __init__(self, path: str | os.PathLike[str],
                 alpha: float = LEDGER_ALPHA) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.path = Path(path)
        self.alpha = alpha
        self._lock = threading.Lock()
        self._dirty = False
        #: How many times the ledger file has been written by this
        #: instance — regression guard for the batched-save contract
        #: (one save per campaign, not one per cell).
        self.saves = 0
        self._families: dict[str, dict[str, float]] = self._load()

    def _load(self) -> dict[str, dict[str, float]]:
        if not self.path.exists():
            return {}
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            _warn_corrupt(self.path, f"unreadable ({exc})")
            return {}
        if not isinstance(payload, dict):
            _warn_corrupt(self.path, "top level is not an object")
            return {}
        families = payload.get("families")
        if not isinstance(families, dict):
            _warn_corrupt(self.path, "missing 'families' table")
            return {}
        loaded: dict[str, dict[str, float]] = {}
        dropped = 0
        for family, row in families.items():
            try:
                ewma = float(row["ewma_seconds"])
                count = int(row["count"])
                total = float(row.get("total_seconds", 0.0))
            except (KeyError, TypeError, ValueError):
                dropped += 1
                continue
            if ewma <= 0.0 or count <= 0:
                dropped += 1
                continue
            loaded[str(family)] = {"count": count, "ewma_seconds": ewma,
                                   "total_seconds": total}
        if dropped:
            _warn_corrupt(self.path,
                          f"dropped {dropped} malformed family row(s)")
        return loaded

    def __len__(self) -> int:
        with self._lock:
            return len(self._families)

    def record(self, family: str, seconds: float) -> None:
        """Fold one observed duration into the family's EWMA.

        Empty families and non-positive durations are ignored — gated
        or instantly-failed cells carry no cost signal.

        The observation lands in memory only; the file is written by
        :meth:`flush` (the scheduler calls it once per drain) or an
        explicit :meth:`save`. A per-cell fsync'd rewrite of the whole
        table was the old behaviour and dominated fast grids' wall
        clock — the ledger is a warm-start hint, not a journal, so
        batching loses nothing a crash-resume needs.
        """
        if not family or seconds <= 0.0:
            return
        with self._lock:
            row = self._families.get(family)
            if row is None:
                row = {"count": 0, "ewma_seconds": seconds,
                       "total_seconds": 0.0}
                self._families[family] = row
            else:
                row["ewma_seconds"] = (
                    self.alpha * seconds
                    + (1.0 - self.alpha) * row["ewma_seconds"])
            row["count"] = int(row["count"]) + 1
            row["total_seconds"] = float(row["total_seconds"]) + seconds
            self._dirty = True

    def priors(self) -> dict[str, float]:
        """Family → persisted EWMA seconds (for predictor warm-start)."""
        with self._lock:
            return {family: float(row["ewma_seconds"])
                    for family, row in self._families.items()}

    def typical_seconds(self,
                        families: "set[str] | None" = None) -> float | None:
        """Mean of the per-family EWMAs, or ``None`` when empty.

        This is the adaptive-heartbeat signal: "how long does a cell
        usually take on this grid", robust to one family dominating
        the cell count.

        ``families`` scopes the mean to the families the *current*
        campaign will actually run (intersected with what the ledger
        has seen). A ledger is shared across campaigns, so without the
        scope a history of hour-long Tier-2 families would inflate the
        heartbeat of a seconds-long smoke grid — and vice versa.
        Families the ledger has never seen contribute nothing; if none
        intersect, the result is ``None`` (cold-start behaviour).
        """
        with self._lock:
            rows = self._families
            if families is not None:
                rows = {family: row for family, row in rows.items()
                        if family in families}
            if not rows:
                return None
            ewmas = [float(row["ewma_seconds"]) for row in rows.values()]
            return sum(ewmas) / len(ewmas)

    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            return {
                "v": LEDGER_VERSION,
                "families": {
                    family: {"count": int(row["count"]),
                             "ewma_seconds": float(row["ewma_seconds"]),
                             "total_seconds": float(row["total_seconds"])}
                    for family in sorted(self._families)
                    for row in (self._families[family],)
                },
            }

    def save(self) -> None:
        """Write the table to disk unconditionally (dirty or not)."""
        with self._lock:
            self._save_locked()

    def flush(self) -> None:
        """Write the table to disk iff observations arrived since the
        last save. Idempotent — a second flush with nothing new is a
        no-op, so callers can flush defensively in ``finally`` blocks.
        """
        with self._lock:
            if self._dirty:
                self._save_locked()

    def _save_locked(self) -> None:
        payload = {
            "v": LEDGER_VERSION,
            "families": {
                family: {"count": int(row["count"]),
                         "ewma_seconds": float(row["ewma_seconds"]),
                         "total_seconds": float(row["total_seconds"])}
                for family in sorted(self._families)
                for row in (self._families[family],)
            },
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True),
                       encoding="utf-8")
        os.replace(tmp, self.path)
        self._dirty = False
        self.saves += 1
