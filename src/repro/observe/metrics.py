"""Deterministic metrics registry and per-lane trace aggregation.

:class:`MetricsRegistry` is a tiny in-process metrics store — counters,
gauges, and histograms keyed by series name. Histograms keep exact
count/sum/min/max plus a bounded *reservoir sample* whose eviction is
driven by a seeded RNG derived from the series name (CRC32, not the
per-process-salted ``hash()``), so the same observation stream always
produces the same sample: reports stay reproducible run to run.

:func:`aggregate_observability` rolls a campaign's trace events up into
one :class:`ObservabilityStats` row per lane — the "Observability"
report table and the ``"observability"`` block of ``campaign_to_dict``.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Sequence

if TYPE_CHECKING:
    from .trace import TraceEvent

#: Default reservoir size for histogram samples.
RESERVOIR_SIZE = 32


@dataclass
class HistogramSummary:
    """Exact aggregates plus a deterministic sample of observations."""

    count: int = 0
    total: float = 0.0
    minimum: float = 0.0
    maximum: float = 0.0
    sample: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "sample": list(self.sample),
        }


class MetricsRegistry:
    """Counters, gauges, and histograms with deterministic state.

    ``seed`` feeds the per-series reservoir RNGs; two registries with
    the same seed observing the same streams hold identical state.
    """

    def __init__(self, seed: int = 0,
                 reservoir_size: int = RESERVOIR_SIZE) -> None:
        if reservoir_size <= 0:
            raise ValueError(
                f"reservoir_size must be positive, got {reservoir_size}")
        self.seed = seed
        self.reservoir_size = reservoir_size
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, HistogramSummary] = {}
        self._rngs: dict[str, random.Random] = {}
        self._seen: dict[str, int] = {}

    def _rng(self, name: str) -> random.Random:
        rng = self._rngs.get(name)
        if rng is None:
            rng = random.Random(
                self.seed ^ zlib.crc32(name.encode("utf-8")))
            self._rngs[name] = rng
        return rng

    def count(self, name: str, value: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self._histograms.get(name)
        if hist is None:
            hist = HistogramSummary(minimum=value, maximum=value)
            self._histograms[name] = hist
        hist.count += 1
        hist.total += value
        hist.minimum = min(hist.minimum, value)
        hist.maximum = max(hist.maximum, value)
        seen = self._seen.get(name, 0) + 1
        self._seen[name] = seen
        if len(hist.sample) < self.reservoir_size:
            hist.sample.append(value)
        else:
            slot = self._rng(name).randrange(seen)
            if slot < self.reservoir_size:
                hist.sample[slot] = value

    def counter_value(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def gauge_value(self, name: str) -> float | None:
        return self._gauges.get(name)

    def histogram(self, name: str) -> HistogramSummary | None:
        return self._histograms.get(name)

    def to_dict(self) -> dict[str, Any]:
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                name: self._histograms[name].to_dict()
                for name in sorted(self._histograms)
            },
        }


@dataclass(frozen=True)
class ObservabilityStats:
    """Per-lane rollup of a campaign's trace, for the report table.

    The field names are the stable serialized keys — they appear
    verbatim in ``campaign_to_dict(...)["observability"]``.
    """

    lane: str
    events: int = 0
    cells: int = 0
    compile_seconds: float = 0.0
    run_seconds: float = 0.0
    retries: int = 0
    gated: int = 0
    sigkills: int = 0
    worker_crashes: int = 0
    isolations: int = 0
    quarantines: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_bypasses: int = 0
    stage_hits: int = 0
    stage_misses: int = 0


def aggregate_observability(
        events: Iterable["TraceEvent"],
        labels: Sequence[str],
        registry: MetricsRegistry | None = None,
) -> list[ObservabilityStats]:
    """Roll trace events up into one stats row per campaign lane.

    Events attribute to a lane when their cell key starts with
    ``"<label>::"`` (the campaign's key convention); lane-less events
    (pool rebuilds, resume markers without a lane prefix) are dropped
    from the per-lane view. When a ``registry`` is given, the same
    rollup is also folded into it (``<lane>.<metric>`` counters and
    per-phase duration histograms) so downstream tooling sees one
    consistent store.
    """
    rows: dict[str, dict[str, float]] = {
        label: {"events": 0, "cells": 0, "compile_seconds": 0.0,
                "run_seconds": 0.0, "retries": 0, "gated": 0,
                "sigkills": 0, "worker_crashes": 0, "isolations": 0,
                "quarantines": 0, "cache_hits": 0, "cache_misses": 0,
                "cache_bypasses": 0, "stage_hits": 0, "stage_misses": 0}
        for label in labels
    }
    prefixes = {label: f"{label}::" for label in labels}
    for event in events:
        lane = None
        for label, prefix in prefixes.items():
            if event.key.startswith(prefix):
                lane = label
                break
        if lane is None:
            continue
        row = rows[lane]
        row["events"] += 1
        if event.name == "cell":
            row["cells"] += 1
        elif event.name == "compile":
            row["compile_seconds"] += event.duration
            if registry is not None:
                registry.observe(f"{lane}.compile_seconds",
                                 event.duration)
        elif event.name == "run":
            row["run_seconds"] += event.duration
            if registry is not None:
                registry.observe(f"{lane}.run_seconds", event.duration)
        elif event.name == "retry":
            row["retries"] += 1
        elif event.name == "gate":
            row["gated"] += 1
        elif event.name == "sigkill":
            row["sigkills"] += 1
        elif event.name == "worker-crash":
            row["worker_crashes"] += 1
        elif event.name == "isolate":
            row["isolations"] += 1
        elif event.name == "quarantine":
            row["quarantines"] += 1
        elif event.name == "cache":
            # status carries the cache verdict: hit / miss / bypass.
            if event.status == "hit":
                row["cache_hits"] += 1
            elif event.status == "miss":
                row["cache_misses"] += 1
            elif event.status == "bypass":
                row["cache_bypasses"] += 1
        elif event.name == "stage_cache":
            # One event per fingerprinted compile stage per cell:
            # whether the StageMemo served the stage's artifact.
            if event.status == "hit":
                row["stage_hits"] += 1
            elif event.status == "miss":
                row["stage_misses"] += 1
    out: list[ObservabilityStats] = []
    for label in labels:
        row = rows[label]
        stats = ObservabilityStats(
            lane=label,
            events=int(row["events"]),
            cells=int(row["cells"]),
            compile_seconds=row["compile_seconds"],
            run_seconds=row["run_seconds"],
            retries=int(row["retries"]),
            gated=int(row["gated"]),
            sigkills=int(row["sigkills"]),
            worker_crashes=int(row["worker_crashes"]),
            isolations=int(row["isolations"]),
            quarantines=int(row["quarantines"]),
            cache_hits=int(row["cache_hits"]),
            cache_misses=int(row["cache_misses"]),
            cache_bypasses=int(row["cache_bypasses"]),
            stage_hits=int(row["stage_hits"]),
            stage_misses=int(row["stage_misses"]),
        )
        if registry is not None:
            registry.count(f"{label}.events", stats.events)
            registry.count(f"{label}.cells", stats.cells)
            registry.count(f"{label}.retries", stats.retries)
            registry.count(f"{label}.sigkills", stats.sigkills)
            registry.count(f"{label}.cache_hits", stats.cache_hits)
            registry.count(f"{label}.cache_misses", stats.cache_misses)
            registry.count(f"{label}.stage_hits", stats.stage_hits)
            registry.count(f"{label}.stage_misses", stats.stage_misses)
        out.append(stats)
    return out
