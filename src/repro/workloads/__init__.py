"""Workload generators and sweep descriptors.

Implements the paper's decoder-block probe methodology (Sec. IV-D(a)):
"full-scale LLMs are impractical on a single chip, so we adopt a
decoder-block approach; by fixing hidden size or layer count, we probe
compute, memory, and communication limits."
"""

from repro.workloads.probes import (
    decoder_block_probe,
    paper_layer_sweep,
    paper_rdu_hidden_sweep_o0_o3,
    paper_rdu_hidden_sweep_o1,
)
from repro.workloads.reference import CpuBoundBackend
from repro.workloads.sweeps import SweepSpec, run_grid

__all__ = [
    "decoder_block_probe",
    "paper_layer_sweep",
    "paper_rdu_hidden_sweep_o0_o3",
    "paper_rdu_hidden_sweep_o1",
    "CpuBoundBackend",
    "SweepSpec",
    "run_grid",
]
