"""Generic sweep execution: run a grid of workloads against a backend.

The benchmark harness uses :func:`run_grid` to regenerate the paper's
tables: each cell compiles + runs one configuration and failures are
recorded rather than raised (a "Fail" cell is a result — Table I).

Any :class:`~repro.common.errors.ReproError` escaping the backend
becomes a failed cell with a structured
:class:`~repro.common.errors.ErrorRecord` (compile-phase and run-phase
failures are distinguished). Execution behaviour — retry, per-cell
deadlines, circuit breaking, journaling/resume, and worker-thread
fan-out — is described by one
:class:`~repro.resilience.ExecutionPolicy`::

    cells = run_grid(backend, specs,
                     policy=ExecutionPolicy(retry=RetryPolicy(2),
                                            journal="sweep.jsonl",
                                            resume=True, max_workers=4))

The pre-policy keywords (``executor=``, ``journal=``, ``resume=``,
``retry_failed=``) were removed in 0.3 — passing one raises
``TypeError`` with a migration hint. Cells always come back in spec
order, whatever order they executed in.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.campaign.engine import CellResult, CellTask, run_cell_tasks
from repro.common.errors import ErrorRecord
from repro.core.backend import AcceleratorBackend, CompileReport, RunReport
from repro.models.config import ModelConfig, TrainConfig
from repro.resilience.executor import ResilientExecutor
from repro.resilience.journal import JournalEntry, ShardedJournal
from repro.resilience.policy import (
    DISPATCH_PROCESS,
    ExecutionPolicy,
    reject_removed_kwargs,
)


@dataclass(frozen=True)
class SweepSpec:
    """One sweep cell: a labelled (model, train, options) triple."""

    label: str
    model: ModelConfig
    train: TrainConfig
    options: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SweepCell:
    """The outcome of one cell.

    ``error`` keeps the human-readable message; ``failure`` carries the
    structured record (exception type, phase, and attributes such as
    ``required_bytes``). ``resumed`` cells were restored from a journal
    without touching the backend — their reports are ``None`` but
    ``summary`` holds the journaled run metrics.
    """

    spec: SweepSpec
    compiled: CompileReport | None
    run: RunReport | None
    error: str | None = None
    failure: ErrorRecord | None = None
    attempts: int = 1
    resumed: bool = False
    summary: dict[str, Any] | None = None

    @property
    def failed(self) -> bool:
        return self.error is not None

    @property
    def phase(self) -> str | None:
        """Which harness phase failed (``None`` for successful cells)."""
        return self.failure.phase if self.failure is not None else None


def _cell_from_outcome(spec: SweepSpec, outcome: Any) -> SweepCell:
    if outcome.ok:
        return SweepCell(spec=spec, compiled=outcome.compiled,
                         run=outcome.run, attempts=outcome.attempts)
    return SweepCell(spec=spec, compiled=None, run=None,
                     error=str(outcome.error), failure=outcome.error,
                     attempts=max(1, outcome.attempts))


def _cell_from_journal(spec: SweepSpec, entry: JournalEntry) -> SweepCell:
    return SweepCell(spec=spec, compiled=None, run=None,
                     error=str(entry.error) if entry.error else None,
                     failure=entry.error, attempts=entry.attempts,
                     resumed=True, summary=entry.summary)


def cell_from_result(spec: SweepSpec, result: CellResult) -> SweepCell:
    """Convert an engine :class:`CellResult` back into a sweep cell."""
    if result.resumed:
        assert result.entry is not None
        return _cell_from_journal(spec, result.entry)
    return _cell_from_outcome(spec, result.outcome)


def cell_tasks(backend: AcceleratorBackend, specs: list[SweepSpec],
               executor: ResilientExecutor, *, measure: bool = True,
               key_prefix: str = "",
               fingerprints: bool = False) -> list[CellTask]:
    """Engine tasks for a spec grid on one backend.

    Non-thread-safe backends get a shared serializer lock so a pooled
    run never overlaps their calls. Every task is stamped with its
    analytic cost prediction and workload-family key so a cost-aware
    :class:`~repro.campaign.scheduler.Scheduler` can order dispatch;
    with ``fingerprints`` each task also carries its content-addressed
    cache key (see :func:`repro.cache.cell_fingerprint`).
    """
    from repro.cache import cell_fingerprint
    from repro.campaign.scheduler import estimate_cell_seconds

    serializer = None if backend.thread_safe else threading.Lock()
    run_fn = ((lambda compiled: backend.run(compiled)) if measure
              else None)
    return [
        CellTask(
            key=f"{key_prefix}{spec.label}",
            compile_fn=lambda spec=spec: backend.compile(
                spec.model, spec.train, **spec.options),
            stages_fn=lambda spec=spec: backend.compile_pipeline(
                spec.model, spec.train, **spec.options),
            run_fn=run_fn,
            is_transient=backend.is_transient,
            executor=executor,
            serializer=serializer,
            cost_hint=estimate_cell_seconds(backend, spec.model,
                                            spec.train, measure=measure),
            family=f"{backend.name}::{spec.model.family}",
            fingerprint=(cell_fingerprint(backend, spec.model,
                                          spec.train, spec.options,
                                          measure=measure)
                         if fingerprints else None),
        )
        for spec in specs
    ]


def run_grid(backend: AcceleratorBackend,
             specs: list[SweepSpec],
             measure: bool = True,
             on_cell: Callable[[SweepCell], None] | None = None,
             *,
             policy: ExecutionPolicy | None = None,
             **removed: Any) -> list[SweepCell]:
    """Compile (and optionally run) every spec; failures become cells.

    Args:
        backend: the accelerator to drive.
        specs: the grid.
        measure: when ``False`` only compile (compile-time metrics are
            enough for most Tier-1 tables, matching the paper's
            "most metrics are from compile time" note).
        on_cell: optional progress callback (also fired for resumed
            cells). With ``max_workers=1`` it fires in spec order; under
            a pool, in completion order.
        policy: the :class:`ExecutionPolicy` governing retry, deadlines,
            journaling, resume, ``max_workers`` fan-out, the dispatch
            ``schedule``, tracing, and the run ledger. The pre-policy
            ``executor``/``journal``/``resume``/``retry_failed``
            keywords were removed in 0.3 and raise :class:`TypeError`.
    """
    reject_removed_kwargs("run_grid", removed)
    if policy is None:
        policy = ExecutionPolicy()

    relay = None
    if on_cell is not None:
        callback = on_cell

        def relay(result: CellResult) -> None:
            callback(cell_from_result(specs[result.index], result))

    if policy.dispatch == DISPATCH_PROCESS:
        return _run_grid_process(backend, specs, policy, measure=measure,
                                 relay=relay)

    tracer = policy.make_tracer()
    cache = policy.normalized_cache()
    memo = None
    if policy.stage_memo:
        from repro.cache import StageMemo
        memo = StageMemo(spill=cache)
    tasks = cell_tasks(backend, specs,
                       policy.make_executor(backend.name, tracer=tracer),
                       measure=measure, fingerprints=cache is not None)
    results = run_cell_tasks(
        tasks,
        max_workers=policy.max_workers,
        journal=policy.normalized_journal(),
        resume=policy.resume,
        retry_failed=policy.retry_failed,
        on_result=relay,
        scheduler=policy.make_scheduler(tracer),
        tracer=tracer,
        cache=cache,
        memo=memo,
    )
    if cache is not None:
        cache.prune()
    return [cell_from_result(spec, result)
            for spec, result in zip(specs, results)]


def _run_grid_process(backend: AcceleratorBackend,
                      specs: list[SweepSpec],
                      policy: ExecutionPolicy, *, measure: bool,
                      relay: Callable[[CellResult], None] | None,
                      ) -> list[SweepCell]:
    """The grid's process-dispatch path (see
    :mod:`repro.campaign.process`).

    Journal keys stay ``spec.label``, exactly as on the thread path, so
    a process-dispatched run and a sequential one resume each other.
    """
    from repro.cache import cell_fingerprint
    from repro.campaign.process import (
        CellSpec,
        WorkerSpec,
        check_process_policy,
        run_cell_specs,
    )
    from repro.campaign.scheduler import estimate_cell_seconds

    store = policy.normalized_journal()
    check_process_policy(policy, store, api="run_grid")
    if store is not None:
        assert isinstance(store, ShardedJournal)  # check_process_policy
    cache = policy.normalized_cache()
    cells = [
        CellSpec(
            key=spec.label,
            lane=backend.name,
            model=spec.model,
            train=spec.train,
            options=dict(spec.options),
            measure=measure,
            cost_hint=estimate_cell_seconds(backend, spec.model,
                                            spec.train, measure=measure),
            family=f"{backend.name}::{spec.model.family}",
            fingerprint=(cell_fingerprint(backend, spec.model,
                                          spec.train, spec.options,
                                          measure=measure)
                         if cache is not None else None),
        )
        for spec in specs
    ]
    tracer = policy.make_tracer()
    trace_dir = policy.trace_directory()
    worker = WorkerSpec(
        backends={backend.name: backend},
        retry=policy.retry,
        deadline=policy.deadline,
        breakers=bool(policy.breaker),
        breaker_threshold=policy.breaker_threshold,
        breaker_reset=policy.breaker_reset,
        journal_dir=str(store.directory) if store is not None else None,
        journal_prefix=store.prefix if store is not None else "shard",
        trace_dir=str(trace_dir) if trace_dir is not None else None,
        trace_run=tracer.run if tracer is not None else "",
        cache_dir=str(cache.directory) if cache is not None else None,
        stage_memo=policy.stage_memo,
    )
    results = run_cell_specs(
        cells,
        worker=worker,
        max_workers=policy.max_workers,
        journal=store,
        resume=policy.resume,
        retry_failed=policy.retry_failed,
        on_result=relay,
        scheduler=policy.make_scheduler(tracer),
        supervisor=policy.make_supervisor(
            tracer, families={cell.family for cell in cells}),
        tracer=tracer,
    )
    if cache is not None:
        cache.prune()
    return [cell_from_result(spec, result)
            for spec, result in zip(specs, results)]
