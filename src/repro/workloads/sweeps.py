"""Generic sweep execution: run a grid of workloads against a backend.

The benchmark harness uses :func:`run_grid` to regenerate the paper's
tables: each cell compiles + runs one configuration and failures are
recorded rather than raised (a "Fail" cell is a result — Table I).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.errors import CompilationError
from repro.core.backend import AcceleratorBackend, CompileReport, RunReport
from repro.models.config import ModelConfig, TrainConfig


@dataclass(frozen=True)
class SweepSpec:
    """One sweep cell: a labelled (model, train, options) triple."""

    label: str
    model: ModelConfig
    train: TrainConfig
    options: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SweepCell:
    """The outcome of one cell."""

    spec: SweepSpec
    compiled: CompileReport | None
    run: RunReport | None
    error: str | None = None

    @property
    def failed(self) -> bool:
        return self.error is not None


def run_grid(backend: AcceleratorBackend,
             specs: list[SweepSpec],
             measure: bool = True,
             on_cell: Callable[[SweepCell], None] | None = None
             ) -> list[SweepCell]:
    """Compile (and optionally run) every spec; failures become cells.

    Args:
        backend: the accelerator to drive.
        specs: the grid.
        measure: when ``False`` only compile (compile-time metrics are
            enough for most Tier-1 tables, matching the paper's
            "most metrics are from compile time" note).
        on_cell: optional progress callback.
    """
    cells: list[SweepCell] = []
    for spec in specs:
        try:
            compiled = backend.compile(spec.model, spec.train,
                                       **spec.options)
            run = backend.run(compiled) if measure else None
        except CompilationError as exc:
            cell = SweepCell(spec=spec, compiled=None, run=None,
                             error=str(exc))
        else:
            cell = SweepCell(spec=spec, compiled=compiled, run=run)
        cells.append(cell)
        if on_cell is not None:
            on_cell(cell)
    return cells
