"""Generic sweep execution: run a grid of workloads against a backend.

The benchmark harness uses :func:`run_grid` to regenerate the paper's
tables: each cell compiles + runs one configuration and failures are
recorded rather than raised (a "Fail" cell is a result — Table I).

Any :class:`~repro.common.errors.ReproError` escaping the backend
becomes a failed cell with a structured
:class:`~repro.common.errors.ErrorRecord` (compile-phase and run-phase
failures are distinguished). Passing a
:class:`~repro.resilience.executor.ResilientExecutor` adds retry,
per-cell deadlines, and circuit breaking; passing a
:class:`~repro.resilience.journal.SweepJournal` checkpoints every cell
as it finishes, and ``resume=True`` skips journaled cells on a re-run
so an interrupted campaign never loses work.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.errors import ErrorRecord
from repro.core.backend import AcceleratorBackend, CompileReport, RunReport
from repro.models.config import ModelConfig, TrainConfig
from repro.resilience.executor import ResilientExecutor
from repro.resilience.journal import JournalEntry, SweepJournal
from repro.resilience.retry import RetryPolicy


@dataclass(frozen=True)
class SweepSpec:
    """One sweep cell: a labelled (model, train, options) triple."""

    label: str
    model: ModelConfig
    train: TrainConfig
    options: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SweepCell:
    """The outcome of one cell.

    ``error`` keeps the human-readable message; ``failure`` carries the
    structured record (exception type, phase, and attributes such as
    ``required_bytes``). ``resumed`` cells were restored from a journal
    without touching the backend — their reports are ``None`` but
    ``summary`` holds the journaled run metrics.
    """

    spec: SweepSpec
    compiled: CompileReport | None
    run: RunReport | None
    error: str | None = None
    failure: ErrorRecord | None = None
    attempts: int = 1
    resumed: bool = False
    summary: dict[str, Any] | None = None

    @property
    def failed(self) -> bool:
        return self.error is not None

    @property
    def phase(self) -> str | None:
        """Which harness phase failed (``None`` for successful cells)."""
        return self.failure.phase if self.failure is not None else None


def _no_retry_executor() -> ResilientExecutor:
    return ResilientExecutor(retry=RetryPolicy(max_retries=0, jitter=0.0))


def _cell_from_outcome(spec: SweepSpec, outcome: Any) -> SweepCell:
    if outcome.ok:
        return SweepCell(spec=spec, compiled=outcome.compiled,
                         run=outcome.run, attempts=outcome.attempts)
    return SweepCell(spec=spec, compiled=None, run=None,
                     error=str(outcome.error), failure=outcome.error,
                     attempts=max(1, outcome.attempts))


def _cell_from_journal(spec: SweepSpec, entry: JournalEntry) -> SweepCell:
    return SweepCell(spec=spec, compiled=None, run=None,
                     error=str(entry.error) if entry.error else None,
                     failure=entry.error, attempts=entry.attempts,
                     resumed=True, summary=entry.summary)


def run_grid(backend: AcceleratorBackend,
             specs: list[SweepSpec],
             measure: bool = True,
             on_cell: Callable[[SweepCell], None] | None = None,
             *,
             executor: ResilientExecutor | None = None,
             journal: SweepJournal | str | os.PathLike[str] | None = None,
             resume: bool = False,
             retry_failed: bool = False) -> list[SweepCell]:
    """Compile (and optionally run) every spec; failures become cells.

    Args:
        backend: the accelerator to drive.
        specs: the grid.
        measure: when ``False`` only compile (compile-time metrics are
            enough for most Tier-1 tables, matching the paper's
            "most metrics are from compile time" note).
        on_cell: optional progress callback (also fired for resumed
            cells).
        executor: retry/deadline/breaker engine; defaults to a
            no-retry executor that still produces structured records.
        journal: checkpoint store — each finished cell is appended.
        resume: skip cells the journal already holds a final outcome
            for (keyed by spec label).
        retry_failed: with ``resume``, re-execute journaled *failures*
            while still skipping successes.
    """
    if executor is None:
        executor = _no_retry_executor()
    if journal is not None and not isinstance(journal, SweepJournal):
        journal = SweepJournal(journal)
    journaled: dict[str, JournalEntry] = {}
    if resume and journal is not None:
        journaled = journal.load()

    cells: list[SweepCell] = []
    for spec in specs:
        entry = journaled.get(spec.label)
        if (entry is not None and entry.finished
                and not (retry_failed and entry.failed)):
            cell = _cell_from_journal(spec, entry)
        else:
            outcome = executor.execute(
                spec.label,
                lambda spec=spec: backend.compile(spec.model, spec.train,
                                                  **spec.options),
                (lambda compiled: backend.run(compiled)) if measure else None,
                is_transient=backend.is_transient,
            )
            cell = _cell_from_outcome(spec, outcome)
            if journal is not None:
                journal.record(outcome.journal_entry())
        cells.append(cell)
        if on_cell is not None:
            on_cell(cell)
    return cells
