"""Decoder-block probe models and the paper's sweep axes.

A *probe model* is a decoder stack with a deliberately small vocabulary:
the evaluation unit the paper uses when the question is about decoder
scaling rather than the LM head (e.g. the IPU pipeline studies, where a
50k-vocab head would dwarf every decoder stage). Tier-1 experiments that
depend on the full head (WSE-2's Table I, where the head kernel is the
large fixed allocation) use the regular GPT-2 presets instead.
"""

from __future__ import annotations

from dataclasses import replace

from repro.common.errors import ConfigurationError
from repro.models.config import ModelConfig, gpt2_model, llama2_model

PROBE_VOCAB = 2048

# The paper's published sweep axes.
PAPER_WSE_LAYERS = [1, 6, 12, 18, 24, 30, 36, 42, 48, 54, 60, 66, 72, 78]
PAPER_RDU_HS_O0_O3 = [480, 768, 1024, 1280, 1600]
PAPER_RDU_HS_O1 = [3072, 4096, 5120, 6686, 8192]
PAPER_IPU_PP_CONFIGS = [
    (4, 6), (4, 12), (8, 18), (8, 24),
    (16, 30), (16, 36), (16, 42), (16, 48),
]


def decoder_block_probe(hidden_size: int, n_layers: int,
                        family: str = "gpt2",
                        vocab_size: int = PROBE_VOCAB) -> ModelConfig:
    """A decoder-block stack with a probe-sized vocabulary.

    Args:
        hidden_size: model width (heads sized for head_dim 64).
        n_layers: decoder layers.
        family: ``"gpt2"`` or ``"llama2"`` conventions.
        vocab_size: small by default so the LM head does not dominate.
    """
    if family == "gpt2":
        base = gpt2_model("small")
    elif family == "llama2":
        base = llama2_model("7b")
    else:
        raise ConfigurationError(f"unknown probe family: {family!r}")
    probe = base.with_hidden(hidden_size).with_layers(n_layers)
    return replace(probe, vocab_size=vocab_size,
                   name=f"probe-{family}-h{hidden_size}-l{n_layers}")


def paper_layer_sweep(hidden_size: int = 768,
                      family: str = "gpt2") -> list[ModelConfig]:
    """The Table I layer axis as probe configs at fixed hidden size."""
    return [decoder_block_probe(hidden_size, layers, family)
            for layers in PAPER_WSE_LAYERS]


def paper_rdu_hidden_sweep_o0_o3(n_layers: int = 8) -> list[ModelConfig]:
    """Fig. 7(b)'s small-hidden axis (GPT-2 blocks, O0/O3 modes)."""
    return [decoder_block_probe(hs, n_layers, "gpt2")
            for hs in PAPER_RDU_HS_O0_O3]


def paper_rdu_hidden_sweep_o1(n_layers: int = 4) -> list[ModelConfig]:
    """Fig. 7(b)'s large-hidden axis (LLaMA-2 blocks, O1 mode)."""
    return [decoder_block_probe(hs, n_layers, "llama2", vocab_size=32000)
            for hs in PAPER_RDU_HS_O1]
