"""A CPU-bound reference backend for dispatch benchmarking.

The bundled platform simulators are analytic — a cell costs
microseconds of Python, so thread and process dispatch are
indistinguishable on wall-clock and a speedup benchmark over them
measures nothing. :class:`CpuBoundBackend` closes that gap: it is a
real :class:`~repro.core.backend.AcceleratorBackend` whose compile and
run phases *burn actual CPU* in pure Python, proportional to the
model's layer count. Under the GIL a thread pool cannot overlap such
cells; a process pool can — exactly the contrast
``benchmarks/test_process_dispatch.py`` pins.

Everything about it is deterministic and picklable: the burn is a
fixed-point iteration whose checksum lands in the report ``meta``, so
two runs of the same grid produce identical reports whatever the
dispatch mode.
"""

from __future__ import annotations

from typing import Any

from repro.core.backend import (
    AcceleratorBackend,
    CompileReport,
    MemoryBreakdown,
    PhaseProfile,
    RunReport,
    TaskProfile,
)
from repro.core.stages import (
    STAGE_GRAPH,
    STAGE_REPORT,
    CompileStage,
    run_stages,
    unfingerprinted,
)
from repro.hardware.specs import ChipSpec, MemoryLevel, SystemSpec
from repro.models.config import ModelConfig, TrainConfig

GiB = float(2 ** 30)

#: A nominal single-core "chip": the numbers only have to be positive
#: and stable — the backend's cost is the Python burn, not the model.
CPU_REF_CHIP = ChipSpec(
    name="cpu-ref",
    vendor="reference",
    compute_units=1,
    compute_unit_name="core",
    memory_units=1,
    memory_unit_name="core",
    peak_flops=1.0e12,
    shared_memory=MemoryLevel(name="cache", capacity_bytes=32 * 2 ** 20,
                              bandwidth=100.0 * GiB),
    global_memory=MemoryLevel(name="DRAM", capacity_bytes=16 * GiB,
                              bandwidth=50.0 * GiB),
    fabric_bandwidth=10.0 * GiB,
)

CPU_REF_SYSTEM = SystemSpec(name="cpu-ref", chip=CPU_REF_CHIP)


def _burn(iterations: int, seed: int) -> int:
    """A pure-Python CPU burn with a deterministic checksum.

    A multiply-xor chain the interpreter cannot elide; the result
    depends on every iteration, so the work provably happened.
    """
    state = (seed * 2654435761 + 1) & 0xFFFFFFFF
    for _ in range(iterations):
        state = (state * 1103515245 + 12345) & 0xFFFFFFFF
        state ^= state >> 13
    return state


class CpuBoundBackend(AcceleratorBackend):
    """Burns real CPU per cell; deterministic, picklable, GIL-bound.

    ``spins_per_layer`` scales the burn: each compile spins
    ``n_layers * spins_per_layer`` iterations and each run half that,
    so grids over layer counts are genuinely unbalanced — the shape
    scheduler benchmarks want.
    """

    def __init__(self, spins_per_layer: int = 20_000) -> None:
        super().__init__(CPU_REF_SYSTEM)
        self.spins_per_layer = spins_per_layer

    def fingerprint_extra(self) -> dict[str, Any]:
        # The burn length lands in the report checksums, so two burn
        # factors must never share a cache entry.
        return {"spins_per_layer": self.spins_per_layer}

    def compile(self, model: ModelConfig, train: TrainConfig,
                **options: Any) -> CompileReport:
        return run_stages(self.compile_stages(
            model, train, unfingerprinted, **options))

    def compile_pipeline(self, model: ModelConfig, train: TrainConfig,
                         **options: Any) -> list[CompileStage]:
        if not self._staged_compile_intact(CpuBoundBackend):
            return super().compile_pipeline(model, train, **options)
        return self.compile_stages(
            model, train, self.stage_fingerprint, **options)

    def compile_stages(self, model: ModelConfig, train: TrainConfig,
                       fp_of: Any) -> list[CompileStage]:
        """Two stages: the layer-proportional burn, then assembly.

        The burn's checksum depends only on ``n_layers`` (and the burn
        factor, via ``fingerprint_extra``), so the graph stage keys on
        exactly that — cells differing only in batch size share one
        burn under a :class:`~repro.cache.StageMemo`, which is what
        the cold-campaign benchmark measures.
        """
        def build_graph(_prev: Any) -> int:
            return _burn(model.n_layers * self.spins_per_layer,
                         seed=model.n_layers)

        def report(checksum: int) -> CompileReport:
            task = TaskProfile(name="burn", compute_units=1.0,
                               memory_units=1.0, throughput=1.0,
                               flops=float(model.n_layers))
            phase = PhaseProfile(name="graph", runtime=1.0,
                                 tasks=(task,))
            return CompileReport(
                platform=self.name, model=model, train=train,
                phases=(phase,), total_compute_units=1.0,
                total_memory_units=1.0,
                shared_memory=MemoryBreakdown(
                    capacity_bytes=(
                        CPU_REF_CHIP.shared_memory.capacity_bytes),
                    weight_bytes=float(model.n_layers)),
                meta={"checksum": checksum})

        graph_fp = fp_of(STAGE_GRAPH, "", n_layers=model.n_layers)
        report_fp = fp_of(STAGE_REPORT, graph_fp,
                          model=model.content_digest(),
                          train=train.content_digest())
        return [
            CompileStage(STAGE_GRAPH, graph_fp, build_graph),
            CompileStage(STAGE_REPORT, report_fp, report),
        ]

    def run(self, compiled: CompileReport) -> RunReport:
        model = compiled.model
        checksum = _burn(model.n_layers * self.spins_per_layer // 2,
                         seed=model.n_layers + 1)
        step_time = float(model.n_layers)
        tokens = compiled.train.tokens_per_step / step_time
        return RunReport(
            platform=self.name,
            tokens_per_second=tokens,
            samples_per_second=compiled.train.batch_size / step_time,
            step_time=step_time,
            achieved_flops=1.0e9 * model.n_layers,
            phases=compiled.phases,
            meta={"checksum": checksum})
