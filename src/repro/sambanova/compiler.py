"""RDU compiler: operator demands, fusion, and section partitioning.

Demand model
------------
PCU demand follows a sub-linear law in operator size — ``pcus ~ 1.33 *
(weight elements)^0.3`` for matmuls — reflecting that larger matrices use
deeper per-PCU tiles rather than proportionally more units (the paper
observes per-section PCU counts tracking shard geometry, not hidden size;
Table II(b)). PMU demand stages resident weights plus a fraction of the
streaming activation traffic.

Section partitioning (paper Sec. III-B, Fig. 4)
-----------------------------------------------
* **O0** — one operator per section, invoked once per decoder layer.
* **O1** — :func:`~repro.graph.partition.fuse_linear_chains` groups each
  matmul with its trailing elementwise ops into a module; one module per
  section, invoked per layer. Oversized matrices shard via
  :mod:`repro.sambanova.sharding`.
* **O3** — the full multi-layer graph is packed decoder-by-decoder into
  sections under a PCU/PMU budget; large hidden sizes force decoders to
  split across sections (the Table II(a) "Ratio" column), small ones let
  sections span multiple decoders.

Tensor parallelism shards every matmul across ``tp`` RDUs and inserts
per-layer all-reduce sections whose cost depends on whether the group
fits inside one SN30 machine (Sec. VI-A3b).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.errors import ConfigurationError, OutOfMemoryError
from repro.core.backend import (
    CompileReport,
    MemoryBreakdown,
    PhaseProfile,
    TaskProfile,
)
from repro.core.stages import (
    STAGE_GRAPH,
    STAGE_PARTITION,
    STAGE_REPORT,
    CompileStage,
    hardware_digest,
    run_stages,
    unfingerprinted,
)
from repro.graph.graph import ComputationGraph
from repro.graph.ops import OpKind, Operator
from repro.graph.partition import fuse_linear_chains
from repro.hardware.specs import SN30_SYSTEM, SystemSpec
from repro.models.config import ModelConfig, TrainConfig
from repro.models.costmodel import TransformerCostModel
from repro.models.graph_builder import build_training_graph
from repro.sambanova.sections import OpDemand, Section
from repro.sambanova.sharding import SHARD_WEIGHT_BYTES, plan_shards

# --- demand-model calibration constants ------------------------------------
PCU_PER_WEIGHT_ROOT = 1.33     # pcus = this * (weight elements)^0.3
PCU_PER_ELEMWISE_ROOT = 0.5    # pcus = this * (activation elements)^0.3
PMU_STAGE_FRACTION = 0.2       # fraction of streaming IO staged in PMUs
MAX_SINGLE_OP_UNITS = 480.0    # clamp for ops that exceed the fabric
BACKWARD_PCU_FACTOR = 1.6      # grad ops hold two matmul pipelines
BACKWARD_PMU_FACTOR = 2.0      # grad ops also stage stashed activations
# O3 packs ops into sections under these budgets.
SECTION_PCU_BUDGET = 400.0
SECTION_PMU_BUDGET = 520.0
# O3 trades per-operator parallelism for fewer sections: grants shrink
# so ~1.5 decoders share a section at hidden 768 (Table II(a)'s 0.66
# forward ratio), unlike O0/O1 where each op keeps its full grant.
O3_PACKING_FACTOR = 0.45
# Fraction of per-PCU peak sustained by a mapped dataflow pipeline.
PCU_EFFICIENCY = 0.35
# O0 runs each operator in isolation: the fabric pipeline fills and
# drains per operator with no producer/consumer overlap, collapsing the
# utilization of the allocated PCUs (Fig. 9b: "O0 severely limited").
OPERATOR_MODE_EFFICIENCY = 0.25
# Reconfiguration cost of swapping a section onto the fabric (loading PCU
# programs and switch routes). Milliseconds-scale on real RDUs; this fixed
# per-invocation cost is what makes small-batch RDU throughput overhead-
# dominated and batch scaling near-linear (Fig. 12).
SECTION_SWITCH_SECONDS = 4.0e-3
# Matmul slowdown when activations are wider than the datapath and must
# be cast at every operator boundary (Table IV's "BF16" baseline).
ACTIVATION_CAST_PENALTY = 0.75
COMM_SECTION_PCUS = 16.0
COMM_SECTION_PMUS = 32.0

MATMUL_KINDS = {
    OpKind.QKV_PROJ, OpKind.ATTN_OUT_PROJ, OpKind.FFN_UP,
    OpKind.FFN_GATE, OpKind.FFN_DOWN, OpKind.LM_HEAD,
}
# Operators tensor parallelism splits across RDUs (matmuls by weight
# columns, attention by heads).
TP_SHARDED_KINDS = MATMUL_KINDS | {OpKind.ATTENTION}


class RDUCompiler:
    """Maps an LLM training workload onto SN30 RDUs."""

    def __init__(self, system: SystemSpec = SN30_SYSTEM) -> None:
        self.system = system
        self.chip = system.chip
        self.pmu_bytes = self.chip.shared_memory_per_unit

    # ------------------------------------------------------------------
    def compile(self, model: ModelConfig, train: TrainConfig,
                mode: str = "O1", tp: int = 1) -> CompileReport:
        """Compile under one of the three RDU modes, optionally with TP."""
        return run_stages(self.compile_stages(
            model, train, unfingerprinted, mode=mode, tp=tp))

    def compile_stages(self, model: ModelConfig, train: TrainConfig,
                       fp_of: Callable[..., str | None],
                       mode: str = "O1",
                       tp: int = 1) -> list[CompileStage]:
        """:meth:`compile` as a staged pipeline (graph → partition →
        report).

        The graph stage keys only on the model/train digests — an
        O0/O1/O3 or TP sweep builds the training graph exactly once.
        Sectioning adds the mode, the TP degree, and the hardware spec;
        the report stage is pure downstream of the sections. There is
        no distinct placement stage on the RDU: section mapping *is*
        the placement.
        """
        if mode not in ("O0", "O1", "O3"):
            raise ConfigurationError(f"unknown RDU compile mode: {mode!r}")
        if tp < 1:
            raise ConfigurationError("tp must be >= 1")
        if tp > self.system.total_chips:
            raise ConfigurationError(
                f"tp={tp} exceeds the {self.system.total_chips} RDUs of "
                f"{self.system.name}")

        def build_graph(_prev: None) -> ComputationGraph:
            return build_training_graph(model, train)

        def partition(graph: ComputationGraph) -> dict[str, Any]:
            if mode == "O0":
                sections = self._sections_o0(graph, model, train, tp)
            elif mode == "O1":
                sections = self._sections_o1(graph, model, train, tp)
            else:
                sections = self._sections_o3(graph, model, train, tp)
            if tp > 1:
                sections.extend(self._comm_sections(model, train, tp))
            return {"sections": tuple(sections),
                    "step_flops": graph.total_flops}

        def report(part: dict[str, Any]) -> CompileReport:
            sections = part["sections"]
            rate = (self.chip.flops_per_compute_unit
                    * train.precision.compute.compute_scale / 2.0
                    * PCU_EFFICIENCY)
            if mode == "O0":
                rate *= OPERATOR_MODE_EFFICIENCY
            if train.precision.needs_activation_casts:
                rate *= ACTIVATION_CAST_PENALTY
            phases = tuple(
                self._phase_of(section, rate) for section in sections)
            memory = self._shared_memory(sections)
            global_memory = self._global_memory(model, train, tp,
                                                sections)
            self._check_ddr(model, global_memory)
            return CompileReport(
                platform=self.system.name,
                model=model,
                train=train,
                phases=phases,
                total_compute_units=float(self.chip.compute_units),
                total_memory_units=float(self.chip.memory_units),
                shared_memory=memory,
                global_memory=global_memory,
                n_chips=tp,
                meta={
                    "mode": mode,
                    "tp": tp,
                    "sections": list(sections),
                    "pcu_rate": rate,
                    "step_flops": part["step_flops"],
                },
            )

        graph_fp = fp_of(STAGE_GRAPH, "",
                         model=model.content_digest(),
                         train=train.content_digest())
        partition_fp = fp_of(STAGE_PARTITION, graph_fp,
                             system=hardware_digest(self),
                             mode=mode, tp=tp)
        report_fp = fp_of(STAGE_REPORT, partition_fp)
        return [
            CompileStage(STAGE_GRAPH, graph_fp, build_graph),
            CompileStage(STAGE_PARTITION, partition_fp, partition),
            CompileStage(STAGE_REPORT, report_fp, report),
        ]

    # ------------------------------------------------------------------
    # Demand model
    # ------------------------------------------------------------------
    def _matmul_elements(self, op: Operator, tp: int) -> float:
        """Logical weight elements of a matmul (even when tied)."""
        if "k" in op.attrs and "n" in op.attrs:
            return float(op.attrs["k"]) * float(op.attrs["n"]) / tp
        return max(op.weight_bytes / 2.0, 1.0) / tp

    def _demand_of(self, op: Operator, train: TrainConfig,
                   tp: int) -> OpDemand:
        """One operator's PCU/PMU/traffic demand."""
        shard = 1.0 / tp if op.kind in TP_SHARDED_KINDS else 1.0
        if op.kind in MATMUL_KINDS:
            elements = self._matmul_elements(op, tp)
            pcus = PCU_PER_WEIGHT_ROOT * elements ** 0.3
        elif op.kind is OpKind.ATTENTION:
            pcus = PCU_PER_WEIGHT_ROOT * float(train.seq_len) ** 0.6
        else:
            per_sample = max(
                op.output_bytes
                / train.precision.activation_bytes_per_value
                / train.batch_size, 1.0)
            pcus = PCU_PER_ELEMWISE_ROOT * per_sample ** 0.3
        if op.backward:
            pcus *= BACKWARD_PCU_FACTOR
        io_bytes = (op.input_bytes + op.output_bytes) * shard
        weight_bytes = op.weight_bytes * shard
        pmus = (weight_bytes + PMU_STAGE_FRACTION * io_bytes) / self.pmu_bytes
        if op.backward:
            pmus *= BACKWARD_PMU_FACTOR
        pcus = min(pcus, MAX_SINGLE_OP_UNITS)
        pmus = max(min(pmus, MAX_SINGLE_OP_UNITS), 2.0)
        return OpDemand(
            name=op.name,
            kind=op.kind.value,
            flops=op.flops * shard,
            pcus=pcus,
            pmus=pmus,
            weight_bytes=weight_bytes,
            io_bytes=io_bytes,
            backward=op.backward,
        )

    def _needs_sharding(self, op: Operator, train: TrainConfig,
                        tp: int) -> bool:
        if op.kind not in MATMUL_KINDS:
            return False
        logical_bytes = (self._matmul_elements(op, tp)
                         * train.precision.weight_bytes_per_param)
        return logical_bytes > SHARD_WEIGHT_BYTES

    def _shard_sections(self, op: Operator, train: TrainConfig, tp: int,
                        invocations: int) -> list[Section]:
        """Expand an oversized matmul into shard sections (Table II(b))."""
        logical_bytes = (self._matmul_elements(op, tp)
                         * train.precision.weight_bytes_per_param)
        plan = plan_shards(logical_bytes, self.pmu_bytes,
                           PCU_PER_WEIGHT_ROOT)
        base = self._demand_of(op, train, tp)
        sections = []
        shards_left = plan.n_shards
        for index in range(plan.n_sections):
            in_section = min(plan.shards_per_section, shards_left)
            shards_left -= in_section
            fraction = in_section / plan.n_shards
            ops = [OpDemand(
                name=f"{op.name}.shard{index}",
                kind=base.kind,
                flops=base.flops * fraction,
                pcus=plan.pcus_per_section * (in_section
                                              / plan.shards_per_section),
                pmus=plan.pmus_per_section * (in_section
                                              / plan.shards_per_section),
                weight_bytes=op.weight_bytes / tp * fraction,
                io_bytes=base.io_bytes * fraction,
                backward=op.backward,
                meta={"shards": in_section, "total_shards": plan.n_shards},
            )]
            sections.append(Section(
                name=f"{op.name}.S{index}",
                ops=ops,
                invocations=invocations,
                kind="backward" if op.backward else "forward",
            ))
        return sections

    # ------------------------------------------------------------------
    # Mode-specific sectioners
    # ------------------------------------------------------------------
    def _representative_ops(self, graph: ComputationGraph
                            ) -> tuple[list[Operator], list[Operator]]:
        """(layer-0 ops, model-level ops) in topological order."""
        order = graph.topological_order()
        layer0 = [op for op in order if op.layer_index == 0]
        model_level = [op for op in order if op.layer_index < 0]
        return layer0, model_level

    def _sections_o0(self, graph: ComputationGraph, model: ModelConfig,
                     train: TrainConfig, tp: int) -> list[Section]:
        """One operator per section."""
        layer0, model_level = self._representative_ops(graph)
        sections: list[Section] = []
        for op in layer0 + model_level:
            invocations = model.n_layers if op.layer_index >= 0 else 1
            if self._needs_sharding(op, train, tp):
                sections.extend(
                    self._shard_sections(op, train, tp, invocations))
                continue
            sections.append(Section(
                name=op.name,
                ops=[self._demand_of(op, train, tp)],
                invocations=invocations,
                kind=self._section_kind(op),
            ))
        return sections

    def _sections_o1(self, graph: ComputationGraph, model: ModelConfig,
                     train: TrainConfig, tp: int) -> list[Section]:
        """One fused module per section."""
        layer0, model_level = self._representative_ops(graph)
        names = [op.name for op in layer0]
        layer_graph = graph.subgraph(names, name="layer0")
        modules = fuse_linear_chains(layer_graph)
        sections: list[Section] = []
        for index, module in enumerate(modules):
            if len(module) == 1 and self._needs_sharding(
                    module[0], train, tp):
                sections.extend(self._shard_sections(
                    module[0], train, tp, model.n_layers))
                continue
            demands = [self._demand_of(op, train, tp) for op in module]
            sections.append(Section(
                name=f"module{index}({module[0].name})",
                ops=demands,
                invocations=model.n_layers,
                kind=self._section_kind(module[0]),
            ))
        for op in model_level:
            if self._needs_sharding(op, train, tp):
                sections.extend(self._shard_sections(op, train, tp, 1))
                continue
            sections.append(Section(
                name=op.name,
                ops=[self._demand_of(op, train, tp)],
                invocations=1,
                kind=self._section_kind(op),
            ))
        return sections

    def _sections_o3(self, graph: ComputationGraph, model: ModelConfig,
                     train: TrainConfig, tp: int) -> list[Section]:
        """Pack the full multi-layer graph into budgeted sections."""
        order = graph.topological_order()
        sections: list[Section] = []
        pending: list[OpDemand] = []
        pending_kind = "forward"
        counter = {"n": 0}

        def flush() -> None:
            if not pending:
                return
            sections.append(Section(
                name=f"sec{counter['n']}",
                ops=list(pending),
                invocations=1,
                kind=pending_kind,
            ))
            counter["n"] += 1
            pending.clear()

        import dataclasses
        for op in order:
            if self._needs_sharding(op, train, tp):
                flush()
                sections.extend(self._shard_sections(op, train, tp, 1))
                continue
            demand = self._demand_of(op, train, tp)
            demand = dataclasses.replace(
                demand,
                pcus=demand.pcus * O3_PACKING_FACTOR,
                pmus=demand.pmus * O3_PACKING_FACTOR)
            kind = self._section_kind(op)
            pcu_total = sum(d.pcus for d in pending) + demand.pcus
            pmu_total = sum(d.pmus for d in pending) + demand.pmus
            if pending and (pcu_total > SECTION_PCU_BUDGET
                            or pmu_total > SECTION_PMU_BUDGET
                            or kind != pending_kind):
                flush()
            pending_kind = kind
            pending.append(demand)
        flush()
        return sections

    @staticmethod
    def _section_kind(op: Operator) -> str:
        if op.kind is OpKind.OPTIMIZER:
            return "model"
        if op.backward:
            return "backward"
        if op.layer_index < 0:
            return "model"
        return "forward"

    def _comm_sections(self, model: ModelConfig, train: TrainConfig,
                       tp: int) -> list[Section]:
        """Per-layer all-reduce sections for tensor parallelism."""
        hidden_bytes = (train.batch_size * train.seq_len * model.hidden_size
                        * train.precision.activation_bytes_per_value)
        volume = 2.0 * (tp - 1) / tp * hidden_bytes
        # Two all-reduces per layer (attention output, FFN output), times
        # two for the backward pass.
        op = OpDemand(
            name="allreduce",
            kind="communication",
            flops=0.0,
            pcus=COMM_SECTION_PCUS,
            pmus=COMM_SECTION_PMUS,
            io_bytes=volume,
            meta={"volume": volume, "tp": tp},
        )
        return [Section(name="allreduce", ops=[op],
                        invocations=4 * model.n_layers, kind="comm")]

    # ------------------------------------------------------------------
    # Timing and memory
    # ------------------------------------------------------------------
    def _phase_of(self, section: Section, rate: float) -> PhaseProfile:
        tasks = []
        bottleneck = 0.0
        for op in section.ops:
            if op.kind == "communication":
                bw = self._tp_bandwidth(op)
                service = op.io_bytes / bw
            else:
                service = op.flops / max(op.pcus * rate, 1.0)
            bottleneck = max(bottleneck, service)
            tasks.append(TaskProfile(
                name=op.name,
                compute_units=op.pcus,
                memory_units=op.pmus,
                role="compute",
                throughput=1.0 / service if service > 0 else 0.0,
                flops=op.flops,
                meta={**op.meta, "kind": op.kind,
                      "backward": op.backward},
            ))
        ddr_time = section.ddr_bytes / self.chip.global_memory.bandwidth
        runtime = SECTION_SWITCH_SECONDS + max(bottleneck, ddr_time)
        return PhaseProfile(
            name=section.name,
            runtime=runtime,
            tasks=tuple(tasks),
            invocations=section.invocations,
        )

    def _tp_bandwidth(self, op: OpDemand) -> float:
        tp = op.meta.get("tp", 0)
        if tp and tp > self.system.chips_per_node:
            return self.system.inter_node_bandwidth
        return self.system.intra_node_bandwidth

    def _shared_memory(self, sections: list[Section]) -> MemoryBreakdown:
        peak = max((s.pmus for s in sections), default=0.0) * self.pmu_bytes
        return MemoryBreakdown(
            capacity_bytes=self.chip.shared_memory.capacity_bytes,
            weight_bytes=peak * 0.5,
            activation_bytes=peak * 0.5,
        )

    def _global_memory(self, model: ModelConfig, train: TrainConfig,
                       tp: int, sections: list[Section]) -> MemoryBreakdown:
        """Per-RDU DDR footprint.

        Activations spilled to DDR are the *section-boundary* tensors
        stashed until the backward pass — intra-section intermediates
        (including attention score maps) stream through PMUs and never
        land in DDR.
        """
        cost = TransformerCostModel(model)
        weights = (cost.weight_bytes(train)
                   + cost.gradient_bytes(train)) / tp
        optimizer = cost.optimizer_state_bytes(train) / tp
        # Checkpoint-style stashing: one layer-boundary tensor per decoder
        # layer survives until the backward pass (intermediates are
        # recomputed), plus the logits produced by the LM head. Inference
        # holds only the transient boundary and the logits.
        hidden = (train.batch_size * train.seq_len * model.hidden_size
                  * train.precision.activation_bytes_per_value)
        logits = (train.batch_size * train.seq_len * model.vocab_size
                  * train.precision.activation_bytes_per_value)
        stashed_layers = (model.n_layers + 1) if train.training else 1
        spill = stashed_layers * hidden + logits
        del sections  # spill is checkpoint-based, not section-based
        return MemoryBreakdown(
            capacity_bytes=self.chip.global_memory.capacity_bytes,
            weight_bytes=weights,
            activation_bytes=spill,
            optimizer_bytes=optimizer,
        )

    def _check_ddr(self, model: ModelConfig,
                   memory: MemoryBreakdown) -> None:
        if memory.total_bytes > memory.capacity_bytes:
            raise OutOfMemoryError(
                f"{model.name}: training state "
                f"({memory.total_bytes / 1e9:.0f} GB) exceeds per-RDU DDR "
                f"({memory.capacity_bytes / 1e9:.0f} GB); increase tp",
                required_bytes=memory.total_bytes,
                available_bytes=memory.capacity_bytes,
            )

    # ------------------------------------------------------------------
    def partition_summary(self, report: CompileReport) -> dict[str, Any]:
        """Table II(a)-style accounting: sections per decoder and ratios."""
        sections: list[Section] = report.meta["sections"]
        n_layers = report.model.n_layers
        forward = [s for s in sections if s.kind == "forward"]
        backward = [s for s in sections if s.kind == "backward"]
        fwd_decoder = [s for s in forward
                       if any(d.kind not in ("embedding", "lm_head")
                              for d in s.ops)]
        bwd_decoder = [s for s in backward
                       if any(d.kind not in ("embedding", "lm_head")
                              for d in s.ops)]
        return {
            "forward_sections": len(forward),
            "backward_sections": len(backward),
            "forward_ratio": len(fwd_decoder) / max(n_layers, 1),
            "backward_ratio": len(bwd_decoder) / max(n_layers, 1),
        }
