"""RDU runtime: sequential section execution over DDR.

Each section invocation reconfigures the fabric, DMAs its weights and
boundary activations from DDR, and streams the batch through the mapped
dataflow pipeline; DMA for the next invocation overlaps compute for the
current one, so invocation time is ``switch + max(compute, ddr)``. The
whole training step is the sum over sections — there is no cross-section
overlap, which is exactly why section count (O0 vs O1 vs O3) dominates
RDU performance in the paper.
"""

from __future__ import annotations

from repro.core.backend import CompileReport, PhaseProfile, RunReport
from repro.hardware.specs import SN30_SYSTEM, SystemSpec
from repro.sambanova.compiler import SECTION_SWITCH_SECONDS
from repro.sambanova.sections import Section
from repro.sim.engine import Simulator
from repro.sim.trace import Trace


class RDURuntime:
    """Executes a compiled RDU mapping and measures throughput."""

    def __init__(self, system: SystemSpec = SN30_SYSTEM) -> None:
        self.system = system
        self.chip = system.chip

    def run(self, compiled: CompileReport) -> RunReport:
        """Simulate one optimizer step across all sections."""
        sections: list[Section] = compiled.meta["sections"]
        rate: float = compiled.meta["pcu_rate"]
        phases = list(compiled.phases)

        sim = Simulator()
        trace = Trace()
        timings = {"compute": 0.0, "ddr": 0.0, "switch": 0.0, "comm": 0.0}

        def run_section(index: int, invocation: int) -> None:
            section = sections[index]
            phase = phases[index]
            start = sim.now
            duration = phase.runtime
            category = "comm" if section.kind == "comm" else "compute"
            sim.schedule(duration, finish_section, index, invocation,
                         start, category)

        def finish_section(index: int, invocation: int, start: float,
                           category: str) -> None:
            section = sections[index]
            trace.record(start, sim.now, section.name, category=category,
                         item=invocation)
            self._account(section, phases[index], timings)
            if invocation + 1 < section.invocations:
                sim.schedule(0.0, run_section, index, invocation + 1)
            elif index + 1 < len(sections):
                sim.schedule(0.0, run_section, index + 1, 0)

        if sections:
            sim.schedule(0.0, run_section, 0, 0)
        step_time = sim.run()

        train = compiled.train
        step_flops = compiled.meta["step_flops"]
        samples_per_s = train.batch_size / step_time
        achieved = step_flops / step_time
        traffic = sum(s.ddr_bytes * s.invocations for s in sections)
        compute_fraction = (
            timings["compute"] / step_time if step_time > 0 else 0.0)
        return RunReport(
            platform=compiled.platform,
            tokens_per_second=samples_per_s * train.seq_len,
            samples_per_second=samples_per_s,
            step_time=step_time,
            achieved_flops=achieved,
            phases=compiled.phases,
            global_traffic_bytes_per_step=traffic,
            trace=trace,
            meta={
                "mode": compiled.meta["mode"],
                "tp": compiled.meta["tp"],
                "compute_fraction": compute_fraction,
                "ddr_time": timings["ddr"],
                "switch_time": timings["switch"],
                "comm_time": timings["comm"],
                "n_sections": len(sections),
                "pcu_rate": rate,
            },
        )

    def _account(self, section: Section, phase: PhaseProfile,
                 timings: dict[str, float]) -> None:
        """Split one invocation's duration into bounding categories."""
        ddr_time = section.ddr_bytes / self.chip.global_memory.bandwidth
        body = phase.runtime - SECTION_SWITCH_SECONDS
        timings["switch"] += SECTION_SWITCH_SECONDS
        if section.kind == "comm":
            timings["comm"] += body
        elif ddr_time >= body:
            timings["ddr"] += body
        else:
            timings["compute"] += body
