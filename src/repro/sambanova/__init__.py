"""SambaNova SN30 RDU simulator.

Models the execution strategy of paper Sec. III-B: the training graph is
partitioned into *sections* that load onto an RDU one at a time, with all
parameters and intermediate data living in off-chip DDR and staged through
Pattern Memory Units (PMUs). Three compilation modes are reproduced:

* **O0** (operator mode) — every operator is its own section,
* **O1** (module mode) — operator fusion groups ops into modules that are
  then packed into sections; large matrices (the LM head) are sharded,
* **O3** (full-graph mode) — decoder layers keep their identity and are
  packed decoder-by-decoder into sections, splitting when hidden size
  outgrows the per-section resource budget.

The simulator reproduces the platform behaviours the paper reports:
sub-60% resource allocation (Fig. 7), sharding-driven allocation drops
(Table II), O1-vs-O3 load-balance gaps (Fig. 8), DDR-bound throughput
(Fig. 9b/c, 10b), and the cross-machine tensor-parallel cliff (Table III,
Fig. 11b).
"""

from repro.sambanova.backend import SambaNovaBackend, SectionStallError
from repro.sambanova.compiler import RDUCompiler
from repro.sambanova.runtime import RDURuntime
from repro.sambanova.sections import OpDemand, Section
from repro.sambanova.sharding import ShardPlan, plan_shards

__all__ = [
    "OpDemand",
    "Section",
    "ShardPlan",
    "plan_shards",
    "RDUCompiler",
    "RDURuntime",
    "SambaNovaBackend",
    "SectionStallError",
]
