"""Matrix sharding for operators that exceed one section's resources.

When a weight matrix outgrows the PMU capacity a section can stage, the
compiler splits it into shards and groups shards into extra sections —
the O1-mode behaviour of the paper's Table II(b), where the LM head at
hidden sizes 3072-8192 splits into 9-30 shards across 2-3 sections with
per-section PCU/PMU counts that track shard geometry rather than hidden
size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.units import MB

# A shard's weights must stage within this PMU budget (calibrated so the
# LM head first shards at hidden sizes in the low thousands, as in
# Table II(b)).
SHARD_WEIGHT_BYTES = 28.0 * MB
# PCU budget available to the shards grouped into one section.
SHARD_SECTION_PCU_BUDGET = 520.0


@dataclass(frozen=True)
class ShardPlan:
    """How a large operator splits into shards and sections.

    Attributes:
        n_shards: total weight shards.
        n_sections: sections the shards are grouped into.
        shards_per_section: shards resident per section (last section may
            hold fewer).
        pcus_per_section / pmus_per_section: per-section resource use.
        shard_weight_bytes: bytes of weights per shard.
    """

    n_shards: int
    n_sections: int
    shards_per_section: int
    pcus_per_section: float
    pmus_per_section: float
    shard_weight_bytes: float

    @property
    def sharded(self) -> bool:
        return self.n_shards > 1


def shard_pcu_demand(shard_weight_bytes: float,
                     pcu_per_weight_root: float) -> float:
    """PCU demand of one shard (same sub-linear law as unsharded ops)."""
    elements = max(shard_weight_bytes / 2.0, 1.0)
    return pcu_per_weight_root * elements ** 0.3


def plan_shards(weight_bytes: float, pmu_bytes_per_unit: float,
                pcu_per_weight_root: float) -> ShardPlan:
    """Split an operator whose weights exceed :data:`SHARD_WEIGHT_BYTES`.

    Shards are sized to the PMU staging budget; as many shards as the PCU
    budget allows share one section, and sections are added until all
    shards are covered.
    """
    if weight_bytes < 0:
        raise ConfigurationError("weight_bytes must be >= 0")
    if pmu_bytes_per_unit <= 0:
        raise ConfigurationError("pmu_bytes_per_unit must be positive")
    if weight_bytes <= SHARD_WEIGHT_BYTES:
        pcus = shard_pcu_demand(weight_bytes, pcu_per_weight_root)
        pmus = weight_bytes / pmu_bytes_per_unit
        return ShardPlan(
            n_shards=1, n_sections=1, shards_per_section=1,
            pcus_per_section=pcus, pmus_per_section=pmus,
            shard_weight_bytes=weight_bytes)

    n_shards = math.ceil(weight_bytes / SHARD_WEIGHT_BYTES)
    shard_bytes = weight_bytes / n_shards
    pcus_per_shard = shard_pcu_demand(shard_bytes, pcu_per_weight_root)
    shards_per_section = max(
        1, int(SHARD_SECTION_PCU_BUDGET // max(pcus_per_shard, 1.0)))
    shards_per_section = min(shards_per_section, n_shards)
    n_sections = math.ceil(n_shards / shards_per_section)
    pmus_per_shard = shard_bytes / pmu_bytes_per_unit
    return ShardPlan(
        n_shards=n_shards,
        n_sections=n_sections,
        shards_per_section=shards_per_section,
        pcus_per_section=pcus_per_shard * shards_per_section,
        pmus_per_section=pmus_per_shard * shards_per_section,
        shard_weight_bytes=shard_bytes,
    )
