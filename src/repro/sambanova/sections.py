"""Section and operator-demand dataclasses for the RDU compiler.

An :class:`OpDemand` is one operator's resource request (PCUs for compute,
PMUs for staging) plus the traffic it induces; a :class:`Section` is the
set of operators resident on the chip at once. Sections execute
sequentially; operators inside a section stream data concurrently through
the reconfigurable fabric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class OpDemand:
    """One operator's resource and traffic profile.

    Attributes:
        name: operator identifier.
        kind: coarse category (mirrors :class:`repro.graph.ops.OpKind`).
        flops: FLOPs per section invocation (full batch).
        pcus / pmus: resource request.
        weight_bytes: parameter bytes DMA'd from DDR per invocation.
        io_bytes: boundary activation bytes (input + output) that cross
            DDR when the op sits at a section edge; intra-section
            producer/consumer traffic stays in PMUs.
        backward: whether this is a gradient op.
    """

    name: str
    kind: str
    flops: float
    pcus: float
    pmus: float
    weight_bytes: float = 0.0
    io_bytes: float = 0.0
    backward: bool = False
    meta: dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.pcus < 0 or self.pmus < 0:
            raise ConfigurationError(
                f"op {self.name!r}: resource demands must be >= 0")
        if self.flops < 0:
            raise ConfigurationError(f"op {self.name!r}: flops must be >= 0")


@dataclass
class Section:
    """A unit of sequential execution on one RDU.

    Attributes:
        name: section identifier.
        ops: operators resident during the section.
        invocations: times the section runs per training step (per-layer
            sections in O0/O1 run once per decoder layer).
        kind: ``forward`` / ``backward`` / ``model`` / ``comm`` — used by
            the Table II(a) partitioning accounting.
    """

    name: str
    ops: list[OpDemand]
    invocations: int = 1
    kind: str = "forward"

    def __post_init__(self) -> None:
        if not self.ops:
            raise ConfigurationError(f"section {self.name!r} has no ops")
        if self.invocations <= 0:
            raise ConfigurationError(
                f"section {self.name!r}: invocations must be > 0")

    @property
    def pcus(self) -> float:
        """PCUs resident during the section."""
        return sum(op.pcus for op in self.ops)

    @property
    def pmus(self) -> float:
        """PMUs resident during the section."""
        return sum(op.pmus for op in self.ops)

    @property
    def flops(self) -> float:
        """FLOPs per invocation."""
        return sum(op.flops for op in self.ops)

    @property
    def weight_bytes(self) -> float:
        """Parameter bytes loaded from DDR per invocation."""
        return sum(op.weight_bytes for op in self.ops)

    @property
    def boundary_bytes(self) -> float:
        """DDR activation traffic per invocation.

        Only the first and last ops' io traffic crosses DDR; everything
        between flows PMU-to-PMU. This is the mechanism that makes O1's
        fusion reduce off-chip traffic relative to O0.
        """
        first = self.ops[0].io_bytes / 2.0
        last = self.ops[-1].io_bytes / 2.0
        return first + last

    @property
    def ddr_bytes(self) -> float:
        """Total DDR bytes per invocation (weights + boundary activations)."""
        return self.weight_bytes + self.boundary_bytes
