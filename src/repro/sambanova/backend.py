"""The SambaNova backend: DABench's view of the SN30 system."""

from __future__ import annotations

from typing import Any

from repro.common.errors import TransientError
from repro.core.backend import AcceleratorBackend, CompileReport, RunReport
from repro.core.stages import CompileStage, run_stages
from repro.hardware.specs import SN30_SYSTEM, SystemSpec
from repro.models.config import ModelConfig, TrainConfig
from repro.sambanova.compiler import RDUCompiler
from repro.sambanova.runtime import RDURuntime


class SectionStallError(TransientError):
    """A section failed to make progress loading onto the RDU.

    Section swaps stage weights through DDR; a stalled DMA or a slow
    host queue shows up as a section that never starts. Re-running the
    step reloads the section and usually succeeds.
    """

    def __init__(self, message: str, *, section: str = "") -> None:
        super().__init__(message)
        self.section = section


class SambaNovaBackend(AcceleratorBackend):
    """SN30 adapter for the DABench framework.

    ``compile`` options:

    * ``mode`` — compilation mode: ``"O0"``, ``"O1"`` (default), ``"O3"``.
    * ``tp`` — tensor-parallel degree across RDUs (2 per machine).
    """

    transient_errors = (TransientError, SectionStallError)
    # Audited for campaign concurrency: RDUCompiler/RDURuntime hold only
    # constructor-time spec state, so concurrent compile/run is safe.
    thread_safe = True

    def __init__(self, system: SystemSpec = SN30_SYSTEM) -> None:
        super().__init__(system)
        self.compiler = RDUCompiler(system)
        self.runtime = RDURuntime(system)

    def compile(self, model: ModelConfig, train: TrainConfig,
                **options: Any) -> CompileReport:
        return run_stages(self.compile_pipeline(model, train, **options))

    def compile_pipeline(self, model: ModelConfig, train: TrainConfig,
                         **options: Any) -> list[CompileStage]:
        if not self._staged_compile_intact(SambaNovaBackend):
            return super().compile_pipeline(model, train, **options)
        return self.compiler.compile_stages(
            model, train, self.stage_fingerprint, **options)

    def run(self, compiled: CompileReport) -> RunReport:
        return self.runtime.run(compiled)
