"""Resilient sweep execution: faults, retries, deadlines, resume.

The paper's harness treats platform failures as *results* (Table I's
"Fail" cells); this package makes the harness itself survive them.
It provides:

* :mod:`~repro.resilience.clock` — injectable time (real or fake);
* :mod:`~repro.resilience.faults` — deterministic, seeded fault
  injection with platform-flavoured faults;
* :mod:`~repro.resilience.retry` — exponential backoff with seeded
  jitter;
* :mod:`~repro.resilience.breaker` — a per-backend circuit breaker;
* :mod:`~repro.resilience.executor` — the per-cell retry/deadline
  engine;
* :mod:`~repro.resilience.journal` — the JSONL checkpoint/resume
  stores (single-file and sharded);
* :mod:`~repro.resilience.policy` — :class:`ExecutionPolicy`, the one
  value the sweep entry points and :class:`~repro.campaign.Campaign`
  take to describe retry, deadlines, journaling, resume, and
  parallelism.

See ``docs/robustness.md`` for semantics and the journal format.
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.clock import Clock, FakeClock, SystemClock
from repro.resilience.executor import CellOutcome, ResilientExecutor
from repro.resilience.faults import (
    CHAOS_PROFILES,
    CRASH_MODES,
    ChaosFault,
    FaultInjectingBackend,
    FaultPlan,
    FaultSpec,
    WorkerCrashFault,
    compiler_flake,
    device_fault,
    gpu_ecc_retry,
    gpu_nccl_timeout,
    ipu_host_link_error,
    ipu_tile_oom,
    rdu_section_stall,
    workload_key,
    wse_fabric_fault,
    wse_placement_flake,
)
from repro.resilience.journal import (
    STATUS_FAILED,
    STATUS_GATED,
    STATUS_OK,
    JournalEntry,
    ShardedJournal,
    SweepJournal,
)
from repro.resilience.policy import (
    DISPATCH_MODES,
    DISPATCH_PROCESS,
    DISPATCH_THREAD,
    PREDICTOR_ANALYTIC,
    PREDICTOR_EWMA,
    PREDICTORS,
    SCHEDULE_LANE_MAJOR,
    SCHEDULE_LONGEST_FIRST,
    SCHEDULE_POLICIES,
    SCHEDULE_SHORTEST_FIRST,
    ExecutionPolicy,
    reject_removed_kwargs,
)
from repro.resilience.retry import BackoffSchedule, RetryPolicy

__all__ = [
    "Clock",
    "SystemClock",
    "FakeClock",
    "RetryPolicy",
    "BackoffSchedule",
    "CircuitBreaker",
    "ExecutionPolicy",
    "reject_removed_kwargs",
    "SCHEDULE_LANE_MAJOR",
    "SCHEDULE_LONGEST_FIRST",
    "SCHEDULE_SHORTEST_FIRST",
    "SCHEDULE_POLICIES",
    "DISPATCH_THREAD",
    "DISPATCH_PROCESS",
    "DISPATCH_MODES",
    "PREDICTOR_ANALYTIC",
    "PREDICTOR_EWMA",
    "PREDICTORS",
    "ResilientExecutor",
    "CellOutcome",
    "FaultSpec",
    "FaultPlan",
    "FaultInjectingBackend",
    "ChaosFault",
    "CHAOS_PROFILES",
    "WorkerCrashFault",
    "CRASH_MODES",
    "workload_key",
    "compiler_flake",
    "wse_fabric_fault",
    "wse_placement_flake",
    "rdu_section_stall",
    "ipu_host_link_error",
    "ipu_tile_oom",
    "gpu_nccl_timeout",
    "gpu_ecc_retry",
    "device_fault",
    "SweepJournal",
    "ShardedJournal",
    "JournalEntry",
    "STATUS_OK",
    "STATUS_FAILED",
    "STATUS_GATED",
]
