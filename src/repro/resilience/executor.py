"""The resilient cell executor: retry, deadline, and circuit breaking.

:class:`ResilientExecutor` runs one sweep cell (compile, optionally
run) under a :class:`~repro.resilience.retry.RetryPolicy`:

* **transient** faults (per the backend's taxonomy) are retried with
  exponential backoff + seeded jitter, slept on the injected clock;
* **permanent** faults — capability failures (``CompilationError``),
  device faults, configuration errors — finalize immediately: they are
  results, not noise;
* a **per-cell deadline** cuts off hangs. On a real clock the call runs
  in a watchdog daemon thread abandoned at timeout; on a fake clock the
  check is cooperative (injected hangs advance the clock), keeping
  tests deterministic;
* an optional per-backend :class:`~repro.resilience.breaker.CircuitBreaker`
  fail-fasts every cell while the platform itself looks broken —
  gated cells report as unfinished so a resumed run re-executes them.

The outcome is always a :class:`CellOutcome`; the executor never raises
for workload failures, only for programming errors.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.common.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ErrorRecord,
    ReproError,
    TransientError,
    is_infrastructure_fault,
)
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.clock import Clock, SystemClock
from repro.resilience.journal import (
    STATUS_FAILED,
    STATUS_GATED,
    STATUS_OK,
    JournalEntry,
)
from repro.resilience.retry import RetryPolicy

if TYPE_CHECKING:
    from repro.observe import TraceRecorder


@dataclass(frozen=True)
class CellOutcome:
    """What happened to one cell after all attempts.

    Attributes:
        key: the cell's journal key.
        status: ``"ok"``, ``"failed"``, or ``"gated"`` (breaker open).
        compiled / run: the successful artifacts, when status is ok.
        error: structured record of the final failure.
        attempts: attempts consumed (>= 1 unless gated before any).
        elapsed: injected-clock seconds across all attempts.
        retried: records of the non-final failures that were retried.
    """

    key: str
    status: str
    compiled: Any = None
    run: Any = None
    error: ErrorRecord | None = None
    attempts: int = 0
    elapsed: float = 0.0
    retried: tuple[ErrorRecord, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def journal_entry(self,
                      extra: dict[str, Any] | None = None) -> JournalEntry:
        """The journal form of this outcome.

        ``extra`` adds caller-computed metrics to the summary (e.g.
        allocation ratios) so a resumed run can restore them without
        re-executing the cell.
        """
        summary = None
        if self.run is not None:
            summary = {
                "tokens_per_second": self.run.tokens_per_second,
                "step_time": self.run.step_time,
                "achieved_flops": self.run.achieved_flops,
            }
            if extra:
                summary.update(extra)
        return JournalEntry(key=self.key, status=self.status,
                            attempts=self.attempts, error=self.error,
                            summary=summary)


#: Default cap on concurrently-abandoned watchdog threads per executor.
DEFAULT_MAX_ABANDONED_WATCHDOGS = 8


class ResilientExecutor:
    """Executes cells with retry, deadlines, and circuit breaking.

    ``max_abandoned_watchdogs`` bounds the real-clock watchdog leak: a
    hung cell's daemon thread is abandoned at timeout and lives until
    the hung call returns (possibly forever). Once that many abandoned
    threads are still alive, further guarded calls fail fast with a
    :class:`DeadlineExceededError` instead of stacking more threads —
    a truly wedged backend then gates quickly rather than exhausting
    the process. :meth:`metrics` exposes the counters.
    """

    def __init__(self, retry: RetryPolicy | None = None,
                 cell_timeout: float | None = None,
                 clock: Clock | None = None,
                 breaker: CircuitBreaker | None = None,
                 max_abandoned_watchdogs: int =
                 DEFAULT_MAX_ABANDONED_WATCHDOGS,
                 tracer: "TraceRecorder | None" = None) -> None:
        self.retry = retry if retry is not None else RetryPolicy()
        self.cell_timeout = cell_timeout
        self.clock = clock if clock is not None else SystemClock()
        self.breaker = breaker
        self.tracer = tracer
        self.max_abandoned_watchdogs = max_abandoned_watchdogs
        self._watchdog_lock = threading.Lock()
        self._abandoned: list[threading.Thread] = []
        self._abandoned_total = 0
        self._watchdog_denials = 0

    def metrics(self) -> dict[str, Any]:
        """Executor health counters for the infrastructure table."""
        with self._watchdog_lock:
            self._abandoned = [t for t in self._abandoned
                               if t.is_alive()]
            return {
                "abandoned_watchdogs": self._abandoned_total,
                "live_watchdogs": len(self._abandoned),
                "watchdog_cap": self.max_abandoned_watchdogs,
                "watchdog_denials": self._watchdog_denials,
            }

    def execute(self, key: str,
                compile_fn: Callable[[], Any],
                run_fn: Callable[[Any], Any] | None = None,
                is_transient: Callable[[BaseException], bool] | None = None,
                ) -> CellOutcome:
        """Run one cell to a final outcome.

        ``is_transient`` is the backend's fault taxonomy (defaults to
        ``isinstance(exc, TransientError)``).
        """
        schedule = self.retry.backoff_schedule()
        retried: list[ErrorRecord] = []
        started = self.clock.now()
        attempts = 0
        while True:
            try:
                if self.breaker is not None:
                    self.breaker.check()
            except CircuitOpenError as exc:
                record = ErrorRecord.from_exception(exc, phase="gate",
                                                    transient=True)
                if self.tracer is not None:
                    self.tracer.emit("gate", key=key, phase="gate",
                                     status=STATUS_GATED,
                                     attempt=attempts,
                                     breaker=getattr(self.breaker,
                                                     "name", ""))
                return CellOutcome(
                    key=key, status=STATUS_GATED, error=record,
                    attempts=attempts,
                    elapsed=self.clock.now() - started,
                    retried=tuple(retried))

            attempts += 1
            phase = "compile"
            attempt_started = self.clock.now()
            phase_started = attempt_started
            try:
                compiled = self._guarded(compile_fn, attempt_started, phase)
                self._check_deadline(attempt_started, phase)
                self._span(key, "compile", STATUS_OK, attempts,
                           phase_started)
                run = None
                if run_fn is not None:
                    phase = "run"
                    phase_started = self.clock.now()
                    run = self._guarded(lambda: run_fn(compiled),
                                        attempt_started, phase)
                    self._check_deadline(attempt_started, phase)
                    self._span(key, "run", STATUS_OK, attempts,
                               phase_started)
            except ReproError as exc:
                transient = self._is_retryable(exc, is_transient)
                record = ErrorRecord.from_exception(exc, phase=phase,
                                                    transient=transient,
                                                    capture_traceback=True)
                self._span(key, phase, "error", attempts, phase_started,
                           error=type(exc).__name__)
                if self.breaker is not None:
                    if is_infrastructure_fault(exc):
                        self.breaker.record_failure()
                    else:
                        # Capability failures prove the device works.
                        self.breaker.record_success()
                if transient and attempts <= self.retry.max_retries:
                    retried.append(record)
                    delay = schedule.delay(attempts - 1)
                    if self.tracer is not None:
                        self.tracer.emit("retry", key=key, phase=phase,
                                         status="error",
                                         attempt=attempts, delay=delay,
                                         error=type(exc).__name__)
                    self.clock.sleep(delay)
                    continue
                return CellOutcome(
                    key=key, status=STATUS_FAILED, error=record,
                    attempts=attempts,
                    elapsed=self.clock.now() - started,
                    retried=tuple(retried))
            if self.breaker is not None:
                self.breaker.record_success()
            return CellOutcome(
                key=key, status=STATUS_OK, compiled=compiled, run=run,
                attempts=attempts, elapsed=self.clock.now() - started,
                retried=tuple(retried))

    # ------------------------------------------------------------------
    def _span(self, key: str, name: str, status: str, attempt: int,
              phase_started: float, **meta: Any) -> None:
        """Emit one phase span (compile/run) when tracing is on."""
        if self.tracer is None:
            return
        self.tracer.emit(name, key=key, phase=name, status=status,
                         attempt=attempt,
                         duration=max(0.0, self.clock.now()
                                      - phase_started),
                         **meta)

    def _is_retryable(self, exc: BaseException,
                      is_transient: Callable[[BaseException], bool] | None,
                      ) -> bool:
        if isinstance(exc, DeadlineExceededError):
            return self.retry.retry_deadline_errors
        if is_transient is not None:
            return bool(is_transient(exc))
        return isinstance(exc, TransientError)

    def _check_deadline(self, attempt_started: float, phase: str) -> None:
        """Cooperative deadline check (covers fake-clock hangs)."""
        if self.cell_timeout is None:
            return
        elapsed = self.clock.now() - attempt_started
        if elapsed > self.cell_timeout:
            raise DeadlineExceededError(
                f"cell exceeded its {self.cell_timeout:g}s deadline "
                f"during {phase} ({elapsed:g}s elapsed)",
                elapsed=elapsed, deadline=self.cell_timeout)

    def _guarded(self, fn: Callable[[], Any], attempt_started: float,
                 phase: str) -> Any:
        """Call ``fn``, enforcing the deadline with wall-clock threads.

        Only real clocks get the watchdog thread (a hung call is
        abandoned as a daemon thread — the price of cutting off code
        that will not return). Fake clocks run inline: injected hangs
        advance the clock and :meth:`_check_deadline` catches them.
        """
        if self.cell_timeout is None or not self.clock.is_real:
            return fn()
        budget = self.cell_timeout - (self.clock.now() - attempt_started)
        if budget <= 0:
            raise DeadlineExceededError(
                f"no deadline budget left before {phase}",
                elapsed=self.clock.now() - attempt_started,
                deadline=self.cell_timeout)
        with self._watchdog_lock:
            self._abandoned = [t for t in self._abandoned
                               if t.is_alive()]
            if len(self._abandoned) >= self.max_abandoned_watchdogs:
                self._watchdog_denials += 1
                live = len(self._abandoned)
                raise DeadlineExceededError(
                    f"watchdog capacity exhausted: {live} abandoned "
                    f"watchdog thread(s) still running hung cells; "
                    f"failing {phase} fast",
                    elapsed=0.0, deadline=self.cell_timeout)
        box: dict[str, Any] = {}

        def target() -> None:
            try:
                box["value"] = fn()
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                box["error"] = exc

        worker = threading.Thread(target=target, daemon=True,
                                  name=f"cell-{phase}")
        worker.start()
        worker.join(budget)
        if worker.is_alive():
            with self._watchdog_lock:
                self._abandoned.append(worker)
                self._abandoned_total += 1
            raise DeadlineExceededError(
                f"{phase} still running after {self.cell_timeout:g}s; "
                "abandoning the attempt",
                elapsed=self.clock.now() - attempt_started,
                deadline=self.cell_timeout)
        if "error" in box:
            raise box["error"]
        return box["value"]
