"""A JSONL journal of sweep-cell outcomes for checkpoint/resume.

Long sweep campaigns must never lose finished work: every completed
cell is appended to the journal the moment it finishes, and a resumed
run skips every journaled cell. Entries are one JSON object per line:

.. code-block:: json

    {"v": 1, "key": "L12", "status": "ok", "attempts": 1,
     "error": null, "summary": {"tokens_per_second": 51234.0}}

``status`` is ``"ok"``, ``"failed"`` (a final, structured failure —
itself a benchmark result), or ``"gated"`` (the circuit breaker
fail-fasted the cell; treated as unfinished on resume). The append-only
format survives crashes: a truncated final line — the signature of a
killed process — is ignored on load, and for the same key the last
complete entry wins.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.common.errors import ErrorRecord

JOURNAL_VERSION = 1

STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_GATED = "gated"

#: Statuses that count as finished work on resume.
FINAL_STATUSES = frozenset({STATUS_OK, STATUS_FAILED})


@dataclass(frozen=True)
class JournalEntry:
    """One journaled cell outcome."""

    key: str
    status: str
    attempts: int = 1
    error: ErrorRecord | None = None
    summary: dict[str, Any] | None = None

    @property
    def finished(self) -> bool:
        return self.status in FINAL_STATUSES

    @property
    def failed(self) -> bool:
        return self.status == STATUS_FAILED

    def to_dict(self) -> dict[str, Any]:
        return {
            "v": JOURNAL_VERSION,
            "key": self.key,
            "status": self.status,
            "attempts": self.attempts,
            "error": self.error.to_dict() if self.error else None,
            "summary": self.summary,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "JournalEntry":
        error = payload.get("error")
        return cls(
            key=str(payload["key"]),
            status=str(payload.get("status", STATUS_FAILED)),
            attempts=int(payload.get("attempts", 1)),
            error=ErrorRecord.from_dict(error) if error else None,
            summary=payload.get("summary"),
        )


class SweepJournal:
    """Append-only JSONL store of :class:`JournalEntry` records."""

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)

    def record(self, entry: JournalEntry) -> None:
        """Append one outcome, flushed to disk before returning."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry.to_dict(), sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def load(self) -> dict[str, JournalEntry]:
        """Read the journal; last complete entry per key wins.

        Malformed lines (e.g. a line truncated by a crash mid-write)
        are skipped rather than fatal — a resume must always be
        possible from whatever made it to disk.
        """
        entries: dict[str, JournalEntry] = {}
        if not self.path.exists():
            return entries
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    entry = JournalEntry.from_dict(payload)
                except (json.JSONDecodeError, AttributeError, KeyError,
                        TypeError, ValueError):
                    continue
                entries[entry.key] = entry
        return entries

    def finished_keys(self, retry_failed: bool = False) -> set[str]:
        """Keys a resumed run may skip.

        With ``retry_failed`` journaled failures are re-attempted (use
        after swapping out a faulty device); successes are always kept.
        """
        return {
            key for key, entry in self.load().items()
            if entry.finished and not (retry_failed and entry.failed)
        }
