"""JSONL journals of sweep-cell outcomes for checkpoint/resume.

Long sweep campaigns must never lose finished work: every completed
cell is appended to the journal the moment it finishes, and a resumed
run skips every journaled cell. Entries are one JSON object per line:

.. code-block:: json

    {"v": 1, "key": "L12", "status": "ok", "attempts": 1,
     "error": null, "summary": {"tokens_per_second": 51234.0}}

``status`` is ``"ok"``, ``"failed"`` (a final, structured failure —
itself a benchmark result), or ``"gated"`` (the circuit breaker
fail-fasted the cell; treated as unfinished on resume). The append-only
format survives crashes: a truncated final line — the signature of a
killed process — is ignored on load, and for the same key the last
complete entry wins.

Two stores implement the format:

* :class:`SweepJournal` — one file, one writer (appends are serialized
  by an in-process lock, so one journal may be shared by the worker
  threads of a parallel sweep);
* :class:`ShardedJournal` — a directory of shards, one file per worker
  thread per campaign run, so concurrent writers never share a file and
  a crash can truncate at most one line per worker. Shards are named
  ``shard-<generation>-<worker>.jsonl``; each new campaign run claims
  the next generation, and :meth:`ShardedJournal.load` merges shards in
  (generation, worker) order so entries from later runs win.
"""

from __future__ import annotations

import json
import os
import re
import threading
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.common.errors import ErrorRecord

JOURNAL_VERSION = 1

STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_GATED = "gated"

#: Statuses that count as finished work on resume.
FINAL_STATUSES = frozenset({STATUS_OK, STATUS_FAILED})


@dataclass(frozen=True)
class JournalEntry:
    """One journaled cell outcome."""

    key: str
    status: str
    attempts: int = 1
    error: ErrorRecord | None = None
    summary: dict[str, Any] | None = None

    @property
    def finished(self) -> bool:
        return self.status in FINAL_STATUSES

    @property
    def failed(self) -> bool:
        return self.status == STATUS_FAILED

    def to_dict(self) -> dict[str, Any]:
        # Tracebacks never enter journal lines: they embed frame
        # file/line details that differ between dispatch modes and
        # would break the byte-identical merged_text() guarantee.
        error = self.error.to_dict() if self.error else None
        if error is not None:
            error.pop("traceback", None)
        return {
            "v": JOURNAL_VERSION,
            "key": self.key,
            "status": self.status,
            "attempts": self.attempts,
            "error": error,
            "summary": self.summary,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "JournalEntry":
        error = payload.get("error")
        return cls(
            key=str(payload["key"]),
            status=str(payload.get("status", STATUS_FAILED)),
            attempts=int(payload.get("attempts", 1)),
            error=ErrorRecord.from_dict(error) if error else None,
            summary=payload.get("summary"),
        )


def _read_entries(path: Path, into: dict[str, JournalEntry]) -> int:
    """Merge one JSONL file into ``into``; last complete entry wins.

    Malformed lines (e.g. a line truncated by a crash mid-write) are
    skipped rather than fatal — a resume must always be possible from
    whatever made it to disk. Returns the number of lines skipped, so
    callers can surface crash-truncated shards instead of letting the
    resume set silently shrink.
    """
    if not path.exists():
        return 0
    corrupt = 0
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                entry = JournalEntry.from_dict(payload)
            except (json.JSONDecodeError, AttributeError, KeyError,
                    TypeError, ValueError):
                corrupt += 1
                continue
            into[entry.key] = entry
    return corrupt


def _warn_corrupt(source: str, corrupt: int) -> None:
    warnings.warn(
        f"journal {source}: skipped {corrupt} malformed/torn JSONL "
        "line(s) on load — a crash-truncated shard is expected to lose "
        "at most its final line; more may mean disk corruption",
        RuntimeWarning, stacklevel=3)


def _finished_keys(entries: dict[str, JournalEntry],
                   retry_failed: bool) -> set[str]:
    return {
        key for key, entry in entries.items()
        if entry.finished and not (retry_failed and entry.failed)
    }


class SweepJournal:
    """Append-only JSONL store of :class:`JournalEntry` records.

    Appends are serialized by an in-process lock so a single journal
    file can back a thread-pooled sweep; cross-process writers should
    use :class:`ShardedJournal` instead.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        #: Malformed lines skipped by the most recent :meth:`load`.
        self.corrupt_lines = 0

    def record(self, entry: JournalEntry) -> None:
        """Append one outcome, flushed to disk before returning."""
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(entry.to_dict(), sort_keys=True)
                             + "\n")
                handle.flush()
                os.fsync(handle.fileno())

    def load(self) -> dict[str, JournalEntry]:
        """Read the journal; last complete entry per key wins.

        Sets :attr:`corrupt_lines` to the number of malformed lines
        skipped by this load (and warns when nonzero).
        """
        entries: dict[str, JournalEntry] = {}
        self.corrupt_lines = _read_entries(self.path, entries)
        if self.corrupt_lines:
            _warn_corrupt(str(self.path), self.corrupt_lines)
        return entries

    def finished_keys(self, retry_failed: bool = False) -> set[str]:
        """Keys a resumed run may skip.

        With ``retry_failed`` journaled failures are re-attempted (use
        after swapping out a faulty device); successes are always kept.
        """
        return _finished_keys(self.load(), retry_failed)


class ShardedJournal:
    """A directory of JSONL shards: one writer thread per file.

    Parallel campaigns need concurrent journal writers without losing
    the crash-tolerance of the append-only format. Each worker thread
    lazily claims its own shard file on first write, so no file ever
    has two writers and a killed campaign can truncate at most the
    final line of each shard. Every :class:`ShardedJournal` instance
    that writes (i.e. every campaign run — including each worker
    *process* of a process-dispatched campaign) claims a fresh
    *generation* of shards; :meth:`load` merges all generations in
    order, so a re-executed key (``retry_failed``) takes its newest
    outcome.

    Generations are claimed atomically: the first write creates a
    ``<prefix>-<generation>.claim`` marker with ``O_EXCL``, so two
    journals opened on the same directory at the same time — two
    campaign processes, say — can never collide on a generation even
    though neither can see the other's in-memory state. Read-only
    instances (resume loads, merges) never claim and never touch the
    directory.
    """

    _SHARD_RE = re.compile(r"-(\d+)-(\d+)\.jsonl$")
    _CLAIM_RE = re.compile(r"-(\d+)\.claim$")

    def __init__(self, directory: str | os.PathLike[str],
                 prefix: str = "shard") -> None:
        self.directory = Path(directory)
        self.prefix = prefix
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_worker = 0
        self._generation: int | None = None
        #: Malformed lines skipped by the most recent :meth:`load`
        #: (summed across all shards).
        self.corrupt_lines = 0

    # -- write side ----------------------------------------------------
    def record(self, entry: JournalEntry) -> None:
        """Append one outcome to this thread's shard."""
        self._writer().record(entry)

    def _writer(self) -> SweepJournal:
        journal = getattr(self._local, "journal", None)
        if journal is None:
            with self._lock:
                if self._generation is None:
                    self._generation = self._claim_generation()
                worker = self._next_worker
                self._next_worker += 1
            name = (f"{self.prefix}-{self._generation:04d}"
                    f"-{worker:03d}.jsonl")
            journal = SweepJournal(self.directory / name)
            self._local.journal = journal
        return journal

    def _claim_generation(self) -> int:
        """Atomically claim the next free generation number.

        An ``O_EXCL`` create of the generation's ``.claim`` marker is
        the claim itself — the filesystem arbitrates concurrent
        claimants (two campaign processes starting together), and a
        loser simply retries the next number. Markers are never
        deleted, so generation numbers are never reused even when old
        shards are pruned.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        taken = [int(match.group(1))
                 for path in self.directory.iterdir()
                 if path.name.startswith(f"{self.prefix}-")
                 and (match := (self._SHARD_RE.search(path.name)
                                or self._CLAIM_RE.search(path.name)))]
        generation = max(taken) + 1 if taken else 0
        while True:
            marker = self.directory / f"{self.prefix}-{generation}.claim"
            try:
                os.close(os.open(marker,
                                 os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                return generation
            except FileExistsError:
                generation += 1

    # -- read side -----------------------------------------------------
    def _shard_paths(self) -> list[Path]:
        """Existing shards, ordered (generation, worker) — merge order.

        The order is *numeric* on the parsed generation and worker ids:
        zero-padding in the filenames is cosmetic, so worker ids beyond
        the padding width (or generations beyond four digits) must not
        let an older generation lexicographically outrank a newer one.
        """
        if not self.directory.exists():
            return []

        def merge_order(path: Path) -> tuple[int, int]:
            match = self._SHARD_RE.search(path.name)
            assert match is not None  # filtered below
            return int(match.group(1)), int(match.group(2))

        return sorted((path for path in self.directory.iterdir()
                       if path.name.startswith(f"{self.prefix}-")
                       and self._SHARD_RE.search(path.name)),
                      key=merge_order)

    def shard_paths(self) -> list[Path]:
        """Existing shard files in merge order."""
        return self._shard_paths()

    def load(self) -> dict[str, JournalEntry]:
        """Merge every shard; for a key, the newest generation wins.

        Sets :attr:`corrupt_lines` to the total number of malformed
        lines skipped across shards (and warns when nonzero).
        """
        entries: dict[str, JournalEntry] = {}
        corrupt = 0
        for path in self._shard_paths():
            corrupt += _read_entries(path, entries)
        self.corrupt_lines = corrupt
        if corrupt:
            _warn_corrupt(str(self.directory), corrupt)
        return entries

    def finished_keys(self, retry_failed: bool = False) -> set[str]:
        """Keys a resumed run may skip (see :meth:`SweepJournal.finished_keys`)."""
        return _finished_keys(self.load(), retry_failed)

    # -- canonical merge -----------------------------------------------
    def merged_text(self) -> str:
        """The canonical merged journal: entries sorted by key.

        Two campaigns that finished the same cell set produce
        byte-identical merged text, whatever the sharding or thread
        interleaving — the determinism guarantee campaigns are tested
        against.
        """
        entries = self.load()
        lines = [json.dumps(entries[key].to_dict(), sort_keys=True)
                 for key in sorted(entries)]
        return "".join(line + "\n" for line in lines)

    def write_merged(self, path: str | os.PathLike[str]) -> Path:
        """Write the canonical merged journal to ``path``."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.merged_text(), encoding="utf-8")
        return target
