"""ExecutionPolicy: one value describing how a sweep should execute.

PR 1 grew the sweep entry points a sprawl of keywords — ``executor=``,
``journal=``, ``resume=``, ``retry_failed=`` — and the campaign engine
would have added ``max_workers=`` on top. :class:`ExecutionPolicy`
consolidates all of them into a single frozen value that
:func:`~repro.workloads.sweeps.run_grid`,
:meth:`~repro.core.tier2.ScalabilityAnalyzer.sweep`,
:meth:`~repro.core.tier2.DeploymentOptimizer.batch_sweep`, and
:class:`~repro.campaign.Campaign` all accept::

    policy = ExecutionPolicy(retry=RetryPolicy(max_retries=2),
                             deadline=300.0,
                             journal="campaign.jsonl", resume=True,
                             max_workers=8)
    cells = run_grid(backend, specs, policy=policy)

The old keywords keep working as deprecated aliases (they emit
:class:`DeprecationWarning` and are translated through
:func:`resolve_policy`), so existing scripts survive; internal callers
are held to the new API by CI, which escalates ``repro.*``
deprecations to errors.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, replace
from typing import Any

from repro.common.errors import ConfigurationError
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.clock import Clock, SystemClock
from repro.resilience.executor import ResilientExecutor
from repro.resilience.journal import ShardedJournal, SweepJournal
from repro.resilience.retry import RetryPolicy

#: The default execution behaviour: one attempt, no jitter — identical
#: to the pre-policy sweep default.
NO_RETRY = RetryPolicy(max_retries=0, jitter=0.0)

#: Cell dispatch orders (see :mod:`repro.campaign.scheduler`). Defined
#: here, not in the scheduler module, so the policy can validate its
#: ``schedule`` field without importing the campaign package (which
#: imports this module).
SCHEDULE_LANE_MAJOR = "lane-major"
SCHEDULE_LONGEST_FIRST = "longest-first"
SCHEDULE_SHORTEST_FIRST = "shortest-first"
SCHEDULE_POLICIES = (SCHEDULE_LANE_MAJOR, SCHEDULE_LONGEST_FIRST,
                     SCHEDULE_SHORTEST_FIRST)

#: Built-in cost predictor names (see :mod:`repro.campaign.scheduler`).
PREDICTOR_ANALYTIC = "analytic"
PREDICTOR_EWMA = "ewma"
PREDICTORS = (PREDICTOR_ANALYTIC, PREDICTOR_EWMA)

#: How worker fan-out is realized (see :mod:`repro.campaign.process`).
DISPATCH_THREAD = "thread"
DISPATCH_PROCESS = "process"
DISPATCH_MODES = (DISPATCH_THREAD, DISPATCH_PROCESS)


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a grid of independent sweep cells should be executed.

    Attributes:
        retry: per-cell retry/backoff policy for transient faults.
        deadline: per-cell timeout in seconds (``None`` disables).
        journal: checkpoint store — a :class:`SweepJournal`,
            a :class:`ShardedJournal` (directory, for parallel
            campaigns), or a path to a JSONL file.
        resume: skip cells the journal already holds a final outcome
            for.
        retry_failed: with ``resume``, re-execute journaled *failures*
            while still skipping successes.
        max_workers: workers fanning cells out; ``1`` keeps the exact
            sequential semantics (and callback ordering) of the
            pre-campaign harness.
        dispatch: how workers are realized — ``"thread"`` (the
            default: a :class:`~concurrent.futures.ThreadPoolExecutor`
            sharing the GIL, right for simulator backends that mostly
            wait) or ``"process"`` (a
            :class:`~concurrent.futures.ProcessPoolExecutor` of
            single-threaded workers for CPU-bound cells; requires
            picklable backends, a :class:`ShardedJournal` or no
            journal, and no injected clocks — see
            :mod:`repro.campaign.process`).
        schedule: the order cells are *dispatched* in —
            ``"lane-major"`` (task-list arrival order, the default and
            the pre-scheduler behaviour), ``"longest-first"`` (highest
            predicted cost first — the LPT heuristic that cuts
            makespan on unbalanced grids), or ``"shortest-first"``
            (quick feedback first). Results always come back in spec
            order whatever the schedule; see
            :mod:`repro.campaign.scheduler`.
        predictor: the cost model the scheduler ranks cells with —
            ``"ewma"`` (the default: an online per-(backend, family)
            estimator seeded by the analytic prior), ``"analytic"``
            (the static :mod:`repro.models.costmodel` estimate), or
            any object implementing the
            :class:`~repro.campaign.scheduler.CostPredictor` protocol.
        breaker: circuit breaking for single-backend sweeps — ``False``
            (off, the default), ``True`` (build one from the threshold
            fields below), or a ready :class:`CircuitBreaker` instance.
            :class:`~repro.campaign.Campaign` always builds one breaker
            per backend from the threshold fields, whatever this says.
        breaker_threshold: consecutive infrastructure faults that trip
            a policy-built breaker.
        breaker_reset: seconds a tripped breaker stays open before
            half-opening.
        heartbeat_interval: seconds between worker heartbeat stamps
            under process dispatch (see
            :mod:`repro.campaign.supervisor`). The supervisor polls the
            heartbeat files on this cadence.
        grace_factor: multiplier on ``deadline`` (hard wall-clock kill)
            and on ``heartbeat_interval`` (staleness kill): a worker
            whose in-flight cell exceeds ``deadline * grace_factor``
            wall-clock seconds, or whose heartbeat is older than
            ``heartbeat_interval * grace_factor``, is SIGKILL'd and the
            pool rebuilt.
        quarantine_after: worker crashes a single cell may cause before
            it is quarantined (journaled as a ``QuarantinedError``
            failure instead of retried forever).
        max_pool_rebuilds: times the supervisor rebuilds a broken
            process pool before giving up and re-raising.
        clock: injected time source (``None`` = wall clock). Fake
            clocks make backoff/deadline/cooldown behaviour
            deterministic in tests.
        executor: expert escape hatch — a pre-built
            :class:`ResilientExecutor` used verbatim instead of one
            derived from ``retry``/``deadline``/``clock``. Also the
            bridge the deprecated ``executor=`` keyword lands on.
    """

    retry: RetryPolicy = NO_RETRY
    deadline: float | None = None
    journal: (SweepJournal | ShardedJournal | str
              | os.PathLike[str] | None) = None
    resume: bool = False
    retry_failed: bool = False
    max_workers: int = 1
    dispatch: str = DISPATCH_THREAD
    schedule: str = SCHEDULE_LANE_MAJOR
    predictor: Any = PREDICTOR_EWMA
    breaker: CircuitBreaker | bool = False
    breaker_threshold: int = 5
    breaker_reset: float = 300.0
    heartbeat_interval: float = 5.0
    grace_factor: float = 2.0
    quarantine_after: int = 2
    max_pool_rebuilds: int = 5
    clock: Clock | None = None
    executor: ResilientExecutor | None = None

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1: {self.max_workers}")
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigurationError(
                f"deadline must be positive: {self.deadline}")
        if self.breaker_threshold <= 0:
            raise ConfigurationError(
                f"breaker_threshold must be > 0: {self.breaker_threshold}")
        if self.breaker_reset < 0:
            raise ConfigurationError(
                f"breaker_reset must be >= 0: {self.breaker_reset}")
        if self.heartbeat_interval <= 0:
            raise ConfigurationError(
                f"heartbeat_interval must be > 0: "
                f"{self.heartbeat_interval}")
        if self.grace_factor < 1.0:
            raise ConfigurationError(
                f"grace_factor must be >= 1: {self.grace_factor}")
        if self.quarantine_after <= 0:
            raise ConfigurationError(
                f"quarantine_after must be > 0: {self.quarantine_after}")
        if self.max_pool_rebuilds < 0:
            raise ConfigurationError(
                f"max_pool_rebuilds must be >= 0: "
                f"{self.max_pool_rebuilds}")
        if self.dispatch not in DISPATCH_MODES:
            raise ConfigurationError(
                f"dispatch must be one of {DISPATCH_MODES}: "
                f"{self.dispatch!r}")
        if self.schedule not in SCHEDULE_POLICIES:
            raise ConfigurationError(
                f"schedule must be one of {SCHEDULE_POLICIES}: "
                f"{self.schedule!r}")
        if isinstance(self.predictor, str) and \
                self.predictor not in PREDICTORS:
            raise ConfigurationError(
                f"predictor must be one of {PREDICTORS} or a "
                f"CostPredictor instance: {self.predictor!r}")

    # -- derived pieces ------------------------------------------------
    def normalized_journal(self) -> SweepJournal | ShardedJournal | None:
        """The journal as a store instance (paths become journals)."""
        if self.journal is None or isinstance(self.journal,
                                              (SweepJournal,
                                               ShardedJournal)):
            return self.journal
        return SweepJournal(self.journal)

    def make_breaker(self, name: str,
                     clock: Clock | None = None) -> CircuitBreaker | None:
        """A breaker per this policy (``None`` when breaking is off)."""
        if isinstance(self.breaker, CircuitBreaker):
            return self.breaker
        if not self.breaker:
            return None
        return self.new_breaker(name, clock)

    def new_breaker(self, name: str,
                    clock: Clock | None = None) -> CircuitBreaker:
        """A fresh breaker from the threshold fields (campaign lanes)."""
        return CircuitBreaker(name,
                              failure_threshold=self.breaker_threshold,
                              reset_timeout=self.breaker_reset,
                              clock=clock or self.clock or SystemClock())

    def make_executor(self, name: str = "backend", *,
                      breaker: CircuitBreaker | None = None,
                      clock: Clock | None = None) -> ResilientExecutor:
        """The per-cell executor this policy describes.

        ``breaker``/``clock`` override the policy's own (the campaign
        passes per-lane instances). A pre-built ``executor`` is reused,
        re-wrapped only when a breaker must be attached.
        """
        if breaker is None:
            breaker = self.make_breaker(name, clock)
        if self.executor is not None:
            if breaker is None or breaker is self.executor.breaker:
                return self.executor
            return ResilientExecutor(retry=self.executor.retry,
                                     cell_timeout=self.executor.cell_timeout,
                                     clock=self.executor.clock,
                                     breaker=breaker)
        return ResilientExecutor(retry=self.retry,
                                 cell_timeout=self.deadline,
                                 clock=clock or self.clock or SystemClock(),
                                 breaker=breaker)

    def make_scheduler(self) -> Any:
        """A :class:`~repro.campaign.scheduler.Scheduler` per this policy.

        Imported lazily: the campaign package imports this module, so
        the policy cannot import it at module scope.
        """
        from repro.campaign.scheduler import Scheduler, make_predictor
        return Scheduler(self.schedule, make_predictor(self.predictor))

    def make_supervisor(self) -> Any:
        """A :class:`~repro.campaign.supervisor.Supervisor` per this
        policy (process dispatch only; imported lazily like the
        scheduler)."""
        from repro.campaign.supervisor import Supervisor
        return Supervisor(deadline=self.deadline,
                          heartbeat_interval=self.heartbeat_interval,
                          grace_factor=self.grace_factor,
                          quarantine_after=self.quarantine_after,
                          max_pool_rebuilds=self.max_pool_rebuilds)

    def with_options(self, **changes: Any) -> "ExecutionPolicy":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


def resolve_policy(policy: ExecutionPolicy | None, *, api: str,
                   stacklevel: int = 3,
                   executor: ResilientExecutor | None = None,
                   journal: (SweepJournal | ShardedJournal | str
                             | os.PathLike[str] | None) = None,
                   resume: bool | None = None,
                   retry_failed: bool | None = None) -> ExecutionPolicy:
    """Fold the deprecated per-keyword API into an :class:`ExecutionPolicy`.

    The sweep entry points call this with whatever the caller passed:
    no legacy keywords → the policy (or the default) is returned as-is;
    any legacy keyword → a :class:`DeprecationWarning` names the
    offending keywords and an equivalent policy is built. Mixing
    ``policy=`` with legacy keywords is a configuration error — there
    is no sane precedence between them.
    """
    legacy = {name: value
              for name, value in (("executor", executor),
                                  ("journal", journal),
                                  ("resume", resume),
                                  ("retry_failed", retry_failed))
              if value is not None}
    if not legacy:
        return policy if policy is not None else ExecutionPolicy()
    if policy is not None:
        raise ConfigurationError(
            f"{api}: pass either policy= or the deprecated "
            f"{sorted(legacy)} keyword(s), not both")
    warnings.warn(
        f"{api}: the {', '.join(sorted(legacy))} keyword(s) are "
        "deprecated; pass policy=ExecutionPolicy(...) instead",
        DeprecationWarning, stacklevel=stacklevel)
    return ExecutionPolicy(executor=executor, journal=journal,
                           resume=bool(resume),
                           retry_failed=bool(retry_failed))
