"""ExecutionPolicy: one value describing how a sweep should execute.

PR 1 grew the sweep entry points a sprawl of keywords — ``executor=``,
``journal=``, ``resume=``, ``retry_failed=`` — and the campaign engine
would have added ``max_workers=`` on top. :class:`ExecutionPolicy`
consolidates all of them into a single frozen value that
:func:`~repro.workloads.sweeps.run_grid`,
:meth:`~repro.core.tier2.ScalabilityAnalyzer.sweep`,
:meth:`~repro.core.tier2.DeploymentOptimizer.batch_sweep`, and
:class:`~repro.campaign.Campaign` all accept::

    policy = ExecutionPolicy(retry=RetryPolicy(max_retries=2),
                             deadline=300.0,
                             journal="campaign.jsonl", resume=True,
                             max_workers=8)
    cells = run_grid(backend, specs, policy=policy)

The 0.3 release completed the migration: the old keywords are gone.
Passing any of them raises :class:`TypeError` with a one-line hint
(:func:`reject_removed_kwargs`) — there is exactly one way to configure
execution, and it is this class.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Mapping

from repro.common.errors import ConfigurationError
from repro.observe import RunLedger, TraceRecorder
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.clock import Clock, SystemClock
from repro.resilience.executor import ResilientExecutor
from repro.resilience.journal import ShardedJournal, SweepJournal
from repro.resilience.retry import RetryPolicy

#: The default execution behaviour: one attempt, no jitter — identical
#: to the pre-policy sweep default.
NO_RETRY = RetryPolicy(max_retries=0, jitter=0.0)

#: Cell dispatch orders (see :mod:`repro.campaign.scheduler`). Defined
#: here, not in the scheduler module, so the policy can validate its
#: ``schedule`` field without importing the campaign package (which
#: imports this module).
SCHEDULE_LANE_MAJOR = "lane-major"
SCHEDULE_LONGEST_FIRST = "longest-first"
SCHEDULE_SHORTEST_FIRST = "shortest-first"
SCHEDULE_POLICIES = (SCHEDULE_LANE_MAJOR, SCHEDULE_LONGEST_FIRST,
                     SCHEDULE_SHORTEST_FIRST)

#: Built-in cost predictor names (see :mod:`repro.campaign.scheduler`).
PREDICTOR_ANALYTIC = "analytic"
PREDICTOR_EWMA = "ewma"
PREDICTORS = (PREDICTOR_ANALYTIC, PREDICTOR_EWMA)

#: How worker fan-out is realized (see :mod:`repro.campaign.process`).
DISPATCH_THREAD = "thread"
DISPATCH_PROCESS = "process"
DISPATCH_MODES = (DISPATCH_THREAD, DISPATCH_PROCESS)


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a grid of independent sweep cells should be executed.

    Attributes:
        retry: per-cell retry/backoff policy for transient faults.
        deadline: per-cell timeout in seconds (``None`` disables).
        journal: checkpoint store — a :class:`SweepJournal`,
            a :class:`ShardedJournal` (directory, for parallel
            campaigns), or a path to a JSONL file.
        resume: skip cells the journal already holds a final outcome
            for.
        retry_failed: with ``resume``, re-execute journaled *failures*
            while still skipping successes.
        max_workers: workers fanning cells out; ``1`` keeps the exact
            sequential semantics (and callback ordering) of the
            pre-campaign harness.
        dispatch: how workers are realized — ``"thread"`` (the
            default: a :class:`~concurrent.futures.ThreadPoolExecutor`
            sharing the GIL, right for simulator backends that mostly
            wait) or ``"process"`` (a
            :class:`~concurrent.futures.ProcessPoolExecutor` of
            single-threaded workers for CPU-bound cells; requires
            picklable backends, a :class:`ShardedJournal` or no
            journal, and no injected clocks — see
            :mod:`repro.campaign.process`).
        schedule: the order cells are *dispatched* in —
            ``"lane-major"`` (task-list arrival order, the default and
            the pre-scheduler behaviour), ``"longest-first"`` (highest
            predicted cost first — the LPT heuristic that cuts
            makespan on unbalanced grids), or ``"shortest-first"``
            (quick feedback first). Results always come back in spec
            order whatever the schedule; see
            :mod:`repro.campaign.scheduler`.
        predictor: the cost model the scheduler ranks cells with —
            ``"ewma"`` (the default: an online per-(backend, family)
            estimator seeded by the analytic prior), ``"analytic"``
            (the static :mod:`repro.models.costmodel` estimate), or
            any object implementing the
            :class:`~repro.campaign.scheduler.CostPredictor` protocol.
        breaker: circuit breaking for single-backend sweeps — ``False``
            (off, the default), ``True`` (build one from the threshold
            fields below), or a ready :class:`CircuitBreaker` instance.
            :class:`~repro.campaign.Campaign` always builds one breaker
            per backend from the threshold fields, whatever this says.
        breaker_threshold: consecutive infrastructure faults that trip
            a policy-built breaker.
        breaker_reset: seconds a tripped breaker stays open before
            half-opening.
        heartbeat_interval: seconds between worker heartbeat stamps
            under process dispatch (see
            :mod:`repro.campaign.supervisor`). The supervisor polls the
            heartbeat files on this cadence.
        grace_factor: multiplier on ``deadline`` (hard wall-clock kill)
            and on ``heartbeat_interval`` (staleness kill): a worker
            whose in-flight cell exceeds ``deadline * grace_factor``
            wall-clock seconds, or whose heartbeat is older than
            ``heartbeat_interval * grace_factor``, is SIGKILL'd and the
            pool rebuilt.
        quarantine_after: worker crashes a single cell may cause before
            it is quarantined (journaled as a ``QuarantinedError``
            failure instead of retried forever).
        max_pool_rebuilds: times the supervisor rebuilds a broken
            process pool before giving up and re-raising.
        clock: injected time source (``None`` = wall clock). Fake
            clocks make backoff/deadline/cooldown behaviour
            deterministic in tests.
        trace: structured tracing (see :mod:`repro.observe`) —
            ``False`` (off, the default), ``True`` (write trace shards
            beside the journal shards; requires a
            :class:`ShardedJournal`), or a directory path to write the
            shards into. Tracing is side-effect-free on the journal:
            ``merged_text()`` is byte-identical with it on or off.
        ledger: a cross-run :class:`~repro.observe.RunLedger` — a
            ready instance or a path to its JSON file. Observed cell
            durations are folded into it during the run; the next run
            warm-starts the EWMA cost predictor from it and scales the
            supervisor heartbeat to the typical observed duration
            (see :meth:`effective_heartbeat_interval`).
        cache: a content-addressed compile/result cache (see
            :mod:`repro.cache`) — a ready
            :class:`~repro.cache.CompileCache` or a directory path.
            Deterministic cells whose fingerprint is already stored
            replay without touching the backend; clean first-attempt
            successes are published for the next run. Fault-injecting
            or otherwise nondeterministic backends bypass it entirely.
            When ``cache`` is set and ``ledger`` is not, the run ledger
            is persisted *inside* the cache directory
            (``<cache>/ledger.json``) so warm re-runs also warm-start
            scheduling.
        stage_memo: memoize compile-*stage* artifacts across the cells
            of a run (see :class:`~repro.cache.StageMemo`): cells that
            share a model build or a partitioning reuse it instead of
            recomputing, in-process under thread dispatch and through
            the ``cache`` directory's stage tier under process
            dispatch. On by default; set ``False`` to force every cell
            through the full pipeline (e.g. when benchmarking compile
            cost itself).
        executor: expert escape hatch — a pre-built
            :class:`ResilientExecutor` used verbatim instead of one
            derived from ``retry``/``deadline``/``clock``.
    """

    retry: RetryPolicy = NO_RETRY
    deadline: float | None = None
    journal: (SweepJournal | ShardedJournal | str
              | os.PathLike[str] | None) = None
    resume: bool = False
    retry_failed: bool = False
    max_workers: int = 1
    dispatch: str = DISPATCH_THREAD
    schedule: str = SCHEDULE_LANE_MAJOR
    predictor: Any = PREDICTOR_EWMA
    breaker: CircuitBreaker | bool = False
    breaker_threshold: int = 5
    breaker_reset: float = 300.0
    heartbeat_interval: float = 5.0
    grace_factor: float = 2.0
    quarantine_after: int = 2
    max_pool_rebuilds: int = 5
    trace: bool | str | os.PathLike[str] = False
    ledger: RunLedger | str | os.PathLike[str] | None = None
    cache: Any = None
    stage_memo: bool = True
    clock: Clock | None = None
    executor: ResilientExecutor | None = None

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1: {self.max_workers}")
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigurationError(
                f"deadline must be positive: {self.deadline}")
        if self.breaker_threshold <= 0:
            raise ConfigurationError(
                f"breaker_threshold must be > 0: {self.breaker_threshold}")
        if self.breaker_reset < 0:
            raise ConfigurationError(
                f"breaker_reset must be >= 0: {self.breaker_reset}")
        if self.heartbeat_interval <= 0:
            raise ConfigurationError(
                f"heartbeat_interval must be > 0: "
                f"{self.heartbeat_interval}")
        if self.grace_factor < 1.0:
            raise ConfigurationError(
                f"grace_factor must be >= 1: {self.grace_factor}")
        if self.quarantine_after <= 0:
            raise ConfigurationError(
                f"quarantine_after must be > 0: {self.quarantine_after}")
        if self.max_pool_rebuilds < 0:
            raise ConfigurationError(
                f"max_pool_rebuilds must be >= 0: "
                f"{self.max_pool_rebuilds}")
        if self.dispatch not in DISPATCH_MODES:
            raise ConfigurationError(
                f"dispatch must be one of {DISPATCH_MODES}: "
                f"{self.dispatch!r}")
        if self.schedule not in SCHEDULE_POLICIES:
            raise ConfigurationError(
                f"schedule must be one of {SCHEDULE_POLICIES}: "
                f"{self.schedule!r}")
        if isinstance(self.predictor, str) and \
                self.predictor not in PREDICTORS:
            raise ConfigurationError(
                f"predictor must be one of {PREDICTORS} or a "
                f"CostPredictor instance: {self.predictor!r}")
        if self.trace is True and not isinstance(self.journal,
                                                 ShardedJournal):
            raise ConfigurationError(
                "trace=True writes shards beside a ShardedJournal's; "
                "without one, pass trace=<directory> instead")

    # -- derived pieces ------------------------------------------------
    def normalized_journal(self) -> SweepJournal | ShardedJournal | None:
        """The journal as a store instance (paths become journals)."""
        if self.journal is None or isinstance(self.journal,
                                              (SweepJournal,
                                               ShardedJournal)):
            return self.journal
        return SweepJournal(self.journal)

    def trace_directory(self) -> Path | None:
        """Where trace shards go, or ``None`` when tracing is off."""
        if self.trace is False or self.trace is None:
            return None
        if self.trace is True:
            journal = self.journal
            if not isinstance(journal, ShardedJournal):
                raise ConfigurationError(
                    "trace=True writes shards beside a ShardedJournal's; "
                    "without one, pass trace=<directory> instead")
            return journal.directory
        return Path(self.trace)

    def make_tracer(self, run: str | None = None) -> TraceRecorder | None:
        """A :class:`~repro.observe.TraceRecorder` per this policy.

        ``None`` when tracing is off. ``run`` pins the run token (the
        parent generates one and ships it to worker processes so one
        campaign's shards group together).
        """
        directory = self.trace_directory()
        if directory is None:
            return None
        return TraceRecorder(directory, run=run)

    def normalized_ledger(self) -> RunLedger | None:
        """The ledger as a :class:`~repro.observe.RunLedger` instance.

        Paths become fresh ledgers (loading the file, warning on
        corruption). With a ``cache`` configured but no explicit
        ledger, the ledger is kept *inside* the cache directory
        (``<cache>/ledger.json``) — a warm cache then also
        warm-starts the scheduler's cost predictor. The ledger lives
        parent-side only — it is never pickled into worker processes.
        """
        if isinstance(self.ledger, RunLedger):
            return self.ledger
        if self.ledger is None:
            if self.cache is None:
                return None
            directory = getattr(self.cache, "directory", None)
            if directory is None:
                directory = Path(self.cache)
            return RunLedger(Path(directory) / "ledger.json")
        return RunLedger(self.ledger)

    def normalized_cache(self) -> Any:
        """The cache as a :class:`~repro.cache.CompileCache` instance.

        Paths become fresh caches rooted at that directory; ``None``
        stays ``None`` (caching off). Imported lazily —
        :mod:`repro.cache` imports the resilience package, so the
        policy cannot import it at module scope.
        """
        if self.cache is None:
            return None
        from repro.cache import CompileCache
        if isinstance(self.cache, CompileCache):
            return self.cache
        return CompileCache(self.cache)

    def effective_heartbeat_interval(
            self, ledger: RunLedger | None = None,
            families: "set[str] | None" = None) -> float:
        """The heartbeat cadence, adapted to observed cell durations.

        With a ledger holding history, the interval tracks twice the
        typical observed cell duration — fast grids get tight patrols,
        slow grids are not pestered — clamped to
        ``[heartbeat_interval / 10, heartbeat_interval]`` so the
        configured value stays an upper bound. Without history the
        configured value is used as-is. ``families`` scopes the typical
        duration to the families the current run will actually execute
        (see :meth:`~repro.observe.RunLedger.typical_seconds`) — a
        ledger shared across differently-sized campaigns would
        otherwise mis-scale the patrol cadence.
        """
        if ledger is None:
            ledger = self.normalized_ledger()
        if ledger is None:
            return self.heartbeat_interval
        typical = ledger.typical_seconds(families)
        if typical is None:
            return self.heartbeat_interval
        return max(self.heartbeat_interval / 10.0,
                   min(self.heartbeat_interval, typical * 2.0))

    def make_breaker(self, name: str,
                     clock: Clock | None = None) -> CircuitBreaker | None:
        """A breaker per this policy (``None`` when breaking is off)."""
        if isinstance(self.breaker, CircuitBreaker):
            return self.breaker
        if not self.breaker:
            return None
        return self.new_breaker(name, clock)

    def new_breaker(self, name: str,
                    clock: Clock | None = None) -> CircuitBreaker:
        """A fresh breaker from the threshold fields (campaign lanes)."""
        return CircuitBreaker(name,
                              failure_threshold=self.breaker_threshold,
                              reset_timeout=self.breaker_reset,
                              clock=clock or self.clock or SystemClock())

    def make_executor(self, name: str = "backend", *,
                      breaker: CircuitBreaker | None = None,
                      clock: Clock | None = None,
                      tracer: TraceRecorder | None = None,
                      ) -> ResilientExecutor:
        """The per-cell executor this policy describes.

        ``breaker``/``clock``/``tracer`` override the policy's own (the
        campaign passes per-lane instances). A pre-built ``executor``
        is reused, re-wrapped only when a breaker or tracer must be
        attached.
        """
        if breaker is None:
            breaker = self.make_breaker(name, clock)
        if self.executor is not None:
            if (breaker is None or breaker is self.executor.breaker) \
                    and tracer is None:
                return self.executor
            return ResilientExecutor(retry=self.executor.retry,
                                     cell_timeout=self.executor.cell_timeout,
                                     clock=self.executor.clock,
                                     breaker=breaker
                                     or self.executor.breaker,
                                     tracer=tracer)
        return ResilientExecutor(retry=self.retry,
                                 cell_timeout=self.deadline,
                                 clock=clock or self.clock or SystemClock(),
                                 breaker=breaker, tracer=tracer)

    def make_scheduler(self, tracer: TraceRecorder | None = None) -> Any:
        """A :class:`~repro.campaign.scheduler.Scheduler` per this policy.

        A configured ledger warm-starts the EWMA predictor from the
        persisted per-family durations, and the scheduler feeds every
        observed duration back into it. Imported lazily: the campaign
        package imports this module, so the policy cannot import it at
        module scope.
        """
        from repro.campaign.scheduler import Scheduler, make_predictor
        ledger = self.normalized_ledger()
        prior = ledger.priors() if ledger is not None else None
        return Scheduler(self.schedule,
                         make_predictor(self.predictor, prior=prior),
                         ledger=ledger, tracer=tracer)

    def make_supervisor(self, tracer: TraceRecorder | None = None,
                        families: "set[str] | None" = None) -> Any:
        """A :class:`~repro.campaign.supervisor.Supervisor` per this
        policy (process dispatch only; imported lazily like the
        scheduler). The heartbeat cadence adapts to ledger history,
        scoped to the ``families`` of the current run — see
        :meth:`effective_heartbeat_interval`."""
        from repro.campaign.supervisor import Supervisor
        return Supervisor(deadline=self.deadline,
                          heartbeat_interval=(
                              self.effective_heartbeat_interval(
                                  families=families)),
                          grace_factor=self.grace_factor,
                          quarantine_after=self.quarantine_after,
                          max_pool_rebuilds=self.max_pool_rebuilds,
                          tracer=tracer)

    def with_options(self, **changes: Any) -> "ExecutionPolicy":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


#: The pre-policy keywords removed in 0.3. They were deprecated aliases
#: from 0.2 (``resolve_policy`` translated them with a
#: DeprecationWarning); now they raise :class:`TypeError` with a
#: migration hint.
REMOVED_KEYWORDS = ("executor", "journal", "resume", "retry_failed")


def reject_removed_kwargs(api: str, kwargs: Mapping[str, Any], *,
                          allow_extra: bool = False) -> None:
    """Raise :class:`TypeError` if ``kwargs`` uses a removed keyword.

    The sweep entry points call this with their ``**kwargs`` catch-all
    so the pre-policy keywords fail with a migration hint instead of a
    bare "unexpected keyword argument". With ``allow_extra`` only the
    removed names are rejected — for APIs like ``batch_sweep`` whose
    ``**options`` legitimately forwards other keywords.
    """
    removed = sorted(name for name in kwargs if name in REMOVED_KEYWORDS)
    if removed:
        raise TypeError(
            f"{api}: the {', '.join(removed)} keyword(s) were removed "
            "in 0.3 — pass policy=ExecutionPolicy(...) instead "
            "(see docs/extending.md)")
    if not allow_extra and kwargs:
        raise TypeError(
            f"{api}: unexpected keyword argument(s): "
            f"{', '.join(sorted(kwargs))}")
