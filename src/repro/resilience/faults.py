"""Deterministic fault injection at the compile/run boundary.

Robustness behaviour must be testable without real hardware, so this
module wraps any :class:`~repro.core.backend.AcceleratorBackend` in a
:class:`FaultInjectingBackend` that raises platform-flavoured faults
according to a :class:`FaultPlan`:

* *scripted* faults target workloads by key substring, phase, and
  attempt index — "fail cell L7's first compile with a fabric fault";
* *probabilistic* faults fire with a given rate from a seeded RNG, so a
  chaos run is noisy yet perfectly reproducible;
* *hangs* burn injected-clock time before (or instead of) failing, so
  per-cell deadlines can be exercised deterministically.

The wrapper also counts every compile/run call, which doubles as the
"did resume actually skip this cell?" instrument in tests.
"""

from __future__ import annotations

import random
import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.errors import (
    DeviceFaultError,
    ReproError,
    TransientError,
)
from repro.core.backend import AcceleratorBackend, CompileReport, RunReport
from repro.models.config import ModelConfig, TrainConfig
from repro.resilience.clock import Clock, SystemClock


def workload_key(model: ModelConfig, train: TrainConfig) -> str:
    """The stable identity fault specs match against."""
    return (f"{model.name}/L{model.n_layers}/h{model.hidden_size}"
            f"/b{train.batch_size}")


# ----------------------------------------------------------------------
# Platform-flavoured fault factories
# ----------------------------------------------------------------------
def compiler_flake() -> TransientError:
    """A non-deterministic compiler-service failure (any platform)."""
    return TransientError(
        "transient compiler failure: placement service dropped the job")


def wse_fabric_fault() -> ReproError:
    """A WSE fabric/PE fault (transient — spare PE rows absorb it)."""
    from repro.cerebras.backend import FabricFaultError
    return FabricFaultError(
        "wafer fabric fault: PE row reported a parity error mid-step")


def rdu_section_stall(section: str = "section-0") -> ReproError:
    """An RDU section that never finished loading (transient)."""
    from repro.sambanova.backend import SectionStallError
    return SectionStallError(
        f"RDU {section} stalled while staging weights from DDR",
        section=section)


def ipu_tile_oom(required_bytes: float = 950e6,
                 available_bytes: float = 900e6) -> ReproError:
    """An IPU tile-memory overflow (permanent for the configuration)."""
    from repro.graphcore.backend import TileOutOfMemoryError
    return TileOutOfMemoryError(
        "pipeline stage exceeds tile SRAM",
        required_bytes=required_bytes, available_bytes=available_bytes)


def device_fault(component: str = "fabric") -> DeviceFaultError:
    """A permanent device fault: the hardware itself is broken."""
    return DeviceFaultError(
        f"device fault: {component} failed and did not recover",
        component=component)


#: Platform name → the transient fault that platform typically shows.
PLATFORM_TRANSIENTS: dict[str, Callable[[], ReproError]] = {
    "cerebras": wse_fabric_fault,
    "sambanova": rdu_section_stall,
    "graphcore": compiler_flake,
    "gpu": compiler_flake,
}


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule.

    Attributes:
        fault: factory for the exception to raise; ``None`` means the
            call proceeds normally after any hang (a pure slowdown).
        match: substring of the workload key; ``""`` matches everything.
        phase: ``"compile"``, ``"run"``, or ``"any"``.
        attempts: attempt indices (0-based, per key+phase) the rule
            fires on; ``None`` fires on every attempt.
        hang_seconds: injected-clock seconds consumed before acting —
            how deadlines get exercised.
        probability: chance the rule fires on an eligible call (drawn
            from the plan's seeded RNG).
    """

    fault: Callable[[], ReproError] | None
    match: str = ""
    phase: str = "any"
    attempts: tuple[int, ...] | None = (0,)
    hang_seconds: float = 0.0
    probability: float = 1.0

    @classmethod
    def hang(cls, seconds: float, *, match: str = "", phase: str = "any",
             attempts: tuple[int, ...] | None = None) -> "FaultSpec":
        """A call that takes ``seconds`` longer than it should."""
        return cls(fault=None, match=match, phase=phase,
                   attempts=attempts, hang_seconds=seconds)

    def applies(self, key: str, phase: str, attempt: int) -> bool:
        """Whether this rule is eligible for the given call."""
        if self.match and self.match not in key:
            return False
        if self.phase != "any" and self.phase != phase:
            return False
        if self.attempts is not None and attempt not in self.attempts:
            return False
        return True


@dataclass
class FaultPlan:
    """An ordered set of injection rules plus a seeded RNG.

    Tracks per-(key, phase) attempt counts so scripted rules can target
    "first attempt only" and retries see fresh eligibility. The ``log``
    records every injection for assertions and post-mortems. Draws are
    serialized by a lock, so one plan can arm a backend shared by the
    worker threads of a parallel campaign; per-key scripted rules stay
    deterministic under any thread interleaving because attempt counts
    are tracked per (key, phase).
    """

    specs: list[FaultSpec] = field(default_factory=list)
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)
    _attempts: Counter = field(init=False, repr=False)
    _lock: threading.Lock = field(init=False, repr=False)
    log: list[dict[str, Any]] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._attempts = Counter()
        self._lock = threading.Lock()

    @classmethod
    def chaos(cls, rate: float, seed: int = 0,
              platform: str | None = None) -> "FaultPlan":
        """Random transient faults at ``rate`` per call, platform-styled."""
        factory = PLATFORM_TRANSIENTS.get(platform or "", compiler_flake)
        return cls(specs=[FaultSpec(fault=factory, attempts=None,
                                    probability=rate)], seed=seed)

    def add(self, spec: FaultSpec) -> "FaultPlan":
        """Append a rule (earlier rules win on a given call)."""
        self.specs.append(spec)
        return self

    def draw(self, key: str, phase: str) -> FaultSpec | None:
        """The rule firing on this call, if any (advances attempt count)."""
        with self._lock:
            attempt = self._attempts[(key, phase)]
            self._attempts[(key, phase)] += 1
            for spec in self.specs:
                if not spec.applies(key, phase, attempt):
                    continue
                if (spec.probability < 1.0
                        and self._rng.random() >= spec.probability):
                    continue
                self.log.append({"key": key, "phase": phase,
                                 "attempt": attempt,
                                 "hang": spec.hang_seconds,
                                 "fault": (type(spec.fault()).__name__
                                           if spec.fault else None)})
                return spec
            return None


class FaultInjectingBackend(AcceleratorBackend):
    """Wrap a backend, injecting the plan's faults at call boundaries.

    With an empty plan this is a transparent pass-through that still
    counts calls — the instrument resume tests use to prove journaled
    cells were skipped. Call counting and fault draws are lock-guarded
    (``thread_safe`` stays ``True`` as long as the wrapped backend's
    is), so one instrumented backend can serve a whole campaign pool.
    """

    def __init__(self, inner: AcceleratorBackend,
                 plan: FaultPlan | None = None,
                 clock: Clock | None = None) -> None:
        super().__init__(inner.system)
        self.inner = inner
        self.plan = plan if plan is not None else FaultPlan()
        self.clock = clock if clock is not None else SystemClock()
        self.transient_errors = inner.transient_errors
        self.thread_safe = inner.thread_safe
        self.calls: Counter = Counter()
        self._calls_lock = threading.Lock()

    def compile(self, model: ModelConfig, train: TrainConfig,
                **options: Any) -> CompileReport:
        with self._calls_lock:
            self.calls["compile"] += 1
        self._maybe_inject(workload_key(model, train), "compile")
        return self.inner.compile(model, train, **options)

    def run(self, compiled: CompileReport) -> RunReport:
        with self._calls_lock:
            self.calls["run"] += 1
        self._maybe_inject(
            workload_key(compiled.model, compiled.train), "run")
        return self.inner.run(compiled)

    def is_transient(self, exc: BaseException) -> bool:
        return self.inner.is_transient(exc)

    def _maybe_inject(self, key: str, phase: str) -> None:
        spec = self.plan.draw(key, phase)
        if spec is None:
            return
        if spec.hang_seconds > 0:
            self.clock.sleep(spec.hang_seconds)
        if spec.fault is not None:
            raise spec.fault()
