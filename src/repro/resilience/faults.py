"""Deterministic fault injection at the compile/run boundary.

Robustness behaviour must be testable without real hardware, so this
module wraps any :class:`~repro.core.backend.AcceleratorBackend` in a
:class:`FaultInjectingBackend` that raises platform-flavoured faults
according to a :class:`FaultPlan`:

* *scripted* faults target workloads by key substring, phase, and
  attempt index — "fail cell L7's first compile with a fabric fault";
* *probabilistic* faults fire with a given rate from a seeded RNG, so a
  chaos run is noisy yet perfectly reproducible;
* *hangs* burn injected-clock time before (or instead of) failing, so
  per-cell deadlines can be exercised deterministically.

The wrapper also counts every compile/run call, which doubles as the
"did resume actually skip this cell?" instrument in tests.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import signal
import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.errors import (
    ConfigurationError,
    DeviceFaultError,
    ReproError,
    TransientError,
)
from repro.core.backend import AcceleratorBackend, CompileReport, RunReport
from repro.models.config import ModelConfig, TrainConfig
from repro.resilience.clock import Clock, SystemClock


def workload_key(model: ModelConfig, train: TrainConfig) -> str:
    """The stable identity fault specs match against."""
    return (f"{model.name}/L{model.n_layers}/h{model.hidden_size}"
            f"/b{train.batch_size}")


# ----------------------------------------------------------------------
# Platform-flavoured fault factories
# ----------------------------------------------------------------------
def compiler_flake() -> TransientError:
    """A non-deterministic compiler-service failure (any platform)."""
    return TransientError(
        "transient compiler failure: placement service dropped the job")


def wse_fabric_fault() -> ReproError:
    """A WSE fabric/PE fault (transient — spare PE rows absorb it)."""
    from repro.cerebras.backend import FabricFaultError
    return FabricFaultError(
        "wafer fabric fault: PE row reported a parity error mid-step")


def rdu_section_stall(section: str = "section-0") -> ReproError:
    """An RDU section that never finished loading (transient)."""
    from repro.sambanova.backend import SectionStallError
    return SectionStallError(
        f"RDU {section} stalled while staging weights from DDR",
        section=section)


def ipu_tile_oom(required_bytes: float = 950e6,
                 available_bytes: float = 900e6) -> ReproError:
    """An IPU tile-memory overflow (permanent for the configuration)."""
    from repro.graphcore.backend import TileOutOfMemoryError
    return TileOutOfMemoryError(
        "pipeline stage exceeds tile SRAM",
        required_bytes=required_bytes, available_bytes=available_bytes)


def wse_placement_flake() -> ReproError:
    """A non-deterministic WSE placement-service failure at compile."""
    from repro.cerebras.backend import PlacementFlakeError
    return PlacementFlakeError(
        "placement service produced no routable layout; resubmit")


def ipu_host_link_error() -> ReproError:
    """A dropped host/IPU link mid-transfer (transient; re-attach)."""
    from repro.graphcore.backend import HostLinkError
    return HostLinkError(
        "host link dropped while streaming activations; re-attaching")


def gpu_nccl_timeout() -> ReproError:
    """A collective that timed out on a straggler rank (transient)."""
    from repro.gpu.backend import NcclTimeoutError
    return NcclTimeoutError(
        "NCCL all-reduce timed out waiting on a straggler rank")


def gpu_ecc_retry() -> ReproError:
    """A corrected ECC event forcing a step replay (transient)."""
    from repro.gpu.backend import EccRetryError
    return EccRetryError(
        "corrected ECC memory event; step replayed")


def device_fault(component: str = "fabric") -> DeviceFaultError:
    """A permanent device fault: the hardware itself is broken."""
    return DeviceFaultError(
        f"device fault: {component} failed and did not recover",
        component=component)


#: Worker-crash flavours: hard SIGKILL, abrupt ``os._exit``, or SIGSTOP
#: (the process wedges — every thread, heartbeats included, freezes —
#: which is how the supervisor's hard-kill paths are exercised).
CRASH_MODES = ("sigkill", "exit", "stop")


@dataclass(frozen=True)
class WorkerCrashFault:
    """A fault factory that kills (or wedges) the worker process itself.

    Used as ``FaultSpec(fault=WorkerCrashFault(...))`` to chaos-test
    the campaign :class:`~repro.campaign.supervisor.Supervisor`: the
    "fault" never raises — it takes the whole worker down, surfacing
    parent-side as a broken process pool (or a stale heartbeat for
    ``mode="stop"``).

    Because each worker process arms its own copy of the plan (fresh
    attempt counters), an attempt-indexed spec would re-fire in every
    replacement worker. ``once_path`` is the cross-process alternative:
    the fault atomically creates that marker file before crashing and
    disarms itself (returns ``None``) once the marker exists, so a cell
    crashes its worker exactly once and then heals — the crash-recovery
    scenario. Without ``once_path`` the cell is poison: it kills every
    worker it touches until the supervisor quarantines it.

    Firing in the main process (thread dispatch, or a bare backend
    call) raises :class:`ConfigurationError` instead of killing the
    test run.
    """

    mode: str = "sigkill"
    exit_code: int = 77
    once_path: str | None = None
    #: Name used by :meth:`FaultPlan.draw` logging — the factory cannot
    #: be called just to learn its type (it would kill the process).
    fault_name: str = "WorkerCrash"

    def __post_init__(self) -> None:
        if self.mode not in CRASH_MODES:
            raise ConfigurationError(
                f"WorkerCrashFault mode must be one of {CRASH_MODES}: "
                f"{self.mode!r}")

    def __call__(self) -> ReproError | None:
        if multiprocessing.parent_process() is None:
            raise ConfigurationError(
                "WorkerCrashFault fired in the main process; it is "
                "only meaningful under dispatch='process' (it would "
                "kill the harness itself)")
        if self.once_path is not None:
            try:
                os.close(os.open(self.once_path,
                                 os.O_CREAT | os.O_EXCL | os.O_WRONLY))
            except FileExistsError:
                return None  # already crashed once; disarmed
        if self.mode == "exit":
            os._exit(self.exit_code)
        elif self.mode == "stop":
            os.kill(os.getpid(), signal.SIGSTOP)
            return None  # resumed (SIGCONT) — behave as healed
        os.kill(os.getpid(), signal.SIGKILL)
        raise AssertionError("unreachable")  # pragma: no cover


#: Platform name → the transient fault that platform typically shows.
PLATFORM_TRANSIENTS: dict[str, Callable[[], ReproError]] = {
    "cerebras": wse_fabric_fault,
    "sambanova": rdu_section_stall,
    "graphcore": compiler_flake,
    "gpu": compiler_flake,
}


# ----------------------------------------------------------------------
# Chaos-mode calibration (per-platform rate profiles)
# ----------------------------------------------------------------------
#: Reference die area chaos rates are normalized against: the A100's
#: reticle-limited 826 mm^2 die, the conventional accelerator size.
REFERENCE_DIE_MM2 = 826.0

#: The WSE-2 is a whole 46,225 mm^2 wafer (215 mm x 215 mm) — ~56x the
#: reference die's silicon, hence ~56x the raw soft-error cross-section.
WSE2_WAFER_MM2 = 46_225.0

#: Fraction of wafer upsets that stay *visible* to the harness. The WSE
#: carries spare PE rows precisely so that most single-PE faults are
#: absorbed by remapping without the workload noticing; only ~2.5%
#: surface as a FabricFaultError the executor must retry.
WSE_VISIBLE_FAULT_FRACTION = 0.025

#: Cerebras fabric-fault weight: raw area scaling discounted by spare-row
#: absorption (56x * 0.025 = 1.4x the base chaos rate).
_WSE_FABRIC_WEIGHT = (WSE2_WAFER_MM2 / REFERENCE_DIE_MM2
                      * WSE_VISIBLE_FAULT_FRACTION)


@dataclass(frozen=True)
class ChaosFault:
    """One component of a platform's chaos profile.

    ``weight`` multiplies the caller's base chaos rate (capped at 1.0);
    ``phase`` pins the fault to the harness phase where that failure
    mode physically occurs.
    """

    fault: Callable[[], ReproError]
    weight: float
    phase: str = "any"


#: Platform → calibrated chaos profile. Rates are *relative* to the
#: caller's base rate; the rationale for each weight (wafer-area
#: scaling, DDR section staging, host-link streaming, NCCL stragglers)
#: is documented in ``docs/robustness.md``.
CHAOS_PROFILES: dict[str, tuple[ChaosFault, ...]] = {
    "cerebras": (
        ChaosFault(wse_fabric_fault, _WSE_FABRIC_WEIGHT, phase="run"),
        ChaosFault(wse_placement_flake, 0.5, phase="compile"),
    ),
    "sambanova": (
        ChaosFault(rdu_section_stall, 0.8, phase="run"),
        ChaosFault(compiler_flake, 0.3, phase="compile"),
    ),
    "graphcore": (
        ChaosFault(ipu_host_link_error, 0.6, phase="run"),
        ChaosFault(compiler_flake, 0.3, phase="compile"),
    ),
    "gpu": (
        ChaosFault(gpu_nccl_timeout, 0.5, phase="run"),
        ChaosFault(gpu_ecc_retry, 0.2, phase="run"),
        ChaosFault(compiler_flake, 0.2, phase="compile"),
    ),
}


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule.

    Attributes:
        fault: factory for the exception to raise; ``None`` means the
            call proceeds normally after any hang (a pure slowdown).
        match: substring of the workload key; ``""`` matches everything.
        phase: ``"compile"``, ``"run"``, or ``"any"``.
        attempts: attempt indices (0-based, per key+phase) the rule
            fires on; ``None`` fires on every attempt.
        hang_seconds: injected-clock seconds consumed before acting —
            how deadlines get exercised.
        probability: chance the rule fires on an eligible call (drawn
            from the plan's seeded RNG).
    """

    fault: Callable[[], ReproError] | None
    match: str = ""
    phase: str = "any"
    attempts: tuple[int, ...] | None = (0,)
    hang_seconds: float = 0.0
    probability: float = 1.0

    @classmethod
    def hang(cls, seconds: float, *, match: str = "", phase: str = "any",
             attempts: tuple[int, ...] | None = None) -> "FaultSpec":
        """A call that takes ``seconds`` longer than it should."""
        return cls(fault=None, match=match, phase=phase,
                   attempts=attempts, hang_seconds=seconds)

    def applies(self, key: str, phase: str, attempt: int) -> bool:
        """Whether this rule is eligible for the given call."""
        if self.match and self.match not in key:
            return False
        if self.phase != "any" and self.phase != phase:
            return False
        if self.attempts is not None and attempt not in self.attempts:
            return False
        return True


def _fault_name(factory: Callable[[], ReproError | None] | None,
                ) -> str | None:
    """A log-friendly name for a fault factory.

    Factories that declare ``fault_name`` (e.g.
    :class:`WorkerCrashFault`, which must not be *called* just to name
    it — it would kill the process) are named without a call; plain
    factories are invoked once, exactly as before.
    """
    if factory is None:
        return None
    name = getattr(factory, "fault_name", None)
    if name is not None:
        return str(name)
    return type(factory()).__name__


@dataclass
class FaultPlan:
    """An ordered set of injection rules plus a seeded RNG.

    Tracks per-(key, phase) attempt counts so scripted rules can target
    "first attempt only" and retries see fresh eligibility. The ``log``
    records every injection for assertions and post-mortems. Draws are
    serialized by a lock, so one plan can arm a backend shared by the
    worker threads of a parallel campaign; per-key scripted rules stay
    deterministic under any thread interleaving because attempt counts
    are tracked per (key, phase).
    """

    specs: list[FaultSpec] = field(default_factory=list)
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)
    _attempts: Counter = field(init=False, repr=False)
    _lock: threading.Lock = field(init=False, repr=False)
    log: list[dict[str, Any]] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._attempts = Counter()
        self._lock = threading.Lock()

    # A plan must cross process boundaries (each worker of a
    # process-dispatched campaign arms its own copy), and locks do not
    # pickle. The RNG and attempt counts travel; the lock is rebuilt.
    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    @classmethod
    def chaos(cls, rate: float, seed: int = 0,
              platform: str | None = None) -> "FaultPlan":
        """Random transient faults at ``rate`` per call.

        Without a platform this is the uniform legacy behaviour: one
        generic compiler flake at ``rate`` on every call. With a
        platform name, the calibrated :data:`CHAOS_PROFILES` entry is
        used instead — each failure mode fires in its own phase at
        ``weight * rate`` (capped at 1.0), so e.g. Cerebras chaos is
        dominated by run-phase fabric faults at the wafer-area-scaled
        rate while SN30 chaos is mostly DDR section stalls. Platform
        variants (``graphcore-pod``) share their family's profile;
        unknown platforms fall back to a uniform
        :data:`PLATFORM_TRANSIENTS` fault.
        """
        if platform is None:
            return cls(specs=[FaultSpec(fault=compiler_flake,
                                        attempts=None,
                                        probability=rate)], seed=seed)
        profile = CHAOS_PROFILES.get(platform.split("-")[0])
        if profile is None:
            factory = PLATFORM_TRANSIENTS.get(platform, compiler_flake)
            return cls(specs=[FaultSpec(fault=factory, attempts=None,
                                        probability=rate)], seed=seed)
        return cls(specs=[FaultSpec(fault=part.fault, phase=part.phase,
                                    attempts=None,
                                    probability=min(1.0,
                                                    part.weight * rate))
                          for part in profile], seed=seed)

    def add(self, spec: FaultSpec) -> "FaultPlan":
        """Append a rule (earlier rules win on a given call)."""
        self.specs.append(spec)
        return self

    def draw(self, key: str, phase: str) -> FaultSpec | None:
        """The rule firing on this call, if any (advances attempt count)."""
        with self._lock:
            attempt = self._attempts[(key, phase)]
            self._attempts[(key, phase)] += 1
            for spec in self.specs:
                if not spec.applies(key, phase, attempt):
                    continue
                if (spec.probability < 1.0
                        and self._rng.random() >= spec.probability):
                    continue
                self.log.append({"key": key, "phase": phase,
                                 "attempt": attempt,
                                 "hang": spec.hang_seconds,
                                 "fault": _fault_name(spec.fault)})
                return spec
            return None


class FaultInjectingBackend(AcceleratorBackend):
    """Wrap a backend, injecting the plan's faults at call boundaries.

    With an empty plan this is a transparent pass-through that still
    counts calls — the instrument resume tests use to prove journaled
    cells were skipped. Call counting and fault draws are lock-guarded
    (``thread_safe`` stays ``True`` as long as the wrapped backend's
    is), so one instrumented backend can serve a whole campaign pool.
    """

    def __init__(self, inner: AcceleratorBackend,
                 plan: FaultPlan | None = None,
                 clock: Clock | None = None) -> None:
        super().__init__(inner.system)
        self.inner = inner
        self.plan = plan if plan is not None else FaultPlan()
        self.clock = clock if clock is not None else SystemClock()
        self.transient_errors = inner.transient_errors
        self.thread_safe = inner.thread_safe
        # Injected faults make outcomes draw-dependent: the compile
        # cache must bypass this backend, not replay a lucky attempt.
        self.deterministic = False
        self.calls: Counter = Counter()
        self._calls_lock = threading.Lock()

    # Same contract as FaultPlan: picklable for process dispatch, with
    # the call-counting lock rebuilt on the far side.
    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        del state["_calls_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._calls_lock = threading.Lock()

    def compile(self, model: ModelConfig, train: TrainConfig,
                **options: Any) -> CompileReport:
        with self._calls_lock:
            self.calls["compile"] += 1
        self._maybe_inject(workload_key(model, train), "compile")
        return self.inner.compile(model, train, **options)

    def run(self, compiled: CompileReport) -> RunReport:
        with self._calls_lock:
            self.calls["run"] += 1
        self._maybe_inject(
            workload_key(compiled.model, compiled.train), "run")
        return self.inner.run(compiled)

    def is_transient(self, exc: BaseException) -> bool:
        return self.inner.is_transient(exc)

    def _maybe_inject(self, key: str, phase: str) -> None:
        spec = self.plan.draw(key, phase)
        if spec is None:
            return
        if spec.hang_seconds > 0:
            self.clock.sleep(spec.hang_seconds)
        if spec.fault is not None:
            fault = spec.fault()
            # A disarmed factory (e.g. a WorkerCrashFault whose
            # once_path marker already exists) returns None: no-op.
            if fault is not None:
                raise fault
