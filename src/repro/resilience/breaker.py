"""A per-backend circuit breaker for sweep campaigns.

When a platform starts failing for infrastructure reasons (fabric
faults, hangs, queue errors) every further cell burns its full retry
budget against a broken device. The breaker watches *infrastructure*
failures only — a compile "Fail" is a legitimate benchmark result and
never trips it — and after ``failure_threshold`` consecutive faults it
opens: calls fail fast with :class:`~repro.common.errors.CircuitOpenError`
until ``reset_timeout`` seconds pass on the injected clock, at which
point one probe call is allowed through (half-open). A successful probe
closes the breaker; a failed one re-opens it for another cooldown.

The breaker is shared by every worker thread driving its backend in a
parallel campaign, so all state transitions happen under an internal
lock, and it keeps the two health metrics long campaigns summarize:
``trip_count`` (closed→open transitions) and ``open_seconds`` (total
injected-clock time spent tripped, from each trip until the breaker
closed again).
"""

from __future__ import annotations

import threading
from typing import Any

from repro.common.errors import CircuitOpenError, ConfigurationError
from repro.resilience.clock import Clock, SystemClock

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Classic three-state (closed / open / half-open) breaker."""

    def __init__(self, name: str = "backend", *,
                 failure_threshold: int = 5,
                 reset_timeout: float = 300.0,
                 clock: Clock | None = None) -> None:
        if failure_threshold <= 0:
            raise ConfigurationError(
                f"failure_threshold must be > 0: {failure_threshold}")
        if reset_timeout < 0:
            raise ConfigurationError(
                f"reset_timeout must be >= 0: {reset_timeout}")
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.clock = clock if clock is not None else SystemClock()
        self._lock = threading.RLock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._tripped_since: float | None = None
        self._open_seconds = 0.0
        self.trip_count = 0

    @property
    def state(self) -> str:
        """Current state, advancing open → half-open when cooled down."""
        with self._lock:
            if self._state == OPEN and self._opened_at is not None:
                if self.clock.now() - self._opened_at >= self.reset_timeout:
                    self._state = HALF_OPEN
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive_failures

    @property
    def open_seconds(self) -> float:
        """Total clock time spent tripped (each trip until re-closed).

        A currently tripped breaker counts time up to ``clock.now()``,
        so the metric is meaningful mid-campaign too.
        """
        with self._lock:
            total = self._open_seconds
            if self._tripped_since is not None:
                total += self.clock.now() - self._tripped_since
            return total

    def metrics(self) -> dict[str, Any]:
        """Health snapshot for reports: trips, open time, current state."""
        with self._lock:
            return {
                "name": self.name,
                "state": self.state,
                "trip_count": self.trip_count,
                "open_seconds": self.open_seconds,
                "consecutive_failures": self._consecutive_failures,
            }

    def check(self) -> None:
        """Raise :class:`CircuitOpenError` unless a call may proceed."""
        with self._lock:
            if self.state == OPEN:
                remaining = self.reset_timeout
                if self._opened_at is not None:
                    remaining = max(
                        0.0, self.reset_timeout
                        - (self.clock.now() - self._opened_at))
                raise CircuitOpenError(
                    f"circuit for {self.name!r} is open after "
                    f"{self._consecutive_failures} consecutive faults; "
                    f"retry in {remaining:.0f}s",
                    backend=self.name, retry_after=remaining)

    def record_success(self) -> None:
        """A call succeeded (or failed for capability reasons): close."""
        with self._lock:
            if self._tripped_since is not None:
                self._open_seconds += self.clock.now() - self._tripped_since
                self._tripped_since = None
            self._state = CLOSED
            self._consecutive_failures = 0
            self._opened_at = None

    def record_failure(self) -> None:
        """An infrastructure fault occurred; open when over threshold.

        Failures recorded while the breaker is *already* open — calls
        that were in flight when it tripped — must not refresh
        ``_opened_at``: under sustained load that would restart the
        cooldown on every straggler and postpone half-open
        indefinitely. The cooldown clock starts only on an actual
        closed/half-open → open transition.
        """
        with self._lock:
            self._consecutive_failures += 1
            if (self._state == HALF_OPEN
                    or self._consecutive_failures >= self.failure_threshold):
                if self._state != OPEN:
                    self.trip_count += 1
                    self._opened_at = self.clock.now()
                if self._tripped_since is None:
                    self._tripped_since = self.clock.now()
                self._state = OPEN
