"""Injectable clocks: real time for production, fake time for tests.

Every time-dependent resilience component (backoff sleeps, per-cell
deadlines, circuit-breaker cooldowns) reads time through a
:class:`Clock` so that behaviour is deterministic and instant under
test: a :class:`FakeClock` advances only when asked, making a
"30-second backoff" or a "5-minute breaker cooldown" testable in
microseconds, while :class:`SystemClock` provides wall time in
production.
"""

from __future__ import annotations

import abc
import threading
import time

from repro.common.errors import SimulationError


class Clock(abc.ABC):
    """Monotonic time source plus sleep, in seconds."""

    @abc.abstractmethod
    def now(self) -> float:
        """Current monotonic time in seconds."""

    @abc.abstractmethod
    def sleep(self, seconds: float) -> None:
        """Block (or pretend to block) for ``seconds``."""

    @property
    def is_real(self) -> bool:
        """Whether sleeping consumes actual wall time."""
        return False


class SystemClock(Clock):
    """Wall time via :func:`time.monotonic` / :func:`time.sleep`."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    @property
    def is_real(self) -> bool:
        return True


class FakeClock(Clock):
    """A manually advanced clock for deterministic tests.

    ``sleep`` advances time instantly; ``advance`` moves it without a
    sleeper. Also records every sleep so tests can assert on the exact
    backoff schedule an executor produced.

    Updates happen under a lock so a fake clock shared by the worker
    threads of a parallel campaign never loses a sleep: ``now()`` always
    reflects the sum of all sleeps, whatever the interleaving.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._lock = threading.Lock()
        self._now = float(start)
        self.sleeps: list[float] = []

    def now(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise SimulationError(f"cannot sleep a negative time: {seconds}")
        with self._lock:
            self.sleeps.append(float(seconds))
            self._now += float(seconds)

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep."""
        if seconds < 0:
            raise SimulationError(f"cannot advance backwards: {seconds}")
        with self._lock:
            self._now += float(seconds)
