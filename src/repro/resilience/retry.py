"""Retry policy: exponential backoff with deterministic, seeded jitter.

Long accelerator sweeps hit transient faults — compiler flakes, fabric
glitches, queue hiccups — that succeed on a second attempt. The policy
here is the standard full-jitter exponential backoff, but the jitter
comes from a seeded :class:`random.Random` so a replayed sweep produces
an identical backoff schedule (the same determinism contract the
discrete-event simulator keeps).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry and how long to wait between attempts.

    Attributes:
        max_retries: retries *after* the first attempt (0 = no retry).
        base_backoff: seconds before the first retry.
        multiplier: backoff growth factor per retry.
        max_backoff: cap on any single backoff interval.
        jitter: fraction of the interval drawn uniformly at random and
            added on top (0 disables jitter).
        seed: seed for the jitter stream.
        retry_deadline_errors: whether a deadline cut-off is worth a
            fresh attempt (a hang may be transient).
    """

    max_retries: int = 2
    base_backoff: float = 1.0
    multiplier: float = 2.0
    max_backoff: float = 60.0
    jitter: float = 0.1
    seed: int = 0
    retry_deadline_errors: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0: {self.max_retries}")
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ConfigurationError("backoff intervals must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"backoff multiplier must be >= 1: {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1]: {self.jitter}")

    @property
    def max_attempts(self) -> int:
        """Total attempts including the first."""
        return self.max_retries + 1

    def backoff_schedule(self) -> "BackoffSchedule":
        """A fresh deterministic jitter stream for one cell."""
        return BackoffSchedule(self)


@dataclass
class BackoffSchedule:
    """Stateful per-cell backoff iterator (owns its jitter stream)."""

    policy: RetryPolicy
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.policy.seed)

    def delay(self, retry_index: int) -> float:
        """Backoff before retry ``retry_index`` (0-based)."""
        if retry_index < 0:
            raise ConfigurationError(
                f"retry index must be >= 0: {retry_index}")
        base = min(self.policy.max_backoff,
                   self.policy.base_backoff
                   * self.policy.multiplier ** retry_index)
        if self.policy.jitter > 0:
            base += self._rng.uniform(0.0, self.policy.jitter * base)
        return min(base, self.policy.max_backoff * (1.0 + self.policy.jitter))
