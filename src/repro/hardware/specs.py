"""Chip and system specification dataclasses plus vendor presets.

All preset numbers come from the paper's Sec. II hardware descriptions and
the cited vendor datasheets. Two deliberate calibration notes:

* ``WSE2.peak_flops`` is set to the *achievable-accounting* peak implied by
  the paper's Sec. V-C2 statement that 327-338 TFLOP/s corresponds to
  ~20% compute efficiency (i.e. ~1.7 PFLOP/s), not the marketing peak.
* ``BOW_IPU`` uses the Bow generation's real 624 KB/tile In-Processor
  Memory (~900 MB/IPU). The paper's prose says "64KB" per tile, which is
  the per-thread figure of the older Colossus description; 64 KB/tile
  cannot reproduce the paper's own result that a 10-layer hidden-768
  model exhausts IPU memory (Fig. 9d), while 624 KB/tile does.

Roofline classification note: evaluated literally, the paper's Eq. 5
yields arithmetic intensities in the hundreds of FLOPs/byte for these
workloads (its numerator and activation term both scale with batch, so
AI saturates near 6P/activation-bytes-per-token). With the bandwidths
below, the Fig. 10 *classification* still reproduces exactly — WSE-2
workloads land right of its (tiny) ridge and are compute-bound, while
RDU and IPU workloads land left of their DDR ridges and are
memory-bound — even though the absolute AI values differ from the
paper's reported 8.9-42 range (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.common.units import GB, KB, TB


@dataclass(frozen=True)
class MemoryLevel:
    """One tier of a chip's memory hierarchy.

    Attributes:
        name: tier label (e.g. ``on-chip SRAM``, ``DDR``).
        capacity_bytes: total capacity.
        bandwidth: aggregate bandwidth in bytes/second.
    """

    name: str
    capacity_bytes: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.bandwidth <= 0:
            raise ConfigurationError(
                f"memory level {self.name!r}: capacity and bandwidth must "
                "be positive"
            )


@dataclass(frozen=True)
class ChipSpec:
    """A single accelerator chip.

    Attributes:
        name / vendor: identification.
        compute_units: number of allocatable compute units.
        compute_unit_name: what the vendor calls them (PE, PCU, tile, SM).
        memory_units: number of allocatable memory units (equals
            ``compute_units`` for architectures with fused compute+memory
            units such as WSE-2 PEs and IPU tiles; differs on the RDU
            where PCUs and PMUs are separate pools).
        memory_unit_name: vendor name for memory units.
        peak_flops: peak half-precision FLOP/s used for efficiency math.
        shared_memory: the on-chip tier (GPU "shared memory" analogue).
        global_memory: the off-chip tier, or the on-chip tier again for
            WSE-2 which serves both roles (paper Sec. V-C2).
        fabric_bandwidth: on-chip interconnect bytes/s.
    """

    name: str
    vendor: str
    compute_units: int
    compute_unit_name: str
    memory_units: int
    memory_unit_name: str
    peak_flops: float
    shared_memory: MemoryLevel
    global_memory: MemoryLevel
    fabric_bandwidth: float

    def __post_init__(self) -> None:
        if self.compute_units <= 0 or self.memory_units <= 0:
            raise ConfigurationError(
                f"chip {self.name!r}: unit counts must be positive")
        if self.peak_flops <= 0 or self.fabric_bandwidth <= 0:
            raise ConfigurationError(
                f"chip {self.name!r}: rates must be positive")

    @property
    def flops_per_compute_unit(self) -> float:
        """Peak FLOP/s contributed by one compute unit."""
        return self.peak_flops / self.compute_units

    @property
    def shared_memory_per_unit(self) -> float:
        """On-chip bytes local to one memory unit."""
        return self.shared_memory.capacity_bytes / self.memory_units

    @property
    def ridge_intensity(self) -> float:
        """Roofline ridge point vs global memory, FLOPs/byte."""
        return self.peak_flops / self.global_memory.bandwidth


@dataclass(frozen=True)
class SystemSpec:
    """A deployable system built from one chip type.

    Attributes:
        name: system label.
        chip: the chip spec.
        chips_per_node: chips in one chassis/machine.
        max_nodes: nodes available in the testbed configuration.
        intra_node_bandwidth: chip-to-chip bytes/s within a node.
        inter_node_bandwidth: node-to-node bytes/s.
        host_link_bandwidth: host-to-device streaming bytes/s per node
            (PCIe or appliance link) — the input-pipeline ceiling for
            pipeline-parallel IPU runs (Sec. VI-A3c).
    """

    name: str
    chip: ChipSpec
    chips_per_node: int = 1
    max_nodes: int = 1
    intra_node_bandwidth: float = 100.0 * GB
    inter_node_bandwidth: float = 25.0 * GB
    host_link_bandwidth: float = 32.0 * GB
    extra: dict[str, float] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.chips_per_node <= 0 or self.max_nodes <= 0:
            raise ConfigurationError(
                f"system {self.name!r}: chip/node counts must be positive")

    @property
    def total_chips(self) -> int:
        """Maximum chips across the whole system."""
        return self.chips_per_node * self.max_nodes

    def nodes_for_chips(self, n_chips: int) -> int:
        """Nodes needed to host ``n_chips`` chips."""
        if n_chips <= 0:
            raise ConfigurationError("n_chips must be positive")
        if n_chips > self.total_chips:
            raise ConfigurationError(
                f"{self.name} has only {self.total_chips} chips; "
                f"{n_chips} requested"
            )
        return -(-n_chips // self.chips_per_node)


# ----------------------------------------------------------------------
# Cerebras CS-2 / WSE-2 (paper Sec. II-B1)
# ----------------------------------------------------------------------
_WSE2_ONCHIP = MemoryLevel(
    name="on-chip SRAM",
    capacity_bytes=40.0 * GB,          # 40 GB across 850k PEs
    bandwidth=20.0 * 1e15,             # 20 PB/s aggregate
)

WSE2 = ChipSpec(
    name="WSE-2",
    vendor="Cerebras",
    compute_units=850_000,
    compute_unit_name="PE",
    memory_units=850_000,
    memory_unit_name="PE",
    peak_flops=1.7e15,                 # ~20% efficiency at 338 TFLOP/s
    shared_memory=_WSE2_ONCHIP,
    global_memory=_WSE2_ONCHIP,        # unified on-chip global tier
    fabric_bandwidth=220.0 * 1e15,     # Swarm fabric, 220 PB/s
)

CS2_SYSTEM = SystemSpec(
    name="CS-2",
    chip=WSE2,
    chips_per_node=1,
    max_nodes=1,
    intra_node_bandwidth=WSE2.fabric_bandwidth,
    inter_node_bandwidth=1.2 * TB,     # SwarmX appliance links
    host_link_bandwidth=150.0 * GB,    # MemoryX weight-streaming feed
)

# ----------------------------------------------------------------------
# Cerebras CS-3 / WSE-3 (the paper's Sec. II-B1 notes the CS-3 "adds
# external memory modules to the WSE-2 architecture"; chip-level details
# are not public, so the WSE-3 preset scales the WSE-2 numbers by the
# published generation-over-generation ratios and attaches a MemoryX
# external tier through a faster appliance link).
# ----------------------------------------------------------------------
_WSE3_ONCHIP = MemoryLevel(
    name="on-chip SRAM",
    capacity_bytes=44.0 * GB,
    bandwidth=21.0 * 1e15,
)

WSE3 = ChipSpec(
    name="WSE-3",
    vendor="Cerebras",
    compute_units=900_000,
    compute_unit_name="PE",
    memory_units=900_000,
    memory_unit_name="PE",
    peak_flops=2.0e15,
    shared_memory=_WSE3_ONCHIP,
    global_memory=_WSE3_ONCHIP,
    fabric_bandwidth=230.0 * 1e15,
)

CS3_SYSTEM = SystemSpec(
    name="CS-3",
    chip=WSE3,
    chips_per_node=1,
    max_nodes=1,
    intra_node_bandwidth=WSE3.fabric_bandwidth,
    inter_node_bandwidth=1.2 * TB,
    host_link_bandwidth=300.0 * GB,    # upgraded MemoryX feed
)

# ----------------------------------------------------------------------
# SambaNova SN30 RDU (paper Sec. II-B2)
# ----------------------------------------------------------------------
SN30_RDU = ChipSpec(
    name="SN30-RDU",
    vendor="SambaNova",
    compute_units=640,                 # 4 tiles x 160 PCUs
    compute_unit_name="PCU",
    memory_units=640,                  # 4 tiles x 160 PMUs
    memory_unit_name="PMU",
    peak_flops=278.0e12,               # 18.2% efficiency at 50.6 TFLOP/s
    shared_memory=MemoryLevel(
        name="PMU scratchpads",
        capacity_bytes=640 * 512 * KB,  # ~320 MB of PMU capacity
        bandwidth=150.0 * TB,
    ),
    global_memory=MemoryLevel(
        name="DDR",
        capacity_bytes=512.0 * GB,
        bandwidth=0.2 * TB,            # the paper's "only 0.2 TB/s"
    ),
    fabric_bandwidth=3.0 * TB,
)

SN30_SYSTEM = SystemSpec(
    name="SN30",
    chip=SN30_RDU,
    chips_per_node=2,                  # two RDUs per DataScale SN30
    max_nodes=4,                       # sn30-r[1-4] racks
    intra_node_bandwidth=400.0 * GB,   # RDU-Connect inside a machine
    # Effective cross-machine bandwidth: the shared rack fabric delivers
    # only a few GB/s to a tensor-parallel all-reduce, which is what makes
    # cross-machine TP the dominant bottleneck in the paper (Sec. VI-A3b).
    inter_node_bandwidth=3.0 * GB,
    host_link_bandwidth=32.0 * GB,     # PCIe Gen4 x16
)

# ----------------------------------------------------------------------
# Graphcore Bow-2000 IPU (paper Sec. II-B3)
# ----------------------------------------------------------------------
BOW_IPU = ChipSpec(
    name="Bow-IPU",
    vendor="Graphcore",
    compute_units=1472,                # tiles
    compute_unit_name="tile",
    memory_units=1472,
    memory_unit_name="tile",
    peak_flops=350.0e12,               # Bow IPU FP16 peak
    shared_memory=MemoryLevel(
        name="In-Processor Memory",
        capacity_bytes=1472 * 624 * KB,  # ~900 MB/IPU (see module note)
        bandwidth=65.0 * TB,
    ),
    global_memory=MemoryLevel(
        name="Streaming DDR",
        capacity_bytes=256.0 * GB / 4,  # 256 GB shared by 4 IPUs
        bandwidth=0.35 * TB,            # Gateway DDR streaming bandwidth
    ),
    fabric_bandwidth=8.0 * TB,          # IPU-Exchange
)

BOW2000_SYSTEM = SystemSpec(
    name="Bow-2000",
    chip=BOW_IPU,
    chips_per_node=4,                  # 4 IPUs behind one Gateway
    max_nodes=4,                       # up to 16 IPUs in our experiments
    intra_node_bandwidth=320.0 * GB,   # IPU-Link within a chassis
    inter_node_bandwidth=100.0 * GB,   # Gateway links
    host_link_bandwidth=64.0 * GB,     # PCIe host streaming per chassis
)

BOW_POD = SystemSpec(
    name="Bow-Pod64",
    chip=BOW_IPU,
    chips_per_node=4,
    max_nodes=16,
    intra_node_bandwidth=320.0 * GB,
    inter_node_bandwidth=100.0 * GB,
    host_link_bandwidth=64.0 * GB,
)

# ----------------------------------------------------------------------
# GPU reference (A100-class, Table III right-hand columns)
# ----------------------------------------------------------------------
A100_GPU = ChipSpec(
    name="A100",
    vendor="NVIDIA",
    compute_units=108,                 # SMs
    compute_unit_name="SM",
    memory_units=108,
    memory_unit_name="SM",
    peak_flops=312.0e12,               # BF16 tensor-core peak
    shared_memory=MemoryLevel(
        name="SRAM",
        capacity_bytes=108 * 192 * KB,
        bandwidth=19.0 * TB,
    ),
    global_memory=MemoryLevel(
        name="HBM2e",
        capacity_bytes=80.0 * GB,
        bandwidth=2.0 * TB,
    ),
    fabric_bandwidth=600.0 * GB,       # NVLink
)

GPU_CLUSTER = SystemSpec(
    name="A100-cluster",
    chip=A100_GPU,
    chips_per_node=8,
    max_nodes=128,
    intra_node_bandwidth=600.0 * GB,   # NVLink/NVSwitch
    inter_node_bandwidth=25.0 * GB,    # 200 Gb/s InfiniBand
    host_link_bandwidth=64.0 * GB,
)
