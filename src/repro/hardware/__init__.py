"""Hardware specification presets.

Dataclasses describing chips and multi-chip systems, populated with the
vendor numbers the paper tabulates in Sec. II (WSE-2, SN30 RDU, Bow-2000
IPU) plus an A100 preset for the GPU reference columns of Table III.
"""

from repro.hardware.specs import (
    A100_GPU,
    BOW_IPU,
    BOW_POD,
    BOW2000_SYSTEM,
    CS2_SYSTEM,
    CS3_SYSTEM,
    ChipSpec,
    GPU_CLUSTER,
    MemoryLevel,
    SN30_RDU,
    SN30_SYSTEM,
    SystemSpec,
    WSE2,
    WSE3,
)

__all__ = [
    "MemoryLevel",
    "ChipSpec",
    "SystemSpec",
    "WSE2",
    "WSE3",
    "CS2_SYSTEM",
    "CS3_SYSTEM",
    "SN30_RDU",
    "SN30_SYSTEM",
    "BOW_IPU",
    "BOW2000_SYSTEM",
    "BOW_POD",
    "A100_GPU",
    "GPU_CLUSTER",
]
