"""DABench-LLM — standardized benchmarking of dataflow AI accelerators.

A simulation-backed reproduction of *DABench-LLM: Standardized and
In-Depth Benchmarking of Post-Moore Dataflow AI Accelerators for LLMs*
(IISWC 2025). The package contains:

* the DABench-LLM framework itself (:mod:`repro.core`): Tier-1 intra-chip
  profiling (resource allocation, load imbalance, utilization efficiency,
  rooflines) and Tier-2 inter-chip scalability / deployment optimization;
* behavioural simulators of the three dataflow platforms the paper
  evaluates — Cerebras WSE-2 (:mod:`repro.cerebras`), SambaNova SN30 RDU
  (:mod:`repro.sambanova`), Graphcore Bow IPU (:mod:`repro.graphcore`) —
  plus a Megatron-style GPU reference (:mod:`repro.gpu`);
* the substrates they share: LLM cost models and graph builders
  (:mod:`repro.models`), a computation-graph IR (:mod:`repro.graph`),
  hardware spec presets (:mod:`repro.hardware`), and a discrete-event
  simulation engine (:mod:`repro.sim`);
* a resilience layer (:mod:`repro.resilience`) that keeps long sweep
  campaigns alive: seeded fault injection, retry with backoff, per-cell
  deadlines, circuit breaking, and JSONL checkpoint/resume — all
  configured through one :class:`~repro.resilience.ExecutionPolicy`;
* a parallel campaign engine (:mod:`repro.campaign`) fanning sweep
  cells across worker threads and multiple backends concurrently, with
  sharded journals and per-backend circuit breakers.

Quickstart::

    from repro import CerebrasBackend, Tier1Profiler, gpt2_model, TrainConfig

    profiler = Tier1Profiler(CerebrasBackend())
    result = profiler.profile(gpt2_model("small"), TrainConfig(batch_size=64))
    print(result.compute_allocation, result.load_imbalance)
"""

from repro.cache import CompileCache, cell_fingerprint
from repro.campaign import (
    BackendStats,
    Campaign,
    CampaignLane,
    CampaignResult,
)
from repro.cerebras import CerebrasBackend
from repro.common.errors import (
    CompilationError,
    ConfigurationError,
    OutOfMemoryError,
    ReproError,
)
from repro.core import (
    AcceleratorBackend,
    BatchSweepResult,
    BenchmarkReport,
    DeploymentOptimizer,
    PrecisionComparison,
    RooflineModel,
    ScalabilityAnalyzer,
    Tier1Profiler,
    Tier1Result,
    allocation_ratio,
    arithmetic_intensity,
    load_imbalance,
    weighted_load_imbalance,
)
from repro.gpu import GPUBackend
from repro.graphcore import GraphcoreBackend
from repro.hardware import (
    BOW2000_SYSTEM,
    BOW_POD,
    CS2_SYSTEM,
    GPU_CLUSTER,
    SN30_SYSTEM,
)
from repro.models import (
    ModelConfig,
    Precision,
    PrecisionPolicy,
    TrainConfig,
    TransformerCostModel,
    gpt2_model,
    llama2_model,
)
from repro.resilience import (
    CircuitBreaker,
    ExecutionPolicy,
    FaultInjectingBackend,
    FaultPlan,
    ResilientExecutor,
    RetryPolicy,
    ShardedJournal,
    SweepJournal,
)
from repro.sambanova import SambaNovaBackend
from repro.workloads import decoder_block_probe

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "CompilationError",
    "OutOfMemoryError",
    # framework
    "AcceleratorBackend",
    "Tier1Profiler",
    "Tier1Result",
    "ScalabilityAnalyzer",
    "DeploymentOptimizer",
    "BatchSweepResult",
    "PrecisionComparison",
    "BenchmarkReport",
    "RooflineModel",
    "allocation_ratio",
    "load_imbalance",
    "weighted_load_imbalance",
    "arithmetic_intensity",
    # backends
    "CerebrasBackend",
    "SambaNovaBackend",
    "GraphcoreBackend",
    "GPUBackend",
    # systems
    "CS2_SYSTEM",
    "SN30_SYSTEM",
    "BOW2000_SYSTEM",
    "BOW_POD",
    "GPU_CLUSTER",
    # models
    "ModelConfig",
    "TrainConfig",
    "Precision",
    "PrecisionPolicy",
    "TransformerCostModel",
    "gpt2_model",
    "llama2_model",
    "decoder_block_probe",
    # resilience
    "ExecutionPolicy",
    "ResilientExecutor",
    "RetryPolicy",
    "CircuitBreaker",
    "FaultPlan",
    "FaultInjectingBackend",
    "SweepJournal",
    "ShardedJournal",
    # campaigns
    "Campaign",
    "CampaignLane",
    "CampaignResult",
    "BackendStats",
    # caching
    "CompileCache",
    "cell_fingerprint",
]
