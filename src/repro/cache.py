"""Content-addressed compile/result cache for warm campaign re-runs.

DABench-LLM's core cost observation is that on dataflow accelerators
*compilation* — placement, section mapping, tile allocation — dominates
end-to-end benchmarking time, and grids get re-swept constantly as
configurations iterate. This module makes a re-run of an unchanged grid
nearly free: every deterministic cell is keyed by a canonical
*fingerprint* of everything its result depends on, and finished compile
and run reports are stored under that fingerprint in a shared cache
directory.

Fingerprints use the same ``sort_keys`` JSON canonicalization as the
journal: the backend's platform class and hardware
:class:`~repro.hardware.specs.SystemSpec`, the full
:class:`~repro.models.config.ModelConfig` and
:class:`~repro.models.config.TrainConfig` (precision policy included),
the cell's backend options, whether the cell measures, and the cache
schema version are serialized canonically and hashed with SHA-256 (the
model and training configurations enter as their memoized content
digests — serialized once per config object, not once per cell).
Anything that could change the cell's result changes the key; a stale
entry can only ever *miss*, never lie.

Below the whole-cell entries, :class:`StageMemo` memoizes *stage*
artifacts of the staged compile pipelines
(:mod:`repro.core.stages`): an in-process, thread-safe map shared
across campaign lanes, spilling to ``<directory>/stage/`` at stage
granularity so process-dispatch workers share upstream compile work
too. See ``docs/performance.md`` for the cost model.

Concurrency follows the :class:`~repro.resilience.ShardedJournal`
discipline: an entry is written to a private temp file and published
with an atomic exclusive link (the filesystem arbitrates concurrent
writers — the loser of an ``O_EXCL``-style race simply discards its
copy), so thread pools and process pools can share one cache directory
without torn entries. Worker processes open the cache read-through;
the campaign parent owns eviction (:meth:`CompileCache.prune`).

Safety invariants, mirroring the run ledger's corruption contract:

* only clean first-attempt successes are stored — faulted, retried,
  gated, or quarantined cells never enter the cache;
* nondeterministic backends (``deterministic = False``, e.g.
  fault-injecting wrappers) *bypass* the cache entirely;
* a corrupt entry or fingerprint mismatch degrades to a miss with a
  ``RuntimeWarning`` — the bad entry is dropped so the re-executed
  cell can rewrite it — and never takes a campaign down.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import threading
import uuid
import warnings
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.resilience.executor import CellOutcome
from repro.resilience.journal import STATUS_OK

if TYPE_CHECKING:
    from repro.core.backend import AcceleratorBackend
    from repro.core.stages import CompileStage
    from repro.models.config import ModelConfig, TrainConfig
    from repro.observe import TraceRecorder

__all__ = [
    "CACHE_VERSION",
    "CACHE_HIT",
    "CACHE_MISS",
    "CACHE_BYPASS",
    "CachedCell",
    "CompileCache",
    "StageMemo",
    "canonical_fingerprint",
    "cell_fingerprint",
    "cached_outcome",
    "store_outcome",
]

#: Cache schema version; part of every fingerprint, so a schema change
#: invalidates the whole cache rather than misreading old entries.
#: v2: model/train configs enter the fingerprint as content digests
#: (see :meth:`~repro.models.config.ModelConfig.content_digest`) and
#: stage artifacts spill under ``stage/``.
CACHE_VERSION = 2

#: Trace-event statuses for the ``"cache"`` event name.
CACHE_HIT = "hit"
CACHE_MISS = "miss"
CACHE_BYPASS = "bypass"


def _warn(path: Path, why: str) -> None:
    warnings.warn(
        f"compile cache {path}: {why} — treating as a miss (the entry "
        "will be rewritten when the cell re-executes)",
        RuntimeWarning,
        stacklevel=4,
    )


def canonical_fingerprint(payload: dict[str, Any]) -> str:
    """SHA-256 of the canonical (``sort_keys``) JSON form of ``payload``.

    The same canonicalization the journal uses for its entries: key
    order cannot perturb the digest. Values outside the JSON model are
    serialized through ``str`` — stable for enums and dataclass reprs;
    an unstable ``repr`` merely costs a cache miss, never a wrong hit.
    """
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def cell_fingerprint(backend: "AcceleratorBackend", model: "ModelConfig",
                     train: "TrainConfig",
                     options: dict[str, Any] | None = None, *,
                     measure: bool = True) -> str | None:
    """The content-addressed key of one cell, or ``None`` to bypass.

    Covers everything a deterministic backend's reports depend on: the
    platform adapter class, the hardware :class:`SystemSpec`, any extra
    backend state (:meth:`AcceleratorBackend.fingerprint_extra`), the
    model and training configurations, the cell options, and whether
    the cell measures. Backends declaring ``deterministic = False``
    (fault injectors, live-hardware adapters) return ``None`` — the
    cache must never replay a result that was not a pure function of
    its inputs.
    """
    if not getattr(backend, "deterministic", True):
        return None
    cls = type(backend)
    return canonical_fingerprint({
        "v": CACHE_VERSION,
        "platform": f"{cls.__module__}.{cls.__qualname__}",
        "backend": backend.name,
        "system": asdict(backend.system),
        "extra": backend.fingerprint_extra(),
        "model": model.content_digest(),
        "train": train.content_digest(),
        "options": dict(options) if options else {},
        "measure": bool(measure),
    })


@dataclass(frozen=True)
class CachedCell:
    """One cache entry read back: the artifacts a clean cell produced."""

    fingerprint: str
    compiled: Any
    run: Any = None


class CompileCache:
    """A content-addressed, cross-process-safe cell result cache.

    Entries live at ``<directory>/<fp[:2]>/<fp>.pkl`` (two-level
    fan-out keeps directory listings sane on big grids). The instance
    keeps in-process hit/miss/bypass/store counters (:meth:`stats`);
    cross-process totals travel as ``"cache"`` trace events instead,
    which is how the Observability table aggregates them per lane.

    ``max_entries`` arms :meth:`prune`: the campaign parent calls it
    once per run to evict the oldest entries beyond the cap. Workers
    never evict — they only read through and publish new entries.
    """

    SUFFIX = ".pkl"

    def __init__(self, directory: str | os.PathLike[str],
                 max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 0:
            raise ValueError(
                f"max_entries must be >= 0, got {max_entries}")
        self.directory = Path(directory)
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._bypasses = 0
        self._stores = 0

    # -- bookkeeping ---------------------------------------------------
    def stats(self) -> dict[str, int]:
        """In-process counters (worker processes count their own)."""
        with self._lock:
            return {"hits": self._hits, "misses": self._misses,
                    "bypasses": self._bypasses, "stores": self._stores}

    def _count(self, name: str) -> None:
        with self._lock:
            setattr(self, f"_{name}", getattr(self, f"_{name}") + 1)

    def note_bypass(self) -> None:
        """Record a cell that skipped the cache (no fingerprint)."""
        self._count("bypasses")

    def entry_path(self, fingerprint: str) -> Path:
        """Where the entry for ``fingerprint`` lives (existing or not)."""
        return (self.directory / fingerprint[:2]
                / f"{fingerprint}{self.SUFFIX}")

    def entries(self) -> list[Path]:
        """Every entry file currently in the cache, sorted by name."""
        if not self.directory.exists():
            return []
        return sorted(self.directory.glob(f"*/*{self.SUFFIX}"))

    def __len__(self) -> int:
        return len(self.entries())

    # -- read-through --------------------------------------------------
    def lookup(self, fingerprint: str) -> CachedCell | None:
        """The entry under ``fingerprint``, or ``None`` on a miss.

        A torn, corrupt, or foreign entry (schema or fingerprint
        mismatch) warns, is unlinked so the re-executed cell can
        rewrite it, and reads as a miss — never an exception.
        """
        path = self.entry_path(fingerprint)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self._count("misses")
            return None
        except OSError as exc:
            _warn(path, f"unreadable ({exc})")
            self._count("misses")
            return None
        try:
            payload = pickle.loads(blob)
        except Exception as exc:  # noqa: BLE001 — any corrupt pickle
            _warn(path, f"corrupt entry ({type(exc).__name__}: {exc})")
            self._drop(path)
            self._count("misses")
            return None
        if (not isinstance(payload, dict)
                or payload.get("v") != CACHE_VERSION
                or payload.get("fingerprint") != fingerprint
                or "compiled" not in payload):
            _warn(path, "entry does not match its fingerprint/schema")
            self._drop(path)
            self._count("misses")
            return None
        self._count("hits")
        return CachedCell(fingerprint=fingerprint,
                          compiled=payload["compiled"],
                          run=payload.get("run"))

    @staticmethod
    def _drop(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    # -- publish -------------------------------------------------------
    def store(self, fingerprint: str, compiled: Any,
              run: Any = None) -> bool:
        """Publish one entry atomically; ``False`` if it did not land.

        The entry is pickled to a private temp file, fsynced, then
        linked into place — link creation is exclusive (the journal's
        ``O_EXCL`` claim discipline), so of any number of concurrent
        writers exactly one publishes and the rest quietly discard
        their identical copies. IO or pickling trouble warns and
        returns ``False``; caching is an optimization, never a crash.
        """
        path = self.entry_path(fingerprint)
        payload = {"v": CACHE_VERSION, "fingerprint": fingerprint,
                   "compiled": compiled, "run": run}
        if self._publish(path, fingerprint, payload):
            self._count("stores")
            return True
        return False

    @staticmethod
    def _publish(path: Path, fingerprint: str,
                 payload: dict[str, Any]) -> bool:
        """Pickle + fsync + exclusive-link one payload into ``path``."""
        try:
            blob = pickle.dumps(payload)
        except Exception as exc:  # noqa: BLE001 — unpicklable artifact
            _warn(path, f"artifacts do not pickle ({exc}); not cached")
            return False
        tmp = path.with_name(
            f".{fingerprint[:16]}-{os.getpid()}-{uuid.uuid4().hex[:8]}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            try:
                os.link(tmp, path)
            except FileExistsError:
                return False  # a concurrent writer won the race
            return True
        except OSError as exc:
            _warn(path, f"could not publish entry ({exc})")
            return False
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- stage-artifact spill (the StageMemo's shared tier) ------------
    STAGE_DIR = "stage"

    def stage_path(self, stage_name: str, fingerprint: str) -> Path:
        """Where a stage artifact spills: ``stage/<name>/<fp[:2]>/…``.

        Three levels below the cache root, so the cell-entry ``*/*``
        glob (:meth:`entries`, :meth:`prune`, ``len()``) never sees
        stage artifacts — eviction policy for the two tiers stays
        independent.
        """
        return (self.directory / self.STAGE_DIR / stage_name
                / fingerprint[:2] / f"{fingerprint}{self.SUFFIX}")

    def stage_entries(self) -> dict[str, list[Path]]:
        """Spilled stage artifacts, grouped by stage name."""
        root = self.directory / self.STAGE_DIR
        if not root.exists():
            return {}
        grouped: dict[str, list[Path]] = {}
        for path in sorted(root.glob(f"*/*/*{self.SUFFIX}")):
            grouped.setdefault(path.parent.parent.name, []).append(path)
        return grouped

    def stage_lookup(self, stage_name: str,
                     fingerprint: str) -> tuple[bool, Any]:
        """Read one spilled stage artifact: ``(found, artifact)``.

        Same corruption contract as :meth:`lookup`: a torn, corrupt,
        or foreign file warns, is dropped, and reads as a miss.
        """
        path = self.stage_path(stage_name, fingerprint)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return False, None
        except OSError as exc:
            _warn(path, f"unreadable ({exc})")
            return False, None
        try:
            payload = pickle.loads(blob)
        except Exception as exc:  # noqa: BLE001 — any corrupt pickle
            _warn(path, f"corrupt stage artifact "
                        f"({type(exc).__name__}: {exc})")
            self._drop(path)
            return False, None
        if (not isinstance(payload, dict)
                or payload.get("v") != CACHE_VERSION
                or payload.get("fingerprint") != fingerprint
                or payload.get("stage") != stage_name
                or "artifact" not in payload):
            _warn(path, "stage artifact does not match its "
                        "fingerprint/schema")
            self._drop(path)
            return False, None
        return True, payload["artifact"]

    def stage_store(self, stage_name: str, fingerprint: str,
                    artifact: Any) -> bool:
        """Publish one stage artifact atomically (same race discipline
        as :meth:`store`); ``False`` if it did not land."""
        payload = {"v": CACHE_VERSION, "fingerprint": fingerprint,
                   "stage": stage_name, "artifact": artifact}
        return self._publish(self.stage_path(stage_name, fingerprint),
                             fingerprint, payload)

    # -- eviction (parent-side) ----------------------------------------
    def prune(self, max_entries: int | None = None) -> int:
        """Evict the oldest entries beyond the cap; returns evictions.

        ``max_entries`` defaults to the constructor's; ``None`` means
        unbounded (no-op). Only the campaign parent calls this —
        workers read through and publish, they never evict.
        """
        cap = max_entries if max_entries is not None else self.max_entries
        if cap is None:
            return 0
        entries = self.entries()
        if len(entries) <= cap:
            return 0

        def age(path: Path) -> tuple[float, str]:
            try:
                return (path.stat().st_mtime, path.name)
            except OSError:
                return (0.0, path.name)

        removed = 0
        victims = sorted(entries, key=age)[:len(entries) - cap]
        for path in victims:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


class StageMemo:
    """Memoizes compile-stage artifacts across cells, lanes, and runs.

    Two tiers. The in-process map is the hot one: thread-safe, shared
    across campaign lanes, it hands the *same* artifact object to every
    cell whose stage fingerprint matches (stage artifacts are immutable
    by contract — see :mod:`repro.core.stages`). The optional ``spill``
    tier writes artifacts through to a :class:`CompileCache` directory
    at stage granularity, so process-dispatch workers (each with its
    own memo) and later runs share upstream compile work too.

    Per-fingerprint locks serialize computation: of N threads racing
    the same cold stage, one computes while the rest block and then
    replay — the "thundering herd" on a shared upstream stage does the
    work once. Different fingerprints never contend.

    Counters are per stage name (:meth:`stats`), and every consult
    emits one ``stage_cache`` trace event (``phase`` = stage name,
    status ``hit`` / ``miss``), which is how the Observability table
    counts stage traffic across threads *and* processes. The events
    are advisory and excluded from the canonical merged trace — a
    memoized run's merged trace stays byte-identical to a cold one.
    """

    def __init__(self, spill: CompileCache | None = None) -> None:
        self.spill = spill
        self._lock = threading.Lock()
        self._memory: dict[str, Any] = {}
        self._stage_locks: dict[str, threading.Lock] = {}
        self._hits: dict[str, int] = {}
        self._misses: dict[str, int] = {}

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-stage-name consult counters: ``{"hits": {...}, ...}``."""
        with self._lock:
            return {"hits": dict(self._hits),
                    "misses": dict(self._misses)}

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def _note(self, stage: "CompileStage", hit: bool, key: str,
              tracer: "TraceRecorder | None") -> None:
        with self._lock:
            counts = self._hits if hit else self._misses
            counts[stage.name] = counts.get(stage.name, 0) + 1
        if tracer is not None:
            tracer.emit("stage_cache", key=key, phase=stage.name,
                        status=CACHE_HIT if hit else CACHE_MISS)

    def note_hit(self, stage: "CompileStage", *, key: str = "",
                 tracer: "TraceRecorder | None" = None) -> None:
        """Count a stage satisfied without a lookup (a downstream hit
        proved the whole upstream prefix matched)."""
        self._note(stage, True, key, tracer)

    def peek(self, stage: "CompileStage") -> tuple[bool, Any]:
        """Quiet probe — no counters, no events: ``(found, artifact)``.

        :func:`~repro.core.stages.run_stages` uses this to find the
        deepest memoized stage before deciding what to recompute.
        """
        fingerprint = stage.fingerprint
        if fingerprint is None:
            return False, None
        with self._lock:
            if fingerprint in self._memory:
                return True, self._memory[fingerprint]
        if self.spill is not None:
            found, artifact = self.spill.stage_lookup(stage.name,
                                                      fingerprint)
            if found:
                with self._lock:
                    self._memory.setdefault(fingerprint, artifact)
                return True, artifact
        return False, None

    def resolve(self, stage: "CompileStage", upstream: Any, *,
                key: str = "",
                tracer: "TraceRecorder | None" = None) -> Any:
        """The stage's artifact: replayed on a hit, computed (and
        published to both tiers) on a miss."""
        fingerprint = stage.fingerprint
        if fingerprint is None:
            return stage.compute(upstream)
        with self._lock:
            lock = self._stage_locks.get(fingerprint)
            if lock is None:
                lock = self._stage_locks[fingerprint] = threading.Lock()
        with lock:
            found, artifact = self.peek(stage)
            if found:
                self._note(stage, True, key, tracer)
                return artifact
            artifact = stage.compute(upstream)
            with self._lock:
                self._memory[fingerprint] = artifact
            if self.spill is not None:
                self.spill.stage_store(stage.name, fingerprint, artifact)
            self._note(stage, False, key, tracer)
            return artifact


# ----------------------------------------------------------------------
# The engine-facing read-through/store pair. Both dispatch paths (the
# thread engine and the process-pool CampaignWorker) call exactly these
# two functions, so the caching invariants cannot drift between them.
# ----------------------------------------------------------------------
def cached_outcome(cache: CompileCache, key: str,
                   fingerprint: str | None,
                   tracer: "TraceRecorder | None" = None,
                   ) -> CellOutcome | None:
    """A replayed :class:`CellOutcome` on a hit, else ``None``.

    Emits one ``"cache"`` trace event (status ``hit`` / ``miss`` /
    ``bypass``) per consult so the Observability table can count them
    per lane across threads *and* processes. A replayed outcome is
    byte-identical to a clean first-attempt execution as far as the
    journal is concerned: status ok, one attempt, no retries — only
    ``elapsed`` is zero, which the scheduler and ledger already treat
    as "no cost signal".
    """
    if fingerprint is None:
        cache.note_bypass()
        if tracer is not None:
            tracer.emit("cache", key=key, status=CACHE_BYPASS)
        return None
    entry = cache.lookup(fingerprint)
    if entry is None:
        if tracer is not None:
            tracer.emit("cache", key=key, status=CACHE_MISS)
        return None
    if tracer is not None:
        tracer.emit("cache", key=key, status=CACHE_HIT)
    return CellOutcome(key=key, status=STATUS_OK, compiled=entry.compiled,
                       run=entry.run, attempts=1, elapsed=0.0)


def store_outcome(cache: CompileCache, fingerprint: str | None,
                  outcome: CellOutcome) -> bool:
    """Publish a finished cell's artifacts — clean successes only.

    A cell qualifies only when it succeeded on its first attempt with
    no retries: replaying it later is then indistinguishable from
    executing it. Failures, gated cells, and retried-then-ok cells
    (whose journal entries record ``attempts > 1``) are never cached.
    """
    if fingerprint is None:
        return False
    if not outcome.ok or outcome.attempts != 1 or outcome.retried:
        return False
    return cache.store(fingerprint, outcome.compiled, outcome.run)
