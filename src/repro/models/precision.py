"""Numeric precision formats and mixed-precision policies.

Table IV of the paper compares platform-specific precision options:
IPU full (FP32) vs mixed, WSE FP16 vs CB16 (Cerebras ``cbfloat16``), and
RDU BF16 vs mixed. Each format carries the two quantities the simulators
need — storage width and relative compute throughput — and
:class:`PrecisionPolicy` captures a (compute, master-weight) pairing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import ConfigurationError


class Precision(enum.Enum):
    """A single numeric storage format."""

    FP32 = "fp32"
    TF32 = "tf32"
    FP16 = "fp16"
    BF16 = "bf16"
    CB16 = "cb16"  # Cerebras cbfloat16: 16-bit with a shared exponent bias
    FP8 = "fp8"

    @property
    def bytes_per_value(self) -> int:
        """Storage width in bytes."""
        return _BYTES[self]

    @property
    def compute_scale(self) -> float:
        """Relative matmul throughput versus FP32 on typical hardware.

        Half-width formats double effective FLOP rate; CB16 additionally
        relaxes accumulation, giving a small extra kick on WSE-2 — this
        constant is what reproduces the paper's modest 10.7% WSE gain.
        """
        return _COMPUTE_SCALE[self]


_BYTES = {
    Precision.FP32: 4,
    Precision.TF32: 4,
    Precision.FP16: 2,
    Precision.BF16: 2,
    Precision.CB16: 2,
    Precision.FP8: 1,
}

_COMPUTE_SCALE = {
    Precision.FP32: 1.0,
    Precision.TF32: 1.6,
    Precision.FP16: 2.0,
    Precision.BF16: 2.0,
    Precision.CB16: 2.2,
    Precision.FP8: 4.0,
}


@dataclass(frozen=True)
class PrecisionPolicy:
    """A training precision policy: compute + master-weight (+ activation)
    formats.

    ``mixed`` policies compute in a half-width format while keeping FP32
    master weights and loss scaling; ``pure`` policies use one format
    throughout; ``matmul_only`` policies narrow the matmul datapath but
    keep activations wide (casting at every operator boundary) — the
    partially-converted baseline the RDU "BF16" column of Table IV
    represents. Use the named constructors for the paper's Table IV
    configurations.
    """

    compute: Precision
    master: Precision
    label: str
    activation: Precision | None = None

    def __post_init__(self) -> None:
        if self.compute.bytes_per_value > self.master.bytes_per_value:
            raise ConfigurationError(
                "master-weight format must be at least as wide as the "
                f"compute format (got compute={self.compute.value}, "
                f"master={self.master.value})"
            )
        if (self.activation is not None
                and self.activation.bytes_per_value
                < self.compute.bytes_per_value):
            raise ConfigurationError(
                "activation format must be at least as wide as the "
                f"compute format (got activation={self.activation.value}, "
                f"compute={self.compute.value})"
            )

    @property
    def weight_bytes_per_param(self) -> float:
        """Bytes of *resident* weight storage per parameter (compute copy)."""
        return float(self.compute.bytes_per_value)

    @property
    def state_bytes_per_param(self) -> float:
        """Bytes of optimizer/master state per parameter.

        Mixed policies carry an FP32 master copy plus two Adam moments;
        pure policies carry the two moments in the compute width.
        """
        if self.is_mixed:
            return float(self.master.bytes_per_value) * 3.0
        return float(self.compute.bytes_per_value) * 2.0

    @property
    def activation_bytes_per_value(self) -> float:
        """Bytes per activation element (compute format unless overridden)."""
        fmt = self.activation if self.activation is not None else self.compute
        return float(fmt.bytes_per_value)

    @property
    def is_mixed(self) -> bool:
        """Whether the compute format is narrower than the master format."""
        return self.compute.bytes_per_value < self.master.bytes_per_value

    @property
    def needs_activation_casts(self) -> bool:
        """Whether activations are wider than the matmul datapath.

        When true, every matmul pays a cast/bandwidth penalty — the
        difference between the RDU's partially-converted "BF16" baseline
        and full mixed precision (Table IV).
        """
        return (self.activation is not None
                and self.activation.bytes_per_value
                > self.compute.bytes_per_value)

    # ------------------------------------------------------------------
    # Named policies (Table IV column headers)
    # ------------------------------------------------------------------
    @staticmethod
    def full() -> "PrecisionPolicy":
        """FP32 everywhere — the IPU "Full" column."""
        return PrecisionPolicy(Precision.FP32, Precision.FP32, "full")

    @staticmethod
    def mixed(compute: Precision = Precision.FP16) -> "PrecisionPolicy":
        """Half-width compute with FP32 masters — "Mixed" columns."""
        return PrecisionPolicy(compute, Precision.FP32, f"mixed-{compute.value}")

    @staticmethod
    def pure(fmt: Precision) -> "PrecisionPolicy":
        """One format throughout — the WSE FP16/CB16 columns."""
        return PrecisionPolicy(fmt, fmt, fmt.value)

    @staticmethod
    def matmul_only(fmt: Precision = Precision.BF16) -> "PrecisionPolicy":
        """Narrow matmuls, wide (FP32) activations — the RDU "BF16"
        baseline of Table IV."""
        return PrecisionPolicy(fmt, Precision.FP32, fmt.value,
                               activation=Precision.FP32)
