"""LLM workload models.

The paper's methodology (Sec. IV-D) uses decoder blocks of GPT-2 and
LLaMA-2 as the fundamental evaluation unit, sweeping layer count and
hidden size. This package provides:

* :mod:`repro.models.precision` — numeric formats and their costs,
* :mod:`repro.models.config` — model/training configuration dataclasses
  with the GPT-2 and LLaMA-2 family presets used throughout the paper,
* :mod:`repro.models.costmodel` — parameter/FLOPs/activation estimators,
* :mod:`repro.models.graph_builder` — lowering a config into a
  :class:`~repro.graph.graph.ComputationGraph` training graph.
"""

from repro.models.config import (
    GPT2_PRESETS,
    LLAMA2_PRESETS,
    ModelConfig,
    TrainConfig,
    gpt2_model,
    llama2_model,
)
from repro.models.costmodel import TransformerCostModel
from repro.models.graph_builder import build_training_graph
from repro.models.precision import Precision, PrecisionPolicy

__all__ = [
    "Precision",
    "PrecisionPolicy",
    "ModelConfig",
    "TrainConfig",
    "gpt2_model",
    "llama2_model",
    "GPT2_PRESETS",
    "LLAMA2_PRESETS",
    "TransformerCostModel",
    "build_training_graph",
]
