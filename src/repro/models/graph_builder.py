"""Lower a model + training config into a training computation graph.

The produced :class:`~repro.graph.graph.ComputationGraph` contains the
forward operators of every decoder layer, model-level operators (embedding,
final norm, LM head, loss), the backward twins in reverse order, and a
final optimizer node — the graph shape all three platform compilers
consume (paper Sec. III: "programs are represented as computation graphs,
where nodes denote operators and edges represent data dependencies").
"""

from __future__ import annotations

from repro.graph.graph import ComputationGraph
from repro.graph.ops import OpKind, Operator
from repro.models.config import ModelConfig, TrainConfig
from repro.models.costmodel import TransformerCostModel


def _hidden_bytes(model: ModelConfig, train: TrainConfig) -> float:
    """Bytes of one (B, S, H) hidden-state tensor."""
    return (train.batch_size * train.seq_len * model.hidden_size
            * train.precision.activation_bytes_per_value)


def _layer_forward_ops(model: ModelConfig, train: TrainConfig,
                       layer: int) -> list[Operator]:
    """Forward operators of decoder layer ``layer``, in execution order."""
    h = model.hidden_size
    f = model.ffn_hidden
    tokens = train.tokens_per_step
    s = train.seq_len
    wbytes = train.precision.weight_bytes_per_param
    hid = _hidden_bytes(model, train)
    ffn_hid = hid * f / h
    kv_hid = hid * model.kv_hidden / h
    score_bytes = (train.batch_size * model.n_heads * s * s
                   * train.precision.activation_bytes_per_value)
    prefix = f"layer{layer}"
    bias = 1 if model.family == "gpt2" else 0
    per_norm_params = 2 * h if model.family == "gpt2" else h

    ops = [
        Operator(f"{prefix}.ln1", OpKind.LAYERNORM,
                 flops=5.0 * tokens * h,
                 weight_bytes=per_norm_params * wbytes,
                 input_bytes=hid, output_bytes=hid, layer_index=layer),
        Operator(f"{prefix}.qkv", OpKind.QKV_PROJ,
                 flops=2.0 * (h * h + 2 * h * model.kv_hidden) * tokens,
                 weight_bytes=(h * h + 2 * h * model.kv_hidden
                               + bias * (h + 2 * model.kv_hidden)) * wbytes,
                 input_bytes=hid, output_bytes=hid + 2 * kv_hid,
                 layer_index=layer,
                 attrs={"m": tokens, "k": h, "n": h + 2 * model.kv_hidden}),
        # Score/softmax maps are internal to the attention operator (they
        # are produced and consumed inside it), so they appear as
        # ``internal_bytes`` rather than boundary traffic.
        Operator(f"{prefix}.attn", OpKind.ATTENTION,
                 flops=2.0 * 2.0 * s * h * tokens * 0.5,
                 input_bytes=hid + 2 * kv_hid,
                 output_bytes=hid, layer_index=layer,
                 attrs={"heads": model.n_heads, "seq": s,
                        "internal_bytes": score_bytes}),
        Operator(f"{prefix}.attn_out", OpKind.ATTN_OUT_PROJ,
                 flops=2.0 * h * h * tokens,
                 weight_bytes=(h * h + bias * h) * wbytes,
                 input_bytes=hid, output_bytes=hid, layer_index=layer,
                 attrs={"m": tokens, "k": h, "n": h}),
        Operator(f"{prefix}.res1", OpKind.RESIDUAL_ADD,
                 flops=1.0 * tokens * h,
                 input_bytes=2 * hid, output_bytes=hid, layer_index=layer),
        Operator(f"{prefix}.ln2", OpKind.LAYERNORM,
                 flops=5.0 * tokens * h,
                 weight_bytes=per_norm_params * wbytes,
                 input_bytes=hid, output_bytes=hid, layer_index=layer),
        Operator(f"{prefix}.ffn_up", OpKind.FFN_UP,
                 flops=2.0 * h * f * tokens,
                 weight_bytes=(h * f + bias * f) * wbytes,
                 input_bytes=hid, output_bytes=ffn_hid, layer_index=layer,
                 attrs={"m": tokens, "k": h, "n": f}),
    ]
    if model.uses_gated_ffn:
        ops.append(
            Operator(f"{prefix}.ffn_gate", OpKind.FFN_GATE,
                     flops=2.0 * h * f * tokens,
                     weight_bytes=h * f * wbytes,
                     input_bytes=hid, output_bytes=ffn_hid,
                     layer_index=layer,
                     attrs={"m": tokens, "k": h, "n": f}))
    ops.extend([
        Operator(f"{prefix}.ffn_act", OpKind.FFN_ACT,
                 flops=4.0 * tokens * f,
                 input_bytes=ffn_hid * (2 if model.uses_gated_ffn else 1),
                 output_bytes=ffn_hid, layer_index=layer),
        Operator(f"{prefix}.ffn_down", OpKind.FFN_DOWN,
                 flops=2.0 * f * h * tokens,
                 weight_bytes=(f * h + bias * h) * wbytes,
                 input_bytes=ffn_hid, output_bytes=hid, layer_index=layer,
                 attrs={"m": tokens, "k": f, "n": h}),
        Operator(f"{prefix}.res2", OpKind.RESIDUAL_ADD,
                 flops=1.0 * tokens * h,
                 input_bytes=2 * hid, output_bytes=hid, layer_index=layer),
    ])
    return ops


def build_training_graph(model: ModelConfig,
                         train: TrainConfig) -> ComputationGraph:
    """Build the full forward+backward+optimizer training graph.

    Structure::

        embedding -> [layer ops]*L -> final_norm -> lm_head -> loss
                 -> [backward twins in reverse] -> optimizer

    Residual skip connections are represented as extra edges into the
    ``res1``/``res2`` adds, so section/stage boundary cuts see realistic
    communication volumes.
    """
    cost = TransformerCostModel(model)
    graph = ComputationGraph(name=f"{model.name}-train")
    tokens = train.tokens_per_step
    hid = _hidden_bytes(model, train)
    wbytes = train.precision.weight_bytes_per_param
    act = train.precision.activation_bytes_per_value
    logits_bytes = train.batch_size * train.seq_len * model.vocab_size * act

    embed = graph.add_op(Operator(
        "embedding", OpKind.EMBEDDING,
        flops=cost.embedding_forward_flops(train),
        weight_bytes=cost.embedding_params() * wbytes,
        input_bytes=tokens * 4.0,  # int32 token ids
        output_bytes=hid))

    forward_order: list[Operator] = [embed]
    previous = embed.name
    for layer in range(model.n_layers):
        layer_ops = _layer_forward_ops(model, train, layer)
        block_input = previous
        for op in layer_ops:
            graph.add_op(op)
            forward_order.append(op)
        names = [op.name for op in layer_ops]
        graph.chain([block_input] + names)
        # Residual skips: block input joins res1, res1 output joins res2.
        graph.add_edge(block_input, f"layer{layer}.res1", hid)
        graph.add_edge(f"layer{layer}.res1", f"layer{layer}.res2", hid)
        previous = names[-1]

    final_norm = graph.add_op(Operator(
        "final_norm", OpKind.LAYERNORM,
        flops=5.0 * tokens * model.hidden_size,
        weight_bytes=cost.final_norm_params() * wbytes,
        input_bytes=hid, output_bytes=hid))
    lm_head = graph.add_op(Operator(
        "lm_head", OpKind.LM_HEAD,
        flops=cost.lm_head_forward_flops(train),
        weight_bytes=cost.lm_head_params() * wbytes,
        input_bytes=hid, output_bytes=logits_bytes,
        attrs={"m": tokens, "k": model.hidden_size, "n": model.vocab_size}))
    loss = graph.add_op(Operator(
        "loss", OpKind.LOSS,
        flops=10.0 * tokens,
        input_bytes=logits_bytes, output_bytes=8.0))
    graph.chain([previous, final_norm.name, lm_head.name, loss.name])
    forward_order.extend([final_norm, lm_head, loss])

    if not train.training:
        # Inference graphs end at the logits/loss node: no gradient
        # twins, no optimizer.
        graph.validate()
        return graph

    # Backward pass: twin every forward op (except loss), reverse order.
    backward_source = loss.name
    for op in reversed(forward_order[:-1]):
        bwd = graph.add_op(op.as_backward())
        graph.add_edge(backward_source, bwd.name)
        backward_source = bwd.name

    total_params = cost.total_params()
    optimizer = graph.add_op(Operator(
        "optimizer", OpKind.OPTIMIZER,
        flops=12.0 * total_params,  # Adam: ~a dozen elementwise ops/param
        weight_bytes=cost.optimizer_state_bytes(train),
        input_bytes=cost.gradient_bytes(train),
        output_bytes=cost.weight_bytes(train)))
    graph.add_edge(backward_source, optimizer.name)
    graph.validate()
    return graph
