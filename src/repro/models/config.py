"""Model and training configuration dataclasses with paper presets.

The paper sweeps decoder-block workloads from two canonical families
(Sec. II-A): GPT-2 (learned positions, GELU, LayerNorm, 4x FFN) and
LLaMA-2 (RoPE, SwiGLU, RMSNorm, optional grouped-query attention). The
presets below are the exact configurations the evaluation uses — GPT
mini/tiny/small (hidden 256/512/768), GPT xlarge for the GPU reference,
and LLaMA-2 7B for the RDU tensor-parallel study.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace

from repro.common.errors import ConfigurationError
from repro.models.precision import Precision, PrecisionPolicy


def _round_to_multiple(value: int, multiple: int) -> int:
    """Round ``value`` up to the nearest multiple of ``multiple``."""
    return ((value + multiple - 1) // multiple) * multiple


def _canonical_json(payload: dict) -> str:
    """The cache's canonicalization: ``sort_keys`` JSON, ``str`` for
    values outside the JSON model (enums, nested reprs)."""
    return json.dumps(payload, sort_keys=True, default=str)


def _content_digest(config) -> str:
    """Memoized SHA-256 of a frozen config's canonical JSON form.

    Fingerprinting used to re-serialize the full config for every
    cell of a campaign; a grid reuses a handful of config objects
    across hundreds of cells, so the digest is computed once and
    cached on the instance. Safe because the dataclasses are frozen —
    the sweep helpers (``with_layers`` et al.) build *new* instances
    via ``replace``, so a cached digest can never go stale.
    """
    digest = config.__dict__.get("_digest")
    if digest is None:
        text = _canonical_json(asdict(config))
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        object.__setattr__(config, "_digest", digest)
    return digest


@dataclass(frozen=True)
class ModelConfig:
    """A decoder-only transformer configuration.

    Attributes:
        name: human-readable identifier (e.g. ``gpt2-small``).
        family: ``"gpt2"`` or ``"llama2"`` — selects norm/activation/FFN
            conventions in the cost model and graph builder.
        hidden_size: model width H.
        n_layers: decoder-layer count L.
        n_heads: attention head count.
        n_kv_heads: key/value head count (grouped-query attention when
            smaller than ``n_heads``; LLaMA-2 70B style).
        vocab_size: vocabulary size V.
        max_seq_len: maximum context length S.
        ffn_hidden: FFN inner width; defaults to 4H (GPT-2) or the
            LLaMA-2 SwiGLU sizing (2/3 * 4H rounded to 256).
        tie_embeddings: whether the LM head shares the embedding matrix.
    """

    name: str
    family: str
    hidden_size: int
    n_layers: int
    n_heads: int
    n_kv_heads: int = 0
    vocab_size: int = 50257
    max_seq_len: int = 1024
    ffn_hidden: int = 0
    tie_embeddings: bool = True

    def __post_init__(self) -> None:
        if self.family not in ("gpt2", "llama2"):
            raise ConfigurationError(f"unknown model family: {self.family!r}")
        for label in ("hidden_size", "n_layers", "n_heads", "vocab_size",
                      "max_seq_len"):
            if getattr(self, label) <= 0:
                raise ConfigurationError(f"{label} must be > 0")
        object.__setattr__(
            self, "n_kv_heads", self.n_kv_heads or self.n_heads)
        if self.n_heads % self.n_kv_heads != 0:
            raise ConfigurationError(
                f"n_heads ({self.n_heads}) must be divisible by "
                f"n_kv_heads ({self.n_kv_heads})"
            )
        if self.hidden_size % self.n_heads != 0:
            raise ConfigurationError(
                f"hidden_size ({self.hidden_size}) must be divisible by "
                f"n_heads ({self.n_heads})"
            )
        if not self.ffn_hidden:
            if self.family == "llama2":
                inner = _round_to_multiple(int(8 * self.hidden_size / 3), 256)
            else:
                inner = 4 * self.hidden_size
            object.__setattr__(self, "ffn_hidden", inner)

    # ------------------------------------------------------------------
    @property
    def head_dim(self) -> int:
        """Per-head dimension H / n_heads."""
        return self.hidden_size // self.n_heads

    @property
    def kv_hidden(self) -> int:
        """Combined key/value projection width (shrinks under GQA)."""
        return self.n_kv_heads * self.head_dim

    @property
    def uses_gated_ffn(self) -> bool:
        """LLaMA-2's SwiGLU uses an extra gate projection."""
        return self.family == "llama2"

    @property
    def uses_learned_positions(self) -> bool:
        """GPT-2 stores learned absolute position embeddings."""
        return self.family == "gpt2"

    def content_digest(self) -> str:
        """Memoized canonical-JSON digest (the fingerprint building
        block — see :func:`repro.cache.cell_fingerprint`)."""
        return _content_digest(self)

    # ------------------------------------------------------------------
    # Sweep helpers (the paper's layer-count / hidden-size probes)
    # ------------------------------------------------------------------
    def with_layers(self, n_layers: int) -> "ModelConfig":
        """Copy with a different decoder-layer count."""
        return replace(self, n_layers=n_layers,
                       name=f"{self.name}-L{n_layers}")

    def with_hidden(self, hidden_size: int,
                    n_heads: int | None = None) -> "ModelConfig":
        """Copy with a different hidden size (heads rescaled to keep
        head_dim = 64 unless overridden)."""
        if n_heads is None:
            n_heads = max(1, hidden_size // 64)
            while hidden_size % n_heads != 0:
                n_heads -= 1
        kv = min(self.n_kv_heads, n_heads)
        while n_heads % kv != 0:
            kv -= 1
        return replace(self, hidden_size=hidden_size, n_heads=n_heads,
                       n_kv_heads=kv, ffn_hidden=0,
                       name=f"{self.name}-H{hidden_size}")


@dataclass(frozen=True)
class TrainConfig:
    """One run configuration (the paper's "training configuration"
    information category, Sec. IV-D(b)).

    Attributes:
        batch_size: global batch size B (samples per step).
        seq_len: input sequence length S.
        precision: numeric policy; defaults to pure FP16.
        grad_accumulation: micro-batches accumulated per weight update —
            also the number of in-flight micro-batches for pipeline
            backends.
        training: ``True`` for training steps (forward + backward +
            optimizer, the paper's focus); ``False`` for forward-only
            inference benchmarking — an extension beyond the paper that
            drops gradients, optimizer state, and activation stashes.
    """

    batch_size: int = 8
    seq_len: int = 1024
    precision: PrecisionPolicy = field(
        default_factory=lambda: PrecisionPolicy.pure(Precision.FP16))
    grad_accumulation: int = 1
    training: bool = True

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be > 0")
        if self.seq_len <= 0:
            raise ConfigurationError("seq_len must be > 0")
        if self.grad_accumulation <= 0:
            raise ConfigurationError("grad_accumulation must be > 0")

    @property
    def tokens_per_step(self) -> int:
        """Tokens processed per optimizer step."""
        return self.batch_size * self.seq_len

    @property
    def micro_batch_size(self) -> int:
        """Samples per micro-batch under gradient accumulation."""
        return max(1, self.batch_size // self.grad_accumulation)

    @property
    def backward_multiplier(self) -> float:
        """FLOPs multiplier over the forward pass: 3x when training
        (fwd + 2x bwd), 1x for inference."""
        return 3.0 if self.training else 1.0

    def content_digest(self) -> str:
        """Memoized canonical-JSON digest (the fingerprint building
        block — see :func:`repro.cache.cell_fingerprint`)."""
        return _content_digest(self)

    def with_batch_size(self, batch_size: int) -> "TrainConfig":
        """Copy with a different global batch size."""
        return replace(self, batch_size=batch_size)

    def with_precision(self, precision: PrecisionPolicy) -> "TrainConfig":
        """Copy with a different precision policy."""
        return replace(self, precision=precision)

    def as_inference(self) -> "TrainConfig":
        """Copy configured for forward-only inference."""
        return replace(self, training=False, grad_accumulation=1)


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------
GPT2_PRESETS: dict[str, ModelConfig] = {
    # The paper's intra-chip unit: hidden 768 decoder blocks (Sec. IV-D).
    "mini": ModelConfig("gpt2-mini", "gpt2", hidden_size=256, n_layers=4,
                        n_heads=4),
    "tiny": ModelConfig("gpt2-tiny", "gpt2", hidden_size=512, n_layers=6,
                        n_heads=8),
    "small": ModelConfig("gpt2-small", "gpt2", hidden_size=768, n_layers=12,
                         n_heads=12),
    "medium": ModelConfig("gpt2-medium", "gpt2", hidden_size=1024,
                          n_layers=24, n_heads=16),
    "large": ModelConfig("gpt2-large", "gpt2", hidden_size=1280, n_layers=36,
                         n_heads=20),
    "xlarge": ModelConfig("gpt2-xlarge", "gpt2", hidden_size=1600,
                          n_layers=48, n_heads=25),
}

LLAMA2_PRESETS: dict[str, ModelConfig] = {
    "7b": ModelConfig("llama2-7b", "llama2", hidden_size=4096, n_layers=32,
                      n_heads=32, vocab_size=32000, max_seq_len=4096,
                      ffn_hidden=11008, tie_embeddings=False),
    "13b": ModelConfig("llama2-13b", "llama2", hidden_size=5120, n_layers=40,
                       n_heads=40, vocab_size=32000, max_seq_len=4096,
                       ffn_hidden=13824, tie_embeddings=False),
    "70b": ModelConfig("llama2-70b", "llama2", hidden_size=8192, n_layers=80,
                       n_heads=64, n_kv_heads=8, vocab_size=32000,
                       max_seq_len=4096, ffn_hidden=28672,
                       tie_embeddings=False),
}


def gpt2_model(size: str = "small") -> ModelConfig:
    """Look up a GPT-2 preset (``mini``/``tiny``/``small``/``medium``/
    ``large``/``xlarge``)."""
    try:
        return GPT2_PRESETS[size]
    except KeyError:
        raise ConfigurationError(
            f"unknown GPT-2 preset {size!r}; choose from "
            f"{sorted(GPT2_PRESETS)}"
        ) from None


def llama2_model(size: str = "7b") -> ModelConfig:
    """Look up a LLaMA-2 preset (``7b``/``13b``/``70b``)."""
    try:
        return LLAMA2_PRESETS[size]
    except KeyError:
        raise ConfigurationError(
            f"unknown LLaMA-2 preset {size!r}; choose from "
            f"{sorted(LLAMA2_PRESETS)}"
        ) from None
