"""Analytic parameter / FLOPs / memory cost model for decoder-only LLMs.

This is the single source of truth for workload magnitudes. Every platform
simulator and the framework's arithmetic-intensity estimator (paper Eq. 5)
derive their numbers from here, so cross-platform comparisons are computed
from one consistent model.

Conventions:

* FLOPs count multiply+add as 2 operations (standard dense-matmul
  accounting: a (m,k)x(k,n) matmul is ``2*m*k*n`` FLOPs).
* Backward FLOPs are 2x forward (grad-input + grad-weight), giving the
  classic 6*P FLOPs/token for parameter-dominated models — the constant
  the paper's Eq. 5 uses.
* Memory quantities are bytes under a given
  :class:`~repro.models.precision.PrecisionPolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.config import ModelConfig, TrainConfig

#: Compile-time proxy constants (see ``estimated_compile_seconds``):
#: a fixed compiler-service overhead, a per-layer placement term, and a
#: per-billion-parameter graph-lowering term. Relative, not calibrated.
COMPILE_BASE_SECONDS = 5.0
COMPILE_SECONDS_PER_LAYER = 0.5
COMPILE_SECONDS_PER_GPARAM = 20.0


@dataclass(frozen=True)
class LayerParams:
    """Parameter breakdown of one decoder layer."""

    attention: int
    ffn: int
    norms: int

    @property
    def total(self) -> int:
        return self.attention + self.ffn + self.norms


class TransformerCostModel:
    """Parameter, FLOPs, and memory estimators for one model config."""

    def __init__(self, model: ModelConfig) -> None:
        self.model = model

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    def layer_params(self) -> LayerParams:
        """Parameters of one decoder layer, by component."""
        m = self.model
        h = m.hidden_size
        bias = 1 if m.family == "gpt2" else 0
        # Attention: Q and output projections are HxH; K/V shrink under GQA.
        attn = (h * h + bias * h)              # Q
        attn += 2 * (h * m.kv_hidden + bias * m.kv_hidden)  # K, V
        attn += h * h + bias * h               # output projection
        # FFN: up (+gate for SwiGLU) and down projections.
        ffn = h * m.ffn_hidden + bias * m.ffn_hidden       # up
        if m.uses_gated_ffn:
            ffn += h * m.ffn_hidden                        # gate (no bias)
        ffn += m.ffn_hidden * h + bias * h                 # down
        # Norms: LayerNorm has scale+shift, RMSNorm scale only.
        per_norm = 2 * h if m.family == "gpt2" else h
        norms = 2 * per_norm
        return LayerParams(attention=attn, ffn=ffn, norms=norms)

    def embedding_params(self) -> int:
        """Token (plus learned positional) embedding parameters."""
        m = self.model
        params = m.vocab_size * m.hidden_size
        if m.uses_learned_positions:
            params += m.max_seq_len * m.hidden_size
        return params

    def lm_head_params(self) -> int:
        """LM-head parameters (zero when tied to the embedding)."""
        m = self.model
        return 0 if m.tie_embeddings else m.vocab_size * m.hidden_size

    def final_norm_params(self) -> int:
        """Final pre-head normalization parameters."""
        h = self.model.hidden_size
        return 2 * h if self.model.family == "gpt2" else h

    def total_params(self) -> int:
        """Full model parameter count."""
        return (self.embedding_params()
                + self.model.n_layers * self.layer_params().total
                + self.final_norm_params()
                + self.lm_head_params())

    def decoder_params(self) -> int:
        """Parameters in decoder layers only (the paper's sweep variable)."""
        return self.model.n_layers * self.layer_params().total

    # ------------------------------------------------------------------
    # FLOPs
    # ------------------------------------------------------------------
    def layer_forward_flops(self, train: TrainConfig) -> float:
        """Forward FLOPs of one decoder layer per training step."""
        m = self.model
        tokens = train.tokens_per_step
        s = train.seq_len
        matmul_params = self.layer_params().attention + self.layer_params().ffn
        flops = 2.0 * matmul_params * tokens
        # Causal attention score + context matmuls: 2 * (2 * S * H) per token
        # halved for causal masking.
        flops += 2.0 * 2.0 * s * m.hidden_size * tokens * 0.5
        return flops

    def layer_backward_flops(self, train: TrainConfig) -> float:
        """Backward FLOPs of one decoder layer per step (2x forward)."""
        return 2.0 * self.layer_forward_flops(train)

    def embedding_forward_flops(self, train: TrainConfig) -> float:
        """Embedding lookup cost (gather-dominated, tiny)."""
        return 2.0 * self.model.hidden_size * train.tokens_per_step

    def lm_head_forward_flops(self, train: TrainConfig) -> float:
        """LM-head projection FLOPs per step (shared weights still compute)."""
        m = self.model
        return 2.0 * m.hidden_size * m.vocab_size * train.tokens_per_step

    def step_flops(self, train: TrainConfig) -> float:
        """Total FLOPs per step: fwd + 2x-fwd backward when training,
        forward only for inference configurations."""
        fwd = (self.embedding_forward_flops(train)
               + self.model.n_layers * self.layer_forward_flops(train)
               + self.lm_head_forward_flops(train))
        return train.backward_multiplier * fwd

    def flops_per_token(self, train: TrainConfig) -> float:
        """Training FLOPs per token; ~6 * params for large models."""
        return self.step_flops(train) / train.tokens_per_step

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def weight_bytes(self, train: TrainConfig) -> float:
        """Resident weight bytes under the training precision."""
        return self.total_params() * train.precision.weight_bytes_per_param

    def gradient_bytes(self, train: TrainConfig) -> float:
        """Gradient storage (compute precision); zero for inference."""
        if not train.training:
            return 0.0
        return self.total_params() * train.precision.weight_bytes_per_param

    def optimizer_state_bytes(self, train: TrainConfig) -> float:
        """Adam moments plus master weights when mixed; zero for
        inference."""
        if not train.training:
            return 0.0
        return self.total_params() * train.precision.state_bytes_per_param

    def layer_activation_bytes(self, train: TrainConfig) -> float:
        """Activation bytes stored by one decoder layer for backward.

        Uses the standard transformer accounting (Korthikanti et al.):
        roughly ``S*B*(c_h*H + c_f*F)`` values plus the attention
        probability matrices ``a*S^2*B`` when attention is materialized.
        """
        m = self.model
        b, s = train.batch_size, train.seq_len
        act = train.precision.activation_bytes_per_value
        values = s * b * (10.0 * m.hidden_size + 3.0 * m.ffn_hidden)
        values += 2.0 * m.n_heads * s * s * b  # score + softmax maps
        return values * act

    def activation_bytes(self, train: TrainConfig) -> float:
        """Total stored activations per step across all layers + head.

        Inference keeps only a transient working set (two hidden-state
        tensors plus the logits) — nothing is stashed for a backward
        pass.
        """
        m = self.model
        b, s = train.batch_size, train.seq_len
        act = train.precision.activation_bytes_per_value
        if not train.training:
            hidden = s * b * m.hidden_size * act
            logits = s * b * m.vocab_size * act
            return 2.0 * hidden + logits
        head = 2.0 * s * b * m.vocab_size * act  # logits + grad
        return m.n_layers * self.layer_activation_bytes(train) + head

    def training_memory_bytes(self, train: TrainConfig) -> float:
        """Total training footprint: weights + grads + state + activations."""
        return (self.weight_bytes(train)
                + self.gradient_bytes(train)
                + self.optimizer_state_bytes(train)
                + self.activation_bytes(train))

    # ------------------------------------------------------------------
    # Harness-cost estimates (campaign scheduling)
    # ------------------------------------------------------------------
    def estimated_compile_seconds(self) -> float:
        """Analytic estimate of how long compiling this model takes.

        The paper's Section IV harness observes that compile time is
        the dominant cost of large sweep cells and that it grows with
        graph size (layer count) and with the parameter volume the
        placer must map. This proxy is *relative*, not calibrated: the
        cost-aware campaign scheduler only needs big cells ranked above
        small ones, so the constants just need realistic proportions
        (a fixed service overhead, a per-layer placement term, and a
        per-billion-parameter lowering term).
        """
        m = self.model
        return (COMPILE_BASE_SECONDS
                + COMPILE_SECONDS_PER_LAYER * m.n_layers
                + COMPILE_SECONDS_PER_GPARAM * self.total_params() / 1e9)

    def estimated_step_seconds(self, train: TrainConfig,
                               peak_flops: float,
                               efficiency: float = 0.2) -> float:
        """Analytic estimate of one measured step on a device.

        ``peak_flops`` is the target chip's peak; ``efficiency`` is the
        achieved fraction (the paper's Sec. V-C2 reports ~20% on these
        platforms, which is the default). Relative accuracy is all the
        scheduler needs.
        """
        return self.step_flops(train) / (peak_flops * efficiency)

    # ------------------------------------------------------------------
    # Arithmetic intensity — paper Eq. 5
    # ------------------------------------------------------------------
    def arithmetic_intensity(self, train: TrainConfig) -> float:
        """AI = 6*P*B*S / (4*P + activation memory)  [FLOPs/byte].

        Implements the paper's Eq. 5 verbatim: the numerator is the
        6-FLOPs-per-parameter-per-token training estimate, the denominator
        is weight traffic at 4 bytes/parameter plus activation memory.
        """
        p = float(self.total_params())
        numerator = 6.0 * p * train.batch_size * train.seq_len
        denominator = 4.0 * p + self.activation_bytes(train)
        return numerator / denominator
