"""Operator taxonomy for LLM computation graphs.

Each :class:`Operator` is a node in a :class:`~repro.graph.graph.ComputationGraph`
and carries the cost-model quantities every platform compiler needs:

* ``flops`` — floating-point operations per *training step* (fwd or bwd,
  depending on the op instance),
* ``weight_bytes`` — parameter storage attributed to this op,
* ``input_bytes`` / ``output_bytes`` — activation traffic per step,
* structural metadata (which decoder layer the op belongs to, whether it is
  a forward or backward op, fusion affinity).

Operators are deliberately coarse — one node per logical layer component
(QKV projection, attention score, FFN matmul, ...) — matching the
granularity at which the paper's platforms map work (Sec. III-A: "each
layer in the model is mapped to a kernel").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any

from repro.common.errors import ConfigurationError


class OpKind(enum.Enum):
    """Coarse operator categories used by fusion and placement policies."""

    EMBEDDING = "embedding"
    LAYERNORM = "layernorm"
    QKV_PROJ = "qkv_proj"
    ATTENTION = "attention"
    ATTN_OUT_PROJ = "attn_out_proj"
    FFN_UP = "ffn_up"
    FFN_GATE = "ffn_gate"
    FFN_ACT = "ffn_act"
    FFN_DOWN = "ffn_down"
    RESIDUAL_ADD = "residual_add"
    LM_HEAD = "lm_head"
    LOSS = "loss"
    OPTIMIZER = "optimizer"
    COMMUNICATION = "communication"

    @property
    def is_matmul(self) -> bool:
        """Whether the op is dominated by dense matrix multiplication."""
        return self in _MATMUL_KINDS

    @property
    def is_elementwise(self) -> bool:
        """Whether the op is elementwise/normalization (fusion-friendly)."""
        return self in _ELEMENTWISE_KINDS


_MATMUL_KINDS = frozenset(
    {
        OpKind.QKV_PROJ,
        OpKind.ATTENTION,
        OpKind.ATTN_OUT_PROJ,
        OpKind.FFN_UP,
        OpKind.FFN_GATE,
        OpKind.FFN_DOWN,
        OpKind.LM_HEAD,
    }
)

_ELEMENTWISE_KINDS = frozenset(
    {
        OpKind.LAYERNORM,
        OpKind.FFN_ACT,
        OpKind.RESIDUAL_ADD,
        OpKind.LOSS,
        OpKind.OPTIMIZER,
    }
)


@dataclass(frozen=True)
class Operator:
    """A single computation-graph node with its cost-model quantities.

    Attributes:
        name: unique node identifier within a graph.
        kind: coarse operator category.
        flops: floating-point operations performed per training step.
        weight_bytes: parameter bytes resident for this operator.
        input_bytes: activation bytes read per step.
        output_bytes: activation bytes written per step.
        layer_index: decoder-layer the op belongs to; ``-1`` for
            model-level ops (embedding, LM head, loss, optimizer).
        backward: ``True`` for gradient-computation twin ops.
        attrs: free-form metadata (e.g. matmul dims) used by compilers.
    """

    name: str
    kind: OpKind
    flops: float = 0.0
    weight_bytes: float = 0.0
    input_bytes: float = 0.0
    output_bytes: float = 0.0
    layer_index: int = -1
    backward: bool = False
    attrs: dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("operator name must be non-empty")
        for label in ("flops", "weight_bytes", "input_bytes", "output_bytes"):
            value = getattr(self, label)
            if value < 0:
                raise ConfigurationError(
                    f"operator {self.name!r}: {label} must be >= 0, got {value}"
                )

    @property
    def activation_bytes(self) -> float:
        """Total activation traffic (input + output) per step."""
        return self.input_bytes + self.output_bytes

    @property
    def memory_bytes(self) -> float:
        """Total bytes touched per step: weights plus activations."""
        return self.weight_bytes + self.activation_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte touched; ``0.0`` for zero-traffic ops."""
        mem = self.memory_bytes
        return self.flops / mem if mem > 0 else 0.0

    @property
    def is_decoder_op(self) -> bool:
        """Whether the op belongs to a decoder layer (vs model-level)."""
        return self.layer_index >= 0

    def as_backward(self, flops_multiplier: float = 2.0) -> "Operator":
        """Derive this op's backward twin.

        Backward matmuls cost roughly 2x the forward FLOPs (grad wrt input
        and grad wrt weights), which is the standard 2:4 forward:backward
        split behind the paper's ``6 x P`` FLOPs-per-token estimate (Eq. 5).
        """
        return replace(
            self,
            name=f"{self.name}.bwd",
            flops=self.flops * flops_multiplier,
            input_bytes=self.output_bytes,
            output_bytes=self.input_bytes,
            backward=True,
        )

    def scaled(self, factor: float, *, suffix: str = "") -> "Operator":
        """Return a copy with compute and traffic scaled by ``factor``.

        Used by sharding (a shard does ``1/n`` of the work) and by batch
        rescaling. Weight bytes scale too: a shard holds a weight slice.
        """
        if factor < 0:
            raise ConfigurationError(f"scale factor must be >= 0, got {factor}")
        return replace(
            self,
            name=self.name + suffix,
            flops=self.flops * factor,
            weight_bytes=self.weight_bytes * factor,
            input_bytes=self.input_bytes * factor,
            output_bytes=self.output_bytes * factor,
        )
