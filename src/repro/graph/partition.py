"""Partitioning primitives shared by the platform compilers.

Three platforms, three partitioning styles (paper Sec. III):

* SambaNova sections a topologically ordered op list into contiguous
  chunks, optionally after fusing elementwise chains into modules
  (:func:`contiguous_chunks`, :func:`fuse_linear_chains`).
* Graphcore groups decoder layers onto IPUs while minimizing the
  heaviest stage (:func:`balanced_groups`).
* Cerebras places whole kernels, but its replica layout reuses
  :func:`group_cost` for communication accounting.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from repro.common.errors import ConfigurationError
from repro.graph.graph import ComputationGraph
from repro.graph.ops import Operator

T = TypeVar("T")


def group_cost(items: Sequence[T], cost: Callable[[T], float]) -> float:
    """Total cost of a group of items under a per-item cost function."""
    return sum(cost(item) for item in items)


def contiguous_chunks(items: Sequence[T], max_cost: float,
                      cost: Callable[[T], float]) -> list[list[T]]:
    """Greedily split ``items`` into contiguous chunks of bounded cost.

    A chunk is closed as soon as adding the next item would exceed
    ``max_cost``. Items individually larger than ``max_cost`` get a chunk
    of their own (the RDU compiler then shards them separately).

    Raises:
        ConfigurationError: if ``max_cost`` is not positive.
    """
    if max_cost <= 0:
        raise ConfigurationError(f"max_cost must be > 0, got {max_cost}")
    chunks: list[list[T]] = []
    current: list[T] = []
    current_cost = 0.0
    for item in items:
        item_cost = cost(item)
        if current and current_cost + item_cost > max_cost:
            chunks.append(current)
            current = []
            current_cost = 0.0
        current.append(item)
        current_cost += item_cost
    if current:
        chunks.append(current)
    return chunks


def balanced_groups(items: Sequence[T], n_groups: int,
                    cost: Callable[[T], float]) -> list[list[T]]:
    """Split ``items`` into ``n_groups`` contiguous groups, minimizing
    the max group cost.

    Contiguity is required because pipeline stages must respect layer
    order. Uses binary search over the bottleneck cost with a greedy
    feasibility check — optimal for the contiguous-partition problem.

    Empty trailing groups are returned as empty lists when there are fewer
    items than groups.
    """
    if n_groups <= 0:
        raise ConfigurationError(f"n_groups must be > 0, got {n_groups}")
    items = list(items)
    if not items:
        return [[] for _ in range(n_groups)]
    costs = [max(cost(item), 0.0) for item in items]

    def feasible(bound: float) -> bool:
        groups_used = 1
        acc = 0.0
        for c in costs:
            if c > bound:
                return False
            if acc + c > bound:
                groups_used += 1
                acc = c
            else:
                acc += c
        return groups_used <= n_groups

    lo = max(costs)
    hi = sum(costs)
    # Binary search on a continuous bound; 60 iterations is far below
    # float precision for any realistic cost scale.
    for _ in range(60):
        mid = (lo + hi) / 2
        if feasible(mid):
            hi = mid
        else:
            lo = mid
    bound = hi

    groups: list[list[T]] = []
    current: list[T] = []
    acc = 0.0
    remaining_groups = n_groups
    for item, c in zip(items, costs):
        must_close = current and acc + c > bound
        # Also close early if the tail could not otherwise fit in the
        # remaining groups (keeps the greedy packing feasible).
        if must_close and remaining_groups > 1:
            groups.append(current)
            current = []
            acc = 0.0
            remaining_groups -= 1
        current.append(item)
        acc += c
    groups.append(current)
    while len(groups) < n_groups:
        groups.append([])
    return groups


def fuse_linear_chains(graph: ComputationGraph) -> list[list[Operator]]:
    """Group operators into fusion modules along linear chains.

    Models SambaNova's O1 operator-fusion strategy (paper Sec. III-B): a
    matmul operator absorbs the elementwise/normalization operators that
    immediately follow it in a straight line (out-degree 1, in-degree 1).
    Returns the modules in topological order; every operator appears in
    exactly one module.
    """
    order = graph.topological_order()
    assigned: set[str] = set()
    modules: list[list[Operator]] = []
    for op in order:
        if op.name in assigned:
            continue
        module = [op]
        assigned.add(op.name)
        # Walk forward along a linear chain absorbing fusable ops.
        cursor = op
        while True:
            succs = graph.successors(cursor.name)
            if len(succs) != 1:
                break
            nxt = succs[0]
            if nxt.name in assigned:
                break
            if graph.in_degree(nxt.name) != 1:
                break
            if not nxt.kind.is_elementwise:
                break
            module.append(nxt)
            assigned.add(nxt.name)
            cursor = nxt
        modules.append(module)
    return modules
