"""Computation-graph intermediate representation.

Dataflow accelerators consume programs expressed as computation graphs in
which nodes are operators and edges are data dependencies (paper Sec. III).
This package provides that IR: an operator taxonomy sized with a cost model
(:mod:`repro.graph.ops`), a validated DAG container
(:mod:`repro.graph.graph`), and the partitioning primitives the platform
compilers share (:mod:`repro.graph.partition`).
"""

from repro.graph.graph import ComputationGraph, Edge
from repro.graph.ops import OpKind, Operator
from repro.graph.partition import (
    balanced_groups,
    contiguous_chunks,
    fuse_linear_chains,
    group_cost,
)

__all__ = [
    "OpKind",
    "Operator",
    "Edge",
    "ComputationGraph",
    "contiguous_chunks",
    "balanced_groups",
    "fuse_linear_chains",
    "group_cost",
]
