"""A validated directed acyclic graph of :class:`~repro.graph.ops.Operator` nodes.

The graph is the exchange format between the model builders
(:mod:`repro.models.graph_builder`) and the platform compilers. It offers
exactly the queries those compilers need: topological order, per-layer
views, aggregate cost totals, and subgraph extraction.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.common.errors import ConfigurationError
from repro.graph.ops import OpKind, Operator


@dataclass(frozen=True)
class Edge:
    """A data dependency: ``dst`` consumes ``src``'s output.

    Attributes:
        src: producing operator name.
        dst: consuming operator name.
        bytes_transferred: payload size per step, used by placement and
            communication cost models.
    """

    src: str
    dst: str
    bytes_transferred: float = 0.0


class ComputationGraph:
    """Mutable DAG of operators with dependency edges.

    Node names are unique. Edges may only reference existing nodes, and
    cycle creation is rejected eagerly so that a constructed graph is
    always schedulable.
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._ops: dict[str, Operator] = {}
        self._succ: dict[str, list[Edge]] = {}
        self._pred: dict[str, list[Edge]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_op(self, op: Operator) -> Operator:
        """Insert a node; duplicate names are configuration errors."""
        if op.name in self._ops:
            raise ConfigurationError(f"duplicate operator name: {op.name!r}")
        self._ops[op.name] = op
        self._succ[op.name] = []
        self._pred[op.name] = []
        return op

    def add_edge(self, src: str, dst: str,
                 bytes_transferred: float | None = None) -> Edge:
        """Insert a dependency edge ``src -> dst``.

        If ``bytes_transferred`` is omitted it defaults to the producer's
        ``output_bytes``. Raises if either endpoint is missing, if the edge
        is a self-loop, or if it would create a cycle.
        """
        if src not in self._ops:
            raise ConfigurationError(f"unknown edge source: {src!r}")
        if dst not in self._ops:
            raise ConfigurationError(f"unknown edge destination: {dst!r}")
        if src == dst:
            raise ConfigurationError(f"self-loop on {src!r} is not allowed")
        if self._reaches(dst, src):
            raise ConfigurationError(
                f"edge {src!r} -> {dst!r} would create a cycle"
            )
        if bytes_transferred is None:
            bytes_transferred = self._ops[src].output_bytes
        edge = Edge(src=src, dst=dst, bytes_transferred=bytes_transferred)
        self._succ[src].append(edge)
        self._pred[dst].append(edge)
        return edge

    def chain(self, names: Iterable[str]) -> None:
        """Add edges linking ``names`` sequentially (a linear pipeline)."""
        previous: str | None = None
        for name in names:
            if previous is not None:
                self.add_edge(previous, name)
            previous = name

    def _reaches(self, start: str, target: str) -> bool:
        """BFS reachability used for eager cycle detection."""
        if start == target:
            return True
        seen = {start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for edge in self._succ[node]:
                if edge.dst == target:
                    return True
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    queue.append(edge.dst)
        return False

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ops)

    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def __iter__(self) -> Iterator[Operator]:
        return iter(self._ops.values())

    def op(self, name: str) -> Operator:
        """Look up a node by name; raises ``KeyError`` if absent."""
        return self._ops[name]

    @property
    def ops(self) -> list[Operator]:
        """All nodes in insertion order."""
        return list(self._ops.values())

    @property
    def edges(self) -> list[Edge]:
        """All edges in insertion order of their source nodes."""
        return [edge for edges in self._succ.values() for edge in edges]

    def successors(self, name: str) -> list[Operator]:
        """Operators that consume ``name``'s output."""
        return [self._ops[e.dst] for e in self._succ[name]]

    def predecessors(self, name: str) -> list[Operator]:
        """Operators whose output ``name`` consumes."""
        return [self._ops[e.src] for e in self._pred[name]]

    def in_degree(self, name: str) -> int:
        return len(self._pred[name])

    def out_degree(self, name: str) -> int:
        return len(self._succ[name])

    def sources(self) -> list[Operator]:
        """Nodes with no predecessors (graph entry points)."""
        return [op for op in self._ops.values() if not self._pred[op.name]]

    def sinks(self) -> list[Operator]:
        """Nodes with no successors (graph exit points)."""
        return [op for op in self._ops.values() if not self._succ[op.name]]

    def topological_order(self) -> list[Operator]:
        """Kahn's-algorithm topological sort (stable for equal rank)."""
        indegree = {name: len(preds) for name, preds in self._pred.items()}
        ready = deque(name for name, deg in indegree.items() if deg == 0)
        order: list[Operator] = []
        while ready:
            name = ready.popleft()
            order.append(self._ops[name])
            for edge in self._succ[name]:
                indegree[edge.dst] -= 1
                if indegree[edge.dst] == 0:
                    ready.append(edge.dst)
        if len(order) != len(self._ops):  # pragma: no cover - guarded by add_edge
            raise ConfigurationError("graph contains a cycle")
        return order

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def total_flops(self) -> float:
        """Sum of per-step FLOPs over all nodes."""
        return sum(op.flops for op in self._ops.values())

    @property
    def total_weight_bytes(self) -> float:
        """Sum of parameter bytes over all nodes."""
        return sum(op.weight_bytes for op in self._ops.values())

    @property
    def total_activation_bytes(self) -> float:
        """Sum of activation traffic over all nodes."""
        return sum(op.activation_bytes for op in self._ops.values())

    def ops_of_kind(self, kind: OpKind) -> list[Operator]:
        """All nodes of one :class:`OpKind`, in insertion order."""
        return [op for op in self._ops.values() if op.kind is kind]

    def layer_indices(self) -> list[int]:
        """Sorted distinct decoder-layer indices present in the graph."""
        return sorted({op.layer_index for op in self._ops.values()
                       if op.layer_index >= 0})

    def layer_ops(self, layer_index: int) -> list[Operator]:
        """All nodes belonging to one decoder layer."""
        return [op for op in self._ops.values()
                if op.layer_index == layer_index]

    def model_level_ops(self) -> list[Operator]:
        """Nodes not attached to any decoder layer."""
        return [op for op in self._ops.values() if op.layer_index < 0]

    def subgraph(self, names: Iterable[str],
                 name: str = "subgraph") -> "ComputationGraph":
        """Extract the induced subgraph over ``names``.

        Edges are kept only when both endpoints are included. Used by the
        RDU sectioner and the IPU pipeline compiler.
        """
        selected = set(names)
        missing = selected - set(self._ops)
        if missing:
            raise ConfigurationError(
                f"subgraph references unknown operators: {sorted(missing)}"
            )
        sub = ComputationGraph(name=name)
        for op in self._ops.values():
            if op.name in selected:
                sub.add_op(op)
        for edge in self.edges:
            if edge.src in selected and edge.dst in selected:
                sub.add_edge(edge.src, edge.dst, edge.bytes_transferred)
        return sub

    def boundary_bytes(self, names: Iterable[str]) -> float:
        """Bytes crossing the cut between ``names`` and the rest.

        This is the communication volume a partitioner pays for placing
        ``names`` in a separate section/stage/device.
        """
        selected = set(names)
        crossing = 0.0
        for edge in self.edges:
            if (edge.src in selected) != (edge.dst in selected):
                crossing += edge.bytes_transferred
        return crossing

    def validate(self) -> None:
        """Re-check structural invariants; raises on violation.

        Construction already guarantees these, but compilers call this
        after graph surgery as a safety net.
        """
        for edges in self._succ.values():
            for edge in edges:
                if edge.src not in self._ops or edge.dst not in self._ops:
                    raise ConfigurationError(
                        f"dangling edge {edge.src!r} -> {edge.dst!r}"
                    )
        self.topological_order()

    def __repr__(self) -> str:
        return (f"ComputationGraph(name={self.name!r}, ops={len(self._ops)}, "
                f"edges={len(self.edges)})")
