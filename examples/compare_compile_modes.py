"""Case study: demystifying an opaque vendor compiler (SambaNova RDU).

The paper's motivation is that "commodity dataflow AI accelerators often
incorporate diverse vendor-specific designs ... rarely made public".
This example uses DABench-LLM to characterize the SN30's three
compilation modes (O0 operator, O1 module, O3 full-graph) on one
workload, exposing section structure, resource allocation, load balance,
DDR traffic, and throughput — and prints mode-selection guidance.

Usage::

    python examples/compare_compile_modes.py
"""

from repro import (
    Precision,
    PrecisionPolicy,
    SambaNovaBackend,
    TrainConfig,
    allocation_ratio,
    gpt2_model,
    weighted_load_imbalance,
)
from repro.core.report import BenchmarkReport


def main() -> None:
    backend = SambaNovaBackend()
    model = gpt2_model("small")
    train = TrainConfig(batch_size=16, seq_len=1024,
                        precision=PrecisionPolicy.pure(Precision.BF16))

    report = BenchmarkReport(
        title=f"RDU compilation modes on {model.name}")
    rows = []
    measured = {}
    for mode in ("O0", "O1", "O3"):
        compiled = backend.compile(model, train, mode=mode)
        run = backend.run(compiled)
        measured[mode] = run
        invocations = sum(p.invocations for p in compiled.phases)
        rows.append([
            mode,
            len(compiled.phases),
            invocations,
            f"{100 * allocation_ratio(compiled):.1f}%",
            f"{100 * allocation_ratio(compiled, kind='memory'):.1f}%",
            f"{weighted_load_imbalance(compiled):.3f}",
            f"{run.global_traffic_bytes_per_step / 1e9:.1f} GB",
            f"{run.achieved_flops / 1e12:.1f}",
            f"{run.tokens_per_second:,.0f}",
        ])
    report.add_table(
        "Per-mode characterization",
        ["mode", "sections", "invocations/step", "PCU alloc", "PMU alloc",
         "LI", "DDR/step", "TFLOP/s", "tokens/s"],
        rows)

    o0, o1, o3 = (measured[m] for m in ("O0", "O1", "O3"))
    report.add_insight(
        f"O0 runs every operator as its own section: "
        f"{o1.tokens_per_second / o0.tokens_per_second:.1f}x slower than "
        "O1 because the fabric fills and drains per operator and every "
        "boundary spills to DDR.")
    report.add_insight(
        f"O3 packs whole decoders per section and reaches "
        f"{o3.achieved_flops / 1e12:.1f} TFLOP/s — the highest allocation "
        "— but its packed sections are the least balanced; operator-level "
        "load balance is where the compiler should improve (paper Sec. "
        "V-B).")
    report.add_insight(
        "Pick O3 for throughput on models that fit its sectioning; pick "
        "O1 when balanced, predictable per-module behaviour matters.")
    print(report.render())


if __name__ == "__main__":
    main()
