"""Inter-chip scaling study: DP on WSE-2, TP on RDU, PP on IPU.

Reproduces the paper's Tier-2 scalability analysis (Sec. VI-A): each
platform scales by the strategy its architecture favours, and the
framework reports throughput, scaling efficiency, and the overheads
behind the curve (replica communication, cross-machine all-reduce,
pipeline bottleneck stage).

Usage::

    python examples/scaling_study.py
"""

from repro import (
    CerebrasBackend,
    GraphcoreBackend,
    Precision,
    PrecisionPolicy,
    SambaNovaBackend,
    ScalabilityAnalyzer,
    TrainConfig,
    gpt2_model,
    llama2_model,
)
from repro.core.report import BenchmarkReport
from repro.hardware.specs import BOW_POD
from repro.workloads import decoder_block_probe


def wse_rows(report: BenchmarkReport) -> None:
    analyzer = ScalabilityAnalyzer(CerebrasBackend())
    train = TrainConfig(batch_size=256, seq_len=1024)
    configs = [(f"DP{r}", {"n_replicas": r}) for r in (1, 2, 4, 8)]
    points = analyzer.sweep(gpt2_model("tiny"), train, configs)
    efficiency = analyzer.scaling_efficiency(
        points, {f"DP{r}": r for r in (1, 2, 4, 8)})
    report.add_table(
        "WSE-2: intra-chip data parallelism (gpt2-tiny)",
        ["config", "tokens/s", "per-replica efficiency", "comm share"],
        [[p.label, f"{p.tokens_per_second:,.0f}",
          f"{efficiency[p.label]:.2f}",
          f"{p.communication_fraction:.1%}"] for p in points])


def rdu_rows(report: BenchmarkReport) -> None:
    analyzer = ScalabilityAnalyzer(SambaNovaBackend())
    train = TrainConfig(batch_size=8, seq_len=4096,
                        precision=PrecisionPolicy.pure(Precision.BF16))
    configs = [(f"TP{t}", {"mode": "O1", "tp": t}) for t in (2, 4, 8)]
    points = analyzer.sweep(llama2_model("7b"), train, configs)
    report.add_table(
        "RDU: tensor parallelism (LLaMA-2 7B)",
        ["config", "tokens/s", "PCU alloc", "comm share"],
        [[p.label, f"{p.tokens_per_second:,.0f}",
          f"{p.compute_allocation:.1%}",
          f"{p.communication_fraction:.1%}"] for p in points])
    report.add_insight(
        "TP2 stays inside one SN30 machine and communicates over "
        "RDU-Connect; TP4 crosses machines and the all-reduce share "
        "jumps — avoid cross-machine TP when single-machine DDR "
        "suffices (paper Sec. VI-A3b).")


def ipu_rows(report: BenchmarkReport) -> None:
    backend = GraphcoreBackend(BOW_POD)
    analyzer = ScalabilityAnalyzer(backend)
    train = TrainConfig(batch_size=128, seq_len=1024)
    rows = []
    for n_ipus, layers in [(4, 6), (8, 18), (16, 30), (16, 48)]:
        model = decoder_block_probe(768, layers)
        points = analyzer.sweep(model, train, [(f"{n_ipus}PP",
                                                {"n_ipus": n_ipus})])
        point = points[0]
        compiled = backend.compile(model, train, n_ipus=n_ipus)
        run = backend.run(compiled)
        rows.append([f"{n_ipus}PP / {layers}L",
                     f"{run.samples_per_second:.1f}",
                     run.meta["bottleneck_stage"],
                     f"{point.compute_allocation:.1%}"])
    report.add_table(
        "IPU: pipeline parallelism (hidden-768 decoder blocks)",
        ["config", "samples/s", "bottleneck stage", "tile alloc"],
        rows)
    report.add_insight(
        "Throughput is set by the most heavily loaded IPU; deployment "
        "should minimize the maximum per-IPU layer count (paper Sec. "
        "VI-A3c).")


def main() -> None:
    report = BenchmarkReport(title="Inter-chip scalability (Tier 2)")
    wse_rows(report)
    rdu_rows(report)
    ipu_rows(report)
    print(report.render())


if __name__ == "__main__":
    main()
