"""Cost-aware campaign scheduling: dispatch by predicted cell cost.

Builds a deliberately unbalanced sweep — eight two-second cells plus
one 24-second straggler — and runs it twice through a Campaign: once
with the default ``lane-major`` dispatch (arrival order) and once with
``longest-first`` (predicted-cost order). On a simulated two-worker
pool the straggler-first order finishes in 24 s instead of 32 s, a 25%
makespan cut, while both runs produce identical spec-ordered results.

Also shows the :class:`~repro.campaign.CostPredictor` protocol by
plugging in a custom predictor that knows the injected hang durations
exactly, driving the scheduler's prediction error to zero.

All durations are injected on a fake clock, so the numbers are exact
and deterministic — no wall-clock sleeping happens.

Usage::

    python examples/campaign_scheduling.py
"""

from repro import (
    Campaign,
    CampaignLane,
    CerebrasBackend,
    ExecutionPolicy,
    FaultInjectingBackend,
    FaultPlan,
    TrainConfig,
    gpt2_model,
)
from repro.campaign import simulate_makespan
from repro.campaign.engine import CellTask
from repro.resilience import FakeClock, FaultSpec
from repro.workloads.sweeps import SweepSpec

SHORT_LAYERS = tuple(range(2, 10))
LONG_LAYERS = 40
SHORT_SECONDS, LONG_SECONDS = 2.0, 24.0
WORKERS = 2

COSTS = {f"L{n}": SHORT_SECONDS for n in SHORT_LAYERS}
COSTS[f"L{LONG_LAYERS}"] = LONG_SECONDS


class HangPredictor:
    """A custom CostPredictor: knows the injected durations exactly.

    Anything with ``name``, ``predict(task)`` and ``observe(task,
    seconds)`` satisfies the protocol; pass an instance straight to
    ``ExecutionPolicy(predictor=...)``.
    """

    name = "oracle"

    def predict(self, task: CellTask) -> float:
        label = task.key.rsplit("::", 1)[-1]
        return COSTS.get(label, 1.0)

    def observe(self, task: CellTask, seconds: float) -> None:
        pass  # nothing to learn — the oracle is already right


def unbalanced_lane() -> CampaignLane:
    train = TrainConfig(batch_size=8, seq_len=256)
    model = gpt2_model("mini")
    specs = [SweepSpec(label=f"L{n}", model=model.with_layers(n),
                       train=train)
             for n in (*SHORT_LAYERS, LONG_LAYERS)]
    clock = FakeClock()
    plan = FaultPlan()
    for n in SHORT_LAYERS:
        plan.add(FaultSpec.hang(SHORT_SECONDS, match=f"/L{n}/",
                                phase="compile"))
    plan.add(FaultSpec.hang(LONG_SECONDS, match=f"/L{LONG_LAYERS}/",
                            phase="compile"))
    backend = FaultInjectingBackend(CerebrasBackend(), plan, clock=clock)
    return CampaignLane(backend=backend, specs=specs, clock=clock)


def run_once(schedule: str, predictor) -> tuple[list[str], object]:
    """Run the unbalanced campaign, returning dispatch order + stats."""
    order: list[str] = []
    result = Campaign(
        [unbalanced_lane()],
        ExecutionPolicy(schedule=schedule, predictor=predictor),
    ).run(on_cell=lambda label, cell: order.append(cell.spec.label))
    return order, result


def main() -> None:
    print("Cost-aware scheduling on an unbalanced grid")
    print(f"  {len(SHORT_LAYERS)} cells x {SHORT_SECONDS:.0f}s + "
          f"1 straggler x {LONG_SECONDS:.0f}s, "
          f"{WORKERS} simulated workers\n")

    runs = {}
    for schedule, predictor in [("lane-major", "analytic"),
                                ("longest-first", "analytic"),
                                ("longest-first", HangPredictor())]:
        order, result = run_once(schedule, predictor)
        stats = result.scheduling
        makespan = simulate_makespan([COSTS[label] for label in order],
                                     WORKERS)
        runs[(schedule, stats.predictor)] = (order, result, makespan)
        print(f"{schedule:>14} / {stats.predictor:<8} "
              f"makespan {makespan:5.1f}s   "
              f"MAE {stats.mean_abs_error:6.2f}s   "
              f"first dispatched: {order[0]}")

    baseline = runs[("lane-major", "analytic")][2]
    improved = runs[("longest-first", "analytic")][2]
    print(f"\nLongest-first cuts the makespan "
          f"{100 * (1 - improved / baseline):.0f}% "
          f"({baseline:.0f}s -> {improved:.0f}s) by starting the "
          f"straggler immediately.")

    oracle = runs[("longest-first", "oracle")][1].scheduling
    print(f"The oracle predictor's error is zero "
          f"(MAE {oracle.mean_abs_error:.2f}s, "
          f"MAPE {oracle.mape:.1%}) — the protocol lets you plug in "
          f"site-specific cost knowledge.")

    def labels(result):
        return [cell.spec.label
                for cells in result.cells.values() for cell in cells]

    base_labels = labels(runs[("lane-major", "analytic")][1])
    fast_labels = labels(runs[("longest-first", "analytic")][1])
    assert base_labels == fast_labels
    print("\nResult order is identical under every schedule: dispatch "
          "order changes, reported spec order does not.")

    print("\nScheduling table (as serialized into reports):")
    print(runs[("longest-first", "analytic")][1].report().render())


if __name__ == "__main__":
    main()
