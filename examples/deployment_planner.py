"""Deployment planner: batch-size and precision guidance per platform.

Implements the paper's Tier-2 deployment-optimization methodology
(Sec. VI-B): sweep batch size and compare precision policies on every
platform, then print recommendations matching the paper's Insight box —
"use the largest possible batch size on RDU and IPU ... on WSE avoid
batch sizes below 200 ... RDU and IPU benefit significantly from mixed
precision, while WSE shows minimal sensitivity."

Usage::

    python examples/deployment_planner.py
"""

from repro import (
    CerebrasBackend,
    DeploymentOptimizer,
    GraphcoreBackend,
    Precision,
    PrecisionPolicy,
    SambaNovaBackend,
    TrainConfig,
    gpt2_model,
)
from repro.core.report import BenchmarkReport
from repro.workloads import decoder_block_probe


def batch_guidance() -> list[list[str]]:
    rows = []
    wse = DeploymentOptimizer(CerebrasBackend()).batch_sweep(
        gpt2_model("small"), TrainConfig(batch_size=8, seq_len=1024),
        [32, 64, 128, 256, 512])
    rdu = DeploymentOptimizer(SambaNovaBackend()).batch_sweep(
        gpt2_model("small"),
        TrainConfig(batch_size=4, seq_len=1024,
                    precision=PrecisionPolicy.pure(Precision.BF16)),
        [4, 8, 16, 32], mode="O1")
    ipu = DeploymentOptimizer(GraphcoreBackend()).batch_sweep(
        decoder_block_probe(768, 4), TrainConfig(batch_size=8, seq_len=1024),
        [8, 16, 32], n_ipus=2)
    for name, sweep in (("WSE-2", wse), ("RDU", rdu), ("IPU", ipu)):
        knee = sweep.saturation_batch
        advice = ("maximize batch size" if sweep.near_linear
                  else f"diminishing returns past batch ~{knee}")
        rows.append([name, f"{sweep.scaling_exponent:.2f}",
                     str(knee) if knee else "none in range", advice])
    return rows


def precision_guidance() -> list[list[str]]:
    from repro import llama2_model
    rows = []
    comparisons = [
        ("WSE-2", DeploymentOptimizer(CerebrasBackend()).compare_precision(
            gpt2_model("small"), TrainConfig(batch_size=128, seq_len=1024),
            baseline=PrecisionPolicy.pure(Precision.FP16),
            optimized=PrecisionPolicy.pure(Precision.CB16))),
        ("IPU", DeploymentOptimizer(GraphcoreBackend()).compare_precision(
            decoder_block_probe(768, 4, vocab_size=50257),
            TrainConfig(batch_size=16, seq_len=1024),
            baseline=PrecisionPolicy.full(),
            optimized=PrecisionPolicy.mixed(Precision.FP16), n_ipus=2)),
        ("RDU", DeploymentOptimizer(SambaNovaBackend()).compare_precision(
            llama2_model("7b"),
            TrainConfig(batch_size=16, seq_len=4096,
                        precision=PrecisionPolicy.pure(Precision.BF16)),
            baseline=PrecisionPolicy.matmul_only(Precision.BF16),
            optimized=PrecisionPolicy.mixed(Precision.BF16),
            mode="O1", tp=2)),
    ]
    for name, cmp in comparisons:
        rows.append([name, cmp.baseline_label, cmp.optimized_label,
                     f"{cmp.gain:+.1%}",
                     "switch" if cmp.gain > 0.15 else "optional"])
    return rows


def main() -> None:
    report = BenchmarkReport(title="Deployment plan (Tier 2)")
    report.add_table(
        "Batch-size scaling",
        ["platform", "scaling exponent", "saturation batch",
         "recommendation"],
        batch_guidance())
    report.add_table(
        "Precision options",
        ["platform", "baseline", "optimized", "gain", "recommendation"],
        precision_guidance())
    report.add_insight(
        "Use the largest batch that fits on RDU and IPU; on WSE-2, gains "
        "flatten once the kernel pipeline is full, so batch beyond the "
        "knee buys little.")
    report.add_insight(
        "RDU and IPU benefit substantially from full mixed precision; "
        "WSE-2's CB16 gains are modest, so precision choice there is a "
        "numerics decision, not a performance one.")
    print(report.render())


if __name__ == "__main__":
    main()
