"""Quickstart: profile one LLM workload on a dataflow accelerator.

Runs DABench-LLM Tier-1 against the simulated Cerebras CS-2, printing
the standardized metrics the paper defines: resource allocation ratio,
load imbalance, achieved TFLOPs / compute efficiency, memory breakdown,
and the workload's roofline placement.

Usage::

    python examples/quickstart.py
"""

from repro import (
    CerebrasBackend,
    Tier1Profiler,
    TrainConfig,
    gpt2_model,
)
from repro.core.report import describe_tier1


def main() -> None:
    backend = CerebrasBackend()
    profiler = Tier1Profiler(backend)

    model = gpt2_model("small")
    train = TrainConfig(batch_size=64, seq_len=1024)
    print(f"Profiling {model.name} (B={train.batch_size}, "
          f"S={train.seq_len}) on {backend.name}...\n")

    result = profiler.profile(model, train)
    print(describe_tier1(result))

    print("\nPer-kernel allocation (first few kernels):")
    for task in result.compiled.phases[0].tasks[:6]:
        if task.role != "compute":
            continue
        print(f"  {task.name:<12} {task.compute_units:8.0f} PEs, "
              f"{task.throughput:8.1f} samples/s achievable")

    print("\nScalability envelope:")
    limit = profiler.max_feasible(model, train, upper=96)
    print(f"  largest {model.hidden_size}-hidden decoder stack that "
          f"compiles: {limit} layers")


if __name__ == "__main__":
    main()
