"""Terminal figures and an energy extension study.

Renders two of the paper's figures as ASCII charts — Fig. 9a (WSE-2
TFLOPs vs layer count) and Fig. 12 (batch-size scaling across
platforms) — and then goes beyond the paper with the energy model
(tokens per joule per platform), the extension its related work
(CARAML) motivates.

Usage::

    python examples/figures_and_energy.py
"""

from repro import (
    CerebrasBackend,
    GraphcoreBackend,
    Precision,
    PrecisionPolicy,
    SambaNovaBackend,
    TrainConfig,
    gpt2_model,
)
from repro.common.errors import CompilationError
from repro.core.energy import estimate_energy
from repro.core.plots import ascii_bar_chart, ascii_line_chart
from repro.core.report import render_table
from repro.workloads import decoder_block_probe


def fig9a_chart() -> str:
    backend = CerebrasBackend()
    train = TrainConfig(batch_size=256, seq_len=1024)
    layers = [6, 12, 18, 24, 30, 36, 48, 60, 72]
    tflops = []
    for n in layers:
        try:
            run = backend.run(backend.compile(
                gpt2_model("small").with_layers(n), train))
            tflops.append(run.achieved_flops / 1e12)
        except CompilationError:
            tflops.append(None)
    return ascii_line_chart(
        layers, {"TFLOP/s": tflops}, width=60, height=12,
        title="Fig. 9a (repro): WSE-2 achieved TFLOP/s vs decoder layers",
        y_label="TF")


def fig12_chart() -> str:
    batches = [8, 16, 32, 64, 128, 256]
    wse_backend = CerebrasBackend()
    rdu_backend = SambaNovaBackend()
    series = {"WSE-2": [], "RDU (O1)": []}
    for batch in batches:
        fp16 = TrainConfig(batch_size=batch, seq_len=1024)
        bf16 = fp16.with_precision(PrecisionPolicy.pure(Precision.BF16))
        wse = wse_backend.run(wse_backend.compile(gpt2_model("small"), fp16))
        rdu = rdu_backend.run(rdu_backend.compile(gpt2_model("small"), bf16,
                                                  mode="O1"))
        series["WSE-2"].append(wse.tokens_per_second / 1e3)
        series["RDU (O1)"].append(rdu.tokens_per_second / 1e3)
    # Normalize each curve to its batch-8 point to compare shapes.
    for name, values in series.items():
        base = values[0]
        series[name] = [v / base for v in values]
    return ascii_line_chart(
        batches, series, width=60, height=12,
        title="Fig. 12 (repro): throughput vs batch, normalized to B=8",
        y_label="x")


def energy_study() -> str:
    fp16 = TrainConfig(batch_size=32, seq_len=1024)
    bf16 = fp16.with_precision(PrecisionPolicy.pure(Precision.BF16))
    model = gpt2_model("small").with_layers(8)
    runs = []
    for backend, train, options in (
            (CerebrasBackend(), fp16, {}),
            (SambaNovaBackend(), bf16, {"mode": "O3"}),
            (GraphcoreBackend(), fp16, {"n_ipus": 2})):
        compiled = backend.compile(model, train, **options)
        run = backend.run(compiled)
        runs.append(estimate_energy(compiled, run))
    table = render_table(
        ["platform", "chips", "utilization", "power (kW)", "J/token"],
        [[e.platform, e.n_chips, f"{e.utilization:.1%}",
          f"{e.power_watts / 1e3:.2f}", f"{e.joules_per_token:.3f}"]
         for e in runs],
        title="Energy extension: training gpt2-small(8L)")
    chart = ascii_bar_chart(
        [e.platform for e in runs],
        [e.tokens_per_joule for e in runs],
        title="tokens per joule (higher is better)")
    return table + "\n\n" + chart


def main() -> None:
    print(fig9a_chart())
    print()
    print(fig12_chart())
    print()
    print(energy_study())


if __name__ == "__main__":
    main()
