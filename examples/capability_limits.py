"""Capability limits: how large a model each platform can actually run.

Every platform in the paper hits a different wall: WSE-2's configuration
memory kills compilation at 78 decoder layers (Table I), a single IPU
pair runs out of In-Processor Memory at 10 layers (Fig. 9d), and the
RDU compiles arbitrarily large graphs but needs tensor parallelism once
DDR fills. This example maps those envelopes with the framework's
failure-aware sweeps.

Usage::

    python examples/capability_limits.py
"""

from repro import (
    CerebrasBackend,
    CompilationError,
    GraphcoreBackend,
    Precision,
    PrecisionPolicy,
    SambaNovaBackend,
    Tier1Profiler,
    TrainConfig,
    gpt2_model,
    llama2_model,
)
from repro.core.report import BenchmarkReport


def main() -> None:
    report = BenchmarkReport(title="Platform capability envelopes")
    fp16 = TrainConfig(batch_size=32, seq_len=1024)
    bf16 = fp16.with_precision(PrecisionPolicy.pure(Precision.BF16))
    model = gpt2_model("small")

    rows = []
    # WSE-2: whole-graph residency, killed by configuration memory.
    wse = Tier1Profiler(CerebrasBackend())
    wse_limit = wse.max_feasible(model, fp16, upper=128)
    rows.append(["CS-2 (1 chip)", f"{wse_limit} layers",
                 "configuration memory grows quadratically with kernels"])

    # IPU: tile memory per stage.
    for n_ipus in (2, 4, 8):
        ipu = Tier1Profiler(GraphcoreBackend())
        limit = ipu.max_feasible(model, fp16, upper=64, n_ipus=n_ipus)
        rows.append([f"Bow-2000 ({n_ipus} IPUs)", f"{limit} layers",
                     "In-Processor Memory per pipeline stage"])

    # RDU: sectioning scales arbitrarily; DDR capacity is the wall.
    rdu = SambaNovaBackend()
    big = TrainConfig(batch_size=64, seq_len=4096,
                      precision=PrecisionPolicy.mixed(Precision.BF16))
    for name, cfg in (("llama2-7b", llama2_model("7b")),
                      ("llama2-70b", llama2_model("70b"))):
        needed = None
        for tp in (1, 2, 4, 8):
            try:
                rdu.compile(cfg, big, mode="O1", tp=tp)
            except CompilationError:
                continue
            needed = tp
            break
        rows.append([f"SN30 ({name})",
                     f"TP >= {needed}" if needed else "does not fit",
                     "DDR capacity per RDU; graph partitioning itself "
                     "is unbounded"])

    report.add_table("Largest feasible configuration per platform",
                     ["platform", "envelope", "binding constraint"], rows)
    report.add_insight(
        "WSE-2 trades unbounded graphs for on-chip residency: beyond "
        f"{wse_limit} hidden-768 layers the compiler cannot place the "
        "model at all, and weight streaming becomes the only path.")
    report.add_insight(
        "The RDU's section partitioning makes model size a non-issue on "
        "chip — capacity pressure moves to DDR and is relieved by "
        "tensor parallelism.")
    print(report.render())


if __name__ == "__main__":
    main()
