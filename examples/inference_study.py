"""Inference benchmarking — the extension axis beyond the paper.

The paper benchmarks *training*; the same framework benchmarks
forward-only inference by flipping one flag. This study contrasts the
two regimes on every platform: throughput, the memory walls that move,
and how the Tier-1 metrics shift when there is no backward pass.

Usage::

    python examples/inference_study.py
"""

from repro import (
    CerebrasBackend,
    GraphcoreBackend,
    Precision,
    PrecisionPolicy,
    SambaNovaBackend,
    Tier1Profiler,
    TrainConfig,
    gpt2_model,
    llama2_model,
)
from repro.core.report import BenchmarkReport


def throughput_rows() -> list[list[str]]:
    fp16 = TrainConfig(batch_size=32, seq_len=1024)
    bf16 = fp16.with_precision(PrecisionPolicy.pure(Precision.BF16))
    model = gpt2_model("small").with_layers(8)
    rows = []
    for backend, train, options in (
            (CerebrasBackend(), fp16, {}),
            (SambaNovaBackend(), bf16, {"mode": "O3"}),
            (GraphcoreBackend(), fp16, {"n_ipus": 2})):
        t = backend.run(backend.compile(model, train, **options))
        i = backend.run(backend.compile(model, train.as_inference(),
                                        **options))
        rows.append([backend.name,
                     f"{t.tokens_per_second:,.0f}",
                     f"{i.tokens_per_second:,.0f}",
                     f"{i.tokens_per_second / t.tokens_per_second:.2f}x"])
    return rows


def capability_rows() -> list[list[str]]:
    fp16 = TrainConfig(batch_size=32, seq_len=1024)
    rows = []
    for backend, options, upper in (
            (CerebrasBackend(), {}, 160),
            (GraphcoreBackend(), {"n_ipus": 2}, 64)):
        profiler = Tier1Profiler(backend)
        t_limit = profiler.max_feasible(gpt2_model("small"), fp16,
                                        upper=upper, **options)
        i_limit = profiler.max_feasible(gpt2_model("small"),
                                        fp16.as_inference(),
                                        upper=upper, **options)
        rows.append([backend.name, str(t_limit), str(i_limit)])
    return rows


def decode_rows() -> list[list[str]]:
    from repro.core.decode import estimate_decode
    from repro.hardware.specs import BOW_IPU, SN30_RDU, WSE2
    bf16 = TrainConfig(batch_size=1, seq_len=1,
                       precision=PrecisionPolicy.pure(Precision.BF16))
    model = gpt2_model("small")
    rows = []
    for chip in (WSE2, SN30_RDU, BOW_IPU):
        for batch in (1, 32):
            try:
                estimate = estimate_decode(chip, model, bf16, batch, 1024)
            except Exception:
                # KV cache outgrew the on-chip tier: spill to DDR.
                estimate = estimate_decode(chip, model, bf16, batch, 1024,
                                           weights_resident_on_chip=False)
            placement = ("on-chip" if estimate.weights_on_chip
                         else "via DDR")
            rows.append([chip.name, batch,
                         f"{estimate.tokens_per_second:,.0f}",
                         estimate.bound,
                         f"{estimate.kv_cache_bytes / 1e6:.0f} MB "
                         f"({placement})"])
    return rows


def main() -> None:
    report = BenchmarkReport(title="Training vs inference (extension)")
    report.add_table(
        "Throughput (gpt2-small, 8 layers)",
        ["platform", "train tok/s", "infer tok/s", "speedup"],
        throughput_rows())
    report.add_table(
        "Max hidden-768 layers that fit",
        ["platform", "training", "inference"],
        capability_rows())
    report.add_table(
        "Autoregressive decode roofline (context 1024)",
        ["chip", "batch", "tokens/s bound", "bound", "KV cache"],
        decode_rows())

    rdu = SambaNovaBackend()
    infer = TrainConfig(batch_size=8, seq_len=4096,
                        precision=PrecisionPolicy.pure(Precision.BF16),
                        training=False)
    run = rdu.run(rdu.compile(llama2_model("7b"), infer, mode="O1"))
    report.add_insight(
        f"Without optimizer state, LLaMA-2 7B inference at 4k context "
        f"runs on a single RDU at {run.tokens_per_second:,.0f} tokens/s — "
        "training the same model needs tensor parallelism for DDR "
        "capacity alone.")
    report.add_insight(
        "Sequential-section platforms capture nearly the full 3x FLOPs "
        "reduction, but the WSE gains only ~1.5x: forward-only kernels "
        "earn smaller scalability caps, so fewer PEs do the work.")
    report.add_insight(
        "The memory walls move differently too: the IPU's 10-layer "
        "training limit (optimizer state + stashes) triples for "
        "inference, while the WSE's limit barely moves — its wall is "
        "configuration memory, which the backward pass does not own.")
    report.add_insight(
        "Decode inverts Fig. 10's classifications: weights stay in the "
        "WSE's on-chip SRAM so single-token generation is compute-bound "
        "there at batch 1, while the DDR-fed RDU and IPU are bandwidth-"
        "bound until weight reads amortize over large batches.")
    print(report.render())


if __name__ == "__main__":
    main()
