"""Model/training configuration and the paper's presets."""

import pytest

from repro.common.errors import ConfigurationError
from repro.models.config import (
    GPT2_PRESETS,
    LLAMA2_PRESETS,
    ModelConfig,
    TrainConfig,
    gpt2_model,
    llama2_model,
)


class TestModelConfigValidation:
    def test_unknown_family(self):
        with pytest.raises(ConfigurationError):
            ModelConfig("x", "bert", hidden_size=768, n_layers=12,
                        n_heads=12)

    def test_nonpositive_dims(self):
        with pytest.raises(ConfigurationError):
            ModelConfig("x", "gpt2", hidden_size=0, n_layers=12, n_heads=12)

    def test_heads_must_divide_hidden(self):
        with pytest.raises(ConfigurationError):
            ModelConfig("x", "gpt2", hidden_size=100, n_layers=1, n_heads=7)

    def test_kv_heads_must_divide_heads(self):
        with pytest.raises(ConfigurationError):
            ModelConfig("x", "llama2", hidden_size=768, n_layers=1,
                        n_heads=12, n_kv_heads=5)

    def test_kv_heads_default_to_heads(self):
        m = ModelConfig("x", "gpt2", hidden_size=768, n_layers=1,
                        n_heads=12)
        assert m.n_kv_heads == 12


class TestFamilies:
    def test_gpt2_ffn_is_4x(self):
        m = gpt2_model("small")
        assert m.ffn_hidden == 4 * m.hidden_size

    def test_llama_ffn_swiglu_sizing(self):
        m = llama2_model("7b")
        assert m.ffn_hidden == 11008

    def test_llama_uses_gated_ffn(self):
        assert llama2_model("7b").uses_gated_ffn
        assert not gpt2_model("small").uses_gated_ffn

    def test_gpt2_learned_positions(self):
        assert gpt2_model("small").uses_learned_positions
        assert not llama2_model("7b").uses_learned_positions

    def test_gqa_on_70b(self):
        m = llama2_model("70b")
        assert m.n_kv_heads == 8
        assert m.kv_hidden == 8 * m.head_dim


class TestPresets:
    def test_paper_hidden_sizes(self):
        # Sec. IV-D: "GPT mini, tiny, and small (hidden 256, 512, 768)".
        assert gpt2_model("mini").hidden_size == 256
        assert gpt2_model("tiny").hidden_size == 512
        assert gpt2_model("small").hidden_size == 768

    def test_unknown_preset(self):
        with pytest.raises(ConfigurationError):
            gpt2_model("gigantic")
        with pytest.raises(ConfigurationError):
            llama2_model("3b")

    def test_all_presets_construct(self):
        for preset in list(GPT2_PRESETS.values()) + list(
                LLAMA2_PRESETS.values()):
            assert preset.head_dim > 0


class TestSweepHelpers:
    def test_with_layers(self):
        m = gpt2_model("small").with_layers(36)
        assert m.n_layers == 36
        assert m.hidden_size == 768

    def test_with_hidden_rescales_heads(self):
        m = gpt2_model("small").with_hidden(1024)
        assert m.hidden_size == 1024
        assert m.hidden_size % m.n_heads == 0
        assert m.head_dim == 64

    def test_with_hidden_rebuilds_ffn(self):
        m = gpt2_model("small").with_hidden(1600)
        assert m.ffn_hidden == 4 * 1600

    def test_with_hidden_odd_size(self):
        m = gpt2_model("small").with_hidden(6686)
        assert m.hidden_size % m.n_heads == 0


class TestTrainConfig:
    def test_tokens_per_step(self):
        t = TrainConfig(batch_size=16, seq_len=512)
        assert t.tokens_per_step == 8192

    def test_micro_batch(self):
        t = TrainConfig(batch_size=16, grad_accumulation=4)
        assert t.micro_batch_size == 4

    def test_invalid_batch(self):
        with pytest.raises(ConfigurationError):
            TrainConfig(batch_size=0)

    def test_invalid_seq(self):
        with pytest.raises(ConfigurationError):
            TrainConfig(seq_len=-1)

    def test_with_batch_size_copies(self):
        t = TrainConfig(batch_size=8)
        t2 = t.with_batch_size(64)
        assert t.batch_size == 8 and t2.batch_size == 64
        assert t2.seq_len == t.seq_len


class TestLlamaPresetsSanity:
    def test_13b_parameter_count(self):
        from repro.models.costmodel import TransformerCostModel
        cost = TransformerCostModel(llama2_model("13b"))
        assert abs(cost.total_params() - 13e9) / 13e9 < 0.03

    def test_70b_parameter_count(self):
        from repro.models.costmodel import TransformerCostModel
        cost = TransformerCostModel(llama2_model("70b"))
        assert abs(cost.total_params() - 69e9) / 69e9 < 0.03
