"""Parameter / FLOPs / memory cost model, including Eq. 5."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.config import TrainConfig, gpt2_model, llama2_model
from repro.models.costmodel import TransformerCostModel
from repro.models.precision import Precision, PrecisionPolicy


@pytest.fixture()
def gpt2_cost():
    return TransformerCostModel(gpt2_model("small"))


@pytest.fixture()
def train():
    return TrainConfig(batch_size=8, seq_len=1024)


class TestParameterCounts:
    def test_gpt2_small_is_124m(self, gpt2_cost):
        # The canonical GPT-2 small figure (tied embeddings).
        assert gpt2_cost.total_params() == pytest.approx(124e6, rel=0.02)

    def test_llama_7b_is_7b(self):
        cost = TransformerCostModel(llama2_model("7b"))
        assert cost.total_params() == pytest.approx(6.7e9, rel=0.03)

    def test_gpt2_layer_is_12h2ish(self, gpt2_cost):
        h = 768
        layer = gpt2_cost.layer_params()
        assert layer.total == pytest.approx(12 * h * h, rel=0.01)

    def test_tied_head_has_no_params(self, gpt2_cost):
        assert gpt2_cost.lm_head_params() == 0

    def test_untied_head_params(self):
        cost = TransformerCostModel(llama2_model("7b"))
        assert cost.lm_head_params() == 32000 * 4096

    def test_decoder_params_scale_linearly(self):
        base = gpt2_model("small")
        p12 = TransformerCostModel(base.with_layers(12)).decoder_params()
        p24 = TransformerCostModel(base.with_layers(24)).decoder_params()
        assert p24 == 2 * p12

    def test_gqa_shrinks_attention(self):
        full = TransformerCostModel(llama2_model("70b"))
        attn = full.layer_params().attention
        h = 8192
        # Q + O are h*h each; K,V are h*kv_hidden = h*1024 each.
        assert attn == 2 * h * h + 2 * h * 1024


class TestFlops:
    def test_flops_per_token_near_6p(self, gpt2_cost, train):
        # The classic 6*P rule the paper's Eq. 5 numerator uses.
        per_token = gpt2_cost.flops_per_token(train)
        assert per_token == pytest.approx(
            6 * gpt2_cost.total_params(), rel=0.35)

    def test_backward_is_twice_forward(self, gpt2_cost, train):
        assert gpt2_cost.layer_backward_flops(train) == pytest.approx(
            2 * gpt2_cost.layer_forward_flops(train))

    def test_step_flops_scale_with_batch(self, gpt2_cost, train):
        double = train.with_batch_size(16)
        assert gpt2_cost.step_flops(double) == pytest.approx(
            2 * gpt2_cost.step_flops(train))

    def test_step_flops_positive(self, gpt2_cost, train):
        assert gpt2_cost.step_flops(train) > 0


class TestMemory:
    def test_fp16_weight_bytes(self, gpt2_cost, train):
        assert gpt2_cost.weight_bytes(train) == pytest.approx(
            gpt2_cost.total_params() * 2)

    def test_mixed_optimizer_state_is_largest(self, gpt2_cost):
        mixed = TrainConfig(batch_size=8, seq_len=1024,
                            precision=PrecisionPolicy.mixed(Precision.FP16))
        assert (gpt2_cost.optimizer_state_bytes(mixed)
                > gpt2_cost.weight_bytes(mixed))

    def test_activation_bytes_scale_with_batch(self, gpt2_cost, train):
        double = train.with_batch_size(16)
        assert gpt2_cost.activation_bytes(double) == pytest.approx(
            2 * gpt2_cost.activation_bytes(train))

    def test_training_memory_is_sum(self, gpt2_cost, train):
        total = gpt2_cost.training_memory_bytes(train)
        parts = (gpt2_cost.weight_bytes(train)
                 + gpt2_cost.gradient_bytes(train)
                 + gpt2_cost.optimizer_state_bytes(train)
                 + gpt2_cost.activation_bytes(train))
        assert total == pytest.approx(parts)


class TestArithmeticIntensity:
    def test_eq5_formula(self, gpt2_cost, train):
        p = gpt2_cost.total_params()
        expected = (6 * p * train.batch_size * train.seq_len
                    / (4 * p + gpt2_cost.activation_bytes(train)))
        assert gpt2_cost.arithmetic_intensity(train) == pytest.approx(
            expected)

    def test_intensity_grows_with_batch_initially(self, gpt2_cost):
        # At small batch the weight term dominates the denominator, so
        # AI rises with B (the paper's 8.9-28 range across configs).
        t1 = TrainConfig(batch_size=1, seq_len=1024)
        t4 = TrainConfig(batch_size=4, seq_len=1024)
        assert (gpt2_cost.arithmetic_intensity(t4)
                > gpt2_cost.arithmetic_intensity(t1))

    def test_saturates_at_per_token_ratio(self, gpt2_cost):
        # As B grows both numerator and activation term scale with B, so
        # AI approaches 6P / (activation bytes per token) — several
        # hundred FLOPs/byte for GPT-2 small (see hardware.specs note on
        # why this differs from the paper's reported 8.9-28 range).
        small = gpt2_cost.arithmetic_intensity(
            TrainConfig(batch_size=4, seq_len=1024))
        big = gpt2_cost.arithmetic_intensity(
            TrainConfig(batch_size=256, seq_len=1024))
        assert big / small < 1.2  # already near saturation
        assert 100.0 < big < 2000.0


@settings(max_examples=30)
@given(layers=st.integers(min_value=1, max_value=96),
       batch=st.integers(min_value=1, max_value=64))
def test_costs_monotone_in_scale(layers, batch):
    """Params, FLOPs, and memory all grow with model/batch size."""
    train = TrainConfig(batch_size=batch, seq_len=256)
    small = TransformerCostModel(gpt2_model("small").with_layers(layers))
    big = TransformerCostModel(gpt2_model("small").with_layers(layers + 1))
    assert big.total_params() > small.total_params()
    assert big.step_flops(train) > small.step_flops(train)
    assert big.activation_bytes(train) > small.activation_bytes(train)
    assert small.arithmetic_intensity(train) > 0
