"""Precision formats and policies (Table IV's configuration axis)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.models.precision import Precision, PrecisionPolicy


class TestPrecision:
    @pytest.mark.parametrize("fmt,width", [
        (Precision.FP32, 4), (Precision.TF32, 4), (Precision.FP16, 2),
        (Precision.BF16, 2), (Precision.CB16, 2), (Precision.FP8, 1),
    ])
    def test_widths(self, fmt, width):
        assert fmt.bytes_per_value == width

    def test_half_width_doubles_throughput(self):
        assert Precision.FP16.compute_scale == 2.0 * Precision.FP32.compute_scale

    def test_cb16_beats_fp16(self):
        # The source of WSE's modest Table IV gain.
        assert Precision.CB16.compute_scale > Precision.FP16.compute_scale


class TestPolicyConstruction:
    def test_narrow_master_rejected(self):
        with pytest.raises(ConfigurationError):
            PrecisionPolicy(Precision.FP32, Precision.FP16, "bad")

    def test_narrow_activation_rejected(self):
        with pytest.raises(ConfigurationError):
            PrecisionPolicy(Precision.FP32, Precision.FP32, "bad",
                            activation=Precision.FP16)

    def test_full(self):
        policy = PrecisionPolicy.full()
        assert policy.compute is Precision.FP32
        assert not policy.is_mixed

    def test_mixed(self):
        policy = PrecisionPolicy.mixed(Precision.BF16)
        assert policy.is_mixed
        assert policy.master is Precision.FP32

    def test_pure(self):
        policy = PrecisionPolicy.pure(Precision.CB16)
        assert not policy.is_mixed
        assert policy.label == "cb16"

    def test_matmul_only(self):
        policy = PrecisionPolicy.matmul_only(Precision.BF16)
        assert policy.needs_activation_casts
        assert policy.activation_bytes_per_value == 4.0


class TestPolicyByteAccounting:
    def test_pure_fp16_state(self):
        policy = PrecisionPolicy.pure(Precision.FP16)
        assert policy.weight_bytes_per_param == 2.0
        assert policy.state_bytes_per_param == 4.0  # two Adam moments

    def test_mixed_state_includes_masters(self):
        policy = PrecisionPolicy.mixed(Precision.FP16)
        assert policy.state_bytes_per_param == 12.0  # fp32 master + moments

    def test_activation_defaults_to_compute(self):
        policy = PrecisionPolicy.mixed(Precision.FP16)
        assert policy.activation_bytes_per_value == 2.0
        assert not policy.needs_activation_casts

    def test_full_has_no_casts(self):
        assert not PrecisionPolicy.full().needs_activation_casts
