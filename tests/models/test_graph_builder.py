"""Training-graph lowering."""

import pytest

from repro.graph.ops import OpKind
from repro.models.config import TrainConfig, gpt2_model, llama2_model
from repro.models.costmodel import TransformerCostModel
from repro.models.graph_builder import build_training_graph


@pytest.fixture()
def train():
    return TrainConfig(batch_size=4, seq_len=512)


@pytest.fixture()
def graph(train):
    return build_training_graph(gpt2_model("small").with_layers(2), train)


class TestStructure:
    def test_validates(self, graph):
        graph.validate()

    def test_single_source_is_embedding(self, graph):
        sources = graph.sources()
        assert [op.name for op in sources] == ["embedding"]

    def test_single_sink_is_optimizer(self, graph):
        assert [op.name for op in graph.sinks()] == ["optimizer"]

    def test_has_forward_and_backward_twins(self, graph):
        assert "layer0.qkv" in graph
        assert "layer0.qkv.bwd" in graph

    def test_loss_has_no_backward_twin(self, graph):
        assert "loss.bwd" not in graph

    def test_layer_count(self, train):
        g1 = build_training_graph(gpt2_model("small").with_layers(1), train)
        g4 = build_training_graph(gpt2_model("small").with_layers(4), train)
        assert len(g4.layer_indices()) == 4
        assert len(g1.layer_indices()) == 1

    def test_residual_skip_edges_exist(self, graph):
        preds = [op.name for op in graph.predecessors("layer0.res1")]
        # attention output plus the block input skip.
        assert len(preds) == 2

    def test_backward_ordering_reverse(self, graph):
        order = [op.name for op in graph.topological_order()]
        assert order.index("layer1.qkv.bwd") < order.index("layer0.qkv.bwd")
        assert order.index("loss") < order.index("lm_head.bwd")


class TestFamilies:
    def test_llama_has_gate(self, train):
        g = build_training_graph(llama2_model("7b").with_layers(1), train)
        assert "layer0.ffn_gate" in g
        assert g.op("layer0.ffn_gate").kind is OpKind.FFN_GATE

    def test_gpt2_has_no_gate(self, graph):
        assert "layer0.ffn_gate" not in graph


class TestCostConsistency:
    def test_weight_bytes_match_cost_model(self, train):
        model = gpt2_model("small").with_layers(3)
        g = build_training_graph(model, train)
        cost = TransformerCostModel(model)
        forward_weights = sum(op.weight_bytes for op in g
                              if not op.backward
                              and op.kind is not OpKind.OPTIMIZER)
        assert forward_weights == pytest.approx(
            cost.weight_bytes(train), rel=0.01)

    def test_total_flops_match_step_flops(self, train):
        model = gpt2_model("small").with_layers(3)
        g = build_training_graph(model, train)
        cost = TransformerCostModel(model)
        graph_flops = sum(op.flops for op in g
                          if op.kind is not OpKind.OPTIMIZER)
        assert graph_flops == pytest.approx(cost.step_flops(train), rel=0.1)

    def test_attention_scores_are_internal(self, graph):
        attn = graph.op("layer0.attn")
        assert attn.attrs["internal_bytes"] > 0
        # Boundary output is just the (B, S, H) context tensor.
        hidden = 4 * 512 * 768 * 2
        assert attn.output_bytes == pytest.approx(hidden)

    def test_matmul_dims_recorded(self, graph):
        qkv = graph.op("layer0.qkv")
        assert qkv.attrs["k"] == 768
        assert qkv.attrs["n"] == 3 * 768
