"""RunLedger: persistence, EWMA math, and corruption tolerance."""

import json
import warnings

import pytest

from repro.observe import RunLedger


class TestLedgerMath:
    def test_first_observation_seeds_the_ewma(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.json")
        ledger.record("wse::gpt2", 10.0)
        assert ledger.priors() == {"wse::gpt2": 10.0}

    def test_ewma_folds_with_alpha(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.json", alpha=0.5)
        ledger.record("f", 10.0)
        ledger.record("f", 20.0)
        assert ledger.priors()["f"] == 15.0

    def test_typical_seconds_is_mean_of_family_ewmas(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.json")
        assert ledger.typical_seconds() is None
        ledger.record("a", 1.0)
        ledger.record("b", 3.0)
        assert ledger.typical_seconds() == 2.0

    def test_typical_seconds_scopes_to_the_given_families(self, tmp_path):
        # A shared ledger polluted by another campaign's hour-long
        # families must not inflate this run's typical duration.
        ledger = RunLedger(tmp_path / "ledger.json")
        ledger.record("smoke::gpt2", 0.5)
        ledger.record("smoke::llama2", 1.5)
        ledger.record("tier2::llama2", 3600.0)
        assert ledger.typical_seconds(
            {"smoke::gpt2", "smoke::llama2"}) == 1.0
        # Unknown families contribute nothing; no overlap = cold start.
        assert ledger.typical_seconds(
            {"smoke::gpt2", "never-seen"}) == 0.5
        assert ledger.typical_seconds({"never-seen"}) is None
        assert ledger.typical_seconds(set()) is None
        # Unscoped keeps the old global-mean behaviour.
        assert ledger.typical_seconds() == pytest.approx(
            (0.5 + 1.5 + 3600.0) / 3)

    def test_ignores_empty_family_and_nonpositive_durations(self,
                                                            tmp_path):
        ledger = RunLedger(tmp_path / "ledger.json")
        ledger.record("", 5.0)
        ledger.record("f", 0.0)
        ledger.record("f", -1.0)
        assert len(ledger) == 0
        assert not (tmp_path / "ledger.json").exists()

    def test_alpha_validation(self, tmp_path):
        with pytest.raises(ValueError):
            RunLedger(tmp_path / "ledger.json", alpha=0.0)
        with pytest.raises(ValueError):
            RunLedger(tmp_path / "ledger.json", alpha=1.5)


class TestPersistence:
    def test_round_trips_across_instances(self, tmp_path):
        path = tmp_path / "ledger.json"
        first = RunLedger(path)
        first.record("wse::gpt2", 4.0)
        first.record("rdu::llama2", 9.0)
        first.flush()
        second = RunLedger(path)
        assert second.priors() == first.priors()
        assert len(second) == 2

    def test_save_is_atomic(self, tmp_path):
        path = tmp_path / "ledger.json"
        ledger = RunLedger(path)
        ledger.record("f", 1.0)
        ledger.flush()
        assert not path.with_name(path.name + ".tmp").exists()
        payload = json.loads(path.read_text())
        assert payload["v"] == 1
        assert payload["families"]["f"]["count"] == 1

    def test_to_dict_matches_file_shape(self, tmp_path):
        path = tmp_path / "ledger.json"
        ledger = RunLedger(path)
        ledger.record("f", 2.0)
        ledger.flush()
        assert ledger.to_dict() == json.loads(path.read_text())


class TestBatchedSaves:
    """record() is in-memory; the file is written once, by flush().

    The old behaviour — a full fsync'd rewrite of the table inside
    every record() — made ledger IO scale with cell count and dominated
    fast grids (the scheduler observes every cell). These are the
    regression guards: the write count must stay at one per drain.
    """

    def test_record_never_writes(self, tmp_path):
        path = tmp_path / "ledger.json"
        ledger = RunLedger(path)
        for i in range(100):
            ledger.record("f", 1.0 + i)
            ledger.record("g", 2.0 + i)
        assert ledger.saves == 0
        assert not path.exists()

    def test_flush_writes_once_and_is_idempotent(self, tmp_path):
        path = tmp_path / "ledger.json"
        ledger = RunLedger(path)
        for i in range(100):
            ledger.record("f", 1.0 + i)
        ledger.flush()
        assert ledger.saves == 1
        assert path.exists()
        ledger.flush()  # nothing new observed: no second write
        assert ledger.saves == 1

    def test_flush_after_new_observations_writes_again(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.json")
        ledger.record("f", 1.0)
        ledger.flush()
        ledger.record("f", 2.0)
        ledger.flush()
        assert ledger.saves == 2

    def test_clean_flush_is_a_no_op(self, tmp_path):
        path = tmp_path / "ledger.json"
        ledger = RunLedger(path)
        ledger.flush()
        assert ledger.saves == 0
        assert not path.exists()

    def test_explicit_save_writes_unconditionally(self, tmp_path):
        path = tmp_path / "ledger.json"
        ledger = RunLedger(path)
        ledger.save()
        assert ledger.saves == 1
        assert path.exists()


class TestCorruption:
    """A broken ledger degrades to a cold start — never a crash."""

    def cold(self, path):
        with pytest.warns(RuntimeWarning, match="starting cold"):
            ledger = RunLedger(path)
        assert len(ledger) == 0
        return ledger

    def test_garbage_bytes(self, tmp_path):
        path = tmp_path / "ledger.json"
        path.write_bytes(b"\x00\xffnot json at all")
        self.cold(path)

    def test_truncated_json(self, tmp_path):
        path = tmp_path / "ledger.json"
        path.write_text('{"v": 1, "families": {"f": {"count": 3')
        self.cold(path)

    def test_wrong_top_level_shape(self, tmp_path):
        path = tmp_path / "ledger.json"
        path.write_text("[1, 2, 3]")
        self.cold(path)

    def test_missing_families_table(self, tmp_path):
        path = tmp_path / "ledger.json"
        path.write_text('{"v": 1}')
        self.cold(path)

    def test_malformed_rows_dropped_not_fatal(self, tmp_path):
        path = tmp_path / "ledger.json"
        path.write_text(json.dumps({"v": 1, "families": {
            "good": {"count": 2, "ewma_seconds": 3.0,
                     "total_seconds": 6.0},
            "bad": {"count": "many"},
            "negative": {"count": 1, "ewma_seconds": -1.0},
        }}))
        with pytest.warns(RuntimeWarning, match="2 malformed"):
            ledger = RunLedger(path)
        assert ledger.priors() == {"good": 3.0}

    def test_recovers_by_rewriting_on_next_save(self, tmp_path):
        path = tmp_path / "ledger.json"
        path.write_text("garbage")
        ledger = self.cold(path)
        ledger.record("f", 1.0)
        ledger.flush()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # reload must not warn now
            assert RunLedger(path).priors() == {"f": 1.0}

    def test_missing_file_is_a_silent_cold_start(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ledger = RunLedger(tmp_path / "absent.json")
        assert len(ledger) == 0
