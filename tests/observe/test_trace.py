"""TraceRecorder / trace merge determinism / Chrome export."""

import json
import random

from repro.observe import (
    TraceEvent,
    TraceRecorder,
    events_for_key,
    load_events,
    merge_events,
    merged_trace_text,
    new_run_token,
    summarize_events,
    to_chrome_events,
    trace_shard_paths,
    write_chrome_trace,
)


def lifecycle(key, attempt=1):
    """A realistic per-cell event set, deliberately out of order."""
    return [
        TraceEvent("cell", key=key, status="ok", attempt=attempt,
                   ts=5.0, duration=2.0),
        TraceEvent("run", key=key, phase="run", status="ok",
                   attempt=attempt, ts=4.0, duration=1.0),
        TraceEvent("schedule", key=key, status="lane-major", ts=1.0),
        TraceEvent("compile", key=key, phase="compile", status="ok",
                   attempt=attempt, ts=3.0, duration=0.5),
        TraceEvent("dispatch", key=key, ts=2.0),
    ]


class TestTraceEvent:
    def test_round_trip(self):
        event = TraceEvent("retry", key="a::L2", phase="compile",
                           status="error", attempt=2, ts=1.5,
                           duration=0.0, seq=7,
                           meta={"error": "CompilerCrashError"})
        back = TraceEvent.from_dict(event.to_dict(), writer="w")
        assert back.name == event.name
        assert back.key == event.key
        assert back.attempt == 2
        assert back.meta == {"error": "CompilerCrashError"}
        assert back.writer == "w"

    def test_canonical_excludes_volatile_fields(self):
        event = TraceEvent("run", key="k", phase="run", status="ok",
                           attempt=1, ts=123.4, duration=9.9,
                           writer="shard-x", seq=42, meta={"pid": 1})
        assert event.canonical() == {"key": "k", "name": "run",
                                     "phase": "run", "status": "ok",
                                     "attempt": 1}


class TestRecorder:
    def test_emit_and_load(self, tmp_path):
        recorder = TraceRecorder(tmp_path, run="abcd1234")
        recorder.emit("schedule", key="wse::L2", status="lane-major")
        recorder.emit("compile", key="wse::L2", phase="compile",
                      status="ok", attempt=1, duration=0.5)
        events = load_events(tmp_path, run="abcd1234")
        assert [e.name for e in events] == ["schedule", "compile"]
        assert events[1].duration == 0.5
        assert events[0].seq == 1 and events[1].seq == 2

    def test_run_token_filters_shards(self, tmp_path):
        TraceRecorder(tmp_path, run="run1aaaa").emit("cell", key="a")
        TraceRecorder(tmp_path, run="run2bbbb").emit("cell", key="b")
        assert len(load_events(tmp_path)) == 2
        only = load_events(tmp_path, run="run1aaaa")
        assert [e.key for e in only] == ["a"]
        assert len(trace_shard_paths(tmp_path)) == 2
        assert len(trace_shard_paths(tmp_path, run="run2bbbb")) == 1

    def test_torn_lines_are_skipped(self, tmp_path):
        recorder = TraceRecorder(tmp_path, run="cafe0000")
        recorder.emit("cell", key="good")
        shard = trace_shard_paths(tmp_path)[0]
        with shard.open("a") as handle:
            handle.write('{"name": "cell", "key": "torn", "ts"')
        events = load_events(tmp_path)
        assert [e.key for e in events] == ["good"]

    def test_emit_never_raises_on_io_failure(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("")
        # mkdir/open under a file path fails with OSError; telemetry
        # must swallow it rather than kill the cell being traced.
        TraceRecorder(blocker / "sub").emit("cell", key="k")

    def test_run_tokens_are_fresh(self):
        assert new_run_token() != new_run_token()
        assert len(new_run_token()) == 8


class TestDeterministicMerge:
    def test_merge_is_shuffle_invariant(self):
        events = lifecycle("a::L2") + lifecycle("a::L3") + [
            TraceEvent("retry", key="a::L2", phase="compile",
                       status="error", attempt=1, ts=9.0),
            TraceEvent("pool-rebuild", attempt=1, ts=8.0),
        ]
        reference = merged_trace_text(events)
        rng = random.Random(0)
        for _ in range(25):
            shuffled = list(events)
            rng.shuffle(shuffled)
            assert merged_trace_text(shuffled) == reference

    def test_merge_ignores_timestamps_and_writers(self):
        base = lifecycle("k")
        jittered = [TraceEvent(e.name, key=e.key, phase=e.phase,
                               status=e.status, attempt=e.attempt,
                               ts=e.ts + 100.0, duration=e.duration * 3,
                               writer="other", seq=e.seq + 50)
                    for e in base]
        assert merged_trace_text(base) == merged_trace_text(jittered)

    def test_lifecycle_rank_orders_within_a_cell(self):
        ordered = merge_events(lifecycle("k"))
        assert [e.name for e in ordered] == \
            ["schedule", "dispatch", "compile", "run", "cell"]

    def test_unknown_names_sort_after_lifecycle(self):
        events = [TraceEvent("zz-custom", key="k", attempt=1, ts=0.0),
                  TraceEvent("cell", key="k", attempt=1, ts=1.0)]
        ordered = merge_events(events)
        assert [e.name for e in ordered] == ["cell", "zz-custom"]

    def test_text_is_json_lines_of_canonical_fields(self):
        text = merged_trace_text(lifecycle("k"))
        lines = text.strip().splitlines()
        assert len(lines) == 5
        for line in lines:
            assert set(json.loads(line)) == \
                {"key", "name", "phase", "status", "attempt"}


class TestQueries:
    def test_events_for_key_in_causal_order(self):
        events = lifecycle("a") + lifecycle("b")
        mine = events_for_key(events, "a")
        assert all(e.key == "a" for e in mine)
        assert [e.ts for e in mine] == sorted(e.ts for e in mine)

    def test_summarize_counts_names(self):
        counts = summarize_events(lifecycle("a") + lifecycle("b"))
        assert counts == {"cell": 2, "compile": 2, "dispatch": 2,
                          "run": 2, "schedule": 2}


class TestEpochNormalization:
    """Monotonic epochs are per-process: each shard's header records
    its writer's wall-minus-monotonic offset, and the loader shifts
    stamps onto one timeline. These shards are synthetic — real worker
    processes differ by whatever their boots/namespaces dictate."""

    RUN = "feed0000"

    def write_shard(self, tmp_path, n, events, epoch=None, pid=1):
        lines = []
        if epoch is not None:
            lines.append(json.dumps({"v": 1, "header": True,
                                     "epoch": epoch}))
        lines += [json.dumps({"v": 1, "seq": i + 1, **e})
                  for i, e in enumerate(events)]
        path = (tmp_path
                / f"trace-{self.RUN}-{pid}-aaaa-{n:03d}.jsonl")
        path.write_text("".join(line + "\n" for line in lines))
        return path

    def test_skewed_shards_merge_onto_one_timeline(self, tmp_path):
        # Parent process: monotonic epoch 1000s behind the wall clock.
        # Its dispatch (wall 1005) and terminal cell event (wall 1009).
        self.write_shard(tmp_path, 0, [
            {"name": "dispatch", "key": "k", "ts": 5.0},
            {"name": "cell", "key": "k", "status": "ok", "ts": 9.0},
        ], epoch=1000.0, pid=1)
        # Worker process: epoch 500s behind the wall clock. Raw stamps
        # (506, 507) dwarf the parent's (5, 9) — sorting raw stamps
        # would put the terminal "cell" *before* the work it reports.
        self.write_shard(tmp_path, 0, [
            {"name": "compile", "key": "k", "phase": "compile",
             "status": "ok", "ts": 506.0},
            {"name": "run", "key": "k", "phase": "run",
             "status": "ok", "ts": 507.0},
        ], epoch=500.0, pid=2)
        events = load_events(tmp_path, run=self.RUN)
        assert [e.name for e in events] == \
            ["dispatch", "compile", "run", "cell"]
        # Shifted by offset - min(offsets): the lower-offset shard is
        # the anchor and stays put.
        assert [e.ts for e in events] == [505.0, 506.0, 507.0, 509.0]
        assert [e.name for e in events_for_key(events, "k")] == \
            ["dispatch", "compile", "run", "cell"]

    def test_single_process_trace_is_returned_unshifted(self, tmp_path):
        # All shards share one offset: stamps come back bit-for-bit.
        for n, ts in ((0, 3.25), (1, 1.75)):
            self.write_shard(tmp_path, n, [
                {"name": "cell", "key": f"k{n}", "ts": ts},
            ], epoch=1234.5)
        events = load_events(tmp_path, run=self.RUN)
        assert [e.ts for e in events] == [1.75, 3.25]

    def test_headerless_shard_is_tolerated_unshifted(self, tmp_path):
        # A pre-header (or torn-at-birth) shard has no epoch line; its
        # stamps pass through, and the sole headered shard anchors the
        # timeline (offset == base), so nothing shifts anywhere.
        self.write_shard(tmp_path, 0, [
            {"name": "dispatch", "key": "k", "ts": 5.0},
        ], epoch=1000.0, pid=1)
        self.write_shard(tmp_path, 0, [
            {"name": "legacy", "key": "k", "ts": 2.0},
        ], epoch=None, pid=2)
        events = load_events(tmp_path, run=self.RUN)
        assert {(e.name, e.ts) for e in events} == \
            {("dispatch", 5.0), ("legacy", 2.0)}

    def test_header_line_is_not_an_event(self, tmp_path):
        recorder = TraceRecorder(tmp_path, run=self.RUN)
        recorder.emit("cell", key="k")
        shard = trace_shard_paths(tmp_path, run=self.RUN)[0]
        first = json.loads(shard.read_text().splitlines()[0])
        assert first["header"] is True
        assert isinstance(first["epoch"], float)
        events = load_events(tmp_path, run=self.RUN)
        assert [e.name for e in events] == ["cell"]


class TestChromeExport:
    def test_spans_and_instants(self):
        payload = to_chrome_events(merge_events(lifecycle("k")),
                                   process_name="test")
        records = payload["traceEvents"]
        assert payload["displayTimeUnit"] == "ms"
        metas = [r for r in records if r["ph"] == "M"]
        assert metas[0]["args"]["name"] == "test"
        spans = [r for r in records if r["ph"] == "X"]
        instants = [r for r in records if r["ph"] == "i"]
        assert len(spans) == 3  # compile, run, cell carry durations
        assert len(instants) == 2  # schedule, dispatch
        for span in spans:
            assert span["dur"] > 0
            assert span["ts"] >= 0

    def test_span_start_shifted_back_by_duration(self):
        events = [TraceEvent("compile", key="k", phase="compile",
                             status="ok", attempt=1, ts=10.0,
                             duration=2.0),
                  TraceEvent("dispatch", key="k", ts=8.0)]
        records = to_chrome_events(events)["traceEvents"]
        span = next(r for r in records if r["ph"] == "X")
        # origin is ts=8.0; the compile span ended at 10.0 after 2.0s,
        # so it must start at the origin.
        assert span["ts"] == 0.0
        assert span["dur"] == 2.0 * 1e6

    def test_write_chrome_trace(self, tmp_path):
        path = write_chrome_trace(lifecycle("k"),
                                  tmp_path / "out" / "trace.json")
        assert path.exists()
        assert json.loads(path.read_text())["traceEvents"]
