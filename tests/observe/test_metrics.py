"""MetricsRegistry determinism and per-lane trace aggregation."""

import pytest

from repro.observe import (
    MetricsRegistry,
    TraceEvent,
    aggregate_observability,
)


class TestRegistry:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.count("cells")
        registry.count("cells", 2)
        registry.gauge("workers", 4)
        assert registry.counter_value("cells") == 3
        assert registry.gauge_value("workers") == 4
        assert registry.gauge_value("missing") is None
        assert registry.counter_value("missing") == 0.0

    def test_histogram_exact_aggregates(self):
        registry = MetricsRegistry()
        for value in (1.0, 3.0, 2.0):
            registry.observe("lat", value)
        hist = registry.histogram("lat")
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.minimum == 1.0
        assert hist.maximum == 3.0
        assert hist.mean == 2.0
        assert hist.to_dict()["sample"] == [1.0, 3.0, 2.0]

    def test_reservoir_is_seeded_deterministic(self):
        # Same seed + same stream => identical reservoir, even past the
        # reservoir bound (the eviction RNG is CRC32-derived, not the
        # per-process-salted hash()).
        a = MetricsRegistry(seed=7, reservoir_size=8)
        b = MetricsRegistry(seed=7, reservoir_size=8)
        for i in range(200):
            a.observe("lat", float(i))
            b.observe("lat", float(i))
        assert a.histogram("lat").sample == b.histogram("lat").sample
        assert len(a.histogram("lat").sample) == 8
        c = MetricsRegistry(seed=8, reservoir_size=8)
        for i in range(200):
            c.observe("lat", float(i))
        assert c.histogram("lat").sample != a.histogram("lat").sample

    def test_to_dict_is_sorted_and_json_friendly(self):
        import json

        registry = MetricsRegistry()
        registry.count("b")
        registry.count("a")
        registry.observe("h", 1.0)
        payload = registry.to_dict()
        assert list(payload["counters"]) == ["a", "b"]
        json.dumps(payload)

    def test_reservoir_size_must_be_positive(self):
        with pytest.raises(ValueError):
            MetricsRegistry(reservoir_size=0)


def chaos_trace(lane="wse"):
    key = f"{lane}::L4"
    return [
        TraceEvent("dispatch", key=key),
        TraceEvent("compile", key=key, phase="compile", status="ok",
                   attempt=1, duration=0.5),
        TraceEvent("run", key=key, phase="run", status="ok", attempt=1,
                   duration=1.5),
        TraceEvent("retry", key=key, phase="run", status="error",
                   attempt=1),
        TraceEvent("gate", key=key, phase="gate", status="gated",
                   attempt=2),
        TraceEvent("sigkill", key=key, status="deadline"),
        TraceEvent("worker-crash", key=key, attempt=1),
        TraceEvent("isolate", key=key, attempt=1),
        TraceEvent("worker-crash", key=key, attempt=2),
        TraceEvent("quarantine", key=key, attempt=2),
        TraceEvent("cell", key=key, status="failed", attempt=2),
        TraceEvent("pool-rebuild", attempt=1),  # lane-less: dropped
    ]


class TestAggregateObservability:
    def test_rollup_per_lane(self):
        rows = aggregate_observability(chaos_trace("wse"),
                                       ["wse", "idle"])
        by_lane = {row.lane: row for row in rows}
        wse = by_lane["wse"]
        assert wse.events == 11  # all but the lane-less pool-rebuild
        assert wse.cells == 1
        assert wse.compile_seconds == 0.5
        assert wse.run_seconds == 1.5
        assert wse.retries == 1
        assert wse.gated == 1
        assert wse.sigkills == 1
        assert wse.worker_crashes == 2
        assert wse.isolations == 1
        assert wse.quarantines == 1
        idle = by_lane["idle"]
        assert idle.events == 0 and idle.cells == 0

    def test_registry_folding(self):
        registry = MetricsRegistry()
        aggregate_observability(chaos_trace("wse"), ["wse"],
                                registry=registry)
        assert registry.counter_value("wse.cells") == 1
        assert registry.counter_value("wse.sigkills") == 1
        assert registry.histogram("wse.compile_seconds").total == 0.5
        assert registry.histogram("wse.run_seconds").total == 1.5

    def test_lane_attribution_needs_exact_prefix(self):
        # "wse2::..." must not leak into lane "wse".
        events = [TraceEvent("cell", key="wse2::L2", status="ok")]
        rows = aggregate_observability(events, ["wse"])
        assert rows[0].events == 0
