"""Smoke tests: every shipped example runs end-to-end.

Examples are documentation that executes; these tests keep them from
rotting as the library evolves. Each main() must complete and print the
sections its docstring promises.
"""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(autouse=True)
def examples_on_path():
    sys.path.insert(0, str(EXAMPLES_DIR))
    yield
    sys.path.remove(str(EXAMPLES_DIR))


def run_example(name: str, capsys) -> str:
    module = importlib.import_module(name)
    module.main()
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "Profiling gpt2-small" in out
    assert "compute-bound" in out
    assert "largest 768-hidden decoder stack" in out


def test_compare_compile_modes(capsys):
    out = run_example("compare_compile_modes", capsys)
    for mode in ("O0", "O1", "O3"):
        assert mode in out
    assert "Insight:" in out


def test_deployment_planner(capsys):
    out = run_example("deployment_planner", capsys)
    assert "Batch-size scaling" in out
    assert "Precision options" in out
    assert "WSE-2" in out and "RDU" in out and "IPU" in out


def test_scaling_study(capsys):
    out = run_example("scaling_study", capsys)
    assert "intra-chip data parallelism" in out
    assert "tensor parallelism" in out
    assert "pipeline parallelism" in out
    assert "bottleneck" in out


def test_capability_limits(capsys):
    out = run_example("capability_limits", capsys)
    assert "CS-2 (1 chip)" in out
    assert "TP >=" in out
    assert "configuration memory" in out


def test_figures_and_energy(capsys):
    out = run_example("figures_and_energy", capsys)
    assert "Fig. 9a (repro)" in out
    assert "Fig. 12 (repro)" in out
    assert "tokens per joule" in out


def test_campaign_scheduling(capsys):
    out = run_example("campaign_scheduling", capsys)
    assert "makespan  32.0s" in out
    assert "makespan  24.0s" in out
    assert "cuts the makespan 25%" in out
    assert "MAE   0.00s" in out  # the oracle predictor is exact
    assert "Scheduling" in out
    assert "longest-first" in out


def test_inference_study(capsys):
    out = run_example("inference_study", capsys)
    assert "Training vs inference" in out
    assert "decode roofline" in out
    assert "speedup" in out
