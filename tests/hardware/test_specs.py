"""Hardware spec presets — the paper's Sec. II numbers."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import GB, TB
from repro.hardware.specs import (
    A100_GPU,
    BOW2000_SYSTEM,
    BOW_IPU,
    BOW_POD,
    ChipSpec,
    CS2_SYSTEM,
    GPU_CLUSTER,
    MemoryLevel,
    SN30_RDU,
    SN30_SYSTEM,
    SystemSpec,
    WSE2,
)


class TestPaperNumbers:
    def test_wse2_pe_count(self):
        assert WSE2.compute_units == 850_000

    def test_wse2_memory(self):
        assert WSE2.shared_memory.capacity_bytes == 40 * GB
        assert WSE2.shared_memory.bandwidth == 20e15  # 20 PB/s

    def test_wse2_fabric(self):
        assert WSE2.fabric_bandwidth == 220e15  # 220 PB/s

    def test_wse2_unified_global_tier(self):
        # "WSE using on-chip memory as both shared and global memory".
        assert WSE2.global_memory is WSE2.shared_memory

    def test_rdu_unit_counts(self):
        # 4 tiles x 160 PCUs and 160 PMUs.
        assert SN30_RDU.compute_units == 640
        assert SN30_RDU.memory_units == 640
        assert SN30_RDU.compute_unit_name == "PCU"
        assert SN30_RDU.memory_unit_name == "PMU"

    def test_rdu_ddr_bandwidth(self):
        # The paper's "only 0.2 TB/s".
        assert SN30_RDU.global_memory.bandwidth == pytest.approx(0.2 * TB)

    def test_ipu_tiles(self):
        assert BOW_IPU.compute_units == 1472

    def test_ipu_exchange(self):
        assert BOW_IPU.fabric_bandwidth == 8 * TB

    def test_sn30_two_rdus_per_machine(self):
        assert SN30_SYSTEM.chips_per_node == 2

    def test_bow2000_four_ipus(self):
        assert BOW2000_SYSTEM.chips_per_node == 4


class TestDerivedQuantities:
    def test_flops_per_pe(self):
        assert WSE2.flops_per_compute_unit == pytest.approx(
            WSE2.peak_flops / 850_000)

    def test_pe_local_sram_48kb(self):
        assert WSE2.shared_memory_per_unit == pytest.approx(
            40 * GB / 850_000)

    def test_ridge_intensities_order(self):
        # WSE's on-chip tier puts its ridge far left; DDR platforms far
        # right — the Fig. 10 classification.
        assert WSE2.ridge_intensity < 1.0
        assert SN30_RDU.ridge_intensity > 100.0
        assert BOW_IPU.ridge_intensity > 42.0

    def test_efficiency_anchors(self):
        # Peak figures are chosen so the paper's reported efficiencies
        # land at the reported TFLOPs (Sec. V-C2).
        assert 330e12 / WSE2.peak_flops == pytest.approx(0.20, abs=0.03)
        assert 50.6e12 / SN30_RDU.peak_flops == pytest.approx(0.182, abs=0.01)
        assert 143e12 / BOW_IPU.peak_flops == pytest.approx(0.41, abs=0.01)


class TestValidation:
    def test_memory_level_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            MemoryLevel("x", capacity_bytes=0, bandwidth=1.0)

    def test_chip_rejects_zero_units(self):
        with pytest.raises(ConfigurationError):
            ChipSpec(name="x", vendor="v", compute_units=0,
                     compute_unit_name="u", memory_units=1,
                     memory_unit_name="u", peak_flops=1.0,
                     shared_memory=WSE2.shared_memory,
                     global_memory=WSE2.global_memory,
                     fabric_bandwidth=1.0)

    def test_system_rejects_zero_nodes(self):
        with pytest.raises(ConfigurationError):
            SystemSpec(name="x", chip=WSE2, chips_per_node=1, max_nodes=0)


class TestSystemHelpers:
    def test_total_chips(self):
        assert BOW_POD.total_chips == 64
        assert SN30_SYSTEM.total_chips == 8

    def test_nodes_for_chips(self):
        assert SN30_SYSTEM.nodes_for_chips(2) == 1
        assert SN30_SYSTEM.nodes_for_chips(3) == 2
        assert SN30_SYSTEM.nodes_for_chips(8) == 4

    def test_nodes_for_chips_overflow(self):
        with pytest.raises(ConfigurationError):
            SN30_SYSTEM.nodes_for_chips(9)

    def test_nodes_for_chips_invalid(self):
        with pytest.raises(ConfigurationError):
            CS2_SYSTEM.nodes_for_chips(0)

    def test_gpu_cluster_size(self):
        assert GPU_CLUSTER.chips_per_node == 8
        assert GPU_CLUSTER.total_chips >= 1024

    def test_a100_peak(self):
        assert A100_GPU.peak_flops == pytest.approx(312e12)
