"""CS-3 preset and its behaviour as a drop-in Cerebras system."""

import pytest

from repro import CerebrasBackend, TrainConfig, gpt2_model
from repro.core.metrics import allocation_ratio
from repro.hardware.specs import CS2_SYSTEM, CS3_SYSTEM, WSE2, WSE3


class TestSpec:
    def test_generation_scaling(self):
        assert WSE3.compute_units > WSE2.compute_units
        assert WSE3.peak_flops > WSE2.peak_flops
        assert (WSE3.shared_memory.capacity_bytes
                > WSE2.shared_memory.capacity_bytes)

    def test_faster_streaming_feed(self):
        assert (CS3_SYSTEM.host_link_bandwidth
                > CS2_SYSTEM.host_link_bandwidth)


class TestDropIn:
    """The framework's generality claim extends to a future chip: the
    same compiler/runtime drive the CS-3 spec without code changes."""

    @pytest.fixture(scope="class")
    def cs3(self):
        return CerebrasBackend(CS3_SYSTEM)

    def test_compiles_and_runs(self, cs3):
        train = TrainConfig(batch_size=64, seq_len=1024)
        compiled, run = cs3.compile_and_run(gpt2_model("small"), train)
        assert compiled.platform == "CS-3"
        assert run.tokens_per_second > 0

    def test_bigger_wafer_fits_more_layers(self, cs3):
        from repro.core.tier1 import Tier1Profiler
        train = TrainConfig(batch_size=64, seq_len=1024)
        cs2_limit = Tier1Profiler(CerebrasBackend()).max_feasible(
            gpt2_model("small"), train, upper=96)
        cs3_limit = Tier1Profiler(cs3).max_feasible(
            gpt2_model("small"), train, upper=96)
        assert cs3_limit > cs2_limit

    def test_faster_at_saturation(self, cs3):
        train = TrainConfig(batch_size=256, seq_len=1024)
        model = gpt2_model("small").with_layers(24)
        cs2_run = CerebrasBackend().run(
            CerebrasBackend().compile(model, train))
        cs3_run = cs3.run(cs3.compile(model, train))
        assert cs3_run.achieved_flops > cs2_run.achieved_flops

    def test_allocation_curve_shape_preserved(self, cs3):
        train = TrainConfig(batch_size=64, seq_len=1024)
        small = allocation_ratio(cs3.compile(
            gpt2_model("small").with_layers(1), train))
        saturated = allocation_ratio(cs3.compile(
            gpt2_model("small").with_layers(36), train))
        assert small < 0.5
        assert saturated > 0.85

    def test_cheaper_weight_streaming(self, cs3):
        """The CS-3's faster MemoryX feed narrows the streaming gap."""
        train = TrainConfig(batch_size=128, seq_len=1024)
        model = gpt2_model("small")
        pipe = cs3.run(cs3.compile(model, train))
        stream = cs3.run(cs3.compile(model, train,
                                     mode="weight_streaming"))
        assert stream.tokens_per_second >= 0.75 * pipe.tokens_per_second
