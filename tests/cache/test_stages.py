"""Staged compile memoization: ``CompileStage``, ``run_stages``,
``StageMemo``, and the cache's stage tier.

The campaign-level story — thread and process dispatch sharing
upstream compile work, byte-identical results, the Observability
rollup — lives in ``benchmarks/test_cold_campaign.py`` and
``tests/integration/``. This file pins the unit contracts: fold
semantics, the backward probe, per-stage counters, spill round-trips,
the thundering herd, the prune/reader race, and the memoized config
digests the fingerprints are built from.
"""

import threading
import warnings

import pytest

from repro.cache import (
    CompileCache,
    StageMemo,
    canonical_fingerprint,
    cell_fingerprint,
)
from repro.core.stages import (
    STAGE_GRAPH,
    STAGE_REPORT,
    CompileStage,
    run_stages,
    unfingerprinted,
)
from repro.models.config import TrainConfig, gpt2_model
from repro.workloads.reference import CpuBoundBackend


def fp(tag):
    return canonical_fingerprint({"tag": tag})


def two_stages(calls, graph_fp, report_fp):
    """graph -> report, logging every compute into ``calls``."""
    def build_graph(_prev):
        calls.append("graph")
        return {"nodes": 3}

    def report(graph):
        calls.append("report")
        return {"from": graph["nodes"]}

    return [CompileStage(STAGE_GRAPH, graph_fp, build_graph),
            CompileStage(STAGE_REPORT, report_fp, report)]


class FakeTracer:
    def __init__(self):
        self.events = []

    def emit(self, name, **fields):
        self.events.append((name, fields))


class TestRunStages:
    def test_without_memo_is_a_plain_fold(self):
        calls = []
        result = run_stages(two_stages(calls, fp("g"), fp("r")))
        assert result == {"from": 3}
        assert calls == ["graph", "report"]

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            run_stages([])

    def test_unfingerprinted_disables_memoization(self):
        assert unfingerprinted(STAGE_GRAPH, "", n_layers=4) is None
        calls = []
        memo = StageMemo()
        for _ in range(2):
            run_stages(two_stages(calls, None, None), memo)
        assert calls == ["graph", "report"] * 2
        assert memo.stats() == {"hits": {}, "misses": {}}


class TestStageMemo:
    def test_miss_then_full_prefix_hit(self):
        calls = []
        memo = StageMemo()
        first = run_stages(two_stages(calls, fp("g"), fp("r")), memo)
        second = run_stages(two_stages(calls, fp("g"), fp("r")), memo)
        # Second run computed nothing — the backward probe found the
        # report stage memoized, which proves the whole prefix matched.
        assert calls == ["graph", "report"]
        assert second is first
        assert memo.stats() == {
            "hits": {STAGE_GRAPH: 1, STAGE_REPORT: 1},
            "misses": {STAGE_GRAPH: 1, STAGE_REPORT: 1},
        }

    def test_shared_upstream_partial_hit(self):
        calls = []
        memo = StageMemo()
        run_stages(two_stages(calls, fp("g"), fp("r1")), memo)
        run_stages(two_stages(calls, fp("g"), fp("r2")), memo)
        # The cells differ only downstream: one graph burn, two reports.
        assert calls == ["graph", "report", "report"]
        assert memo.stats()["hits"] == {STAGE_GRAPH: 1}
        assert memo.stats()["misses"] == {STAGE_GRAPH: 1,
                                          STAGE_REPORT: 2}

    def test_unfingerprinted_middle_stage_always_recomputes(self):
        calls = []

        def pipeline():
            stages = two_stages(calls, fp("g"), fp("r"))
            def middle(artifact):
                calls.append("middle")
                return artifact
            stages.insert(1, CompileStage("middle", None, middle))
            return stages

        memo = StageMemo()
        run_stages(pipeline(), memo)
        run_stages(pipeline(), memo)
        # The probe's report hit satisfies everything upstream, the
        # unfingerprinted stage included — it only recomputes when it
        # actually sits on the recomputed suffix.
        assert calls == ["graph", "middle", "report"]
        assert "middle" not in memo.stats()["misses"]

    def test_one_trace_event_per_fingerprinted_stage(self):
        memo = StageMemo()
        tracer = FakeTracer()
        run_stages(two_stages([], fp("g"), fp("r")), memo,
                   key="cell-1", tracer=tracer)
        run_stages(two_stages([], fp("g"), fp("r")), memo,
                   key="cell-2", tracer=tracer)
        assert [(n, f["key"], f["phase"], f["status"])
                for n, f in tracer.events] == [
            ("stage_cache", "cell-1", STAGE_GRAPH, "miss"),
            ("stage_cache", "cell-1", STAGE_REPORT, "miss"),
            ("stage_cache", "cell-2", STAGE_GRAPH, "hit"),
            ("stage_cache", "cell-2", STAGE_REPORT, "hit"),
        ]

    def test_thundering_herd_computes_once(self):
        calls = []
        memo = StageMemo()
        barrier = threading.Barrier(8)
        results = []

        def race():
            barrier.wait()
            results.append(
                run_stages(two_stages(calls, fp("g"), fp("r")), memo))

        threads = [threading.Thread(target=race) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Of 8 threads racing the same cold pipeline, one computed and
        # the other 7 blocked on the per-fingerprint lock, then
        # replayed the same artifact object.
        assert calls.count("graph") == 1
        assert calls.count("report") == 1
        assert all(r is results[0] for r in results)
        stats = memo.stats()
        assert stats["misses"][STAGE_REPORT] == 1
        assert stats["hits"][STAGE_REPORT] == 7


class TestStageSpill:
    def test_round_trip_across_memos(self, tmp_path):
        calls = []
        cache = CompileCache(tmp_path)
        run_stages(two_stages(calls, fp("g"), fp("r")),
                   StageMemo(spill=cache))
        # A fresh memo — another worker process — finds the artifacts
        # through the spill without recomputing anything.
        fresh = StageMemo(spill=cache)
        result = run_stages(two_stages(calls, fp("g"), fp("r")), fresh)
        assert calls == ["graph", "report"]
        assert result == {"from": 3}
        assert fresh.stats()["hits"] == {STAGE_GRAPH: 1,
                                         STAGE_REPORT: 1}

    def test_stage_tier_is_invisible_to_cell_accounting(self, tmp_path):
        cache = CompileCache(tmp_path)
        run_stages(two_stages([], fp("g"), fp("r")),
                   StageMemo(spill=cache))
        assert len(cache) == 0
        assert cache.entries() == []
        assert sorted(cache.stage_entries()) == [STAGE_GRAPH,
                                                 STAGE_REPORT]

    def test_corrupt_spilled_artifact_degrades_to_miss(self, tmp_path):
        cache = CompileCache(tmp_path)
        path = cache.stage_path(STAGE_GRAPH, fp("g"))
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            found, artifact = cache.stage_lookup(STAGE_GRAPH, fp("g"))
        assert (found, artifact) == (False, None)
        assert not path.exists()  # dropped so it can be rewritten
        calls = []
        run_stages(two_stages(calls, fp("g"), fp("r")),
                   StageMemo(spill=cache))
        assert calls == ["graph", "report"]

    def test_foreign_stage_artifact_dropped(self, tmp_path):
        cache = CompileCache(tmp_path)
        assert cache.stage_store(STAGE_GRAPH, fp("g"), 123)
        moved = cache.stage_path(STAGE_REPORT, fp("g"))
        moved.parent.mkdir(parents=True)
        moved.write_bytes(
            cache.stage_path(STAGE_GRAPH, fp("g")).read_bytes())
        with pytest.warns(RuntimeWarning, match="fingerprint/schema"):
            found, _ = cache.stage_lookup(STAGE_REPORT, fp("g"))
        assert not found
        assert not moved.exists()


class TestPruneRace:
    """``prune()`` and readers share a directory with no lock; either
    side may see the other's unlink mid-operation. Both must degrade
    to a miss or a skipped victim — never an exception."""

    def test_reader_sees_pruned_entry_as_plain_miss(self, tmp_path):
        cache = CompileCache(tmp_path)
        cache.store(fp("a"), {"x": 1})
        assert cache.lookup(fp("a")) is not None
        assert cache.prune(max_entries=0) == 1
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.lookup(fp("a")) is None
        assert cache.stats()["misses"] == 1

    def test_prune_survives_entries_vanishing_underneath(
            self, tmp_path, monkeypatch):
        cache = CompileCache(tmp_path)
        for i in range(4):
            cache.store(fp(i), i)
        stale = cache.entries()
        # A reader's corrupt-entry drop (or another parent's prune)
        # unlinks one victim between the listing and the unlink.
        stale[0].unlink()
        monkeypatch.setattr(cache, "entries", lambda: stale)
        assert cache.prune(max_entries=1) == 2
        assert len(CompileCache(tmp_path)) == 1

    def test_prune_races_concurrent_readers(self, tmp_path):
        cache = CompileCache(tmp_path)
        fingerprints = [fp(i) for i in range(8)]
        stop = threading.Event()
        failures = []

        def read_loop():
            reader = CompileCache(tmp_path)
            try:
                while not stop.is_set():
                    for f in fingerprints:
                        entry = reader.lookup(f)
                        assert entry is None or entry.compiled == f
            except Exception as exc:  # noqa: BLE001 — the assertion
                failures.append(exc)

        threads = [threading.Thread(target=read_loop)
                   for _ in range(3)]
        for t in threads:
            t.start()
        try:
            for _ in range(50):
                for f in fingerprints:
                    cache.store(f, f)
                cache.prune(max_entries=2)
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert failures == []


class TestMemoizedConfigDigests:
    def test_digest_cached_on_the_instance(self):
        # A fresh instance — the shared presets may carry a digest
        # cached by any earlier cell in the session.
        model = gpt2_model("mini").with_layers(7)
        assert "_digest" not in model.__dict__
        digest = model.content_digest()
        assert model.__dict__["_digest"] == digest
        assert model.content_digest() == digest

    def test_cell_fingerprint_serializes_each_config_once(
            self, monkeypatch):
        import repro.models.config as config_mod

        calls = []
        real = config_mod._canonical_json

        def counting(payload):
            calls.append(payload)
            return real(payload)

        monkeypatch.setattr(config_mod, "_canonical_json", counting)
        backend = CpuBoundBackend()
        # A fresh instance, not the shared preset — a preset's digest
        # may already be cached by earlier cells (that is the point).
        model = gpt2_model("mini").with_layers(5)
        train = TrainConfig(batch_size=8, seq_len=64)
        keys = {cell_fingerprint(backend, model, train)
                for _ in range(5)}
        assert len(keys) == 1
        # Five cells, two serializations: one per config object.
        assert len(calls) == 2
        cell_fingerprint(backend, model,
                         TrainConfig(batch_size=16, seq_len=64))
        assert len(calls) == 3

    def test_distinct_configs_get_distinct_digests(self):
        base = gpt2_model("mini")
        assert (base.content_digest()
                != base.with_layers(base.n_layers + 1).content_digest())
