"""CompileCache unit contracts: fingerprints, atomic publish,
corruption tolerance, eviction, and the engine-facing read-through.
"""

import os
import pickle
import threading
import warnings

import pytest

from repro.cache import (
    CACHE_VERSION,
    CompileCache,
    cached_outcome,
    canonical_fingerprint,
    cell_fingerprint,
    store_outcome,
)
from repro.common.errors import ErrorRecord
from repro.models.config import TrainConfig, gpt2_model
from repro.resilience import FaultInjectingBackend, FaultPlan
from repro.resilience.executor import CellOutcome
from repro.resilience.journal import STATUS_FAILED, STATUS_OK
from repro.workloads.reference import CpuBoundBackend


def train():
    return TrainConfig(batch_size=4, seq_len=64)


class TestCanonicalFingerprint:
    def test_key_order_cannot_perturb_the_digest(self):
        assert (canonical_fingerprint({"a": 1, "b": 2})
                == canonical_fingerprint({"b": 2, "a": 1}))

    def test_value_changes_change_the_digest(self):
        assert (canonical_fingerprint({"a": 1})
                != canonical_fingerprint({"a": 2}))

    def test_non_json_values_serialize_through_str(self):
        fp = canonical_fingerprint({"path": object()})
        assert len(fp) == 64  # a real digest, not an exception


class TestCellFingerprint:
    def test_same_cell_same_key(self):
        a = CpuBoundBackend(spins_per_layer=10)
        b = CpuBoundBackend(spins_per_layer=10)
        assert (cell_fingerprint(a, gpt2_model("mini"), train())
                == cell_fingerprint(b, gpt2_model("mini"), train()))

    def test_every_input_is_load_bearing(self):
        backend = CpuBoundBackend(spins_per_layer=10)
        base = cell_fingerprint(backend, gpt2_model("mini"), train())
        assert base != cell_fingerprint(
            backend, gpt2_model("mini").with_layers(7), train())
        assert base != cell_fingerprint(
            backend, gpt2_model("mini"), TrainConfig(batch_size=8,
                                                     seq_len=64))
        assert base != cell_fingerprint(
            backend, gpt2_model("mini"), train(), {"option": 1})
        assert base != cell_fingerprint(
            backend, gpt2_model("mini"), train(), measure=False)
        # Backend-declared extra state (spin count) is in the key too.
        assert base != cell_fingerprint(
            CpuBoundBackend(spins_per_layer=99), gpt2_model("mini"),
            train())

    def test_nondeterministic_backend_bypasses(self):
        backend = FaultInjectingBackend(CpuBoundBackend(), FaultPlan())
        assert backend.deterministic is False
        assert cell_fingerprint(backend, gpt2_model("mini"),
                                train()) is None


class TestStoreAndLookup:
    def fp(self, tag="cell"):
        return canonical_fingerprint({"cell": tag})

    def test_round_trip(self, tmp_path):
        cache = CompileCache(tmp_path)
        fp = self.fp()
        assert cache.store(fp, {"compiled": 1}, {"run": 2}) is True
        entry = cache.lookup(fp)
        assert entry is not None
        assert entry.fingerprint == fp
        assert entry.compiled == {"compiled": 1}
        assert entry.run == {"run": 2}
        assert cache.stats() == {"hits": 1, "misses": 0,
                                 "bypasses": 0, "stores": 1}

    def test_missing_entry_is_a_silent_miss(self, tmp_path):
        cache = CompileCache(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.lookup(self.fp()) is None
        assert cache.stats()["misses"] == 1

    def test_no_tmp_litter_after_publish(self, tmp_path):
        cache = CompileCache(tmp_path)
        cache.store(self.fp(), "artifact")
        assert not list(tmp_path.rglob("*.tmp"))

    def test_two_level_fanout_layout(self, tmp_path):
        cache = CompileCache(tmp_path)
        fp = self.fp()
        cache.store(fp, "artifact")
        assert cache.entry_path(fp).exists()
        assert cache.entry_path(fp).parent.name == fp[:2]
        assert len(cache) == 1

    def test_corrupt_entry_warns_drops_and_misses(self, tmp_path):
        cache = CompileCache(tmp_path)
        fp = self.fp()
        path = cache.entry_path(fp)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"\x00not a pickle")
        with pytest.warns(RuntimeWarning, match="treating as a miss"):
            assert cache.lookup(fp) is None
        assert not path.exists()  # dropped so a re-run can rewrite it
        assert cache.stats()["misses"] == 1

    def test_foreign_entry_under_wrong_name_is_dropped(self, tmp_path):
        # A valid pickle whose recorded fingerprint disagrees with the
        # name it was found under must not be trusted.
        cache = CompileCache(tmp_path)
        fp = self.fp()
        path = cache.entry_path(fp)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps(
            {"v": CACHE_VERSION, "fingerprint": self.fp("other"),
             "compiled": "stolen"}))
        with pytest.warns(RuntimeWarning, match="fingerprint/schema"):
            assert cache.lookup(fp) is None
        assert not path.exists()

    def test_schema_version_mismatch_is_a_miss(self, tmp_path):
        cache = CompileCache(tmp_path)
        fp = self.fp()
        path = cache.entry_path(fp)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps(
            {"v": CACHE_VERSION + 1, "fingerprint": fp,
             "compiled": "old"}))
        with pytest.warns(RuntimeWarning):
            assert cache.lookup(fp) is None

    def test_unpicklable_artifact_warns_not_raises(self, tmp_path):
        cache = CompileCache(tmp_path)
        with pytest.warns(RuntimeWarning, match="do not pickle"):
            assert cache.store(self.fp(), threading.Lock()) is False
        assert len(cache) == 0


class TestConcurrentWriters:
    def test_second_writer_loses_the_race_quietly(self, tmp_path):
        cache = CompileCache(tmp_path)
        fp = canonical_fingerprint({"cell": 1})
        assert cache.store(fp, "first") is True
        assert cache.store(fp, "second") is False
        assert cache.lookup(fp).compiled == "first"

    def test_exactly_one_of_many_concurrent_writers_publishes(
            self, tmp_path):
        fp = canonical_fingerprint({"cell": 1})
        results = []
        barrier = threading.Barrier(8)

        def publish(n):
            cache = CompileCache(tmp_path)  # one instance per "process"
            barrier.wait()
            results.append(cache.store(fp, f"writer-{n}"))

        threads = [threading.Thread(target=publish, args=(n,))
                   for n in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results.count(True) == 1
        cache = CompileCache(tmp_path)
        assert len(cache) == 1
        assert cache.lookup(fp).compiled.startswith("writer-")
        assert not list(tmp_path.rglob("*.tmp"))


class TestPrune:
    def fill(self, cache, count):
        fps = [canonical_fingerprint({"cell": n}) for n in range(count)]
        for age, fp in enumerate(fps):
            cache.store(fp, f"artifact-{age}")
            # Deterministic mtimes: entry 0 is the oldest.
            os.utime(cache.entry_path(fp), (1000.0 + age, 1000.0 + age))
        return fps

    def test_evicts_oldest_beyond_the_cap(self, tmp_path):
        cache = CompileCache(tmp_path, max_entries=2)
        fps = self.fill(cache, 5)
        assert cache.prune() == 3
        assert len(cache) == 2
        assert cache.lookup(fps[0]) is None  # oldest gone
        assert cache.lookup(fps[4]) is not None  # newest kept

    def test_unbounded_cache_never_prunes(self, tmp_path):
        cache = CompileCache(tmp_path)
        self.fill(cache, 3)
        assert cache.prune() == 0
        assert len(cache) == 3

    def test_explicit_cap_overrides_constructor(self, tmp_path):
        cache = CompileCache(tmp_path)
        self.fill(cache, 3)
        assert cache.prune(max_entries=1) == 2
        assert len(cache) == 1

    def test_negative_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            CompileCache(tmp_path, max_entries=-1)


class FakeTracer:
    def __init__(self):
        self.events = []

    def emit(self, name, **kwargs):
        self.events.append((name, kwargs))


class TestEngineReadThrough:
    def clean(self, key="cell"):
        return CellOutcome(key=key, status=STATUS_OK,
                           compiled={"c": 1}, run={"r": 2},
                           attempts=1, elapsed=0.5)

    def test_bypass_counts_and_traces(self, tmp_path):
        cache = CompileCache(tmp_path)
        tracer = FakeTracer()
        assert cached_outcome(cache, "cell", None, tracer) is None
        assert cache.stats()["bypasses"] == 1
        assert tracer.events == [("cache", {"key": "cell",
                                            "status": "bypass"})]
        assert store_outcome(cache, None, self.clean()) is False

    def test_miss_then_hit_replays_the_outcome(self, tmp_path):
        cache = CompileCache(tmp_path)
        tracer = FakeTracer()
        fp = canonical_fingerprint({"cell": 1})
        assert cached_outcome(cache, "cell", fp, tracer) is None
        assert store_outcome(cache, fp, self.clean()) is True
        replay = cached_outcome(cache, "cell", fp, tracer)
        assert replay is not None
        assert replay.ok
        assert replay.key == "cell"
        assert replay.attempts == 1
        assert replay.elapsed == 0.0  # no cost signal to the scheduler
        assert replay.compiled == {"c": 1}
        assert replay.run == {"r": 2}
        assert [(n, k["status"]) for n, k in tracer.events] \
            == [("cache", "miss"), ("cache", "hit")]

    def test_only_clean_first_attempts_are_cached(self, tmp_path):
        cache = CompileCache(tmp_path)
        fp = canonical_fingerprint({"cell": 1})
        failure = ErrorRecord(type="CompilationError",
                              message="boom", phase="compile")
        failed = CellOutcome(key="cell", status=STATUS_FAILED,
                             error=failure, attempts=1)
        retried_ok = CellOutcome(key="cell", status=STATUS_OK,
                                 compiled={"c": 1}, attempts=2,
                                 retried=(failure,))
        assert store_outcome(cache, fp, failed) is False
        assert store_outcome(cache, fp, retried_ok) is False
        assert len(cache) == 0
        assert store_outcome(cache, fp, self.clean()) is True
