"""Docs that execute: fenced Python blocks in ``docs/*.md``.

Every fenced ```python block in the docs must at least be valid
syntax, so renamed APIs can't silently strand the prose. The campaign
and robustness guides go further: their blocks run end-to-end against
the simulators, in the namespace the pages document (backend
instances plus a small ``specs`` list predefined, cwd in a tmp dir so
relative journal paths are safe).
"""

import re
from pathlib import Path

import pytest

from repro import TrainConfig, gpt2_model
from repro.workloads.sweeps import SweepSpec

DOCS_DIR = Path(__file__).resolve().parent.parent / "docs"

# Pages whose blocks are executed, not just compiled.
EXECUTED_PAGES = ("campaign.md", "robustness.md", "observability.md",
                  "caching.md", "performance.md")

FENCE = re.compile(r"^```python\n(.*?)^```", re.MULTILINE | re.DOTALL)


def python_blocks(page: Path) -> list[str]:
    return FENCE.findall(page.read_text())


def doc_pages() -> list[Path]:
    pages = sorted(DOCS_DIR.glob("*.md"))
    assert pages, "docs/ has gone missing"
    return pages


@pytest.mark.parametrize("page", doc_pages(), ids=lambda p: p.name)
def test_fenced_python_is_valid_syntax(page):
    for i, block in enumerate(python_blocks(page)):
        compile(block, f"{page.name}[block {i}]", "exec")


def test_executed_pages_have_blocks():
    for name in EXECUTED_PAGES:
        assert python_blocks(DOCS_DIR / name), \
            f"{name} should contain runnable examples"


@pytest.mark.parametrize("name", EXECUTED_PAGES)
def test_guide_blocks_execute(name, tmp_path, monkeypatch, capsys,
                              cerebras, sambanova, graphcore, gpu):
    monkeypatch.chdir(tmp_path)
    train = TrainConfig(batch_size=8, seq_len=256)
    model = gpt2_model("mini")
    specs = [SweepSpec(label=f"L{n}", model=model.with_layers(n),
                       train=train) for n in (2, 3)]
    namespace = {"cerebras": cerebras, "sambanova": sambanova,
                 "graphcore": graphcore, "gpu": gpu, "specs": specs}
    for i, block in enumerate(python_blocks(DOCS_DIR / name)):
        code = compile(block, f"{name}[block {i}]", "exec")
        exec(code, namespace)  # blocks share one namespace, in order
    assert "the page printed nothing" and capsys.readouterr().out
