"""Grid sweep execution."""

import pytest

from repro.common.errors import OutOfMemoryError, SimulationError
from repro.models.config import TrainConfig, gpt2_model
from repro.resilience import (
    ExecutionPolicy,
    FaultInjectingBackend,
    FaultPlan,
    FaultSpec,
)
from repro.workloads.sweeps import SweepSpec, run_grid


def specs_for(layers):
    train = TrainConfig(batch_size=16, seq_len=512)
    return [SweepSpec(label=f"L{n}",
                      model=gpt2_model("small").with_layers(n),
                      train=train) for n in layers]


class TestRunGrid:
    def test_success_cells(self, cerebras):
        cells = run_grid(cerebras, specs_for([2, 4]))
        assert all(not c.failed for c in cells)
        assert all(c.run is not None for c in cells)

    def test_compile_only(self, cerebras):
        cells = run_grid(cerebras, specs_for([2]), measure=False)
        assert cells[0].compiled is not None
        assert cells[0].run is None

    def test_failures_recorded_not_raised(self, cerebras):
        cells = run_grid(cerebras, specs_for([2, 90]))
        assert not cells[0].failed
        assert cells[1].failed
        assert cells[1].error

    def test_progress_callback(self, cerebras):
        seen = []
        run_grid(cerebras, specs_for([2, 4]), measure=False,
                 on_cell=seen.append)
        assert [c.spec.label for c in seen] == ["L2", "L4"]

    def test_options_forwarded(self, sambanova):
        train = TrainConfig(batch_size=8, seq_len=512)
        spec = SweepSpec(label="o0", model=gpt2_model("small"), train=train,
                         options={"mode": "O0"})
        cells = run_grid(sambanova, [spec], measure=False)
        assert cells[0].compiled.meta["mode"] == "O0"

    def test_pooled_grid_matches_sequential(self, cerebras):
        specs = specs_for([2, 4, 6, 90])
        pooled = run_grid(cerebras, specs,
                          policy=ExecutionPolicy(max_workers=3))
        serial = run_grid(cerebras, specs)
        assert [c.spec.label for c in pooled] == ["L2", "L4", "L6", "L90"]
        assert [c.failed for c in pooled] == [c.failed for c in serial]
        for p, s in zip(pooled, serial):
            if not p.failed:
                assert p.run.tokens_per_second == s.run.tokens_per_second

    def test_removed_keywords_raise_type_error(self, cerebras, tmp_path):
        journal = tmp_path / "grid.jsonl"
        with pytest.raises(TypeError,
                           match="run_grid.*removed in 0.3.*"
                                 "ExecutionPolicy"):
            run_grid(cerebras, specs_for([2]), journal=journal)
        with pytest.raises(TypeError, match="journal, resume"):
            run_grid(cerebras, specs_for([2]), journal=journal,
                     resume=True)
        assert not journal.exists()
        with pytest.raises(TypeError, match="unexpected keyword"):
            run_grid(cerebras, specs_for([2]), jornal=journal)


class TestRunGridRobustness:
    """Any ReproError becomes a failed cell — not a dead grid."""

    def test_run_phase_error_does_not_abort_grid(self, cerebras):
        def sim_blowup():
            return SimulationError("engine reached inconsistent state")

        plan = FaultPlan().add(FaultSpec(fault=sim_blowup, match="/L4/",
                                         phase="run", attempts=None))
        wrapped = FaultInjectingBackend(cerebras, plan)
        cells = run_grid(wrapped, specs_for([2, 4, 6]))
        assert [c.failed for c in cells] == [False, True, False]
        assert cells[1].failure.type == "SimulationError"
        assert cells[1].phase == "run"

    def test_compile_vs_run_phase_distinguished(self, cerebras):
        cells = run_grid(cerebras, specs_for([90]))
        assert cells[0].failed
        assert cells[0].phase == "compile"

    def test_structured_oom_attributes_preserved(self, cerebras):
        def oom():
            return OutOfMemoryError("over budget", required_bytes=2e9,
                                    available_bytes=1e9)

        plan = FaultPlan().add(FaultSpec(fault=oom, phase="compile",
                                         attempts=None))
        wrapped = FaultInjectingBackend(cerebras, plan)
        cells = run_grid(wrapped, specs_for([2]))
        failure = cells[0].failure
        assert failure.attrs["required_bytes"] == 2e9
        assert failure.attrs["available_bytes"] == 1e9
        assert not failure.transient

    def test_non_repro_errors_still_propagate(self, cerebras):
        class Boom(RuntimeError):
            """Programming errors must not be swallowed as cells."""

        def bug():
            raise Boom("bug in the harness")

        plan = FaultPlan()
        wrapped = FaultInjectingBackend(cerebras, plan)
        wrapped.compile = lambda *a, **k: bug()
        with pytest.raises(Boom):
            run_grid(wrapped, specs_for([2]))
