"""Grid sweep execution."""

from repro.models.config import TrainConfig, gpt2_model
from repro.workloads.sweeps import SweepSpec, run_grid


def specs_for(layers):
    train = TrainConfig(batch_size=16, seq_len=512)
    return [SweepSpec(label=f"L{n}",
                      model=gpt2_model("small").with_layers(n),
                      train=train) for n in layers]


class TestRunGrid:
    def test_success_cells(self, cerebras):
        cells = run_grid(cerebras, specs_for([2, 4]))
        assert all(not c.failed for c in cells)
        assert all(c.run is not None for c in cells)

    def test_compile_only(self, cerebras):
        cells = run_grid(cerebras, specs_for([2]), measure=False)
        assert cells[0].compiled is not None
        assert cells[0].run is None

    def test_failures_recorded_not_raised(self, cerebras):
        cells = run_grid(cerebras, specs_for([2, 90]))
        assert not cells[0].failed
        assert cells[1].failed
        assert cells[1].error

    def test_progress_callback(self, cerebras):
        seen = []
        run_grid(cerebras, specs_for([2, 4]), measure=False,
                 on_cell=seen.append)
        assert [c.spec.label for c in seen] == ["L2", "L4"]

    def test_options_forwarded(self, sambanova):
        train = TrainConfig(batch_size=8, seq_len=512)
        spec = SweepSpec(label="o0", model=gpt2_model("small"), train=train,
                         options={"mode": "O0"})
        cells = run_grid(sambanova, [spec], measure=False)
        assert cells[0].compiled.meta["mode"] == "O0"
