"""Probe models and sweep axes."""

import pytest

from repro.common.errors import ConfigurationError
from repro.workloads.probes import (
    PAPER_RDU_HS_O1,
    PAPER_WSE_LAYERS,
    decoder_block_probe,
    paper_layer_sweep,
    paper_rdu_hidden_sweep_o0_o3,
    paper_rdu_hidden_sweep_o1,
)


class TestDecoderBlockProbe:
    def test_small_vocab_by_default(self):
        probe = decoder_block_probe(768, 4)
        assert probe.vocab_size == 2048

    def test_dimensions(self):
        probe = decoder_block_probe(1024, 6)
        assert probe.hidden_size == 1024
        assert probe.n_layers == 6
        assert probe.head_dim == 64

    def test_llama_family(self):
        probe = decoder_block_probe(4096, 2, family="llama2")
        assert probe.uses_gated_ffn

    def test_unknown_family(self):
        with pytest.raises(ConfigurationError):
            decoder_block_probe(768, 2, family="mamba")

    def test_probe_name_descriptive(self):
        probe = decoder_block_probe(768, 4)
        assert "h768" in probe.name and "l4" in probe.name


class TestPaperAxes:
    def test_table1_axis(self):
        assert PAPER_WSE_LAYERS[0] == 1
        assert PAPER_WSE_LAYERS[-1] == 78
        models = paper_layer_sweep()
        assert len(models) == len(PAPER_WSE_LAYERS)
        assert all(m.hidden_size == 768 for m in models)

    def test_rdu_small_axis(self):
        models = paper_rdu_hidden_sweep_o0_o3()
        assert [m.hidden_size for m in models] == [480, 768, 1024, 1280,
                                                   1600]

    def test_rdu_large_axis_uses_llama(self):
        models = paper_rdu_hidden_sweep_o1()
        assert [m.hidden_size for m in models] == PAPER_RDU_HS_O1
        assert all(m.uses_gated_ffn for m in models)
        assert all(m.vocab_size == 32000 for m in models)
