"""Automated insight generation."""

from repro.core.insights import (
    Bottleneck,
    diagnose,
    diagnose_batch,
    diagnose_scaling,
    diagnose_sweep,
)
from repro.core.tier1 import Tier1Profiler
from repro.core.tier2 import DeploymentOptimizer, ScalabilityAnalyzer
from repro.models.config import TrainConfig, gpt2_model, llama2_model
from repro.models.precision import Precision, PrecisionPolicy


class TestDiagnoseTier1:
    def test_rdu_flags_allocation(self, sambanova):
        bf16 = TrainConfig(batch_size=16, seq_len=1024,
                           precision=PrecisionPolicy.pure(Precision.BF16))
        result = Tier1Profiler(sambanova).profile(
            gpt2_model("small"), bf16, mode="O0")
        kinds = {i.bottleneck for i in diagnose(result)}
        assert Bottleneck.ALLOCATION in kinds

    def test_rdu_o3_flags_balance(self, sambanova):
        bf16 = TrainConfig(batch_size=16, seq_len=1024,
                           precision=PrecisionPolicy.pure(Precision.BF16))
        result = Tier1Profiler(sambanova).profile(
            gpt2_model("small").with_layers(24), bf16, mode="O3")
        kinds = {i.bottleneck for i in diagnose(result)}
        assert Bottleneck.LOAD_BALANCE in kinds

    def test_wse_large_model_flags_memory(self, cerebras):
        train = TrainConfig(batch_size=64, seq_len=1024)
        result = Tier1Profiler(cerebras).profile(
            gpt2_model("small").with_layers(66), train)
        kinds = {i.bottleneck for i in diagnose(result)}
        assert Bottleneck.MEMORY_CAPACITY in kinds

    def test_ipu_flags_bandwidth(self, graphcore):
        train = TrainConfig(batch_size=32, seq_len=1024)
        result = Tier1Profiler(graphcore).profile(
            gpt2_model("small").with_layers(4), train, n_ipus=2)
        kinds = {i.bottleneck for i in diagnose(result)}
        assert Bottleneck.MEMORY_BANDWIDTH in kinds

    def test_sorted_by_severity(self, sambanova):
        bf16 = TrainConfig(batch_size=16, seq_len=1024,
                           precision=PrecisionPolicy.pure(Precision.BF16))
        result = Tier1Profiler(sambanova).profile(
            gpt2_model("small"), bf16, mode="O0")
        severities = [i.severity for i in diagnose(result)]
        assert severities == sorted(severities, reverse=True)

    def test_insight_renders(self, cerebras):
        train = TrainConfig(batch_size=64, seq_len=1024)
        result = Tier1Profiler(cerebras).profile(
            gpt2_model("small").with_layers(24), train)
        for insight in diagnose(result):
            text = str(insight)
            assert "->" in text and "severity" in text


class TestDiagnoseSweep:
    def test_capability_envelope_detected(self, cerebras):
        train = TrainConfig(batch_size=64, seq_len=1024)
        entries = Tier1Profiler(cerebras).sweep_layers(
            gpt2_model("small"), train, [36, 72, 78])
        insights = diagnose_sweep(entries)
        assert any("72 and 78" in i.finding for i in insights)

    def test_efficiency_decay_detected(self, cerebras):
        train = TrainConfig(batch_size=256, seq_len=1024)
        entries = Tier1Profiler(cerebras).sweep_layers(
            gpt2_model("small"), train, [12, 24, 36, 66])
        insights = diagnose_sweep(entries)
        assert any("peaks at sweep value" in i.finding for i in insights)

    def test_quiet_on_clean_sweep(self, cerebras):
        train = TrainConfig(batch_size=64, seq_len=1024)
        entries = Tier1Profiler(cerebras).sweep_layers(
            gpt2_model("small"), train, [6, 12])
        assert diagnose_sweep(entries) == []


class TestDiagnoseScaling:
    def test_tp_cliff_named(self, sambanova):
        train = TrainConfig(batch_size=8, seq_len=4096,
                            precision=PrecisionPolicy.pure(Precision.BF16))
        points = ScalabilityAnalyzer(sambanova).sweep(
            llama2_model("7b"), train,
            [("TP2", {"mode": "O1", "tp": 2}),
             ("TP4", {"mode": "O1", "tp": 4})])
        insights = diagnose_scaling(points, {"TP2": 2, "TP4": 4})
        assert len(insights) == 1
        assert insights[0].bottleneck is Bottleneck.COMMUNICATION
        assert "stop scaling at TP2" in insights[0].recommendation

    def test_healthy_scaling_quiet(self, cerebras):
        train = TrainConfig(batch_size=256, seq_len=1024)
        points = ScalabilityAnalyzer(cerebras).sweep(
            gpt2_model("tiny"), train,
            [("DP1", {"n_replicas": 1}), ("DP2", {"n_replicas": 2})])
        assert diagnose_scaling(points, {"DP1": 1, "DP2": 2}) == []


class TestDiagnoseBatch:
    def test_wse_recommendation(self, cerebras):
        sweep = DeploymentOptimizer(cerebras).batch_sweep(
            gpt2_model("small"), TrainConfig(batch_size=8, seq_len=1024),
            [32, 64, 128, 256])
        insight = diagnose_batch(sweep)
        assert "saturates" in insight.finding
        assert str(sweep.saturation_batch) in insight.recommendation

    def test_rdu_recommendation(self, sambanova):
        sweep = DeploymentOptimizer(sambanova).batch_sweep(
            gpt2_model("small"),
            TrainConfig(batch_size=4, seq_len=1024,
                        precision=PrecisionPolicy.pure(Precision.BF16)),
            [4, 8, 16, 32], mode="O1")
        insight = diagnose_batch(sweep)
        assert insight.bottleneck is Bottleneck.BALANCED
        assert "largest batch" in insight.recommendation
