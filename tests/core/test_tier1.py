"""Tier-1 profiler against all backends."""

from repro.core.tier1 import Tier1Profiler
from repro.models.config import TrainConfig, gpt2_model
from repro.models.precision import Precision, PrecisionPolicy
from repro.workloads import decoder_block_probe


class TestProfile:
    def test_cerebras_profile_fields(self, cerebras, gpt2_small,
                                     train_fp16):
        result = Tier1Profiler(cerebras).profile(gpt2_small, train_fp16)
        assert 0 < result.compute_allocation <= 1.0
        assert 0 < result.memory_allocation <= 1.0
        assert 0 < result.load_imbalance <= 1.0
        assert result.achieved_flops > 0
        assert 0 < result.compute_efficiency < 1.0
        assert result.roofline.bound == "compute"
        assert not result.memory_bound
        assert result.tokens_per_second > 0

    def test_sambanova_profile(self, sambanova, gpt2_small, train_bf16):
        result = Tier1Profiler(sambanova).profile(gpt2_small, train_bf16,
                                                  mode="O3")
        assert result.memory_bound
        assert result.compute_allocation < 0.62

    def test_graphcore_profile(self, graphcore, train_fp16):
        model = gpt2_model("small").with_layers(4)
        result = Tier1Profiler(graphcore).profile(model, train_fp16,
                                                  n_ipus=2)
        assert result.memory_bound
        assert result.platform == "Bow-2000"

    def test_efficiency_uses_all_chips(self, sambanova, gpt2_small,
                                       train_bf16):
        p = Tier1Profiler(sambanova)
        r1 = p.profile(gpt2_small, train_bf16, mode="O1", tp=1)
        r2 = p.profile(gpt2_small, train_bf16, mode="O1", tp=2)
        # Per-chip normalization: doubling chips should not double
        # reported efficiency.
        assert r2.compute_efficiency < r1.compute_efficiency * 1.5

    def test_options_recorded(self, sambanova, gpt2_small, train_bf16):
        result = Tier1Profiler(sambanova).profile(gpt2_small, train_bf16,
                                                  mode="O0")
        assert result.meta["options"]["mode"] == "O0"


class TestSweeps:
    def test_layer_sweep_records_failures(self, cerebras, gpt2_small,
                                          train_fp16):
        entries = Tier1Profiler(cerebras).sweep_layers(
            gpt2_small, train_fp16, [12, 78])
        assert not entries[0].failed
        assert entries[1].failed
        assert "GB" in entries[1].error

    def test_hidden_sweep(self, sambanova, train_bf16):
        probe = decoder_block_probe(768, 4)
        entries = Tier1Profiler(sambanova).sweep_hidden(
            probe, train_bf16, [480, 768], mode="O3")
        assert all(not e.failed for e in entries)
        assert entries[0].result.model.hidden_size == 480

    def test_max_feasible_matches_compiler(self, graphcore, train_fp16):
        profiler = Tier1Profiler(graphcore)
        limit = profiler.max_feasible(gpt2_model("small"), train_fp16,
                                      upper=32, n_ipus=2)
        assert limit == 9  # Fig. 9d: fails at 10

    def test_max_feasible_zero_when_nothing_fits(self, graphcore):
        profiler = Tier1Profiler(graphcore)
        huge = TrainConfig(batch_size=512, seq_len=4096,
                           precision=PrecisionPolicy.mixed(Precision.FP16))
        from repro.models.config import gpt2_model as g
        limit = profiler.max_feasible(g("xlarge"), huge, upper=4, n_ipus=2)
        assert limit == 0
