"""Equations 1-4: allocation ratio and load imbalance."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.core.backend import PhaseProfile, TaskProfile
from repro.core.metrics import (
    allocation_ratio,
    compute_efficiency,
    load_imbalance,
    phase_allocation_ratio,
    weighted_load_imbalance,
)


def task(name="t", compute=100.0, memory=50.0, throughput=10.0,
         role="compute"):
    return TaskProfile(name=name, compute_units=compute,
                       memory_units=memory, role=role,
                       throughput=throughput)


def phase(name="p", runtime=1.0, tasks=(), invocations=1):
    return PhaseProfile(name=name, runtime=runtime, tasks=tuple(tasks),
                        invocations=invocations)


class TestAllocationRatio:
    def test_eq1_single_phase(self):
        p = phase(tasks=[task(compute=300.0), task(name="u", compute=100.0)])
        assert allocation_ratio([p], total_units=1000.0) == pytest.approx(0.4)

    def test_eq2_time_weighted(self):
        # Section A: 60% for 3s; section B: 20% for 1s -> 50%.
        a = phase("a", runtime=3.0, tasks=[task(compute=600.0)])
        b = phase("b", runtime=1.0, tasks=[task(compute=200.0)])
        assert allocation_ratio([a, b], total_units=1000.0) == \
            pytest.approx(0.5)

    def test_invocations_multiply_weights(self):
        a = phase("a", runtime=1.0, tasks=[task(compute=600.0)],
                  invocations=3)
        b = phase("b", runtime=1.0, tasks=[task(compute=200.0)])
        assert allocation_ratio([a, b], total_units=1000.0) == \
            pytest.approx(0.5)

    def test_memory_kind_uses_memory_units(self):
        p = phase(tasks=[task(memory=250.0)])
        assert allocation_ratio([p], total_units=1000.0,
                                kind="memory") == pytest.approx(0.25)

    def test_requires_total_units_for_raw_phases(self):
        with pytest.raises(ConfigurationError):
            allocation_ratio([phase(tasks=[task()])])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            allocation_ratio([], total_units=10.0)

    def test_rejects_bad_total(self):
        with pytest.raises(ConfigurationError):
            allocation_ratio([phase(tasks=[task()])], total_units=0.0)

    def test_zero_runtime_falls_back_to_mean(self):
        a = phase("a", runtime=0.0, tasks=[task(compute=600.0)])
        b = phase("b", runtime=0.0, tasks=[task(compute=200.0)])
        assert allocation_ratio([a, b], total_units=1000.0) == \
            pytest.approx(0.4)

    def test_phase_allocation_ratio_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            phase_allocation_ratio(phase(tasks=[task()]), 100.0,
                                   kind="quantum")


class TestLoadImbalance:
    def test_perfectly_balanced_is_one(self):
        tasks = [task(name=f"t{i}", throughput=5.0) for i in range(4)]
        assert load_imbalance(tasks) == pytest.approx(1.0)

    def test_eq3_weighting(self):
        # Slow task (T=1) with 100 units, fast (T=4) with 300 units:
        # LI = (100*1 + 300*0.25) / 400 = 0.4375.
        tasks = [task(name="slow", compute=100.0, throughput=1.0),
                 task(name="fast", compute=300.0, throughput=4.0)]
        assert load_imbalance(tasks) == pytest.approx(0.4375)

    def test_faster_outliers_lower_li(self):
        balanced = [task(name="a", throughput=1.0),
                    task(name="b", throughput=1.0)]
        skewed = [task(name="a", throughput=1.0),
                  task(name="b", throughput=10.0)]
        assert load_imbalance(skewed) < load_imbalance(balanced)

    def test_transmission_tasks_excluded(self):
        tasks = [task(throughput=1.0),
                 task(name="tx", role="transmission", throughput=0.0)]
        assert load_imbalance(tasks) == pytest.approx(1.0)

    def test_zero_throughput_tasks_skipped(self):
        tasks = [task(name="a", throughput=2.0),
                 task(name="b", throughput=0.0)]
        assert load_imbalance(tasks) == pytest.approx(1.0)

    def test_no_rated_tasks_rejected(self):
        with pytest.raises(ConfigurationError):
            load_imbalance([task(throughput=0.0)])

    @given(st.lists(st.tuples(
        st.floats(min_value=1.0, max_value=1e4),   # resources
        st.floats(min_value=0.1, max_value=1e3)),  # throughput
        min_size=1, max_size=20))
    def test_li_bounded_zero_one(self, raw):
        tasks = [task(name=f"t{i}", compute=r, throughput=tp)
                 for i, (r, tp) in enumerate(raw)]
        li = load_imbalance(tasks)
        assert 0.0 < li <= 1.0 + 1e-9

    @given(st.floats(min_value=0.1, max_value=100.0),
           st.integers(min_value=1, max_value=10))
    def test_li_scale_invariant(self, scale, n):
        tasks = [task(name=f"t{i}", compute=10.0 * (i + 1),
                      throughput=float(i + 1)) for i in range(n)]
        scaled = [task(name=t.name, compute=t.compute_units,
                       throughput=t.throughput * scale) for t in tasks]
        assert load_imbalance(scaled) == pytest.approx(
            load_imbalance(tasks))


class TestWeightedLoadImbalance:
    def test_eq4_runtime_weighting(self):
        balanced = phase("a", runtime=3.0, tasks=[
            task(name="x", throughput=1.0), task(name="y", throughput=1.0)])
        skewed = phase("b", runtime=1.0, tasks=[
            task(name="x", throughput=1.0, compute=100.0),
            task(name="y", throughput=2.0, compute=100.0)])
        li = weighted_load_imbalance([balanced, skewed])
        assert li == pytest.approx((3.0 * 1.0 + 1.0 * 0.75) / 4.0)

    def test_unrated_phases_excluded(self):
        rated = phase("a", runtime=1.0, tasks=[task(throughput=1.0)])
        unrated = phase("b", runtime=9.0, tasks=[task(throughput=0.0)])
        assert weighted_load_imbalance([rated, unrated]) == pytest.approx(1.0)

    def test_all_unrated_rejected(self):
        unrated = phase("b", runtime=1.0, tasks=[task(throughput=0.0)])
        with pytest.raises(ConfigurationError):
            weighted_load_imbalance([unrated])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            weighted_load_imbalance([])


class TestComputeEfficiency:
    def test_ratio(self):
        assert compute_efficiency(50.0, 200.0) == pytest.approx(0.25)

    def test_bad_peak(self):
        with pytest.raises(ConfigurationError):
            compute_efficiency(1.0, 0.0)

    def test_negative_achieved(self):
        with pytest.raises(ConfigurationError):
            compute_efficiency(-1.0, 1.0)


class TestLoadImbalanceStructure:
    """Structural properties of Eq. 3 worth guarding."""

    def test_merging_equal_throughput_tasks_is_invariant(self):
        # Two tasks with identical throughput behave like one task with
        # their combined resources — LI cannot be gamed by reporting
        # granularity alone when rates match.
        split = [task(name="a", compute=100.0, throughput=2.0),
                 task(name="b", compute=300.0, throughput=2.0),
                 task(name="c", compute=50.0, throughput=1.0)]
        merged = [task(name="ab", compute=400.0, throughput=2.0),
                  task(name="c", compute=50.0, throughput=1.0)]
        assert load_imbalance(split) == pytest.approx(
            load_imbalance(merged))

    def test_adding_bottleneck_speed_resources_raises_li(self):
        base = [task(name="slow", compute=100.0, throughput=1.0),
                task(name="fast", compute=100.0, throughput=4.0)]
        more_slow = base + [task(name="slow2", compute=200.0,
                                 throughput=1.0)]
        assert load_imbalance(more_slow) > load_imbalance(base)

    def test_single_task_is_perfectly_balanced(self):
        assert load_imbalance([task()]) == pytest.approx(1.0)
