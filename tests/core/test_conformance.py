"""Backend conformance suite."""

import pytest

from repro.core.backend import AcceleratorBackend, CompileReport, RunReport
from repro.core.conformance import ConformanceReport, check_backend
from repro.models.config import TrainConfig, gpt2_model
from repro.models.precision import Precision, PrecisionPolicy


@pytest.fixture()
def model():
    return gpt2_model("small").with_layers(4)


@pytest.fixture()
def fp16():
    return TrainConfig(batch_size=16, seq_len=1024)


class TestShippedBackendsConform:
    def test_cerebras(self, cerebras, model, fp16):
        report = check_backend(cerebras, model, fp16)
        assert report.passed, report.summary()

    def test_sambanova(self, sambanova, model, fp16):
        bf16 = fp16.with_precision(PrecisionPolicy.pure(Precision.BF16))
        for mode in ("O0", "O1", "O3"):
            report = check_backend(sambanova, model, bf16,
                                   options={"mode": mode})
            assert report.passed, report.summary()

    def test_graphcore(self, graphcore, model, fp16):
        report = check_backend(graphcore, model, fp16,
                               options={"n_ipus": 2})
        assert report.passed, report.summary()

    def test_gpu(self, gpu, model, fp16):
        report = check_backend(gpu, model, fp16, options={"tp": 4})
        assert report.passed, report.summary()

    def test_checks_actually_ran(self, cerebras, model, fp16):
        report = check_backend(cerebras, model, fp16)
        assert "determinism" in report.checks_run
        assert "run.flops.bounded" in report.checks_run
        assert len(report.checks_run) >= 15


class _BrokenBackend(AcceleratorBackend):
    """A deliberately non-conformant backend for negative testing."""

    def __init__(self, base, breakage: str) -> None:
        super().__init__(base.system)
        self._base = base
        self._breakage = breakage
        self._flip = False

    def compile(self, model, train, **options) -> CompileReport:
        return self._base.compile(model, train, **options)

    def run(self, compiled) -> RunReport:
        import dataclasses
        run = self._base.run(compiled)
        if self._breakage == "tokens":
            return dataclasses.replace(
                run, tokens_per_second=run.tokens_per_second * 2)
        if self._breakage == "flops":
            return dataclasses.replace(
                run, achieved_flops=self.system.chip.peak_flops * 10)
        if self._breakage == "nondeterministic":
            self._flip = not self._flip
            if self._flip:
                return run
            return dataclasses.replace(
                run, tokens_per_second=run.tokens_per_second + 1.0)
        return run


class TestViolationsDetected:
    @pytest.mark.parametrize("breakage,check", [
        ("tokens", "run.identity.tokens"),
        ("flops", "run.flops.bounded"),
        ("nondeterministic", "determinism"),
    ])
    def test_detects(self, cerebras, model, fp16, breakage, check):
        broken = _BrokenBackend(cerebras, breakage)
        report = check_backend(broken, model, fp16)
        assert not report.passed
        assert any(issue.check == check for issue in report.issues), \
            report.summary()

    def test_summary_mentions_issue(self, cerebras, model, fp16):
        broken = _BrokenBackend(cerebras, "flops")
        report = check_backend(broken, model, fp16)
        assert "run.flops.bounded" in report.summary()


class TestReportObject:
    def test_passed_when_no_issues(self):
        report = ConformanceReport(backend="x")
        assert report.passed
        assert "0 issue" in report.summary()
