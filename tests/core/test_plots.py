"""ASCII plotting helpers."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.plots import ascii_bar_chart, ascii_line_chart


class TestLineChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_line_chart([1, 2, 3], {"a": [1.0, 2.0, 3.0],
                                             "b": [3.0, 2.0, 1.0]})
        assert "* a" in chart
        assert "o b" in chart
        # At least the non-overlapping points plus the legend marker
        # (the shared midpoint is overdrawn by the later series).
        assert chart.count("*") >= 3
        assert chart.count("o") >= 4

    def test_title_and_labels(self):
        chart = ascii_line_chart([0, 10], {"s": [0.0, 5.0]},
                                 title="T", y_label="yy")
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert any("yy" in line for line in lines)
        assert "5" in lines[1]  # top y tick

    def test_none_points_skipped(self):
        chart = ascii_line_chart([1, 2, 3], {"s": [1.0, None, 3.0]})
        assert chart  # renders without error

    def test_constant_series(self):
        chart = ascii_line_chart([1, 2], {"s": [5.0, 5.0]})
        assert "5" in chart

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_line_chart([1], {})
        with pytest.raises(ConfigurationError):
            ascii_line_chart([1], {"s": [None]})

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_line_chart([1], {"s": [1.0]}, width=2, height=2)

    def test_dimensions(self):
        chart = ascii_line_chart([1, 2], {"s": [1.0, 2.0]},
                                 width=30, height=8)
        plot_rows = [line for line in chart.splitlines() if "|" in line]
        assert len(plot_rows) == 8


class TestBarChart:
    def test_bars_proportional(self):
        chart = ascii_bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_unit_suffix(self):
        chart = ascii_bar_chart(["x"], [3.0], unit=" J")
        assert "3 J" in chart

    def test_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            ascii_bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        with pytest.raises(ConfigurationError):
            ascii_bar_chart([], [])

    def test_nonpositive_peak(self):
        with pytest.raises(ConfigurationError):
            ascii_bar_chart(["a"], [0.0])

    def test_title(self):
        chart = ascii_bar_chart(["a"], [1.0], title="My bars")
        assert chart.splitlines()[0] == "My bars"
