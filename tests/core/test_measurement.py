"""Variance-weighted measurement aggregation (Sec. IV-D(c))."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.measurement import measure_weighted
from repro.models.config import TrainConfig, gpt2_model
from repro.models.precision import Precision, PrecisionPolicy


class TestMeasureWeighted:
    def test_requires_batches(self, cerebras):
        with pytest.raises(ConfigurationError):
            measure_weighted(cerebras, gpt2_model("small"),
                             TrainConfig(batch_size=8, seq_len=512), [])

    def test_aggregates_within_point_range(self, cerebras):
        result = measure_weighted(
            cerebras, gpt2_model("small"),
            TrainConfig(batch_size=8, seq_len=1024), [32, 64, 128, 256])
        rates = [p.tokens_per_second for p in result.points]
        assert min(rates) <= result.tokens_per_second <= max(rates)
        assert 0 < result.allocation <= 1
        assert 0 < result.load_imbalance <= 1

    def test_weights_favor_stable_region(self, cerebras):
        """On the saturating WSE curve, large batches (flat region near
        the median per-token time) outweigh the steep small-batch ramp.
        """
        result = measure_weighted(
            cerebras, gpt2_model("small"),
            TrainConfig(batch_size=8, seq_len=1024), [16, 64, 256, 512])
        assert result.weights[512] > result.weights[16]

    def test_wse_more_batch_sensitive_than_rdu(self, cerebras, sambanova):
        wse = measure_weighted(
            cerebras, gpt2_model("small"),
            TrainConfig(batch_size=8, seq_len=1024), [32, 128, 512])
        rdu = measure_weighted(
            sambanova, gpt2_model("small"),
            TrainConfig(batch_size=8, seq_len=1024,
                        precision=PrecisionPolicy.pure(Precision.BF16)),
            [8, 16, 32], mode="O3")
        # The paper's reason for weighting: CS-2 is the sensitive system.
        assert wse.batch_sensitivity > 0.1
        assert wse.batch_sensitivity != rdu.batch_sensitivity

    def test_failed_batches_skipped(self, graphcore):
        result = measure_weighted(
            graphcore, gpt2_model("small").with_layers(6),
            TrainConfig(batch_size=8, seq_len=1024), [16, 8192],
            n_ipus=2)
        assert len(result.points) == 1

    def test_all_failed_raises(self, graphcore):
        with pytest.raises(ConfigurationError):
            measure_weighted(
                graphcore, gpt2_model("small").with_layers(32),
                TrainConfig(batch_size=8, seq_len=1024), [16], n_ipus=2)

    def test_single_point_sensitivity_zero(self, cerebras):
        result = measure_weighted(
            cerebras, gpt2_model("mini"),
            TrainConfig(batch_size=8, seq_len=512), [64])
        assert result.batch_sensitivity == 0.0
        assert result.tokens_per_second == \
            result.points[0].tokens_per_second
