"""Roofline model and Eq. 5 intensity helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.core.intensity import arithmetic_intensity, intensity_sweep
from repro.core.roofline import RooflineModel
from repro.hardware.specs import BOW_IPU, SN30_RDU, WSE2
from repro.models.config import TrainConfig, gpt2_model


class TestRooflineMechanics:
    def test_ridge(self):
        model = RooflineModel(WSE2, peak_flops=100.0, bandwidth=10.0)
        assert model.ridge_intensity == pytest.approx(10.0)

    def test_attainable_memory_side(self):
        model = RooflineModel(WSE2, peak_flops=100.0, bandwidth=10.0)
        assert model.attainable(2.0) == pytest.approx(20.0)

    def test_attainable_compute_side(self):
        model = RooflineModel(WSE2, peak_flops=100.0, bandwidth=10.0)
        assert model.attainable(50.0) == pytest.approx(100.0)

    def test_bound_classification(self):
        model = RooflineModel(WSE2, peak_flops=100.0, bandwidth=10.0)
        assert model.bound_of(5.0) == "memory"
        assert model.bound_of(10.0) == "compute"

    def test_negative_intensity_rejected(self):
        model = RooflineModel(WSE2)
        with pytest.raises(ConfigurationError):
            model.attainable(-1.0)

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            RooflineModel(WSE2, peak_flops=0.0)

    def test_place_and_efficiency(self):
        model = RooflineModel(WSE2, peak_flops=100.0, bandwidth=10.0)
        point = model.place("w", intensity=2.0, achieved_flops=10.0)
        assert point.attainable_flops == pytest.approx(20.0)
        assert point.efficiency_vs_roof == pytest.approx(0.5)
        assert point.bound == "memory"

    def test_series(self):
        model = RooflineModel(WSE2, peak_flops=100.0, bandwidth=10.0)
        points = model.series([("a", 1.0, 5.0), ("b", 100.0, 50.0)])
        assert [p.bound for p in points] == ["memory", "compute"]

    def test_roof_curve_monotone(self):
        model = RooflineModel(WSE2, peak_flops=100.0, bandwidth=10.0)
        curve = model.roof_curve([1.0, 5.0, 10.0, 100.0])
        assert curve == sorted(curve)
        assert curve[-1] == 100.0


class TestPaperClassification:
    """Fig. 10: WSE compute-bound, RDU and IPU memory-bound."""

    @pytest.fixture()
    def intensity(self):
        return arithmetic_intensity(gpt2_model("small"),
                                    TrainConfig(batch_size=16, seq_len=1024))

    def test_wse_compute_bound(self, intensity):
        assert RooflineModel(WSE2).bound_of(intensity) == "compute"

    def test_rdu_memory_bound(self, intensity):
        assert RooflineModel(SN30_RDU).bound_of(intensity) == "memory"

    def test_ipu_memory_bound(self, intensity):
        assert RooflineModel(BOW_IPU).bound_of(intensity) == "memory"


class TestIntensityHelpers:
    def test_negative_activation_override_rejected(self):
        with pytest.raises(ConfigurationError):
            arithmetic_intensity(gpt2_model("small"),
                                 TrainConfig(batch_size=1, seq_len=128),
                                 activation_bytes=-1.0)

    def test_activation_override_used(self):
        model = gpt2_model("small")
        train = TrainConfig(batch_size=1, seq_len=128)
        ai_small = arithmetic_intensity(model, train, activation_bytes=0.0)
        ai_big = arithmetic_intensity(model, train, activation_bytes=1e12)
        assert ai_small > ai_big

    def test_sweep_keys(self):
        sweep = intensity_sweep(gpt2_model("small"),
                                TrainConfig(batch_size=2, seq_len=256),
                                [1, 2, 4])
        assert sorted(sweep) == [1, 2, 4]
        assert all(v > 0 for v in sweep.values())

    @given(st.integers(min_value=1, max_value=128))
    def test_intensity_positive(self, batch):
        ai = arithmetic_intensity(gpt2_model("mini"),
                                  TrainConfig(batch_size=batch, seq_len=256))
        assert ai > 0
