"""Autoregressive decode analysis."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.decode import (
    batch_to_saturate,
    decode_step_flops,
    estimate_decode,
    kv_cache_bytes,
)
from repro.hardware.specs import BOW_IPU, SN30_RDU, WSE2
from repro.models.config import TrainConfig, gpt2_model, llama2_model
from repro.models.costmodel import TransformerCostModel
from repro.models.precision import Precision, PrecisionPolicy


@pytest.fixture()
def bf16():
    return TrainConfig(batch_size=1, seq_len=1,
                       precision=PrecisionPolicy.pure(Precision.BF16))


class TestCosts:
    def test_kv_cache_scales(self, bf16):
        model = llama2_model("7b")
        base = kv_cache_bytes(model, bf16, 1, 1024)
        assert kv_cache_bytes(model, bf16, 4, 1024) == pytest.approx(
            4 * base)
        assert kv_cache_bytes(model, bf16, 1, 2048) == pytest.approx(
            2 * base)

    def test_gqa_shrinks_cache(self, bf16):
        full = kv_cache_bytes(llama2_model("7b"), bf16, 1, 1024)
        # 70B has 8 kv heads of 128 dims = 1024 kv_hidden vs 4096 at 7B,
        # but 80 layers vs 32: ratio = (80 * 1024) / (32 * 4096).
        gqa = kv_cache_bytes(llama2_model("70b"), bf16, 1, 1024)
        assert gqa / full == pytest.approx((80 * 1024) / (32 * 4096))

    def test_step_flops_near_2p(self, bf16):
        model = gpt2_model("small")
        params = TransformerCostModel(model).total_params()
        flops = decode_step_flops(model, bf16, batch_size=1, context_len=1)
        assert flops == pytest.approx(2 * params, rel=0.05)


class TestRegimes:
    def test_wse_compute_bound_at_batch_one(self, bf16):
        estimate = estimate_decode(WSE2, gpt2_model("small"), bf16, 1, 1024)
        assert estimate.bound == "compute"

    def test_ddr_platforms_memory_bound_at_batch_one(self, bf16):
        for chip in (SN30_RDU, BOW_IPU):
            estimate = estimate_decode(chip, gpt2_model("small"), bf16,
                                       1, 1024)
            assert estimate.bound == "memory", chip.name

    def test_batch_amortizes_weight_reads(self, bf16):
        model = gpt2_model("small")
        one = estimate_decode(SN30_RDU, model, bf16, 1, 256)
        many = estimate_decode(SN30_RDU, model, bf16, 64, 256)
        # Sublinear of 64x because the KV-cache reads grow with batch,
        # but far above linear-in-nothing: weight reads amortize.
        assert many.tokens_per_second > 15 * one.tokens_per_second

    def test_long_context_kv_dominates(self, bf16):
        model = llama2_model("7b")
        short = estimate_decode(SN30_RDU, model, bf16, 32, 128)
        long = estimate_decode(SN30_RDU, model, bf16, 32, 4096)
        assert long.kv_cache_bytes > 10 * short.kv_cache_bytes
        assert long.tokens_per_second < short.tokens_per_second

    def test_saturation_batch_orders_platforms(self, bf16):
        model = gpt2_model("small")
        wse = batch_to_saturate(WSE2, model, bf16, context_len=512)
        rdu = batch_to_saturate(SN30_RDU, model, bf16, context_len=512)
        assert wse == 1  # on-chip weights: compute-bound immediately
        assert rdu is None or rdu > 8

    def test_capacity_enforced(self, bf16):
        with pytest.raises(ConfigurationError):
            estimate_decode(BOW_IPU, llama2_model("70b"), bf16, 1, 1024)

    def test_invalid_inputs(self, bf16):
        with pytest.raises(ConfigurationError):
            estimate_decode(WSE2, gpt2_model("small"), bf16, 0, 128)


class TestLatency:
    def test_per_sequence_latency(self, bf16):
        estimate = estimate_decode(SN30_RDU, gpt2_model("small"), bf16,
                                   8, 512)
        assert estimate.per_sequence_latency == pytest.approx(
            8 / estimate.tokens_per_second)

    def test_intensity_rises_with_batch(self, bf16):
        model = gpt2_model("small")
        ai = [estimate_decode(SN30_RDU, model, bf16, b,
                              256).arithmetic_intensity
              for b in (1, 8, 64)]
        assert ai == sorted(ai)
