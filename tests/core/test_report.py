"""Report rendering."""

from repro.core.report import (
    GRID_HEADERS,
    INFRA_HEADERS,
    TIER1_HEADERS,
    BenchmarkReport,
    describe_tier1,
    infrastructure_row,
    render_table,
    sweep_cell_row,
    tier1_summary_row,
)
from repro.core.tier1 import Tier1Profiler
from repro.models.config import TrainConfig, gpt2_model


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        # All rows share the same width.
        assert len(set(len(line) for line in lines)) == 1

    def test_title(self):
        text = render_table(["x"], [["1"]], title="Table I")
        assert text.startswith("Table I")

    def test_non_string_cells(self):
        text = render_table(["n"], [[42], [3.5]])
        assert "42" in text and "3.5" in text


class TestBenchmarkReport:
    def test_render_sections_in_order(self):
        report = BenchmarkReport(title="T")
        report.add_table("tbl", ["h"], [["v"]])
        report.add_insight("something useful")
        report.add_text("closing")
        rendered = report.render()
        assert rendered.index("tbl") < rendered.index("Insight:") \
            < rendered.index("closing")

    def test_title_banner(self):
        rendered = BenchmarkReport(title="My Title").render()
        assert "My Title" in rendered
        assert "=" * len("My Title") in rendered


class TestInfrastructureHealth:
    def test_row_matches_headers(self, cerebras):
        from repro.campaign import Campaign
        from repro.workloads.sweeps import SweepSpec

        spec = SweepSpec(label="L2",
                         model=gpt2_model("mini").with_layers(2),
                         train=TrainConfig(batch_size=8, seq_len=256))
        result = Campaign([(cerebras, [spec])]).run()
        row = infrastructure_row(result.stats[cerebras.name])
        assert len(row) == len(INFRA_HEADERS)
        assert row[0] == cerebras.name

    def test_table_renders_breaker_columns(self):
        class Stats:
            backend = "CS-2"
            cells = 5
            ok = 2
            failed = 2
            gated = 1
            resumed = 0
            attempts = 7
            retries = 2
            breaker = {"state": "open", "trip_count": 3,
                       "open_seconds": 12.5}

        report = BenchmarkReport(title="T")
        report.add_infrastructure_health([Stats()])
        rendered = report.render()
        assert "Infrastructure health" in rendered
        assert "trips" in rendered
        line = next(ln for ln in rendered.splitlines() if "CS-2" in ln)
        assert "open" in line and "3" in line and "12.5" in line

    def test_missing_breaker_renders_placeholder(self):
        class Stats:
            backend = "x"
            cells = ok = failed = gated = resumed = 0
            attempts = retries = 0
            breaker = {}

        row = infrastructure_row(Stats())
        assert row[INFRA_HEADERS.index("breaker")] == "-"
        assert row[INFRA_HEADERS.index("trips")] == 0

    def test_sweep_cell_row_shapes(self, cerebras):
        from repro.workloads.sweeps import SweepSpec, run_grid

        train = TrainConfig(batch_size=8, seq_len=256)
        specs = [SweepSpec(label="L2",
                           model=gpt2_model("mini").with_layers(2),
                           train=train),
                 SweepSpec(label="L90",
                           model=gpt2_model("mini").with_layers(90),
                           train=train)]
        cells = run_grid(cerebras, specs)
        ok_row = sweep_cell_row(cells[0])
        fail_row = sweep_cell_row(cells[1])
        assert len(ok_row) == len(fail_row) == len(GRID_HEADERS)
        assert ok_row[1] == "ok"
        assert fail_row[1].startswith("Fail (")
        assert fail_row[-1] == "-"


class TestTier1Rendering:
    def test_summary_row_matches_headers(self, cerebras):
        result = Tier1Profiler(cerebras).profile(
            gpt2_model("small"), TrainConfig(batch_size=32, seq_len=1024))
        row = tier1_summary_row(result)
        assert len(row) == len(TIER1_HEADERS)
        assert row[0] == "CS-2"

    def test_describe_mentions_bound(self, cerebras):
        result = Tier1Profiler(cerebras).profile(
            gpt2_model("small"), TrainConfig(batch_size=32, seq_len=1024))
        text = describe_tier1(result)
        assert "compute-bound" in text
        assert "%" in text
