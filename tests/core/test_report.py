"""Report rendering."""

from repro.core.report import (
    TIER1_HEADERS,
    BenchmarkReport,
    describe_tier1,
    render_table,
    tier1_summary_row,
)
from repro.core.tier1 import Tier1Profiler
from repro.models.config import TrainConfig, gpt2_model


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        # All rows share the same width.
        assert len(set(len(line) for line in lines)) == 1

    def test_title(self):
        text = render_table(["x"], [["1"]], title="Table I")
        assert text.startswith("Table I")

    def test_non_string_cells(self):
        text = render_table(["n"], [[42], [3.5]])
        assert "42" in text and "3.5" in text


class TestBenchmarkReport:
    def test_render_sections_in_order(self):
        report = BenchmarkReport(title="T")
        report.add_table("tbl", ["h"], [["v"]])
        report.add_insight("something useful")
        report.add_text("closing")
        rendered = report.render()
        assert rendered.index("tbl") < rendered.index("Insight:") \
            < rendered.index("closing")

    def test_title_banner(self):
        rendered = BenchmarkReport(title="My Title").render()
        assert "My Title" in rendered
        assert "=" * len("My Title") in rendered


class TestTier1Rendering:
    def test_summary_row_matches_headers(self, cerebras):
        result = Tier1Profiler(cerebras).profile(
            gpt2_model("small"), TrainConfig(batch_size=32, seq_len=1024))
        row = tier1_summary_row(result)
        assert len(row) == len(TIER1_HEADERS)
        assert row[0] == "CS-2"

    def test_describe_mentions_bound(self, cerebras):
        result = Tier1Profiler(cerebras).profile(
            gpt2_model("small"), TrainConfig(batch_size=32, seq_len=1024))
        text = describe_tier1(result)
        assert "compute-bound" in text
        assert "%" in text
