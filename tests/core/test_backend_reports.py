"""Report dataclass contracts (TaskProfile, PhaseProfile, breakdowns)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.backend import (
    MemoryBreakdown,
    PhaseProfile,
    RunReport,
    TaskProfile,
)


class TestTaskProfile:
    def test_negative_units_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskProfile(name="t", compute_units=-1.0)

    def test_unknown_role_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskProfile(name="t", compute_units=1.0, role="magic")

    def test_defaults(self):
        t = TaskProfile(name="t", compute_units=1.0)
        assert t.memory_units == 0.0
        assert t.role == "compute"


class TestPhaseProfile:
    def test_negative_runtime_rejected(self):
        with pytest.raises(ConfigurationError):
            PhaseProfile(name="p", runtime=-1.0, tasks=())

    def test_zero_invocations_rejected(self):
        with pytest.raises(ConfigurationError):
            PhaseProfile(name="p", runtime=1.0, tasks=(), invocations=0)

    def test_unit_sums(self):
        p = PhaseProfile(name="p", runtime=1.0, tasks=(
            TaskProfile(name="a", compute_units=2.0, memory_units=1.0),
            TaskProfile(name="b", compute_units=3.0, memory_units=4.0),
        ))
        assert p.compute_units == 5.0
        assert p.memory_units == 5.0
        assert p.units("compute") == 5.0
        assert p.units("memory") == 5.0

    def test_unknown_unit_kind(self):
        p = PhaseProfile(name="p", runtime=1.0, tasks=())
        with pytest.raises(ConfigurationError):
            p.units("pe")


class TestMemoryBreakdown:
    def test_training_and_total(self):
        m = MemoryBreakdown(capacity_bytes=100.0, configuration_bytes=10.0,
                            weight_bytes=20.0, activation_bytes=30.0,
                            optimizer_bytes=5.0)
        assert m.training_bytes == 55.0
        assert m.total_bytes == 65.0
        assert m.utilization == pytest.approx(0.65)
        assert m.headroom_bytes == pytest.approx(35.0)

    def test_oversubscription_negative_headroom(self):
        m = MemoryBreakdown(capacity_bytes=10.0, weight_bytes=20.0)
        assert m.headroom_bytes < 0
        assert m.utilization > 1.0


class TestRunReportDerived:
    def test_effective_intensity(self):
        report = RunReport(platform="x", tokens_per_second=1.0,
                           samples_per_second=1.0, step_time=2.0,
                           achieved_flops=100.0, phases=(),
                           global_traffic_bytes_per_step=50.0)
        # 100 FLOP/s * 2 s / 50 B = 4 FLOPs/byte.
        assert report.effective_intensity == pytest.approx(4.0)

    def test_effective_intensity_no_traffic(self):
        report = RunReport(platform="x", tokens_per_second=1.0,
                           samples_per_second=1.0, step_time=2.0,
                           achieved_flops=100.0, phases=())
        assert report.effective_intensity == float("inf")


class TestCompileReportLookups:
    def test_phase_lookup(self, cerebras, gpt2_small, train_fp16):
        report = cerebras.compile(gpt2_small, train_fp16)
        assert report.phase("graph").name == "graph"
        with pytest.raises(KeyError):
            report.phase("missing")

    def test_tasks_flatten(self, sambanova, gpt2_small, train_bf16):
        report = sambanova.compile(gpt2_small, train_bf16, mode="O1")
        assert len(report.tasks) == sum(len(p.tasks) for p in report.phases)

    def test_compile_and_run_convenience(self, cerebras, gpt2_mini,
                                         train_fp16):
        compiled, run = cerebras.compile_and_run(gpt2_mini, train_fp16)
        assert compiled.platform == run.platform
