"""Energy/power extension."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.energy import (
    POWER_SPECS,
    PowerSpec,
    estimate_energy,
)
from repro.models.config import TrainConfig, gpt2_model
from repro.models.precision import Precision, PrecisionPolicy


class TestPowerSpec:
    def test_linear_interpolation(self):
        spec = PowerSpec("x", idle_watts=100.0, peak_watts=300.0)
        assert spec.power_at(0.0) == 100.0
        assert spec.power_at(0.5) == 200.0
        assert spec.power_at(1.0) == 300.0

    def test_utilization_clamped(self):
        spec = PowerSpec("x", idle_watts=100.0, peak_watts=300.0)
        assert spec.power_at(-1.0) == 100.0
        assert spec.power_at(2.0) == 300.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PowerSpec("x", idle_watts=-1.0, peak_watts=10.0)
        with pytest.raises(ConfigurationError):
            PowerSpec("x", idle_watts=100.0, peak_watts=50.0)

    def test_all_platforms_have_specs(self):
        for name in ("CS-2", "SN30", "Bow-2000", "A100-cluster"):
            assert name in POWER_SPECS


class TestEstimate:
    @pytest.fixture()
    def pair(self, cerebras):
        compiled = cerebras.compile(gpt2_model("small"),
                                    TrainConfig(batch_size=32,
                                                seq_len=1024))
        return compiled, cerebras.run(compiled)

    def test_basic_accounting(self, pair):
        compiled, run = pair
        estimate = estimate_energy(compiled, run)
        assert estimate.platform == "CS-2"
        assert estimate.power_watts > POWER_SPECS["CS-2"].idle_watts
        assert estimate.step_energy_joules == pytest.approx(
            estimate.power_watts * run.step_time)
        assert estimate.tokens_per_joule * estimate.joules_per_token == \
            pytest.approx(1.0)

    def test_unknown_platform_needs_explicit_spec(self, pair):
        import dataclasses
        compiled, run = pair
        odd = dataclasses.replace(compiled, platform="Mystery-9000")
        with pytest.raises(ConfigurationError):
            estimate_energy(odd, run)
        estimate = estimate_energy(
            odd, run, power=PowerSpec("Mystery", 10.0, 20.0))
        assert estimate.power_watts <= 20.0

    def test_multi_chip_scales_power(self, sambanova):
        bf16 = TrainConfig(batch_size=16, seq_len=1024,
                           precision=PrecisionPolicy.pure(Precision.BF16))
        model = gpt2_model("small")
        one = sambanova.compile(model, bf16, mode="O1", tp=1)
        two = sambanova.compile(model, bf16, mode="O1", tp=2)
        e1 = estimate_energy(one, sambanova.run(one))
        e2 = estimate_energy(two, sambanova.run(two))
        assert e2.n_chips == 2
        # Two chips at lower utilization each: more watts in total.
        assert e2.power_watts > e1.power_watts * 1.2

    def test_idle_heavy_platform_penalized_at_low_utilization(self,
                                                              sambanova):
        """O0's low utilization wastes proportionally more energy."""
        bf16 = TrainConfig(batch_size=16, seq_len=1024,
                           precision=PrecisionPolicy.pure(Precision.BF16))
        model = gpt2_model("small")
        o0 = sambanova.compile(model, bf16, mode="O0")
        o3 = sambanova.compile(model, bf16, mode="O3")
        e0 = estimate_energy(o0, sambanova.run(o0))
        e3 = estimate_energy(o3, sambanova.run(o3))
        assert e0.joules_per_token > 2.0 * e3.joules_per_token
