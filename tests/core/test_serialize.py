"""JSON serialization of framework reports."""

import json

import pytest

from repro.core.serialize import (
    batch_sweep_to_dict,
    compile_report_to_dict,
    memory_to_dict,
    precision_to_dict,
    run_report_to_dict,
    scaling_point_to_dict,
    sweep_entry_to_dict,
    tier1_to_dict,
    to_json,
)
from repro.core.tier1 import Tier1Profiler
from repro.core.tier2 import DeploymentOptimizer, ScalabilityAnalyzer
from repro.models.config import TrainConfig, gpt2_model
from repro.models.precision import Precision, PrecisionPolicy


@pytest.fixture(scope="module")
def tier1_result(cerebras):
    return Tier1Profiler(cerebras).profile(
        gpt2_model("small"), TrainConfig(batch_size=32, seq_len=1024))


class TestCompileRunSerialization:
    def test_compile_round_trips_json(self, tier1_result):
        payload = compile_report_to_dict(tier1_result.compiled)
        text = to_json(payload)
        back = json.loads(text)
        assert back["platform"] == "CS-2"
        assert back["model"] == "gpt2-small"
        assert back["phases"][0]["tasks"]

    def test_run_round_trips_json(self, tier1_result):
        back = json.loads(to_json(run_report_to_dict(tier1_result.run)))
        assert back["tokens_per_second"] > 0
        assert "trace" not in back

    def test_meta_reduced_to_scalars(self, tier1_result):
        payload = compile_report_to_dict(tier1_result.compiled)
        for value in payload["meta"].values():
            assert isinstance(value, (str, int, float, bool, type(None)))

    def test_memory_none(self):
        assert memory_to_dict(None) is None


class TestTier1Serialization:
    def test_fields(self, tier1_result):
        payload = tier1_to_dict(tier1_result)
        json.loads(to_json(payload))
        assert payload["bound"] == "compute"
        assert 0 < payload["compute_allocation"] <= 1

    def test_sweep_entry_failure(self, cerebras):
        entries = Tier1Profiler(cerebras).sweep_layers(
            gpt2_model("small"), TrainConfig(batch_size=32, seq_len=1024),
            [90])
        payload = sweep_entry_to_dict(entries[0])
        json.loads(to_json(payload))
        assert payload["failed"]
        assert payload["result"] is None


class TestTier2Serialization:
    def test_scaling_point(self, cerebras):
        points = ScalabilityAnalyzer(cerebras).sweep(
            gpt2_model("mini"), TrainConfig(batch_size=64, seq_len=512),
            [("DP2", {"n_replicas": 2})])
        payload = scaling_point_to_dict(points[0])
        json.loads(to_json(payload))
        assert payload["label"] == "DP2"
        assert payload["options"] == {"n_replicas": 2}

    def test_batch_sweep(self, cerebras):
        sweep = DeploymentOptimizer(cerebras).batch_sweep(
            gpt2_model("mini"), TrainConfig(batch_size=8, seq_len=512),
            [8, 16])
        payload = batch_sweep_to_dict(sweep)
        json.loads(to_json(payload))
        assert payload["batch_sizes"] == [8, 16]

    def test_precision(self, cerebras):
        cmp = DeploymentOptimizer(cerebras).compare_precision(
            gpt2_model("mini"), TrainConfig(batch_size=32, seq_len=512),
            baseline=PrecisionPolicy.pure(Precision.FP16),
            optimized=PrecisionPolicy.pure(Precision.CB16))
        payload = precision_to_dict(cmp)
        json.loads(to_json(payload))
        assert payload["gain"] > 0
