"""Tier-2 analyzers: scalability sweeps and deployment optimization."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.tier2 import (
    BatchSweepResult,
    DeploymentOptimizer,
    ScalabilityAnalyzer,
)
from repro.models.config import TrainConfig, gpt2_model
from repro.models.precision import Precision, PrecisionPolicy
from repro.workloads import decoder_block_probe


class TestScalabilityAnalyzer:
    def test_wse_dp_sweep(self, cerebras):
        train = TrainConfig(batch_size=256, seq_len=1024)
        points = ScalabilityAnalyzer(cerebras).sweep(
            gpt2_model("small"), train,
            [("DP1", {"n_replicas": 1}), ("DP2", {"n_replicas": 2})])
        assert all(not p.failed for p in points)
        assert points[1].tokens_per_second > points[0].tokens_per_second

    def test_failures_become_points(self, cerebras):
        train = TrainConfig(batch_size=64, seq_len=1024)
        points = ScalabilityAnalyzer(cerebras).sweep(
            gpt2_model("small").with_layers(78), train,
            [("base", {})])
        assert points[0].failed
        assert points[0].tokens_per_second == 0.0

    def test_scaling_efficiency_normalization(self, cerebras):
        train = TrainConfig(batch_size=256, seq_len=1024)
        analyzer = ScalabilityAnalyzer(cerebras)
        points = analyzer.sweep(
            gpt2_model("mini"), train,
            [("DP1", {"n_replicas": 1}), ("DP4", {"n_replicas": 4})])
        eff = analyzer.scaling_efficiency(points, {"DP1": 1, "DP4": 4})
        assert eff["DP1"] == pytest.approx(1.0)
        assert 0.1 < eff["DP4"] < 1.5

    def test_scaling_efficiency_needs_points(self, cerebras):
        analyzer = ScalabilityAnalyzer(cerebras)
        with pytest.raises(ConfigurationError):
            analyzer.scaling_efficiency([], {})

    def test_rdu_tp_sweep_records_allocation(self, sambanova, llama7b):
        train = TrainConfig(batch_size=8, seq_len=4096,
                            precision=PrecisionPolicy.pure(Precision.BF16))
        points = ScalabilityAnalyzer(sambanova).sweep(
            llama7b, train, [("TP2", {"mode": "O1", "tp": 2}),
                             ("TP4", {"mode": "O1", "tp": 4})])
        assert points[0].compute_allocation > points[1].compute_allocation
        assert points[1].communication_fraction > \
            points[0].communication_fraction


class TestBatchSweep:
    def test_wse_saturation_detected(self, cerebras):
        optimizer = DeploymentOptimizer(cerebras)
        result = optimizer.batch_sweep(
            gpt2_model("small"), TrainConfig(batch_size=8, seq_len=1024),
            [32, 64, 128, 256, 512])
        assert result.saturation_batch is not None
        assert 64 <= result.saturation_batch <= 256
        assert not result.near_linear

    def test_rdu_near_linear(self, sambanova):
        optimizer = DeploymentOptimizer(sambanova)
        result = optimizer.batch_sweep(
            gpt2_model("small"),
            TrainConfig(batch_size=4, seq_len=1024,
                        precision=PrecisionPolicy.pure(Precision.BF16)),
            [4, 8, 16, 32], mode="O1")
        assert result.near_linear

    def test_failed_batches_recorded(self, graphcore):
        optimizer = DeploymentOptimizer(graphcore)
        result = optimizer.batch_sweep(
            gpt2_model("small").with_layers(8),
            TrainConfig(batch_size=8, seq_len=1024),
            [16, 4096], n_ipus=2)
        assert result.tokens_per_second[0] > 0
        assert result.tokens_per_second[1] == 0.0
        assert 4096 in result.errors

    def test_saturation_none_for_short_series(self):
        result = BatchSweepResult(platform="x", batch_sizes=(4,),
                                  tokens_per_second=(1.0,))
        assert result.saturation_batch is None
        assert not result.near_linear


class TestPrecisionComparison:
    def test_wse_cb16_gain(self, cerebras):
        optimizer = DeploymentOptimizer(cerebras)
        cmp = optimizer.compare_precision(
            gpt2_model("small"), TrainConfig(batch_size=128, seq_len=1024),
            baseline=PrecisionPolicy.pure(Precision.FP16),
            optimized=PrecisionPolicy.pure(Precision.CB16))
        assert 0.05 < cmp.gain < 0.15  # paper: +10.7%

    def test_gain_zero_when_baseline_zero(self):
        from repro.core.tier2 import PrecisionComparison
        cmp = PrecisionComparison(
            platform="x", baseline_label="a", optimized_label="b",
            baseline_tokens_per_second=0.0,
            optimized_tokens_per_second=10.0)
        assert cmp.gain == 0.0

    def test_labels_propagated(self, cerebras):
        optimizer = DeploymentOptimizer(cerebras)
        cmp = optimizer.compare_precision(
            decoder_block_probe(256, 2),
            TrainConfig(batch_size=32, seq_len=256),
            baseline=PrecisionPolicy.pure(Precision.FP16),
            optimized=PrecisionPolicy.pure(Precision.CB16))
        assert cmp.baseline_label == "fp16"
        assert cmp.optimized_label == "cb16"


class TestTier2Robustness:
    """Run-phase faults become points/records, and journals resume."""

    def probe_train(self):
        return decoder_block_probe(256, 2), TrainConfig(batch_size=8,
                                                        seq_len=256)

    def test_scaling_sweep_survives_run_phase_fault(self, cerebras):
        from repro.common.errors import SimulationError
        from repro.resilience import (
            FaultInjectingBackend,
            FaultPlan,
            FaultSpec,
        )

        model, train = self.probe_train()
        plan = FaultPlan().add(FaultSpec(
            fault=lambda: SimulationError("engine desync"),
            phase="run", attempts=(0,)))
        wrapped = FaultInjectingBackend(cerebras, plan)
        points = ScalabilityAnalyzer(wrapped).sweep(
            model, train, [("DP1", {"n_replicas": 1}),
                           ("DP2", {"n_replicas": 2})])
        assert points[0].failed
        assert points[0].failure.type == "SimulationError"
        assert points[0].failure.phase == "run"
        assert not points[1].failed  # sweep continued

    def test_scaling_failure_keeps_structured_attrs(self, cerebras):
        train = TrainConfig(batch_size=64, seq_len=1024)
        points = ScalabilityAnalyzer(cerebras).sweep(
            gpt2_model("small").with_layers(78), train, [("base", {})])
        assert points[0].failure is not None
        assert points[0].failure.type
        assert points[0].failure.phase == "compile"

    def test_scaling_sweep_resumes_from_journal(self, cerebras, tmp_path):
        from repro.resilience import (
            ExecutionPolicy,
            FaultInjectingBackend,
            FaultPlan,
        )

        model, train = self.probe_train()
        journal = tmp_path / "scaling.jsonl"
        counted = FaultInjectingBackend(cerebras, FaultPlan())
        configs = [("DP1", {"n_replicas": 1}), ("DP2", {"n_replicas": 2})]
        first = ScalabilityAnalyzer(counted).sweep(
            model, train, configs[:1],
            policy=ExecutionPolicy(journal=journal))
        assert counted.calls["compile"] == 1
        points = ScalabilityAnalyzer(counted).sweep(
            model, train, configs,
            policy=ExecutionPolicy(journal=journal, resume=True))
        assert counted.calls["compile"] == 2  # only DP2 executed
        assert points[0].resumed
        assert points[0].tokens_per_second == pytest.approx(
            first[0].tokens_per_second)
        # Allocation metrics survive the journal round-trip too.
        assert points[0].compute_allocation == pytest.approx(
            first[0].compute_allocation)
        assert points[0].communication_fraction == pytest.approx(
            first[0].communication_fraction)
        assert not points[1].resumed

    def test_batch_sweep_records_structured_failures(self, graphcore):
        model, train = self.probe_train()
        from repro.common.errors import OutOfMemoryError
        from repro.resilience import (
            FaultInjectingBackend,
            FaultPlan,
            FaultSpec,
        )

        plan = FaultPlan().add(FaultSpec(
            fault=lambda: OutOfMemoryError("tiles full",
                                           required_bytes=5.0,
                                           available_bytes=4.0),
            match="/b32", attempts=None))
        wrapped = FaultInjectingBackend(graphcore, plan)
        sweep = DeploymentOptimizer(wrapped).batch_sweep(
            model, train, [8, 32])
        assert 32 in sweep.failures
        assert sweep.failures[32].attrs["required_bytes"] == 5.0
        assert sweep.tokens_per_second[1] == 0.0

    def test_batch_sweep_resumes_from_journal(self, cerebras, tmp_path):
        from repro.resilience import (
            ExecutionPolicy,
            FaultInjectingBackend,
            FaultPlan,
        )

        model, train = self.probe_train()
        journal = tmp_path / "batch.jsonl"
        counted = FaultInjectingBackend(cerebras, FaultPlan())
        optimizer = DeploymentOptimizer(counted)
        optimizer.batch_sweep(model, train, [8],
                              policy=ExecutionPolicy(journal=journal))
        sweep = optimizer.batch_sweep(
            model, train, [8, 16],
            policy=ExecutionPolicy(journal=journal, resume=True))
        assert counted.calls["compile"] == 2  # batch=8 skipped on resume
        assert sweep.batch_sizes == (8, 16)
        assert all(rate > 0 for rate in sweep.tokens_per_second)

    def test_parallel_sweep_matches_sequential(self, cerebras):
        from repro.resilience import ExecutionPolicy

        model, train = self.probe_train()
        configs = [(f"DP{n}", {"n_replicas": n}) for n in (1, 2, 4)]
        pooled = ScalabilityAnalyzer(cerebras).sweep(
            model, train, configs,
            policy=ExecutionPolicy(max_workers=3))
        serial = ScalabilityAnalyzer(cerebras).sweep(model, train, configs)
        assert [p.label for p in pooled] == ["DP1", "DP2", "DP4"]
        assert [p.tokens_per_second for p in pooled] == \
            [p.tokens_per_second for p in serial]


class TestRemovedKeywords:
    """The pre-policy keywords were removed in 0.3 (satellite 1)."""

    def probe_train(self):
        return decoder_block_probe(256, 2), TrainConfig(batch_size=8,
                                                        seq_len=256)

    def test_sweep_journal_keyword_raises(self, cerebras, tmp_path):
        model, train = self.probe_train()
        with pytest.raises(TypeError,
                           match="ScalabilityAnalyzer.sweep.*removed "
                                 "in 0.3.*ExecutionPolicy"):
            ScalabilityAnalyzer(cerebras).sweep(
                model, train, [("DP1", {"n_replicas": 1})],
                journal=tmp_path / "j.jsonl")
        assert not (tmp_path / "j.jsonl").exists()

    def test_batch_sweep_resume_keyword_raises(self, cerebras, tmp_path):
        model, train = self.probe_train()
        journal = tmp_path / "batch.jsonl"
        optimizer = DeploymentOptimizer(cerebras)
        with pytest.raises(TypeError,
                           match="DeploymentOptimizer.batch_sweep"):
            optimizer.batch_sweep(model, train, [8], journal=journal)
        with pytest.raises(TypeError, match="journal, resume"):
            optimizer.batch_sweep(model, train, [8],
                                  journal=journal, resume=True)

    def test_batch_sweep_still_forwards_compile_options(self, cerebras):
        # **options must keep flowing to backend.compile — only the
        # four removed names are rejected.
        model, train = self.probe_train()
        from repro.resilience import ExecutionPolicy
        sweep = DeploymentOptimizer(cerebras).batch_sweep(
            model, train, [8], policy=ExecutionPolicy(), n_replicas=1)
        assert sweep.tokens_per_second[0] > 0
