"""Partitioning primitives: chunking, balancing, fusion."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.graph.graph import ComputationGraph
from repro.graph.ops import OpKind, Operator
from repro.graph.partition import (
    balanced_groups,
    contiguous_chunks,
    fuse_linear_chains,
    group_cost,
)

identity = float


class TestGroupCost:
    def test_sum(self):
        assert group_cost([1, 2, 3], identity) == 6.0

    def test_empty(self):
        assert group_cost([], identity) == 0.0


class TestContiguousChunks:
    def test_respects_bound(self):
        chunks = contiguous_chunks([3, 3, 3, 3], max_cost=6.0,
                                   cost=identity)
        assert chunks == [[3, 3], [3, 3]]

    def test_oversized_item_gets_own_chunk(self):
        chunks = contiguous_chunks([10, 1, 1], max_cost=5.0, cost=identity)
        assert chunks[0] == [10]

    def test_preserves_order(self):
        chunks = contiguous_chunks(list(range(10)), max_cost=7.0,
                                   cost=identity)
        flat = [x for chunk in chunks for x in chunk]
        assert flat == list(range(10))

    def test_empty_input(self):
        assert contiguous_chunks([], max_cost=1.0, cost=identity) == []

    def test_invalid_bound(self):
        with pytest.raises(ConfigurationError):
            contiguous_chunks([1], max_cost=0.0, cost=identity)

    @given(st.lists(st.floats(min_value=0.1, max_value=5.0), max_size=30),
           st.floats(min_value=5.0, max_value=20.0))
    def test_every_chunk_within_bound_unless_singleton(self, items, bound):
        for chunk in contiguous_chunks(items, max_cost=bound, cost=identity):
            if len(chunk) > 1:
                assert sum(chunk) <= bound + 1e-9


class TestBalancedGroups:
    def test_even_split(self):
        groups = balanced_groups([1] * 8, 4, identity)
        assert [len(g) for g in groups] == [2, 2, 2, 2]

    def test_fewer_items_than_groups(self):
        groups = balanced_groups([1, 1], 4, identity)
        assert sum(len(g) for g in groups) == 2
        assert len(groups) == 4

    def test_empty_items(self):
        assert balanced_groups([], 3, identity) == [[], [], []]

    def test_invalid_group_count(self):
        with pytest.raises(ConfigurationError):
            balanced_groups([1], 0, identity)

    def test_minimizes_bottleneck(self):
        # 12 unit layers over 5 groups: optimum bottleneck is 3.
        groups = balanced_groups([1] * 12, 5, identity)
        assert max(sum(g) for g in groups) == 3

    def test_heterogeneous_costs(self):
        groups = balanced_groups([5, 1, 1, 1, 1, 1], 2, identity)
        assert max(sum(g) for g in groups) == 5

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0),
                    min_size=1, max_size=40),
           st.integers(min_value=1, max_value=8))
    def test_partition_properties(self, items, n_groups):
        groups = balanced_groups(items, n_groups, identity)
        # Exactly n groups; contiguous; complete.
        assert len(groups) == n_groups
        flat = [x for g in groups for x in g]
        assert flat == items
        # Bottleneck is no worse than the trivial upper bound.
        if items:
            bottleneck = max((sum(g) for g in groups if g), default=0.0)
            assert bottleneck <= sum(items)
            assert bottleneck >= max(items) - 1e-9


class TestFuseLinearChains:
    def build(self, kinds):
        g = ComputationGraph()
        names = []
        for i, kind in enumerate(kinds):
            name = f"op{i}"
            g.add_op(Operator(name=name, kind=kind, flops=1.0,
                              output_bytes=1.0))
            names.append(name)
        g.chain(names)
        return g

    def test_matmul_absorbs_trailing_elementwise(self):
        g = self.build([OpKind.FFN_UP, OpKind.FFN_ACT, OpKind.FFN_DOWN])
        modules = fuse_linear_chains(g)
        assert [len(m) for m in modules] == [2, 1]
        assert modules[0][1].kind is OpKind.FFN_ACT

    def test_matmul_does_not_absorb_matmul(self):
        g = self.build([OpKind.FFN_UP, OpKind.FFN_DOWN])
        modules = fuse_linear_chains(g)
        assert [len(m) for m in modules] == [1, 1]

    def test_every_op_in_exactly_one_module(self):
        g = self.build([OpKind.LAYERNORM, OpKind.QKV_PROJ, OpKind.ATTENTION,
                        OpKind.ATTN_OUT_PROJ, OpKind.RESIDUAL_ADD,
                        OpKind.FFN_UP, OpKind.FFN_ACT, OpKind.FFN_DOWN,
                        OpKind.RESIDUAL_ADD])
        modules = fuse_linear_chains(g)
        names = [op.name for m in modules for op in m]
        assert sorted(names) == sorted(o.name for o in g)

    def test_branching_blocks_fusion(self):
        # res has two consumers: no absorption across the branch point.
        g = ComputationGraph()
        g.add_op(Operator("mm", OpKind.FFN_UP, flops=1.0, output_bytes=1.0))
        g.add_op(Operator("e1", OpKind.FFN_ACT, flops=1.0, output_bytes=1.0))
        g.add_op(Operator("e2", OpKind.RESIDUAL_ADD, flops=1.0,
                          output_bytes=1.0))
        g.add_edge("mm", "e1")
        g.add_edge("mm", "e2")
        modules = fuse_linear_chains(g)
        assert [len(m) for m in modules] == [1, 1, 1]

    def test_modules_in_topological_order(self):
        g = self.build([OpKind.QKV_PROJ, OpKind.LAYERNORM, OpKind.FFN_UP])
        modules = fuse_linear_chains(g)
        assert modules[0][0].name == "op0"
