"""Operator dataclass behaviour."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.graph.ops import OpKind, Operator


def make_op(**overrides):
    defaults = dict(name="op", kind=OpKind.FFN_UP, flops=100.0,
                    weight_bytes=10.0, input_bytes=4.0, output_bytes=6.0)
    defaults.update(overrides)
    return Operator(**defaults)


class TestValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_op(name="")

    @pytest.mark.parametrize("field", ["flops", "weight_bytes",
                                       "input_bytes", "output_bytes"])
    def test_negative_quantities_rejected(self, field):
        with pytest.raises(ConfigurationError):
            make_op(**{field: -1.0})


class TestDerivedQuantities:
    def test_activation_bytes(self):
        assert make_op().activation_bytes == 10.0

    def test_memory_bytes(self):
        assert make_op().memory_bytes == 20.0

    def test_arithmetic_intensity(self):
        assert make_op().arithmetic_intensity == pytest.approx(5.0)

    def test_zero_traffic_intensity(self):
        op = make_op(weight_bytes=0.0, input_bytes=0.0, output_bytes=0.0)
        assert op.arithmetic_intensity == 0.0

    def test_decoder_op_flag(self):
        assert make_op(layer_index=3).is_decoder_op
        assert not make_op(layer_index=-1).is_decoder_op


class TestKindProperties:
    def test_matmul_kinds(self):
        assert OpKind.QKV_PROJ.is_matmul
        assert OpKind.LM_HEAD.is_matmul
        assert not OpKind.LAYERNORM.is_matmul

    def test_elementwise_kinds(self):
        assert OpKind.LAYERNORM.is_elementwise
        assert OpKind.RESIDUAL_ADD.is_elementwise
        assert not OpKind.FFN_UP.is_elementwise

    def test_no_kind_is_both(self):
        for kind in OpKind:
            assert not (kind.is_matmul and kind.is_elementwise)


class TestAsBackward:
    def test_doubles_flops_by_default(self):
        bwd = make_op().as_backward()
        assert bwd.flops == 200.0
        assert bwd.backward

    def test_swaps_io(self):
        bwd = make_op().as_backward()
        assert bwd.input_bytes == 6.0
        assert bwd.output_bytes == 4.0

    def test_name_suffix(self):
        assert make_op().as_backward().name == "op.bwd"

    def test_custom_multiplier(self):
        assert make_op().as_backward(3.0).flops == 300.0


class TestScaled:
    def test_half(self):
        half = make_op().scaled(0.5, suffix=".s0")
        assert half.flops == 50.0
        assert half.weight_bytes == 5.0
        assert half.name == "op.s0"

    def test_negative_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            make_op().scaled(-0.1)

    @given(st.floats(min_value=0.0, max_value=10.0))
    def test_scaling_is_linear(self, factor):
        op = make_op()
        scaled = op.scaled(factor)
        assert scaled.flops == pytest.approx(op.flops * factor)
        assert scaled.memory_bytes == pytest.approx(
            op.memory_bytes * factor)
