"""ComputationGraph structure, validation, and queries."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.graph.graph import ComputationGraph
from repro.graph.ops import OpKind, Operator


def op(name, kind=OpKind.FFN_UP, layer=-1, **kw):
    defaults = dict(flops=10.0, output_bytes=8.0)
    defaults.update(kw)
    return Operator(name=name, kind=kind, layer_index=layer, **defaults)


@pytest.fixture()
def chain3():
    g = ComputationGraph("chain")
    for name in ("a", "b", "c"):
        g.add_op(op(name))
    g.chain(["a", "b", "c"])
    return g


class TestConstruction:
    def test_duplicate_name_rejected(self, chain3):
        with pytest.raises(ConfigurationError):
            chain3.add_op(op("a"))

    def test_edge_unknown_source(self, chain3):
        with pytest.raises(ConfigurationError):
            chain3.add_edge("nope", "a")

    def test_edge_unknown_destination(self, chain3):
        with pytest.raises(ConfigurationError):
            chain3.add_edge("a", "nope")

    def test_self_loop_rejected(self, chain3):
        with pytest.raises(ConfigurationError):
            chain3.add_edge("a", "a")

    def test_cycle_rejected(self, chain3):
        with pytest.raises(ConfigurationError):
            chain3.add_edge("c", "a")

    def test_edge_bytes_default_to_producer_output(self, chain3):
        edge = [e for e in chain3.edges if e.src == "a"][0]
        assert edge.bytes_transferred == 8.0

    def test_edge_bytes_override(self):
        g = ComputationGraph()
        g.add_op(op("x"))
        g.add_op(op("y"))
        edge = g.add_edge("x", "y", bytes_transferred=99.0)
        assert edge.bytes_transferred == 99.0


class TestQueries:
    def test_len_and_contains(self, chain3):
        assert len(chain3) == 3
        assert "b" in chain3
        assert "z" not in chain3

    def test_sources_and_sinks(self, chain3):
        assert [o.name for o in chain3.sources()] == ["a"]
        assert [o.name for o in chain3.sinks()] == ["c"]

    def test_degrees(self, chain3):
        assert chain3.in_degree("a") == 0
        assert chain3.out_degree("b") == 1
        assert chain3.in_degree("c") == 1

    def test_successors_predecessors(self, chain3):
        assert [o.name for o in chain3.successors("a")] == ["b"]
        assert [o.name for o in chain3.predecessors("c")] == ["b"]

    def test_topological_order(self, chain3):
        assert [o.name for o in chain3.topological_order()] == ["a", "b", "c"]

    def test_topological_order_diamond(self):
        g = ComputationGraph()
        for name in "abcd":
            g.add_op(op(name))
        g.add_edge("a", "b")
        g.add_edge("a", "c")
        g.add_edge("b", "d")
        g.add_edge("c", "d")
        order = [o.name for o in g.topological_order()]
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_aggregates(self, chain3):
        assert chain3.total_flops == 30.0
        assert chain3.total_activation_bytes == 3 * 8.0

    def test_ops_of_kind(self):
        g = ComputationGraph()
        g.add_op(op("m", OpKind.FFN_UP))
        g.add_op(op("n", OpKind.LAYERNORM))
        assert [o.name for o in g.ops_of_kind(OpKind.LAYERNORM)] == ["n"]

    def test_layer_queries(self):
        g = ComputationGraph()
        g.add_op(op("l0a", layer=0))
        g.add_op(op("l1a", layer=1))
        g.add_op(op("emb", layer=-1))
        assert g.layer_indices() == [0, 1]
        assert [o.name for o in g.layer_ops(1)] == ["l1a"]
        assert [o.name for o in g.model_level_ops()] == ["emb"]


class TestSubgraph:
    def test_induced_edges_only(self, chain3):
        sub = chain3.subgraph(["a", "c"])
        assert len(sub) == 2
        assert sub.edges == []

    def test_contiguous_subgraph_keeps_edges(self, chain3):
        sub = chain3.subgraph(["a", "b"])
        assert len(sub.edges) == 1

    def test_unknown_names_rejected(self, chain3):
        with pytest.raises(ConfigurationError):
            chain3.subgraph(["a", "zzz"])

    def test_boundary_bytes(self, chain3):
        # Cut between {a} and {b, c}: one 8-byte edge crosses.
        assert chain3.boundary_bytes(["a"]) == 8.0
        assert chain3.boundary_bytes(["a", "b", "c"]) == 0.0

    def test_validate_passes_on_wellformed(self, chain3):
        chain3.validate()


@given(st.integers(min_value=1, max_value=30))
def test_chain_topology_any_length(n):
    g = ComputationGraph()
    names = [f"n{i}" for i in range(n)]
    for name in names:
        g.add_op(op(name))
    g.chain(names)
    assert [o.name for o in g.topological_order()] == names
    assert len(g.edges) == n - 1
