"""WSE-2 compiler: allocation regimes, memory planning, failures."""

import pytest

from repro.cerebras.compiler import WSECompiler
from repro.common.errors import ConfigurationError, OutOfMemoryError
from repro.core.metrics import allocation_ratio, weighted_load_imbalance
from repro.models.config import TrainConfig, gpt2_model


@pytest.fixture(scope="module")
def compiler():
    return WSECompiler()


@pytest.fixture(scope="module")
def train():
    return TrainConfig(batch_size=64, seq_len=1024)


@pytest.fixture(scope="module")
def small():
    return gpt2_model("small")


class TestAllocationRegimes:
    def test_one_layer_near_paper_33pct(self, compiler, small, train):
        report = compiler.compile(small.with_layers(1), train)
        assert allocation_ratio(report) == pytest.approx(0.33, abs=0.03)

    def test_six_layers_near_paper_60pct(self, compiler, small, train):
        report = compiler.compile(small.with_layers(6), train)
        assert allocation_ratio(report) == pytest.approx(0.60, abs=0.04)

    def test_saturation_at_92_93pct(self, compiler, small, train):
        for layers in (24, 36, 48):
            report = compiler.compile(small.with_layers(layers), train)
            assert 0.88 <= allocation_ratio(report) <= 0.94

    def test_allocation_monotone_through_regimes(self, compiler, small,
                                                 train):
        ratios = [allocation_ratio(compiler.compile(small.with_layers(n),
                                                    train))
                  for n in (1, 6, 12, 18)]
        assert ratios == sorted(ratios)

    def test_under_subscribed_kernels_sit_at_cap(self, compiler, small,
                                                 train):
        # Below ~12 layers, per-attention-kernel PE usage is stable
        # (paper Fig. 6): the grants track the caps, not the layer count.
        r4 = compiler.compile(small.with_layers(4), train)
        r8 = compiler.compile(small.with_layers(8), train)

        def attn_pes(report):
            tasks = [t for t in report.phases[0].tasks
                     if t.meta.get("kind") == "attention"
                     and t.role == "compute"]
            return tasks[0].compute_units

        assert attn_pes(r4) == pytest.approx(attn_pes(r8), rel=0.05)

    def test_elastic_shrink_beyond_saturation(self, compiler, small, train):
        # Past saturation, per-kernel grants shrink with more layers.
        r18 = compiler.compile(small.with_layers(18), train)
        r36 = compiler.compile(small.with_layers(36), train)

        def attn_pes(report):
            tasks = [t for t in report.phases[0].tasks
                     if t.meta.get("kind") == "attention"
                     and t.role == "compute"]
            return tasks[0].compute_units

        assert attn_pes(r36) < attn_pes(r18)


class TestTransmissionPEs:
    def test_roles_partition_the_grant(self, compiler, small, train):
        report = compiler.compile(small, train)
        compute = sum(t.compute_units for t in report.phases[0].tasks
                      if t.role == "compute")
        trans = sum(t.compute_units for t in report.phases[0].tasks
                    if t.role == "transmission")
        # Fig. 6: "close proportions" — 40% of each grant routes data.
        assert trans / (compute + trans) == pytest.approx(0.40, abs=0.01)


class TestLoadBalance:
    def test_li_is_high(self, compiler, small, train):
        # Paper Fig. 8a: WSE LI between 0.96 and 1.0; ours lands >= 0.9.
        for layers in (6, 18, 36):
            report = compiler.compile(small.with_layers(layers), train)
            assert weighted_load_imbalance(report) >= 0.90


class TestMemoryPlanning:
    def test_config_memory_grows_superlinearly(self, compiler, small, train):
        c12 = compiler.compile(small.with_layers(12), train)
        c48 = compiler.compile(small.with_layers(48), train)
        growth = (c48.shared_memory.configuration_bytes
                  / c12.shared_memory.configuration_bytes)
        assert growth > 4.0  # 4x layers -> much more than 4x config

    def test_pipeline_efficiency_collapses_past_36(self, compiler, small,
                                                   train):
        eff36 = compiler.compile(small.with_layers(36),
                                 train).meta["pipeline_efficiency"]
        eff60 = compiler.compile(small.with_layers(60),
                                 train).meta["pipeline_efficiency"]
        assert eff36 > 0.9
        assert eff60 < 0.5

    def test_78_layers_fails_like_table1(self, compiler, small, train):
        with pytest.raises(OutOfMemoryError):
            compiler.compile(small.with_layers(78), train)

    def test_72_layers_still_compiles(self, compiler, small, train):
        compiler.compile(small.with_layers(72), train)

    def test_max_layers_matches_paper_envelope(self, compiler, small, train):
        # Paper: "supporting up to 72 decoder layers in our experiments".
        assert compiler.max_layers(small, train, upper=96) in range(70, 78)


class TestModesAndOptions:
    def test_unknown_mode_rejected(self, compiler, small, train):
        with pytest.raises(ConfigurationError):
            compiler.compile(small, train, mode="magic")

    def test_zero_replicas_rejected(self, compiler, small, train):
        with pytest.raises(ConfigurationError):
            compiler.compile(small, train, n_replicas=0)

    def test_batch_below_replicas_rejected(self, compiler, small):
        with pytest.raises(ConfigurationError):
            compiler.compile(small, TrainConfig(batch_size=2, seq_len=128),
                             n_replicas=4)

    def test_weight_streaming_frees_memory(self, compiler, small, train):
        pipeline = compiler.compile(small.with_layers(24), train)
        streaming = compiler.compile(small.with_layers(24), train,
                                     mode="weight_streaming")
        assert (streaming.shared_memory.training_bytes
                < pipeline.shared_memory.training_bytes)

    def test_replicas_split_batch(self, compiler, small, train):
        report = compiler.compile(small, train, n_replicas=4)
        assert report.meta["per_replica_batch"] == train.batch_size // 4

    def test_replica_tasks_enumerated(self, compiler, small, train):
        r1 = compiler.compile(small, train)
        r2 = compiler.compile(small, train, n_replicas=2)
        assert len(r2.phases[0].tasks) == 2 * len(r1.phases[0].tasks)


class TestReportShape:
    def test_single_phase(self, compiler, small, train):
        report = compiler.compile(small, train)
        assert len(report.phases) == 1
        assert report.phases[0].name == "graph"

    def test_totals_are_chip_counts(self, compiler, small, train):
        report = compiler.compile(small, train)
        assert report.total_compute_units == 850_000

    def test_service_times_positive(self, compiler, small, train):
        report = compiler.compile(small, train)
        for service in report.meta["service_times"].values():
            assert service > 0
