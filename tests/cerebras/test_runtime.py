"""WSE-2 runtime: pipeline DES, replication, streaming."""

import pytest

from repro.cerebras.backend import CerebrasBackend
from repro.cerebras.runtime import WEIGHT_STREAMING_EFFICIENCY
from repro.models.config import TrainConfig, gpt2_model


@pytest.fixture(scope="module")
def backend():
    return CerebrasBackend()


@pytest.fixture(scope="module")
def small():
    return gpt2_model("small")


@pytest.fixture(scope="module")
def train():
    return TrainConfig(batch_size=64, seq_len=1024)


class TestPipelineExecution:
    def test_all_samples_complete(self, backend, small, train):
        run = backend.run(backend.compile(small, train))
        items = run.trace.items_by_task()
        # Every kernel processed every sample exactly once.
        for count in items.values():
            assert count == train.batch_size

    def test_step_time_bounded_by_bottleneck(self, backend, small, train):
        compiled = backend.compile(small, train)
        run = backend.run(compiled)
        t_max = max(compiled.meta["service_times"].values())
        fill = sum(compiled.meta["service_times"].values())
        lower = (train.batch_size - 1) * t_max
        upper = fill + train.batch_size * t_max + 1e-6
        assert lower <= run.step_time <= upper

    def test_throughput_consistency(self, backend, small, train):
        run = backend.run(backend.compile(small, train))
        assert run.tokens_per_second == pytest.approx(
            run.samples_per_second * train.seq_len)
        assert run.samples_per_second == pytest.approx(
            train.batch_size / run.step_time)

    def test_achieved_flops_positive_and_bounded(self, backend, small,
                                                 train):
        run = backend.run(backend.compile(small, train))
        assert 0 < run.achieved_flops < backend.system.chip.peak_flops

    def test_batch_saturation_shape(self, backend, small):
        """Fig. 12 WSE: strong gains below ~200, weak beyond."""
        def rate(batch):
            t = TrainConfig(batch_size=batch, seq_len=1024)
            return backend.run(backend.compile(small, t)).tokens_per_second

        low_gain = rate(64) / rate(32)
        high_gain = rate(512) / rate(256)
        assert low_gain > 1.15
        assert high_gain < 1.10


class TestReplication:
    def test_dp_improves_wafer_filling_model(self, backend):
        """Fig. 11a: replicas speed up models that underuse kernels.

        Needs a batch large enough that splitting it across replicas
        does not dominate the per-replica pipeline fill.
        """
        small = gpt2_model("small")
        big_batch = TrainConfig(batch_size=256, seq_len=1024)
        r1 = backend.run(backend.compile(small, big_batch, n_replicas=1))
        r2 = backend.run(backend.compile(small, big_batch, n_replicas=2))
        assert r2.tokens_per_second > 1.15 * r1.tokens_per_second

    def test_sync_time_grows_with_replicas(self, backend, train):
        mini = gpt2_model("mini")
        runs = {r: backend.run(backend.compile(mini, train, n_replicas=r))
                for r in (2, 4, 8)}
        syncs = [runs[r].meta["sync_time"] for r in (2, 4, 8)]
        assert syncs[0] < syncs[1] < syncs[2]

    def test_two_replicas_near_zero_comm(self, backend, train):
        # Paper: adjacency makes R=2 communication essentially free.
        run = backend.run(backend.compile(gpt2_model("mini"), train,
                                          n_replicas=2))
        assert run.meta["sync_time"] < 0.02 * run.step_time


class TestWeightStreaming:
    def test_throughput_penalty_about_20pct(self, backend, small, train):
        pipe = backend.run(backend.compile(small, train))
        stream = backend.run(backend.compile(small, train,
                                             mode="weight_streaming"))
        ratio = stream.tokens_per_second / pipe.tokens_per_second
        assert ratio == pytest.approx(WEIGHT_STREAMING_EFFICIENCY, abs=0.05)

    def test_mode_recorded(self, backend, small, train):
        run = backend.run(backend.compile(small, train,
                                          mode="weight_streaming"))
        assert run.meta["mode"] == "weight_streaming"


class TestMeasuredTasks:
    def test_measured_throughput_close_to_estimate(self, backend, small,
                                                   train):
        compiled = backend.compile(small, train)
        run = backend.run(compiled)
        estimates = {t.name: t.throughput
                     for t in compiled.phases[0].tasks
                     if t.role == "compute"}
        for task in run.phases[0].tasks:
            if task.role != "compute":
                continue
            # Measured rate is within 2x of the compile-time estimate
            # (fill/drain effects shift it, direction depends on depth).
            assert task.throughput == pytest.approx(
                estimates[task.name], rel=1.0)

    def test_transmission_tasks_have_no_throughput(self, backend, small,
                                                   train):
        run = backend.run(backend.compile(small, train))
        for task in run.phases[0].tasks:
            if task.role == "transmission":
                assert task.throughput == 0.0
