"""WSE-2 kernel extraction."""

import pytest

from repro.cerebras.kernels import Kernel, extract_kernels
from repro.models.config import TrainConfig, gpt2_model, llama2_model


@pytest.fixture()
def train():
    return TrainConfig(batch_size=8, seq_len=1024)


class TestExtraction:
    def test_kernel_count(self, train):
        kernels = extract_kernels(gpt2_model("small").with_layers(6), train)
        # embedding + 2 per layer + head.
        assert len(kernels) == 2 + 2 * 6

    def test_dataflow_order(self, train):
        kernels = extract_kernels(gpt2_model("small").with_layers(2), train)
        names = [k.name for k in kernels]
        assert names[0] == "embedding"
        assert names[-1] == "head"
        assert names.index("attn[0]") < names.index("ffn[0]") \
            < names.index("attn[1]")

    def test_layer_indices(self, train):
        kernels = extract_kernels(gpt2_model("small").with_layers(3), train)
        attn1 = next(k for k in kernels if k.name == "attn[1]")
        assert attn1.layer_index == 1
        head = next(k for k in kernels if k.kind == "head")
        assert head.layer_index == -1

    def test_llama_gate_included_in_ffn_flops(self, train):
        gpt = extract_kernels(
            gpt2_model("small").with_layers(1), train)
        llama = extract_kernels(
            llama2_model("7b").with_hidden(768).with_layers(1), train)
        ffn_gpt = next(k for k in gpt if k.kind == "ffn")
        ffn_llama = next(k for k in llama if k.kind == "ffn")
        # SwiGLU's extra gate projection shows up as more FLOPs per byte
        # of hidden width.
        assert ffn_llama.flops_per_sample != ffn_gpt.flops_per_sample


class TestCaps:
    def test_calibrated_table1_anchors(self, train):
        """The caps that make Table I's 33% / 60% points."""
        kernels = extract_kernels(gpt2_model("small").with_layers(1), train)
        head = next(k for k in kernels if k.kind == "head")
        attn = next(k for k in kernels if k.kind == "attention")
        ffn = next(k for k in kernels if k.kind == "ffn")
        assert head.cap_pes == pytest.approx(234e3, rel=0.05)
        assert attn.cap_pes + ffn.cap_pes == pytest.approx(46e3, rel=0.08)

    def test_cap_grows_sublinearly_with_work(self, train):
        small = extract_kernels(gpt2_model("small"), train)
        big = extract_kernels(gpt2_model("small").with_hidden(1536), train)
        f_small = next(k for k in small if k.kind == "ffn")
        f_big = next(k for k in big if k.kind == "ffn")
        flops_ratio = f_big.flops_per_sample / f_small.flops_per_sample
        cap_ratio = f_big.cap_pes / f_small.cap_pes
        assert 1.0 < cap_ratio < flops_ratio

    def test_weight_floor(self):
        kernel = Kernel(name="x", kind="embedding", layer_index=-1,
                        flops_per_sample=10.0, weight_bytes=48 * 1024 * 100,
                        boundary_bytes=1.0)
        # 100 PE-SRAMs of weights at 50% usable: floor is 200 PEs.
        assert kernel.min_pes == pytest.approx(200.0)
        assert kernel.cap_pes >= kernel.min_pes

    def test_min_pes_floor_of_four(self):
        kernel = Kernel(name="x", kind="attention", layer_index=0,
                        flops_per_sample=1.0, weight_bytes=0.0,
                        boundary_bytes=1.0)
        assert kernel.min_pes == 4.0

    def test_boundary_bytes_are_hidden_state(self, train):
        kernels = extract_kernels(gpt2_model("small"), train)
        expected = 1024 * 768 * 2  # (S, H) fp16 per sample
        assert kernels[0].boundary_bytes == pytest.approx(expected)
