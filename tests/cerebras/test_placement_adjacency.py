"""The paper's placement claim: dependent kernels sit physically close.

Sec. III-A: "kernels with data dependencies are placed physically close
to each other on the chip to reduce communication overhead." Strip
placement in dataflow order realizes this: consecutive kernels in the
chain are adjacent strips, so the total dataflow wire length is within a
small factor of the theoretical minimum (half the occupied width per
hop on average).
"""

import pytest

from repro.cerebras.compiler import WSECompiler
from repro.models.config import TrainConfig, gpt2_model


@pytest.fixture(scope="module")
def compiled():
    compiler = WSECompiler()
    return compiler.compile(gpt2_model("small").with_layers(8),
                            TrainConfig(batch_size=32, seq_len=1024))


class TestAdjacency:
    def test_consecutive_kernels_are_adjacent(self, compiled):
        placement = compiled.meta["placement"]
        order = compiled.meta["kernel_order"]
        for a, b in zip(order, order[1:]):
            rect_a = placement.rect(a)
            rect_b = placement.rect(b)
            # b starts exactly where a ends: abutting strips.
            assert rect_b.x == rect_a.x + rect_a.width

    def test_chain_wire_length_spans_occupied_width(self, compiled):
        placement = compiled.meta["placement"]
        order = compiled.meta["kernel_order"]
        total = placement.chain_wire_length(order)
        occupied = sum(placement.rect(name).width for name in order)
        # Centroid-to-centroid hops along abutting strips sum to the
        # occupied width minus the two half-end strips.
        first, last = placement.rect(order[0]), placement.rect(order[-1])
        expected = occupied - first.width / 2 - last.width / 2
        assert total == pytest.approx(expected)

    def test_dataflow_neighbors_closer_than_random_pairs(self, compiled):
        placement = compiled.meta["placement"]
        order = compiled.meta["kernel_order"]
        neighbor = [placement.distance(a, b)
                    for a, b in zip(order, order[1:])]
        far_pairs = [placement.distance(order[0], order[-1]),
                     placement.distance(order[1], order[-2])]
        assert max(neighbor) < min(far_pairs)
