"""Wafer placement: strips, shelves, fragmentation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.cerebras.placement import Placement, PlacedRect, WaferPlacer


class TestRectShape:
    def test_near_square(self):
        w, h = WaferPlacer.rect_shape(100.0, max_width=1000)
        assert w * h >= 100
        assert abs(w - h) <= 1

    def test_clamped_to_grid(self):
        w, _h = WaferPlacer.rect_shape(10_000.0, max_width=50)
        assert w <= 50

    def test_minimum_one(self):
        assert WaferPlacer.rect_shape(0.5, max_width=10) == (1, 1)


class TestStripPlacement:
    def test_fits_and_covers_demand(self):
        placer = WaferPlacer(100, 100, strategy="strips")
        placement = placer.place([("a", 500.0), ("b", 250.0)])
        assert placement.fits
        assert placement.rect("a").pes >= 500
        assert placement.rect("b").pes >= 250

    def test_strips_are_full_height(self):
        placer = WaferPlacer(100, 100, strategy="strips")
        placement = placer.place([("a", 500.0)])
        assert placement.rect("a").height == 100

    def test_overflow_detected(self):
        placer = WaferPlacer(10, 10, strategy="strips")
        placement = placer.place([("a", 60.0), ("b", 60.0)])
        assert not placement.fits

    def test_rounding_waste_is_bounded(self):
        placer = WaferPlacer(1000, 100, strategy="strips")
        demands = [(f"k{i}", 150.0) for i in range(20)]
        placement = placer.place(demands)
        # Each strip wastes at most one column (100 PEs).
        assert placement.placed_pes <= sum(p for _n, p in demands) + 20 * 100

    def test_negative_demand_rejected(self):
        placer = WaferPlacer(10, 10)
        with pytest.raises(ConfigurationError):
            placer.place([("a", -1.0)])


class TestShelfPlacement:
    def test_single_rect(self):
        placer = WaferPlacer(100, 100, strategy="shelves")
        placement = placer.place([("a", 400.0)])
        assert placement.fits
        assert placement.placed_pes >= 400

    def test_shelves_decrease_in_height(self):
        placer = WaferPlacer(100, 100, strategy="shelves")
        placement = placer.place([("a", 100.0), ("b", 2500.0),
                                  ("c", 400.0)])
        heights = [r.height for r in placement.rects]
        assert heights == sorted(heights, reverse=True)

    def test_overflow_detected(self):
        placer = WaferPlacer(10, 10, strategy="shelves")
        placement = placer.place([("a", 64.0), ("b", 64.0)])
        assert not placement.fits


class TestPackingEfficiency:
    def test_one_when_fits(self):
        placer = WaferPlacer(100, 100)
        assert placer.packing_efficiency([("a", 100.0)]) == 1.0

    def test_less_than_one_when_overfull(self):
        placer = WaferPlacer(100, 100)
        eff = placer.packing_efficiency([("a", 8000.0), ("b", 8000.0)])
        assert 0.0 < eff < 1.0
        scaled = [("a", 8000.0 * eff), ("b", 8000.0 * eff)]
        assert placer.place(scaled).fits

    def test_strips_pack_tighter_than_shelves(self):
        # The ablation claim: slicing placement beats naive shelves on a
        # nearly-full wafer.
        demands = [(f"k{i}", 900.0 + 37 * (i % 5)) for i in range(10)]
        strips = WaferPlacer(100, 100, strategy="strips")
        shelves = WaferPlacer(100, 100, strategy="shelves")
        assert (strips.packing_efficiency(demands)
                >= shelves.packing_efficiency(demands))


class TestDistances:
    def test_centroid(self):
        rect = PlacedRect(name="a", x=0, y=0, width=10, height=10)
        assert rect.centroid == (5.0, 5.0)

    def test_distance_between_adjacent_strips(self):
        placer = WaferPlacer(100, 100, strategy="strips")
        placement = placer.place([("a", 1000.0), ("b", 1000.0)])
        assert placement.distance("a", "b") == pytest.approx(10.0)

    def test_chain_wire_length(self):
        placer = WaferPlacer(100, 100, strategy="strips")
        placement = placer.place([("a", 500.0), ("b", 500.0),
                                  ("c", 500.0)])
        total = placement.chain_wire_length(["a", "b", "c"])
        assert total == pytest.approx(placement.distance("a", "b")
                                      + placement.distance("b", "c"))

    def test_unknown_rect(self):
        placement = Placement(grid_width=10, grid_height=10)
        with pytest.raises(KeyError):
            placement.rect("missing")


@settings(max_examples=40)
@given(st.lists(st.floats(min_value=1.0, max_value=2000.0),
                min_size=1, max_size=20),
       st.sampled_from(["strips", "shelves"]))
def test_placement_invariants(demands, strategy):
    """Placed rectangles never overlap and stay within the grid."""
    placer = WaferPlacer(120, 80, strategy=strategy)
    placement = placer.place([(f"k{i}", p) for i, p in enumerate(demands)])
    for rect in placement.rects:
        assert 0 <= rect.x < 120
        assert 0 <= rect.y < 80
        assert rect.y + rect.height <= 80
    if placement.fits:
        for i, a in enumerate(placement.rects):
            for b in placement.rects[i + 1:]:
                overlap_x = (a.x < b.x + b.width) and (b.x < a.x + a.width)
                overlap_y = (a.y < b.y + b.height) and (b.y < a.y + a.height)
                assert not (overlap_x and overlap_y), f"{a} overlaps {b}"
