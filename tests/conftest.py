"""Shared fixtures: backends, models, and training configs.

Session-scoped backends are safe because backends hold no mutable state
across compile/run calls.
"""

from __future__ import annotations

import pytest

from repro import (
    CerebrasBackend,
    GPUBackend,
    GraphcoreBackend,
    Precision,
    PrecisionPolicy,
    SambaNovaBackend,
    TrainConfig,
    gpt2_model,
    llama2_model,
)


@pytest.fixture(scope="session")
def cerebras() -> CerebrasBackend:
    return CerebrasBackend()


@pytest.fixture(scope="session")
def sambanova() -> SambaNovaBackend:
    return SambaNovaBackend()


@pytest.fixture(scope="session")
def graphcore() -> GraphcoreBackend:
    return GraphcoreBackend()


@pytest.fixture(scope="session")
def gpu() -> GPUBackend:
    return GPUBackend()


@pytest.fixture()
def gpt2_small():
    return gpt2_model("small")


@pytest.fixture()
def gpt2_mini():
    return gpt2_model("mini")


@pytest.fixture()
def llama7b():
    return llama2_model("7b")


@pytest.fixture()
def train_fp16() -> TrainConfig:
    return TrainConfig(batch_size=32, seq_len=1024)


@pytest.fixture()
def train_bf16() -> TrainConfig:
    return TrainConfig(batch_size=16, seq_len=1024,
                       precision=PrecisionPolicy.pure(Precision.BF16))


@pytest.fixture()
def train_small_batch() -> TrainConfig:
    return TrainConfig(batch_size=8, seq_len=512)
