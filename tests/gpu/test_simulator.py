"""GPU cluster reference model."""

import pytest

from repro.common.errors import ConfigurationError, OutOfMemoryError
from repro.gpu.backend import GPUBackend
from repro.gpu.simulator import GPUClusterModel
from repro.models.config import TrainConfig, gpt2_model, llama2_model
from repro.models.precision import Precision, PrecisionPolicy


@pytest.fixture(scope="module")
def model_():
    return GPUClusterModel()


@pytest.fixture(scope="module")
def backend():
    return GPUBackend()


@pytest.fixture(scope="module")
def xlarge():
    return gpt2_model("xlarge")


@pytest.fixture(scope="module")
def train():
    return TrainConfig(batch_size=64, seq_len=1024,
                       precision=PrecisionPolicy.mixed(Precision.BF16))


class TestValidation:
    def test_tp_limited_to_node(self, model_):
        with pytest.raises(ConfigurationError):
            model_.validate(tp=16, pp=1, dp=1)

    def test_cluster_size_limit(self, model_):
        with pytest.raises(ConfigurationError):
            model_.validate(tp=8, pp=16, dp=64)  # 8192 GPUs

    def test_nonpositive_degrees(self, model_):
        with pytest.raises(ConfigurationError):
            model_.validate(tp=0, pp=1, dp=1)

    def test_gpu_count(self, model_):
        assert model_.validate(tp=8, pp=2, dp=4) == 64


class TestTableIIIOrdering:
    """Within one node, TP beats PP (Table III GPU columns)."""

    @pytest.fixture(scope="class")
    def per_gpu(self, model_, xlarge, train):
        return {
            (tp, pp): model_.per_gpu_flops(xlarge, train, tp, pp, 1)
            for tp, pp in [(8, 1), (4, 2), (2, 4), (1, 8)]
        }

    def test_ordering(self, per_gpu):
        assert (per_gpu[(8, 1)] > per_gpu[(4, 2)]
                > per_gpu[(2, 4)] > per_gpu[(1, 8)])

    def test_mfu_band(self, per_gpu):
        # Paper reference: 120-165 TFLOP/s per A100 (~40-55% MFU).
        for value in per_gpu.values():
            assert 90e12 < value < 200e12

    def test_large_mixed_configs_competitive(self, model_, xlarge, train):
        big = model_.per_gpu_flops(
            xlarge, train.with_batch_size(64 * 64), 4, 4, 64,
            micro_batches=128)
        small = model_.per_gpu_flops(xlarge, train, 1, 8, 1)
        assert big > small


class TestBreakdown:
    def test_components_nonnegative(self, model_, xlarge, train):
        b = model_.step_breakdown(xlarge, train, 4, 2, 1)
        assert b.compute_seconds > 0
        assert b.tp_comm_seconds > 0
        assert b.pp_bubble_seconds > 0
        assert b.dp_comm_seconds == 0.0

    def test_no_tp_comm_without_tp(self, model_, xlarge, train):
        b = model_.step_breakdown(xlarge, train, 1, 8, 1)
        assert b.tp_comm_seconds == 0.0

    def test_dp_comm_appears_with_dp(self, model_, xlarge, train):
        b = model_.step_breakdown(xlarge, train.with_batch_size(128),
                                  8, 1, 2)
        assert b.dp_comm_seconds > 0

    def test_more_micros_shrink_bubble(self, model_, xlarge, train):
        b8 = model_.step_breakdown(xlarge, train, 1, 8, 1, micro_batches=8)
        b64 = model_.step_breakdown(xlarge, train, 1, 8, 1,
                                    micro_batches=64)
        assert b64.pp_bubble_seconds < b8.pp_bubble_seconds

    def test_compute_fraction_bounded(self, model_, xlarge, train):
        b = model_.step_breakdown(xlarge, train, 8, 1, 1)
        assert 0 < b.compute_fraction <= 1.0


class TestMemory:
    def test_7b_needs_parallelism(self, model_):
        train = TrainConfig(batch_size=32, seq_len=4096,
                            precision=PrecisionPolicy.mixed(Precision.BF16))
        with pytest.raises(OutOfMemoryError):
            model_.step_breakdown(llama2_model("7b"), train, 1, 1, 1)
        model_.step_breakdown(llama2_model("7b"), train, 8, 1, 1)


class TestBackendAdapter:
    def test_run_reports_per_gpu_flops(self, backend, xlarge, train):
        compiled = backend.compile(xlarge, train, tp=8)
        run = backend.run(compiled)
        assert run.meta["per_gpu_flops"] == pytest.approx(
            run.achieved_flops / 8)

    def test_throughput_scales_with_dp(self, backend, xlarge, train):
        r1 = backend.run(backend.compile(xlarge, train, tp=8))
        r4 = backend.run(backend.compile(
            xlarge, train.with_batch_size(256), tp=8, dp=4))
        assert r4.tokens_per_second > 3.0 * r1.tokens_per_second

    def test_compile_report_shape(self, backend, xlarge, train):
        report = backend.compile(xlarge, train, tp=4, pp=2)
        assert report.n_chips == 8
        assert report.phases[0].name == "step"
