"""Process-dispatch acceptance: every PR 2/3 invariant, across
processes.

The contract: ``dispatch="process"`` changes *where* cells execute and
nothing else. Results stay spec-ordered and report-identical to a
sequential run (traces compare by record), the canonical merged
journal is byte-identical, resume is exactly-once across dispatch
modes in both directions, and a harness error in a worker cancels the
campaign while journaled work survives.
"""

import dataclasses

import pytest

from repro.campaign import Campaign
from repro.common.errors import ReproError
from repro.models.config import TrainConfig, gpt2_model
from repro.resilience import (
    ExecutionPolicy,
    FaultInjectingBackend,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    ShardedJournal,
    compiler_flake,
)
from repro.workloads.reference import CpuBoundBackend
from repro.workloads.sweeps import SweepSpec, run_grid


def grid(layers=(2, 3, 4, 5)):
    return [SweepSpec(f"L{n}", gpt2_model("mini").with_layers(n),
                      TrainConfig(batch_size=4, seq_len=64))
            for n in layers]


def fast_backend():
    return CpuBoundBackend(spins_per_layer=10)


def runs_equal(a, b):
    """Run reports equal up to the identity-compared trace object."""
    if (a is None) != (b is None):
        return False
    if a is None:
        return True
    if dataclasses.replace(a, trace=None) != dataclasses.replace(
            b, trace=None):
        return False
    ta = a.trace.records if a.trace is not None else None
    tb = b.trace.records if b.trace is not None else None
    return ta == tb


class KillError(RuntimeError):
    """A harness bug (not a ReproError) injected into one cell."""


class KillBackend(CpuBoundBackend):
    """Raises a harness error when compiling ``kill_layers`` layers."""

    def __init__(self, kill_layers):
        super().__init__(spins_per_layer=10)
        self.kill_layers = kill_layers

    def compile(self, model, train, **options):
        if model.n_layers == self.kill_layers:
            raise KillError(f"harness bug at L{model.n_layers}")
        return super().compile(model, train, **options)


class TestProcessMatchesSequential:
    @pytest.mark.parametrize("schedule",
                             ["lane-major", "longest-first"])
    def test_multibackend_campaign_invariants(self, tmp_path, schedule):
        from repro import CerebrasBackend, GPUBackend

        specs = grid()
        lanes = lambda: [(CerebrasBackend(), specs),  # noqa: E731
                         (GPUBackend(), specs)]
        process = Campaign(lanes(), ExecutionPolicy(
            max_workers=2, dispatch="process", schedule=schedule,
            journal=ShardedJournal(tmp_path / "proc"))).run()
        sequential = Campaign(lanes(), ExecutionPolicy(
            max_workers=1,
            journal=ShardedJournal(tmp_path / "seq"))).run()

        assert process.labels == sequential.labels
        for label in process.labels:
            got = process.cells[label]
            want = sequential.cells[label]
            assert [c.spec.label for c in got] == \
                [c.spec.label for c in want]  # spec order
            for a, b in zip(got, want):
                assert a.compiled == b.compiled
                assert runs_equal(a.run, b.run)
        assert (ShardedJournal(tmp_path / "proc").merged_text()
                == ShardedJournal(tmp_path / "seq").merged_text())
        assert process.scheduling.dispatch == "process"
        assert process.scheduling.cells == process.total_cells
        assert process.scheduling.actual_seconds > 0

    def test_on_cell_fires_exactly_once_per_cell(self, tmp_path):
        specs = grid()
        seen = []
        Campaign([(fast_backend(), specs)], ExecutionPolicy(
            max_workers=2, dispatch="process",
            journal=ShardedJournal(tmp_path))).run(
            on_cell=lambda label, cell: seen.append(cell.spec.label))
        assert sorted(seen) == sorted(s.label for s in specs)

    def test_retries_happen_inside_the_worker(self, tmp_path):
        plan = FaultPlan(specs=[FaultSpec(fault=compiler_flake,
                                          match="L3", attempts=(0,))])
        backend = FaultInjectingBackend(fast_backend(), plan)
        cells = run_grid(backend, grid(), policy=ExecutionPolicy(
            retry=RetryPolicy(max_retries=2), max_workers=2,
            dispatch="process"))
        by_label = {c.spec.label: c for c in cells}
        assert not by_label["L3"].failed
        # same attempt accounting as thread dispatch: the faulted
        # compile, its retry, and the run
        assert by_label["L3"].attempts == 3
        assert by_label["L2"].attempts == 1


class TestResumeAcrossDispatchModes:
    def test_thread_run_resumes_under_process_and_back(self, tmp_path):
        specs = grid()
        journal = ShardedJournal(tmp_path)
        # first half sequentially, on threads
        run_grid(fast_backend(), specs[:2], policy=ExecutionPolicy(
            journal=journal))
        # finish under process dispatch: the first half must be skipped
        counter = FaultInjectingBackend(fast_backend())
        cells = run_grid(counter, specs, policy=ExecutionPolicy(
            journal=journal, resume=True, max_workers=2,
            dispatch="process"))
        assert [c.resumed for c in cells] == [True, True, False, False]
        # the parent-side counter proves nothing ran locally; the
        # journal proves exactly the missing cells ran in workers
        assert counter.calls["compile"] == 0
        assert set(journal.finished_keys()) == {s.label for s in specs}
        # and a thread resume of the process-written journal skips all
        counter2 = FaultInjectingBackend(fast_backend())
        again = run_grid(counter2, specs, policy=ExecutionPolicy(
            journal=journal, resume=True))
        assert all(c.resumed for c in again)
        assert counter2.calls["compile"] == 0

    def test_harness_error_cancels_but_journaled_work_survives(
            self, tmp_path):
        journal = ShardedJournal(tmp_path)
        with pytest.raises(KillError):
            run_grid(KillBackend(kill_layers=5), grid(),
                     policy=ExecutionPolicy(journal=journal,
                                            max_workers=2,
                                            dispatch="process"))
        finished = journal.finished_keys()
        assert "L5" not in finished  # the killed cell never journaled
        assert finished  # but completed cells reached disk
        # resume completes the grid, re-executing only what's missing
        cells = run_grid(fast_backend(), grid(), policy=ExecutionPolicy(
            journal=journal, resume=True, max_workers=2,
            dispatch="process"))
        assert all(not c.failed for c in cells)
        assert sum(c.resumed for c in cells) == len(finished)

    def test_retry_failed_reexecutes_failures_only(self, tmp_path):
        journal = ShardedJournal(tmp_path)
        plan = FaultPlan(specs=[FaultSpec(fault=compiler_flake,
                                          match="L4", attempts=None)])
        cells = run_grid(FaultInjectingBackend(fast_backend(), plan),
                         grid(), policy=ExecutionPolicy(
                             journal=journal, max_workers=2,
                             dispatch="process"))
        assert sum(c.failed for c in cells) == 1
        healed = run_grid(fast_backend(), grid(),
                          policy=ExecutionPolicy(
                              journal=journal, resume=True,
                              retry_failed=True, max_workers=2,
                              dispatch="process"))
        assert all(not c.failed for c in healed)
        assert sum(c.resumed for c in healed) == 3


class TestWorkerFaultTaxonomy:
    def test_repro_errors_stay_results_not_crashes(self, tmp_path):
        plan = FaultPlan(specs=[FaultSpec(fault=compiler_flake,
                                          match="L2", attempts=None)])
        cells = run_grid(FaultInjectingBackend(fast_backend(), plan),
                         grid(), policy=ExecutionPolicy(
                             max_workers=2, dispatch="process"))
        by_label = {c.spec.label: c for c in cells}
        assert by_label["L2"].failed
        assert isinstance(by_label["L2"].failure.type, str)
        assert not by_label["L3"].failed
        # ReproError subclasses defined across the codebase must
        # pickle home intact inside the ErrorRecord
        assert "transient compiler failure" in by_label["L2"].error

    def test_error_record_round_trips_from_worker(self, tmp_path):
        import pickle

        from repro.common.errors import ErrorRecord
        record = ErrorRecord.from_exception(
            ReproError("boom"), phase="compile")
        assert pickle.loads(pickle.dumps(record)) == record
