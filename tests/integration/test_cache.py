"""Compile-cache acceptance: a warm re-run of an unchanged grid is
indistinguishable from the cold run that populated the cache.

The contracts:

* a warm re-run produces a **byte-identical merged journal** and an
  identical report (minus the wall-clock Scheduling section and the
  Supervision patrol cadence, which adapts to the ledger history the
  cache directory now carries) under thread *and* process dispatch —
  replaying a cached cell is not observable in the results;
* the warm run **skips the backend entirely** for cached cells, and the
  skips are observable: nonzero ``cache hits`` in the Observability
  table and in ``campaign_to_dict``, under both dispatch modes;
* nondeterministic backends (fault injectors) **bypass** the cache —
  nothing is ever stored for them;
* a corrupt cache entry degrades to a miss with a ``RuntimeWarning``;
  the campaign completes and rewrites the entry.
"""

import pytest

from repro.cache import CompileCache
from repro.campaign import Campaign
from repro.core.serialize import campaign_to_dict
from repro.resilience import (
    ExecutionPolicy,
    FaultInjectingBackend,
    FaultPlan,
    ShardedJournal,
)

from .test_process_dispatch import fast_backend, grid


def stable_report(result):
    """The rendered report minus the wall-clock-sensitive blocks.

    Scheduling carries measured seconds; Supervision's heartbeat
    column adapts to the run ledger that a ``cache=DIR`` policy keeps
    inside the cache directory, so a warm run patrols faster.
    """
    blocks = result.report().render().split("\n\n")
    return "\n\n".join(b for b in blocks
                       if not b.startswith(("Scheduling", "Supervision")))


def run_once(tmp_path, tag, dispatch, **kwargs):
    policy = ExecutionPolicy(max_workers=2, dispatch=dispatch,
                             journal=ShardedJournal(tmp_path / tag),
                             cache=tmp_path / "cache", **kwargs)
    result = Campaign([(fast_backend(), grid())], policy).run()
    label = result.labels[0]
    assert all(not c.failed for c in result.cells[label])
    return result


class TestWarmRerunByteIdentity:
    @pytest.mark.parametrize("dispatch", ["thread", "process"])
    def test_warm_rerun_matches_cold_exactly(self, tmp_path, dispatch):
        cold = run_once(tmp_path, "cold", dispatch)
        warm = run_once(tmp_path, "warm", dispatch)
        assert (ShardedJournal(tmp_path / "cold").merged_text()
                == ShardedJournal(tmp_path / "warm").merged_text())
        assert stable_report(cold) == stable_report(warm)
        # The replayed artifacts are the stored ones, not re-derived.
        label = cold.labels[0]
        for a, b in zip(cold.cells[label], warm.cells[label]):
            assert a.compiled == b.compiled
            assert a.attempts == b.attempts == 1

    def test_dispatch_modes_share_one_cache(self, tmp_path):
        """A cache populated by a thread run warms a process run: the
        fingerprint is content-addressed, not dispatch-addressed."""
        run_once(tmp_path, "cold", "thread")
        warm = run_once(tmp_path, "warm", "process", trace=True)
        assert warm.observability[0].cache_hits == len(grid())
        assert warm.observability[0].cache_misses == 0


class TestCacheHitsObservable:
    @pytest.mark.parametrize("dispatch", ["thread", "process"])
    def test_hits_surface_in_table_and_json(self, tmp_path, dispatch):
        cold = run_once(tmp_path, "cold", dispatch, trace=True)
        row = cold.observability[0]
        assert row.cache_hits == 0
        assert row.cache_misses == len(grid())

        warm = run_once(tmp_path, "warm", dispatch, trace=True)
        row = warm.observability[0]
        assert row.cache_hits == len(grid())
        assert row.cache_misses == 0
        rendered = warm.report().render()
        assert "cache hits" in rendered
        payload = campaign_to_dict(warm)
        assert payload["observability"][0]["cache_hits"] == len(grid())
        assert payload["policy"]["cache"] == str(tmp_path / "cache")

    def test_cache_column_absent_without_policy_cache(self, tmp_path):
        result = Campaign(
            [(fast_backend(), grid())],
            ExecutionPolicy(max_workers=2, trace=True,
                            journal=ShardedJournal(tmp_path / "j"))).run()
        row = result.observability[0]
        assert (row.cache_hits, row.cache_misses,
                row.cache_bypasses) == (0, 0, 0)
        assert campaign_to_dict(result)["policy"]["cache"] is None


class TestNondeterministicBackendsBypass:
    def test_fault_injector_never_populates_the_cache(self, tmp_path):
        backend = FaultInjectingBackend(fast_backend(), FaultPlan())
        result = Campaign(
            [(backend, grid())],
            ExecutionPolicy(max_workers=2, trace=True,
                            journal=ShardedJournal(tmp_path / "j"),
                            cache=tmp_path / "cache")).run()
        label = result.labels[0]
        assert all(not c.failed for c in result.cells[label])
        row = result.observability[0]
        assert row.cache_bypasses == len(grid())
        assert (row.cache_hits, row.cache_misses) == (0, 0)
        assert len(CompileCache(tmp_path / "cache")) == 0


class TestCorruptEntryDegrades:
    def test_corrupt_entry_is_a_warned_miss_and_rewritten(self,
                                                          tmp_path):
        run_once(tmp_path, "cold", "thread")
        cache = CompileCache(tmp_path / "cache")
        entries = cache.entries()
        assert len(entries) == len(grid())
        entries[0].write_bytes(b"\x00torn mid-write")
        with pytest.warns(RuntimeWarning, match="treating as a miss"):
            warm = run_once(tmp_path, "warm", "thread", trace=True)
        row = warm.observability[0]
        assert row.cache_hits == len(grid()) - 1
        assert row.cache_misses == 1
        # The re-executed cell republished its entry.
        assert len(cache) == len(grid())
