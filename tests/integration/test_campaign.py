"""End-to-end parallel campaigns: the ISSUE acceptance scenario.

A 4-backend x 5-cell campaign with ``max_workers=4`` must produce
results in deterministic spec order with identical ``SweepCell``
outcomes to a sequential run, leave behind a merged journal from which
a ``resume=True`` campaign re-executes zero cells, and surface circuit
breaker trip counts in the rendered report. A killed campaign (a
harness-level error escaping mid-run) must resume to the exact cell
set a sequential run produces, whatever the worker count.
"""

import pytest

from repro.campaign import Campaign, CampaignLane
from repro.models.config import TrainConfig, gpt2_model
from repro.resilience import (
    ExecutionPolicy,
    FakeClock,
    FaultInjectingBackend,
    FaultPlan,
    FaultSpec,
    ShardedJournal,
)
from repro.resilience.faults import device_fault
from repro.workloads.sweeps import SweepSpec

N_SPECS = 5
LAYERS = range(2, 2 + N_SPECS)


def campaign_specs():
    """Five small configurations that compile cleanly when healthy."""
    train = TrainConfig(batch_size=8, seq_len=256)
    model = gpt2_model("mini")
    return [SweepSpec(label=f"L{layers}",
                      model=model.with_layers(layers),
                      train=train)
            for layers in LAYERS]


def lanes_for(backends):
    return [CampaignLane(backend=backend, specs=campaign_specs())
            for backend in backends]


@pytest.fixture
def backends(cerebras, sambanova, graphcore, gpu):
    return [cerebras, sambanova, graphcore, gpu]


class TestCampaignAcceptance:
    def test_parallel_matches_sequential(self, backends, tmp_path):
        seen = []
        parallel = Campaign(
            lanes_for(backends),
            ExecutionPolicy(max_workers=4,
                            journal=ShardedJournal(tmp_path / "par")),
        ).run(on_cell=lambda label, cell: seen.append((label,
                                                       cell.spec.label)))
        sequential = Campaign(
            lanes_for(backends),
            ExecutionPolicy(journal=ShardedJournal(tmp_path / "seq")),
        ).run()

        # Deterministic lane and spec order, whatever completed first.
        assert parallel.labels == [b.name for b in backends]
        assert parallel.total_cells == 4 * N_SPECS
        for label in parallel.labels:
            par = parallel.cells[label]
            seq = sequential.cells[label]
            assert [c.spec.label for c in par] == [f"L{n}" for n in LAYERS]
            for p, s in zip(par, seq):
                assert not p.failed and not s.failed
                assert p.attempts == s.attempts == 1
                assert p.run.tokens_per_second == s.run.tokens_per_second
        # The progress callback fired exactly once per (lane, cell).
        assert sorted(seen) == sorted(
            (label, f"L{n}") for label in parallel.labels for n in LAYERS)
        # The merged journals are byte-identical across worker counts.
        assert (ShardedJournal(tmp_path / "par").merged_text()
                == ShardedJournal(tmp_path / "seq").merged_text())

    def test_resume_re_executes_zero_cells(self, backends, tmp_path):
        wrapped = [FaultInjectingBackend(b, FaultPlan()) for b in backends]
        policy = ExecutionPolicy(max_workers=4,
                                 journal=ShardedJournal(tmp_path))
        first = Campaign(lanes_for(wrapped), policy).run()
        assert first.executed_cells == 4 * N_SPECS
        calls = [dict(b.calls) for b in wrapped]

        resumed = Campaign(
            lanes_for(wrapped),
            policy.with_options(journal=ShardedJournal(tmp_path),
                                resume=True),
        ).run()
        assert resumed.executed_cells == 0
        assert resumed.resumed_cells == 4 * N_SPECS
        # Not a single backend call: every cell replayed from the journal.
        assert [dict(b.calls) for b in wrapped] == calls
        for label in resumed.labels:
            for cell in resumed.cells[label]:
                assert cell.resumed and not cell.failed
                assert cell.summary["tokens_per_second"] > 0

    @pytest.mark.parametrize("kill_layer,max_workers",
                             [(3, 2), (5, 3), (6, 4)])
    def test_killed_campaign_resumes_to_sequential_set(
            self, backends, tmp_path, kill_layer, max_workers):
        # The baseline: what an uninterrupted sequential campaign leaves.
        Campaign(
            lanes_for(backends),
            ExecutionPolicy(journal=ShardedJournal(tmp_path / "seq")),
        ).run()
        baseline = ShardedJournal(tmp_path / "seq").merged_text()

        # One lane's worker dies mid-campaign: a non-workload error
        # escapes, the engine drains in-flight cells and re-raises.
        kill = FaultPlan().add(FaultSpec(
            fault=lambda: RuntimeError("worker killed"),
            match=f"/L{kill_layer}/", phase="compile", attempts=(0,)))
        killed_lane = [FaultInjectingBackend(b, kill) if i == 1 else b
                       for i, b in enumerate(backends)]
        with pytest.raises(RuntimeError, match="worker killed"):
            Campaign(
                lanes_for(killed_lane),
                ExecutionPolicy(max_workers=max_workers,
                                journal=ShardedJournal(tmp_path / "j")),
            ).run()
        survived = ShardedJournal(tmp_path / "j").finished_keys()
        assert 0 < len(survived) < 4 * N_SPECS

        # Resume on healthy hardware: exactly the missing cells execute
        # and the merged journal converges to the sequential baseline.
        healthy = [FaultInjectingBackend(b, FaultPlan()) for b in backends]
        resumed = Campaign(
            lanes_for(healthy),
            ExecutionPolicy(max_workers=max_workers,
                            journal=ShardedJournal(tmp_path / "j"),
                            resume=True),
        ).run()
        assert resumed.resumed_cells == len(survived)
        assert resumed.executed_cells == 4 * N_SPECS - len(survived)
        assert sum(b.calls["compile"] for b in healthy) == \
            resumed.executed_cells
        assert ShardedJournal(tmp_path / "j").merged_text() == baseline

    def test_breaker_trips_render_in_report(self, cerebras, gpu):
        # Every Cerebras cell hits a permanent device fault; with a
        # threshold of 2 the lane breaker trips and gates the rest.
        plan = FaultPlan().add(FaultSpec(
            fault=lambda: device_fault("pcie"), attempts=None))
        broken = FaultInjectingBackend(cerebras, plan)
        result = Campaign(
            [CampaignLane(backend=broken, specs=campaign_specs()),
             CampaignLane(backend=gpu, specs=campaign_specs())],
            ExecutionPolicy(breaker_threshold=2, breaker_reset=3600.0),
        ).run()

        stats = result.stats[broken.name]
        assert stats.failed == 2
        assert stats.gated == N_SPECS - 2
        assert stats.breaker["trip_count"] == 1
        assert stats.breaker["state"] == "open"
        healthy = result.stats[gpu.name]
        assert healthy.ok == N_SPECS
        assert healthy.breaker["trip_count"] == 0

        rendered = result.report().render()
        assert "Infrastructure health" in rendered
        assert any(broken.name in line and "open" in line
                   for line in rendered.splitlines())

    def test_per_lane_clocks_show_parallel_speedup(self, backends):
        # Every compile hangs 10 injected seconds on its lane's clock;
        # with per-lane clocks the simulated makespan is one lane's busy
        # time, not the whole campaign's.
        lanes, clocks = [], []
        for inner in backends:
            clock = FakeClock()
            plan = FaultPlan().add(FaultSpec.hang(10.0, phase="compile"))
            backend = FaultInjectingBackend(inner, plan, clock=clock)
            lanes.append(CampaignLane(backend=backend,
                                      specs=campaign_specs(), clock=clock))
            clocks.append(clock)

        result = Campaign(lanes, ExecutionPolicy(max_workers=4)).run()
        assert result.executed_cells == 4 * N_SPECS
        for label in result.labels:
            assert all(not c.failed for c in result.cells[label])
        # Each lane burned exactly its own 5 x 10s, deterministically.
        assert [c.now() for c in clocks] == [50.0] * 4
        makespan = max(c.now() for c in clocks)
        assert makespan == 50.0
        # A sequential harness would have paid the sum of all lanes.
        assert makespan < result.sequential_seconds
        assert result.sequential_seconds >= 4 * 50.0
