"""Supervised-campaign acceptance: crash recovery, quarantine, kills.

The contract the :class:`~repro.campaign.Supervisor` is tested
against, per scenario:

* a worker SIGKILL'd mid-grid costs nothing but the crashed cell's
  re-execution — every other cell finishes, nothing finished is
  re-executed (exactly-once resume from the journal), and the merged
  journal is byte-identical to an unfaulted run's;
* a poison cell (kills every worker it touches) is quarantined as a
  final ``QuarantinedError`` after ``quarantine_after`` crashes
  instead of wedging the campaign forever;
* a worker wedged mid-cell (SIGSTOP — even its heartbeat thread
  freezes, so cooperative deadlines cannot fire) is hard-killed by
  the supervisor within ``deadline * grace_factor`` plus a heartbeat
  poll, freeing the lane;
* without a deadline, the same wedged worker is caught by heartbeat
  staleness and its cell retried on a fresh worker.
"""

import json
import time
from collections import Counter

from repro.campaign import Campaign
from repro.resilience import (
    ExecutionPolicy,
    FaultInjectingBackend,
    FaultPlan,
    FaultSpec,
    ShardedJournal,
    WorkerCrashFault,
)
from repro.resilience.journal import JournalEntry
from repro.workloads.reference import CpuBoundBackend
from repro.workloads.sweeps import run_grid

from .test_process_dispatch import fast_backend, grid


def crash_plan(mode, match, once_path=None):
    return FaultPlan(specs=[FaultSpec(
        fault=WorkerCrashFault(
            mode=mode,
            once_path=str(once_path) if once_path is not None else None),
        match=match, attempts=None)])


def journal_lines_per_key(journal):
    """How many raw shard lines each key received (exactly-once probe)."""
    counts = Counter()
    for path in journal.shard_paths():
        for line in path.read_text().splitlines():
            if line.strip():
                counts[JournalEntry.from_dict(json.loads(line)).key] += 1
    return counts


def run_campaign(backend, journal_dir, **policy_kwargs):
    policy = ExecutionPolicy(max_workers=2, dispatch="process",
                             journal=ShardedJournal(journal_dir),
                             **policy_kwargs)
    return Campaign([(backend, grid())], policy).run()


class TestCrashRecovery:
    def test_sigkilled_worker_recovers_exactly_once(self, tmp_path):
        plan = crash_plan("sigkill", match="L3",
                          once_path=tmp_path / "tripwire")
        result = run_campaign(
            FaultInjectingBackend(fast_backend(), plan),
            tmp_path / "faulted")
        label = result.labels[0]

        assert all(not c.failed for c in result.cells[label])
        supervision = result.supervision
        assert supervision is not None
        assert supervision.worker_crashes == 1
        assert supervision.pool_rebuilds == 1
        assert supervision.quarantined == ()
        assert (tmp_path / "tripwire").exists()

        # Exactly-once: no finished cell was re-executed after the
        # rebuild — every key reached the journal exactly once.
        counts = journal_lines_per_key(ShardedJournal(tmp_path / "faulted"))
        assert set(counts) == {f"{label}::{s.label}" for s in grid()}
        assert set(counts.values()) == {1}

        # Byte-identical merged journal vs. a run that never crashed.
        run_campaign(fast_backend(), tmp_path / "clean")
        assert (ShardedJournal(tmp_path / "faulted").merged_text()
                == ShardedJournal(tmp_path / "clean").merged_text())

    def test_supervised_grid_path_recovers_too(self, tmp_path):
        # The same recovery through run_grid's process path (PR 2 API).
        plan = crash_plan("exit", match="L4",
                          once_path=tmp_path / "tripwire")
        journal = ShardedJournal(tmp_path / "journal")
        cells = run_grid(FaultInjectingBackend(fast_backend(), plan),
                         grid(), policy=ExecutionPolicy(
                             max_workers=2, dispatch="process",
                             journal=journal))
        assert all(not c.failed for c in cells)
        assert [c.spec.label for c in cells] == \
            [s.label for s in grid()]  # spec order survives recovery
        counts = journal_lines_per_key(journal)
        assert set(counts.values()) == {1}


class TestQuarantine:
    def test_poison_cell_quarantined_not_retried_forever(self, tmp_path):
        plan = crash_plan("sigkill", match="L4")  # no marker: poison
        result = run_campaign(
            FaultInjectingBackend(fast_backend(), plan),
            tmp_path / "faulted")
        label = result.labels[0]
        by_label = {c.spec.label: c for c in result.cells[label]}

        assert by_label["L4"].failed
        assert by_label["L4"].failure.type == "QuarantinedError"
        assert "2 time(s)" in by_label["L4"].error
        for other in ("L2", "L3", "L5"):
            assert not by_label[other].failed

        supervision = result.supervision
        assert supervision.quarantined == (f"{label}::L4",)
        assert supervision.worker_crashes == 2  # quarantine_after=2
        assert "QuarantinedError" in result.report().render()

        # Surviving cells' journal entries are byte-identical to an
        # unfaulted run's; the poison key is journaled exactly once.
        counts = journal_lines_per_key(ShardedJournal(tmp_path / "faulted"))
        assert set(counts.values()) == {1}
        run_campaign(fast_backend(), tmp_path / "clean")
        faulted = ShardedJournal(tmp_path / "faulted").load()
        clean = ShardedJournal(tmp_path / "clean").load()
        for key in clean:
            if key != f"{label}::L4":
                assert faulted[key] == clean[key]

    def test_quarantined_cell_can_be_retried_later(self, tmp_path):
        plan = crash_plan("sigkill", match="L4")
        run_campaign(FaultInjectingBackend(fast_backend(), plan),
                     tmp_path / "journal")
        # The fault "fixed", retry_failed re-executes only the
        # quarantined cell — standard journal semantics.
        healed = run_campaign(fast_backend(), tmp_path / "journal",
                              resume=True, retry_failed=True)
        label = healed.labels[0]
        assert all(not c.failed for c in healed.cells[label])
        assert healed.resumed_cells == 3


class TestHardDeadline:
    def test_wedged_worker_killed_within_budget(self, tmp_path):
        # SIGSTOP freezes every worker thread — heartbeat stamper and
        # cooperative watchdog included. deadline*grace (0.3s) is well
        # under the staleness threshold (2s), so the kill must come
        # from the hard-deadline path.
        plan = crash_plan("stop", match="L3")
        started = time.monotonic()
        result = run_campaign(
            FaultInjectingBackend(fast_backend(), plan),
            tmp_path / "journal",
            deadline=0.15, heartbeat_interval=1.0, grace_factor=2.0)
        elapsed = time.monotonic() - started
        label = result.labels[0]
        by_label = {c.spec.label: c for c in result.cells[label]}

        assert by_label["L3"].failed
        assert by_label["L3"].failure.type == "DeadlineExceededError"
        assert "SIGKILL" in by_label["L3"].error
        for other in ("L2", "L4", "L5"):
            assert not by_label[other].failed

        supervision = result.supervision
        assert supervision.deadline_kills == 1
        assert supervision.stale_kills == 0
        # The lane is freed within deadline*grace + a heartbeat poll;
        # everything beyond that is pool-rebuild + the healthy cells.
        assert elapsed < 0.15 * 2.0 + 1.0 + 15.0

    def test_stale_heartbeat_kill_recovers_the_cell(self, tmp_path):
        # No deadline at all: staleness is the only tripwire. The
        # marker heals the cell after its first wedge, so the retry
        # on a fresh worker completes the grid.
        plan = crash_plan("stop", match="L2",
                          once_path=tmp_path / "tripwire")
        result = run_campaign(
            FaultInjectingBackend(fast_backend(), plan),
            tmp_path / "journal",
            heartbeat_interval=0.2, grace_factor=2.0)
        label = result.labels[0]

        assert all(not c.failed for c in result.cells[label])
        supervision = result.supervision
        assert supervision.stale_kills >= 1
        assert supervision.deadline_kills == 0
        assert supervision.worker_crashes >= 1
        assert supervision.quarantined == ()

    def test_supervision_lands_in_report_and_json(self, tmp_path):
        from repro.core.serialize import campaign_to_dict, to_json

        plan = crash_plan("sigkill", match="L3",
                          once_path=tmp_path / "tripwire")
        result = run_campaign(
            FaultInjectingBackend(fast_backend(), plan),
            tmp_path / "journal")
        rendered = result.report().render()
        assert "Supervision" in rendered
        assert "worker crashes" in rendered
        payload = campaign_to_dict(result)
        assert payload["supervision"]["worker_crashes"] == 1
        assert payload["supervision"]["quarantined"] == []
        to_json(payload)  # stays JSON-serializable
