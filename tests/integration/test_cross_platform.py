"""The framework's generality claim: one methodology, every backend.

The paper's central pitch is that DABench-LLM runs "with minimal
vendor-specific adaptations" across diverse dataflow hardware. These
tests drive all four backends through the identical Tier-1/Tier-2 code
paths and check the uniform report contract.
"""

import pytest

from repro import (
    Precision,
    PrecisionPolicy,
    Tier1Profiler,
    TrainConfig,
    allocation_ratio,
    gpt2_model,
    weighted_load_imbalance,
)
from repro.core.report import TIER1_HEADERS, tier1_summary_row


def backend_options(name):
    return {
        "CS-2": {},
        "SN30": {"mode": "O3"},
        "Bow-2000": {"n_ipus": 2},
        "A100-cluster": {"tp": 4},
    }[name]


@pytest.fixture(scope="module")
def all_backends(request):
    from repro import (
        CerebrasBackend,
        GPUBackend,
        GraphcoreBackend,
        SambaNovaBackend,
    )
    return [CerebrasBackend(), SambaNovaBackend(), GraphcoreBackend(),
            GPUBackend()]


@pytest.fixture(scope="module")
def train():
    return TrainConfig(batch_size=16, seq_len=1024,
                       precision=PrecisionPolicy.pure(Precision.BF16))


@pytest.fixture(scope="module")
def model():
    return gpt2_model("small").with_layers(4)


class TestUniformCompileContract:
    def test_every_backend_compiles_same_workload(self, all_backends,
                                                  model, train):
        for backend in all_backends:
            report = backend.compile(model, train,
                                     **backend_options(backend.name))
            assert report.platform == backend.name
            assert report.phases
            assert report.total_compute_units > 0
            assert report.shared_memory.capacity_bytes > 0

    def test_metrics_computable_everywhere(self, all_backends, model,
                                           train):
        for backend in all_backends:
            report = backend.compile(model, train,
                                     **backend_options(backend.name))
            assert 0 < allocation_ratio(report) <= 1.0
            assert 0 < weighted_load_imbalance(report) <= 1.0


class TestUniformRunContract:
    def test_every_backend_runs(self, all_backends, model, train):
        for backend in all_backends:
            compiled, run = backend.compile_and_run(
                model, train, **backend_options(backend.name))
            assert run.tokens_per_second > 0
            assert run.step_time > 0
            assert run.achieved_flops > 0
            assert run.samples_per_second == pytest.approx(
                train.batch_size / run.step_time, rel=1e-6)

    def test_tier1_profile_everywhere(self, all_backends, model, train):
        for backend in all_backends:
            result = Tier1Profiler(backend).profile(
                model, train, **backend_options(backend.name))
            row = tier1_summary_row(result)
            assert len(row) == len(TIER1_HEADERS)
            assert result.roofline.bound in ("compute", "memory")

    def test_achieved_never_exceeds_cluster_peak(self, all_backends,
                                                 model, train):
        for backend in all_backends:
            compiled, run = backend.compile_and_run(
                model, train, **backend_options(backend.name))
            peak = backend.system.chip.peak_flops * max(1, compiled.n_chips)
            assert run.achieved_flops <= peak


class TestDeterminism:
    def test_compile_run_is_reproducible(self, all_backends, model, train):
        for backend in all_backends:
            opts = backend_options(backend.name)
            first = backend.run(backend.compile(model, train, **opts))
            second = backend.run(backend.compile(model, train, **opts))
            assert first.tokens_per_second == second.tokens_per_second
            assert first.step_time == second.step_time
