"""Property-based fuzzing of the platform compilers.

For arbitrary (model, training) configurations within sane bounds, every
backend must either produce a well-formed report or raise a
:class:`~repro.common.errors.CompilationError` — never a stray
exception — and all framework metrics must stay in range. This is the
robustness contract a benchmarking framework needs to sweep unknown
hardware/workload combinations unattended.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.errors import CompilationError
from repro.core.metrics import allocation_ratio, weighted_load_imbalance
from repro.models.config import TrainConfig
from repro.models.precision import Precision, PrecisionPolicy
from repro.workloads import decoder_block_probe

POLICIES = [
    PrecisionPolicy.pure(Precision.FP16),
    PrecisionPolicy.pure(Precision.BF16),
    PrecisionPolicy.mixed(Precision.FP16),
    PrecisionPolicy.full(),
]

model_configs = st.builds(
    decoder_block_probe,
    hidden_size=st.sampled_from([128, 256, 512, 768, 1024, 2048]),
    n_layers=st.integers(min_value=1, max_value=48),
)

train_configs = st.builds(
    TrainConfig,
    batch_size=st.sampled_from([1, 2, 8, 32, 128]),
    seq_len=st.sampled_from([128, 512, 1024, 2048]),
    precision=st.sampled_from(POLICIES),
)

FUZZ_SETTINGS = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture])


def _check_reports(backend, model, train, **options):
    try:
        compiled = backend.compile(model, train, **options)
    except CompilationError:
        return  # a clean refusal is a valid outcome
    assert 0.0 < allocation_ratio(compiled) <= 1.0
    assert 0.0 < weighted_load_imbalance(compiled) <= 1.0 + 1e-9
    run = backend.run(compiled)
    assert run.step_time > 0
    assert run.tokens_per_second > 0
    peak = backend.system.chip.peak_flops * max(compiled.n_chips, 1)
    assert 0.0 < run.achieved_flops <= peak * (1 + 1e-9)


@FUZZ_SETTINGS
@given(model=model_configs, train=train_configs)
def test_fuzz_cerebras(cerebras, model, train):
    _check_reports(cerebras, model, train)


@FUZZ_SETTINGS
@given(model=model_configs, train=train_configs,
       mode=st.sampled_from(["O0", "O1", "O3"]))
def test_fuzz_sambanova(sambanova, model, train, mode):
    _check_reports(sambanova, model, train, mode=mode)


@FUZZ_SETTINGS
@given(model=model_configs, train=train_configs,
       n_ipus=st.sampled_from([2, 4, 8]))
def test_fuzz_graphcore(graphcore, model, train, n_ipus):
    _check_reports(graphcore, model, train, n_ipus=n_ipus)


@FUZZ_SETTINGS
@given(model=model_configs, train=train_configs,
       tp=st.sampled_from([1, 2, 4, 8]),
       pp=st.sampled_from([1, 2, 4]))
def test_fuzz_gpu(gpu, model, train, tp, pp):
    _check_reports(gpu, model, train, tp=tp, pp=pp)


@FUZZ_SETTINGS
@given(model=model_configs, train=train_configs,
       replicas=st.sampled_from([1, 2, 4]))
def test_fuzz_cerebras_replicas(cerebras, model, train, replicas):
    if train.batch_size < replicas:
        return
    _check_reports(cerebras, model, train, n_replicas=replicas)


@pytest.mark.parametrize("mode", ["pipeline", "weight_streaming"])
def test_wse_streams_models_too_big_to_reside(cerebras, mode):
    """Sec. VI-A3a: weight streaming unlocks models beyond on-chip
    residency — and pipeline mode refuses them."""
    from repro.models.config import llama2_model
    model = llama2_model("7b")
    train = TrainConfig(batch_size=16, seq_len=2048,
                        precision=PrecisionPolicy.pure(Precision.FP16))
    if mode == "pipeline":
        with pytest.raises(CompilationError):
            cerebras.compile(model, train, mode=mode)
    else:
        compiled = cerebras.compile(model, train, mode=mode)
        run = cerebras.run(compiled)
        assert run.tokens_per_second > 0
