"""End-to-end assertions of the paper's headline findings.

Each test reproduces one "Insight" box or headline number from the
evaluation (Sections V and VI) through the public API only.
"""

import pytest

from repro import (
    GraphcoreBackend,
    OutOfMemoryError,
    Precision,
    PrecisionPolicy,
    Tier1Profiler,
    TrainConfig,
    allocation_ratio,
    gpt2_model,
    llama2_model,
    weighted_load_imbalance,
)
from repro.core.tier2 import DeploymentOptimizer
from repro.workloads import decoder_block_probe


class TestSectionVA_Allocation:
    def test_wse_insight(self, cerebras):
        """'WSE-2 achieves a high on-chip resource allocation ratio
        (92-93%) ... supporting up to 72 decoder layers.'"""
        train = TrainConfig(batch_size=64, seq_len=1024)
        model = gpt2_model("small")
        saturated = cerebras.compile(model.with_layers(48), train)
        assert allocation_ratio(saturated) == pytest.approx(0.925,
                                                            abs=0.025)
        profiler = Tier1Profiler(cerebras)
        assert 66 <= profiler.max_feasible(model, train, upper=96) <= 77

    def test_rdu_insight(self, sambanova):
        """'complex partitioning strategies limit resource allocation
        below 60%' with O3 highest and O0 lowest."""
        train = TrainConfig(batch_size=16, seq_len=1024,
                            precision=PrecisionPolicy.pure(Precision.BF16))
        model = gpt2_model("small")
        ratios = {}
        for mode in ("O0", "O1", "O3"):
            report = sambanova.compile(model, train, mode=mode)
            ratios[mode] = allocation_ratio(report)
            assert ratios[mode] < 0.62
        assert ratios["O3"] == max(ratios.values())
        assert ratios["O0"] == min(ratios.values())


class TestSectionVB_LoadBalance:
    def test_wse_balances_better_than_rdu_o3(self, cerebras, sambanova):
        """Fig. 8: WSE kernel-level LI near 1; RDU O3 well below."""
        train16 = TrainConfig(batch_size=16, seq_len=1024,
                              precision=PrecisionPolicy.pure(Precision.BF16))
        train64 = TrainConfig(batch_size=64, seq_len=1024)
        model = gpt2_model("small")
        wse = weighted_load_imbalance(cerebras.compile(model, train64))
        rdu = weighted_load_imbalance(
            sambanova.compile(model, train16, mode="O3"))
        assert wse > 0.9
        assert rdu < wse


class TestSectionVC_Memory:
    def test_wse_tflops_rise_then_collapse(self, cerebras):
        """Fig. 9a: TFLOPs climb to a plateau (18-36 layers) then fall."""
        train = TrainConfig(batch_size=256, seq_len=1024)
        model = gpt2_model("small")
        curve = {n: cerebras.run(cerebras.compile(model.with_layers(n),
                                                  train)).achieved_flops
                 for n in (6, 24, 66)}
        assert curve[24] > curve[6]
        assert curve[66] < 0.8 * curve[24]

    def test_wse_peak_tflops_band(self, cerebras):
        """Sec. V-C2: peak 327-338 TFLOP/s at ~20% efficiency."""
        train = TrainConfig(batch_size=256, seq_len=1024)
        run = cerebras.run(cerebras.compile(
            gpt2_model("small").with_layers(30), train))
        assert 300e12 < run.achieved_flops < 450e12

    def test_ipu_fails_at_ten_layers(self, graphcore):
        """Fig. 9d: IPU execution fails around 70M parameters."""
        train = TrainConfig(batch_size=32, seq_len=1024)
        model = gpt2_model("small")
        graphcore.compile(model.with_layers(9), train, n_ipus=2)
        with pytest.raises(OutOfMemoryError):
            graphcore.compile(model.with_layers(10), train, n_ipus=2)

    def test_rdu_peak_tflops_band(self, sambanova):
        """Fig. 9c / Sec. V-C2: RDU throughput 35-50 TFLOP/s range."""
        train = TrainConfig(batch_size=32, seq_len=2048,
                            precision=PrecisionPolicy.pure(Precision.BF16))
        model = llama2_model("7b").with_hidden(5120).with_layers(4)
        run = sambanova.run(sambanova.compile(model, train, mode="O1"))
        assert 30e12 < run.achieved_flops < 70e12


class TestSectionVC2_Roofline:
    def test_three_way_classification(self, cerebras, sambanova, graphcore):
        """Fig. 10: only WSE is compute-bound."""
        fp16 = TrainConfig(batch_size=32, seq_len=1024)
        bf16 = fp16.with_precision(PrecisionPolicy.pure(Precision.BF16))
        model = gpt2_model("small").with_layers(8)
        wse = Tier1Profiler(cerebras).profile(model, fp16)
        rdu = Tier1Profiler(sambanova).profile(model, bf16, mode="O3")
        ipu = Tier1Profiler(graphcore).profile(model, fp16, n_ipus=2)
        assert wse.roofline.bound == "compute"
        assert rdu.roofline.bound == "memory"
        assert ipu.roofline.bound == "memory"


class TestSectionVIA_Scalability:
    def test_rdu_tp_cliff_and_plateau(self, sambanova):
        """Table III: 1540 -> 945 -> 918 (intra-machine cheap,
        cross-machine expensive, further scaling flat)."""
        train = TrainConfig(batch_size=8, seq_len=4096,
                            precision=PrecisionPolicy.pure(Precision.BF16))
        model = llama2_model("7b")
        rates = {tp: sambanova.run(
            sambanova.compile(model, train, mode="O1", tp=tp)
        ).tokens_per_second for tp in (2, 4, 8)}
        assert rates[4] < 0.75 * rates[2]
        assert abs(rates[8] - rates[4]) < 0.15 * rates[4]

    def test_wse_weight_streaming_overhead(self, cerebras):
        """Table III: streaming costs ~20% (0.66M -> 0.53M)."""
        train = TrainConfig(batch_size=128, seq_len=1024)
        model = gpt2_model("small")
        pipe = cerebras.run(cerebras.compile(model, train))
        stream = cerebras.run(cerebras.compile(model, train,
                                               mode="weight_streaming"))
        ratio = stream.tokens_per_second / pipe.tokens_per_second
        assert 0.75 < ratio < 0.85

    def test_ipu_bottleneck_stage_rule(self, graphcore):
        """Fig. 11c insight: minimize the most-loaded IPU."""
        from repro.hardware.specs import BOW_POD
        pod = GraphcoreBackend(BOW_POD)
        train = TrainConfig(batch_size=64, seq_len=1024)
        model = decoder_block_probe(768, 12)
        balanced = pod.run(pod.compile(model, train, n_ipus=8,
                                       layers_per_ipu=[3, 3, 3, 3, 0]))
        skewed = pod.run(pod.compile(model, train, n_ipus=8,
                                     layers_per_ipu=[6, 2, 2, 2, 0]))
        assert balanced.samples_per_second > 1.2 * skewed.samples_per_second


class TestSectionVIB_Deployment:
    def test_batch_size_recommendations(self, cerebras, sambanova):
        """Fig. 12 insight: maximize batch on RDU; >200 unnecessary on
        WSE."""
        wse = DeploymentOptimizer(cerebras).batch_sweep(
            gpt2_model("small"), TrainConfig(batch_size=8, seq_len=1024),
            [32, 64, 128, 256, 512])
        rdu = DeploymentOptimizer(sambanova).batch_sweep(
            gpt2_model("small"),
            TrainConfig(batch_size=4, seq_len=1024,
                        precision=PrecisionPolicy.pure(Precision.BF16)),
            [4, 8, 16, 32], mode="O1")
        assert not wse.near_linear
        assert rdu.near_linear

    def test_precision_sensitivity_ordering(self, cerebras, sambanova,
                                            graphcore):
        """Table IV: RDU most sensitive (+34%), IPU next (+22%),
        WSE least (+10.7%)."""
        wse = DeploymentOptimizer(cerebras).compare_precision(
            gpt2_model("small"), TrainConfig(batch_size=128, seq_len=1024),
            baseline=PrecisionPolicy.pure(Precision.FP16),
            optimized=PrecisionPolicy.pure(Precision.CB16))
        ipu = DeploymentOptimizer(graphcore).compare_precision(
            decoder_block_probe(768, 4, vocab_size=50257),
            TrainConfig(batch_size=16, seq_len=1024),
            baseline=PrecisionPolicy.full(),
            optimized=PrecisionPolicy.mixed(Precision.FP16),
            n_ipus=2)
        rdu = DeploymentOptimizer(sambanova).compare_precision(
            llama2_model("7b"),
            TrainConfig(batch_size=16, seq_len=4096,
                        precision=PrecisionPolicy.pure(Precision.BF16)),
            baseline=PrecisionPolicy.matmul_only(Precision.BF16),
            optimized=PrecisionPolicy.mixed(Precision.BF16),
            mode="O1", tp=2)
        assert rdu.gain > ipu.gain > wse.gain
        assert wse.gain == pytest.approx(0.107, abs=0.04)
