"""End-to-end resilience: the ISSUE acceptance scenario.

A 20-cell grid is executed through the resilient harness with injected
transient faults, one permanent device fault, and one hang. The grid
must complete with zero lost cells: transients retried to success, the
permanent fault journaled as a structured failed cell, the hang cut off
by the per-cell deadline. A second ``run_grid(..., resume=...)`` must
re-execute only the unfinished cells, verified by the backend call
counter.
"""

from repro.common.errors import TransientError
from repro.models.config import TrainConfig, gpt2_model
from repro.resilience import (
    ExecutionPolicy,
    FakeClock,
    FaultInjectingBackend,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    SweepJournal,
)
from repro.resilience.faults import device_fault, wse_fabric_fault
from repro.workloads.sweeps import SweepSpec, run_grid

N_CELLS = 20
HANG_LAYERS = 9       # the cell that hangs on every attempt
BROKEN_LAYERS = 13    # the cell whose device fault never clears


def grid_specs(n=N_CELLS):
    """20 small configurations that all compile cleanly when healthy."""
    train = TrainConfig(batch_size=8, seq_len=256)
    model = gpt2_model("mini")
    return [SweepSpec(label=f"L{layers}",
                      model=model.with_layers(layers),
                      train=train)
            for layers in range(1, n + 1)]


def acceptance_plan():
    """Transient flakes on three cells, one permanent fault, one hang."""
    plan = FaultPlan()
    for layers in (3, 11, 17):  # transient: first attempt only
        plan.add(FaultSpec(fault=wse_fabric_fault, match=f"/L{layers}/",
                           phase="compile", attempts=(0,)))
    plan.add(FaultSpec(fault=lambda: device_fault("fabric"),
                       match=f"/L{BROKEN_LAYERS}/", attempts=None))
    plan.add(FaultSpec.hang(3600.0, match=f"/L{HANG_LAYERS}/",
                            phase="run", attempts=None))
    return plan


def make_harness(cerebras, tmp_path, plan):
    clock = FakeClock()
    backend = FaultInjectingBackend(cerebras, plan, clock=clock)
    policy = ExecutionPolicy(
        retry=RetryPolicy(max_retries=2, base_backoff=1.0, jitter=0.0),
        deadline=120.0, clock=clock,
        journal=SweepJournal(tmp_path / "grid.jsonl"))
    return backend, policy


class TestAcceptanceScenario:
    def test_faulty_grid_completes_with_zero_lost_cells(self, cerebras,
                                                        tmp_path):
        backend, policy = make_harness(
            cerebras, tmp_path, acceptance_plan())
        cells = run_grid(backend, grid_specs(), policy=policy)

        assert len(cells) == N_CELLS
        by_label = {c.spec.label: c for c in cells}

        # Transients retried to success.
        for layers in (3, 11, 17):
            cell = by_label[f"L{layers}"]
            assert not cell.failed
            assert cell.attempts == 2
        # The permanent device fault is a structured failed cell.
        broken = by_label[f"L{BROKEN_LAYERS}"]
        assert broken.failed
        assert broken.failure.type == "DeviceFaultError"
        assert broken.failure.attrs["component"] == "fabric"
        assert broken.failure.phase == "compile"
        # The hang was cut off by the per-cell deadline.
        hung = by_label[f"L{HANG_LAYERS}"]
        assert hung.failed
        assert hung.failure.type == "DeadlineExceededError"
        assert hung.failure.phase == "run"
        assert hung.failure.attrs["deadline"] == 120.0
        # Everything else succeeded first try.
        clean = [c for c in cells
                 if c.spec.label not in
                 {f"L{n}" for n in (3, 11, 17, HANG_LAYERS, BROKEN_LAYERS)}]
        assert all(not c.failed and c.attempts == 1 for c in clean)
        # Zero lost cells: every cell has a final journal entry.
        entries = policy.journal.load()
        assert len(entries) == N_CELLS
        assert all(entry.finished for entry in entries.values())

    def test_resume_skips_every_journaled_cell(self, cerebras, tmp_path):
        backend, policy = make_harness(
            cerebras, tmp_path, acceptance_plan())
        run_grid(backend, grid_specs(), policy=policy)
        calls_after_first = dict(backend.calls)

        resumed = run_grid(backend, grid_specs(),
                           policy=policy.with_options(resume=True))
        # No backend call was made: journaled outcomes were replayed.
        assert dict(backend.calls) == calls_after_first
        assert len(resumed) == N_CELLS
        assert all(c.resumed for c in resumed)
        assert sum(1 for c in resumed if c.failed) == 2

    def test_resume_executes_only_unfinished_cells(self, cerebras,
                                                   tmp_path):
        # Interrupted campaign: only the first 12 cells ran to completion.
        backend, policy = make_harness(
            cerebras, tmp_path, FaultPlan())
        run_grid(backend, grid_specs()[:12], policy=policy)
        assert backend.calls["compile"] == 12

        cells = run_grid(backend, grid_specs(),
                         policy=policy.with_options(resume=True))
        # Exactly the 8 unfinished cells hit the backend.
        assert backend.calls["compile"] == N_CELLS
        assert backend.calls["run"] == N_CELLS
        assert sum(1 for c in cells if c.resumed) == 12
        assert sum(1 for c in cells if not c.resumed) == 8
        assert all(not c.failed for c in cells)

    def test_retry_failed_reruns_journaled_failures(self, cerebras,
                                                    tmp_path):
        # First campaign: L13's device fault is permanent.
        backend, policy = make_harness(
            cerebras, tmp_path, acceptance_plan())
        run_grid(backend, grid_specs(), policy=policy)

        # The device was repaired (fresh, fault-free plan): retry failures.
        healthy, policy2 = make_harness(cerebras, tmp_path, FaultPlan())
        cells = run_grid(healthy, grid_specs(),
                         policy=policy2.with_options(resume=True,
                                                     retry_failed=True))
        assert healthy.calls["compile"] == 2  # just L9 and L13
        assert all(not c.failed for c in cells)

    def test_backoff_schedule_on_injected_clock(self, cerebras, tmp_path):
        clock = FakeClock()
        plan = FaultPlan().add(FaultSpec(fault=wse_fabric_fault,
                                         phase="compile", attempts=(0, 1)))
        backend = FaultInjectingBackend(cerebras, plan, clock=clock)
        policy = ExecutionPolicy(
            retry=RetryPolicy(max_retries=2, base_backoff=2.0,
                              multiplier=3.0, jitter=0.0),
            clock=clock)
        cells = run_grid(backend, grid_specs(1), policy=policy)
        assert not cells[0].failed
        assert cells[0].attempts == 3
        assert clock.sleeps == [2.0, 6.0]


class TestCircuitBreakerGrid:
    def test_open_breaker_gates_rest_of_grid(self, cerebras, tmp_path):
        from repro.resilience import CircuitBreaker

        clock = FakeClock()
        # Every cell faults permanently: the breaker opens after two.
        plan = FaultPlan().add(
            FaultSpec(fault=lambda: device_fault("pcie"), attempts=None))
        backend = FaultInjectingBackend(cerebras, plan, clock=clock)
        breaker = CircuitBreaker(backend.name, failure_threshold=2,
                                 reset_timeout=3600.0, clock=clock)
        journal = SweepJournal(tmp_path / "gated.jsonl")
        policy = ExecutionPolicy(
            retry=RetryPolicy(max_retries=0, jitter=0.0),
            clock=clock, breaker=breaker, journal=journal)
        cells = run_grid(backend, grid_specs(6), policy=policy)
        assert backend.calls["compile"] == 2  # the rest gated, fail-fast
        assert all(c.failed for c in cells)
        gated = [c for c in cells if c.failure.type == "CircuitOpenError"]
        assert len(gated) == 4
        # Gated cells are unfinished: a resume (on fixed hardware)
        # re-executes them but not the two real failures.
        healthy = FaultInjectingBackend(cerebras, FaultPlan(), clock=clock)
        resumed = run_grid(healthy, grid_specs(6),
                           policy=ExecutionPolicy(
                               retry=RetryPolicy(max_retries=0, jitter=0.0),
                               clock=clock, journal=journal, resume=True))
        assert healthy.calls["compile"] == 4
        assert sum(1 for c in resumed if not c.failed) == 4


class TestTransientTaxonomy:
    def test_each_backend_declares_transients(self, cerebras, sambanova,
                                              graphcore, gpu):
        from repro.cerebras.backend import FabricFaultError
        from repro.common.errors import OutOfMemoryError
        from repro.gpu.backend import NcclTimeoutError
        from repro.graphcore.backend import HostLinkError
        from repro.sambanova.backend import SectionStallError

        cases = [(cerebras, FabricFaultError("x")),
                 (sambanova, SectionStallError("x")),
                 (graphcore, HostLinkError("x")),
                 (gpu, NcclTimeoutError("x"))]
        for backend, fault in cases:
            assert backend.is_transient(fault)
            assert backend.is_transient(TransientError("generic"))
            assert not backend.is_transient(OutOfMemoryError("oom"))
