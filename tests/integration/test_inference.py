"""Forward-only inference benchmarking (extension beyond the paper).

The same backends that model training steps also benchmark inference:
no gradients, no optimizer state, no activation stashes, forward FLOPs
only. These tests pin the structural consequences on every platform.
"""

import pytest

from repro import TrainConfig, gpt2_model, llama2_model
from repro.models.costmodel import TransformerCostModel
from repro.models.graph_builder import build_training_graph
from repro.models.precision import Precision, PrecisionPolicy


@pytest.fixture()
def train():
    return TrainConfig(batch_size=32, seq_len=1024)


@pytest.fixture()
def infer(train):
    return train.as_inference()


class TestCostModel:
    def test_flops_one_third(self, train, infer):
        cost = TransformerCostModel(gpt2_model("small"))
        assert cost.step_flops(infer) == pytest.approx(
            cost.step_flops(train) / 3.0)

    def test_no_training_state(self, infer):
        cost = TransformerCostModel(gpt2_model("small"))
        assert cost.gradient_bytes(infer) == 0.0
        assert cost.optimizer_state_bytes(infer) == 0.0

    def test_transient_activations_only(self, train, infer):
        cost = TransformerCostModel(gpt2_model("small"))
        # Logits dominate the inference working set, so the ratio is
        # bounded by the vocab term rather than approaching zero.
        assert cost.activation_bytes(infer) < 0.15 * cost.activation_bytes(
            train)


class TestGraph:
    def test_no_backward_ops(self, infer):
        graph = build_training_graph(gpt2_model("small").with_layers(2),
                                     infer)
        assert not any(op.backward for op in graph)
        assert "optimizer" not in graph
        assert [op.name for op in graph.sinks()] == ["loss"]


class TestCerebrasInference:
    def test_faster_than_training(self, cerebras, train, infer):
        model = gpt2_model("small")
        t = cerebras.run(cerebras.compile(model, train))
        i = cerebras.run(cerebras.compile(model, infer))
        # Forward-only kernels also get smaller scalability caps
        # (caps ~ flops^(2/3)), so the speedup is < 3x.
        assert 1.3 * t.tokens_per_second < i.tokens_per_second \
            < 3.0 * t.tokens_per_second

    def test_fits_bigger_models(self, cerebras, train, infer):
        """Without optimizer state and stashes, deeper stacks compile."""
        from repro.core.tier1 import Tier1Profiler
        profiler = Tier1Profiler(cerebras)
        train_limit = profiler.max_feasible(gpt2_model("small"), train,
                                            upper=128)
        infer_limit = profiler.max_feasible(gpt2_model("small"), infer,
                                            upper=128)
        assert infer_limit > train_limit

    def test_allocation_anchors_shift(self, cerebras, infer):
        """Forward-only kernels are smaller, so the under-subscribed
        regime extends further (caps scale with flops^(2/3))."""
        from repro.core.metrics import allocation_ratio
        r_train = allocation_ratio(cerebras.compile(
            gpt2_model("small").with_layers(6),
            TrainConfig(batch_size=32, seq_len=1024)))
        r_infer = allocation_ratio(cerebras.compile(
            gpt2_model("small").with_layers(6), infer))
        assert r_infer < r_train


class TestSambaNovaInference:
    def test_fewer_sections(self, sambanova, infer):
        bf16_train = TrainConfig(
            batch_size=32, seq_len=1024,
            precision=PrecisionPolicy.pure(Precision.BF16))
        bf16_infer = bf16_train.as_inference()
        model = gpt2_model("small")
        t = sambanova.compile(model, bf16_train, mode="O1")
        i = sambanova.compile(model, bf16_infer, mode="O1")
        assert len(i.phases) < len(t.phases)

    def test_7b_inference_fits_one_rdu_at_long_context(self, sambanova):
        infer = TrainConfig(batch_size=8, seq_len=4096,
                            precision=PrecisionPolicy.pure(Precision.BF16),
                            training=False)
        compiled = sambanova.compile(llama2_model("7b"), infer, mode="O1")
        run = sambanova.run(compiled)
        assert run.tokens_per_second > 0
        assert compiled.global_memory.optimizer_bytes == 0.0


class TestGraphcoreInference:
    def test_no_backward_records(self, graphcore, infer):
        model = gpt2_model("small").with_layers(4)
        run = graphcore.run(graphcore.compile(model, infer, n_ipus=2))
        assert not run.trace.filter(category="backward").records

    def test_memory_wall_moves(self, graphcore, train, infer):
        """Fig. 9d's 10-layer limit is a *training* limit; inference
        fits far deeper stacks in the same 900 MB."""
        from repro.core.tier1 import Tier1Profiler
        profiler = Tier1Profiler(graphcore)
        assert profiler.max_feasible(gpt2_model("small"), train,
                                     upper=64, n_ipus=2) == 9
        assert profiler.max_feasible(gpt2_model("small"), infer,
                                     upper=64, n_ipus=2) >= 20


class TestGPUInference:
    def test_no_dp_comm(self, gpu, infer):
        model = gpt2_model("xlarge")
        compiled = gpu.compile(model, infer.with_batch_size(128),
                               tp=8, dp=2)
        assert compiled.meta["breakdown"].dp_comm_seconds == 0.0
