"""Observability acceptance: trace determinism, lifecycle
reconstruction, and the cross-run ledger (PR 7).

The contracts:

* a faultless grid's **canonical merged trace is byte-identical**
  under thread and process dispatch — tracing observes execution, it
  does not depend on where execution happened;
* tracing is **side-effect-free on the journal**: ``merged_text()`` is
  byte-identical with tracing on or off;
* a chaos campaign's kill/isolate/quarantine story is reconstructable
  from the merged trace alone — no log scraping, no supervisor state;
* a second campaign run with a ``--ledger`` warm-starts the EWMA cost
  predictor from persisted durations, observable as a (much) lower
  MAE in the Scheduling stats, and a corrupt ledger file degrades to
  a cold start with a ``RuntimeWarning``, never a crash.
"""

import pytest

from repro.campaign import Campaign
from repro.observe import (
    RunLedger,
    events_for_key,
    load_events,
    merged_trace_text,
)
from repro.resilience import (
    ExecutionPolicy,
    FaultInjectingBackend,
    ShardedJournal,
)
from repro.workloads.sweeps import run_grid

from .test_process_dispatch import fast_backend, grid
from .test_supervision import crash_plan


def traced_policy(journal_dir, **kwargs):
    return ExecutionPolicy(max_workers=2, trace=True,
                           journal=ShardedJournal(journal_dir),
                           **kwargs)


class TestTraceDeterminism:
    def test_thread_and_process_merged_traces_identical(self, tmp_path):
        """Property: same faultless grid, same canonical trace —
        whatever dispatch mode, pool interleaving, or shard layout
        produced the events."""
        texts = {}
        for dispatch in ("thread", "process"):
            root = tmp_path / dispatch
            cells = run_grid(fast_backend(), grid(),
                             policy=traced_policy(root,
                                                  dispatch=dispatch))
            assert all(not c.failed for c in cells)
            texts[dispatch] = merged_trace_text(load_events(root))
        assert texts["thread"] == texts["process"]
        assert texts["thread"]  # and it is not trivially empty

    def test_repeated_runs_are_identical_too(self, tmp_path):
        texts = set()
        for attempt in ("one", "two"):
            root = tmp_path / attempt
            run_grid(fast_backend(), grid(),
                     policy=traced_policy(root))
            texts.add(merged_trace_text(load_events(root)))
        assert len(texts) == 1

    def test_tracing_is_side_effect_free_on_the_journal(self, tmp_path):
        for root, trace in ((tmp_path / "traced", True),
                            (tmp_path / "plain", False)):
            run_grid(fast_backend(), grid(),
                     policy=ExecutionPolicy(
                         max_workers=2, dispatch="process", trace=trace,
                         journal=ShardedJournal(root)))
        assert (ShardedJournal(tmp_path / "traced").merged_text()
                == ShardedJournal(tmp_path / "plain").merged_text())

    def test_explicit_trace_directory_separate_from_journal(self,
                                                            tmp_path):
        run_grid(fast_backend(), grid(),
                 policy=ExecutionPolicy(
                     trace=tmp_path / "traces",
                     journal=ShardedJournal(tmp_path / "journal")))
        events = load_events(tmp_path / "traces")
        assert events
        assert not load_events(tmp_path / "journal")


class TestLifecycleReconstruction:
    def test_quarantine_story_from_trace_alone(self, tmp_path):
        """The chaos-supervision acceptance: the poison cell's
        crash -> isolation -> crash -> quarantine sequence must be
        readable off the merged trace, per cell, in order."""
        plan = crash_plan("sigkill", match="L4")  # poison: kills every
        backend = FaultInjectingBackend(fast_backend(), plan)
        result = Campaign(
            [(backend, grid())],
            traced_policy(tmp_path / "journal", dispatch="process",
                          quarantine_after=2)).run()
        label = result.labels[0]
        assert result.supervision.quarantined == (f"{label}::L4",)

        events = load_events(tmp_path / "journal")
        story = [e.name for e in events_for_key(events,
                                                f"{label}::L4")]
        crashes = [i for i, name in enumerate(story)
                   if name == "worker-crash"]
        assert len(crashes) == 2  # quarantine_after=2
        assert story.index("isolate") > crashes[0]
        assert story.index("quarantine") > crashes[-1]
        final = [e for e in events_for_key(events, f"{label}::L4")
                 if e.name == "cell"]
        assert final[-1].status == "failed"
        assert final[-1].meta.get("error") == "QuarantinedError"
        # Healthy cells reached a terminal event in the same trace.
        # A sibling of the poison cell can be collateral damage: the
        # pool manager terminates every worker when one dies, and a
        # healthy cell whose result was already journaled but not yet
        # returned is *recovered* on redispatch instead of re-run —
        # its story legitimately ends in "recovered", not "cell".
        for healthy in ("L2", "L3", "L5"):
            names = {e.name for e in
                     events_for_key(events, f"{label}::{healthy}")}
            assert "dispatch" in names
            if "recovered" in names:
                assert {"compile", "run"} <= names
            else:
                assert {"compile", "run", "cell"} <= names

    def test_supervisor_sigkill_lands_in_trace(self, tmp_path):
        """A wedged worker (SIGSTOP) is hard-killed by the supervisor;
        the kill itself must be a trace event on the cell's key."""
        plan = crash_plan("stop", match="L3",
                          once_path=tmp_path / "tripwire")
        backend = FaultInjectingBackend(fast_backend(), plan)
        result = Campaign(
            [(backend, grid())],
            traced_policy(tmp_path / "journal", dispatch="process",
                          deadline=0.15, heartbeat_interval=1.0,
                          grace_factor=2.0)).run()
        label = result.labels[0]
        events = load_events(tmp_path / "journal")
        kills = [e for e in events if e.name == "sigkill"]
        assert kills
        assert kills[0].key == f"{label}::L3"

    def test_observability_stats_in_report_and_json(self, tmp_path):
        from repro.core.serialize import campaign_to_dict, to_json

        result = Campaign(
            [(fast_backend(), grid())],
            traced_policy(tmp_path / "journal")).run()
        label = result.labels[0]
        assert result.observability is not None
        row = result.observability[0]
        assert row.lane == label
        assert row.cells == len(grid())
        assert row.compile_seconds > 0.0
        rendered = result.report().render()
        assert "Observability" in rendered
        payload = campaign_to_dict(result)
        assert payload["observability"][0]["cells"] == len(grid())
        assert payload["policy"]["trace"] is True
        to_json(payload)

    def test_untraced_campaign_has_no_observability(self, tmp_path):
        from repro.core.serialize import campaign_to_dict

        result = Campaign(
            [(fast_backend(), grid())],
            ExecutionPolicy(max_workers=2,
                            journal=ShardedJournal(tmp_path / "j"))).run()
        assert result.observability is None
        assert campaign_to_dict(result)["observability"] is None
        assert "Observability" not in result.report().render()


class TestRunLedgerAcrossRuns:
    def run_once(self, tmp_path, tag, **kwargs):
        return Campaign(
            [(fast_backend(), grid())],
            ExecutionPolicy(max_workers=2,
                            journal=ShardedJournal(tmp_path / tag),
                            ledger=tmp_path / "ledger.json",
                            **kwargs)).run()

    def test_second_run_warm_starts_the_predictor(self, tmp_path):
        first = self.run_once(tmp_path, "one")
        ledger = RunLedger(tmp_path / "ledger.json")
        assert len(ledger) >= 1  # families persisted
        assert all(v > 0 for v in ledger.priors().values())

        second = self.run_once(tmp_path, "two")
        # Cold analytic priors overestimate the reference cells by
        # orders of magnitude; warm-started EWMAs track the observed
        # milliseconds, so the MAE must collapse.
        assert second.scheduling.mean_abs_error \
            < first.scheduling.mean_abs_error
        assert second.scheduling.predicted_seconds \
            < first.scheduling.predicted_seconds

    def test_corrupt_ledger_never_crashes_the_campaign(self, tmp_path):
        (tmp_path / "ledger.json").write_text("{ totally not json")
        with pytest.warns(RuntimeWarning, match="starting cold"):
            result = self.run_once(tmp_path, "one")
        label = result.labels[0]
        assert all(not c.failed for c in result.cells[label])
        # The run rewrote the file: reloading is clean.
        assert len(RunLedger(tmp_path / "ledger.json")) >= 1
